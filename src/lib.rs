//! # availsim
//!
//! Umbrella crate for the *availsim* workspace — a full Rust reproduction of
//! Kishani, Eftekhari & Asadi, **"Evaluating Impact of Human Errors on the
//! Availability of Data Storage Systems"** (DATE 2017).
//!
//! This facade re-exports the workspace crates under one roof:
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`ctmc`] | `availsim-ctmc` | CTMC engine: GTH/LU/power steady state, uniformization, absorbing analysis |
//! | [`sim`] | `availsim-sim` | Monte-Carlo kernel: PRNG, lifetime distributions, event queue, statistics, importance sampling |
//! | [`storage`] | `availsim-storage` | RAID geometry, array state machine, failure models, traces, volumes, fleet arithmetic |
//! | [`hra`] | `availsim-hra` | Human reliability: hep, published bands, HEART, THERP, recovery dynamics |
//! | [`core`] | `availsim-core` | The paper's models and analyses (Markov + MC, Figs. 4–7, headline tables) |
//! | [`exp`] | `availsim-exp` | Experiment campaigns: spec files, grid planning, the parallel deterministic batch runner, reports |
//! | [`serve`] | `availsim-serve` | The availability service: HTTP/1.1 daemon, result cache, admission control, deadlines, graceful drain |
//! | [`bench`] | `availsim-bench` | Shared bench/metrics plumbing: workload scaling, the streaming JSON snapshot writer |
//!
//! # Quickstart
//!
//! ```
//! use availsim::core::markov::Raid5Conventional;
//! use availsim::core::ModelParams;
//! use availsim::hra::Hep;
//!
//! # fn main() -> Result<(), availsim::core::CoreError> {
//! let params = ModelParams::raid5_3plus1(1e-6, Hep::new(0.001)?)?;
//! let solved = Raid5Conventional::new(params)?.solve()?;
//! println!("availability: {:.3} nines", solved.nines());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use availsim_bench as bench;
pub use availsim_core as core;
pub use availsim_ctmc as ctmc;
pub use availsim_exp as exp;
pub use availsim_hra as hra;
pub use availsim_serve as serve;
pub use availsim_sim as sim;
pub use availsim_storage as storage;
