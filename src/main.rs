//! `availsim` — command-line front end for the availability models.
//!
//! ```text
//! availsim solve    --lambda 1e-6 --hep 0.01 [--raid r5-3] [--policy failover]
//! availsim sweep    --hep 0.01 [--from 5e-7] [--to 5.5e-6] [--points 11]
//! availsim compare  [--lambda 1e-5] [--capacity 21]
//! availsim validate [--lambda 1e-3] [--hep 0.01] [--iterations 4000]
//! availsim fleet    [--arrays N] [--raid r5-3] [--lambda F] [--hep F] [--iterations N]
//!                   [--failover-capacity N|inf] [--failover-policy queue|loss]
//! availsim batch    <spec-file> [--workers N] [--out-dir DIR] [--dry-run] [--keep-going]
//! availsim serve    [--port N] [--workers N] [--queue-capacity N]
//!                   [--default-deadline-ms N] [--drain-ms N] [--cache-capacity N]
//! ```

use availsim::bench::snapshot::JsonSnapshot;
use availsim::core::markov::{GenericKofN, Raid5Conventional, Raid5FailOver};
use availsim::core::mc::{
    ConventionalMc, DomainFailures, FleetCoupling, FleetMc, McConfig, McVariance, DEGRADED_BINS,
};
use availsim::core::volume::compare_equal_capacity;
use availsim::core::{nines, ModelParams};
use availsim::exp::spec::{MetricsFormat, Scenario, TelemetrySettings};
use availsim::exp::{plan, report, run};
use availsim::hra::{DependenceLevel, Hep};
use availsim::sim::telemetry::{
    percentile_u64, write_counters, CounterSnapshot, PhaseSpans, PrometheusWriter,
};
use availsim::storage::{FailoverPolicy, FleetFailover, FleetSpec, RaidGeometry, ScrubbingModel};
use std::collections::HashMap;
use std::error::Error;
use std::path::Path;
use std::process::ExitCode;
use std::time::Instant;

/// Flags that take no value; their presence means `true`.
const BOOLEAN_FLAGS: &[&str] = &["dry-run", "progress", "keep-going"];

/// Parsed command line: `--key value` / `--key=value` flags plus bare
/// positional arguments (only the `batch` subcommand accepts one).
struct ParsedArgs {
    flags: HashMap<String, String>,
    positionals: Vec<String>,
}

fn parse_flags(args: &[String]) -> Result<ParsedArgs, String> {
    let mut flags = HashMap::new();
    let mut positionals = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let Some(rest) = args[i].strip_prefix("--") else {
            positionals.push(args[i].clone());
            i += 1;
            continue;
        };
        let (key, value) = if let Some((key, value)) = rest.split_once('=') {
            if key.is_empty() {
                return Err(format!("missing flag name in `{}`", args[i]));
            }
            (key.to_string(), value.to_string())
        } else if BOOLEAN_FLAGS.contains(&rest) {
            (rest.to_string(), "true".to_string())
        } else {
            let value = args
                .get(i + 1)
                .filter(|v| !v.starts_with("--"))
                .ok_or_else(|| format!("--{rest} needs a value"))?;
            i += 1;
            (rest.to_string(), value.clone())
        };
        if flags.insert(key.clone(), value).is_some() {
            return Err(format!("duplicate flag --{key}"));
        }
        i += 1;
    }
    Ok(ParsedArgs { flags, positionals })
}

/// Rejects flags a subcommand does not understand, so typos fail loudly
/// instead of silently falling back to defaults.
fn check_known(flags: &HashMap<String, String>, known: &[&str]) -> Result<(), String> {
    let mut unknown: Vec<&str> = flags
        .keys()
        .filter(|k| !known.contains(&k.as_str()))
        .map(String::as_str)
        .collect();
    unknown.sort_unstable();
    match unknown.first() {
        Some(k) => Err(format!("unknown flag --{k}")),
        None => Ok(()),
    }
}

/// Most subcommands take flags only; reject stray positionals with the
/// pre-existing error shape, and unknown flags with a clear error.
fn flags_only<'a>(
    parsed: &'a ParsedArgs,
    known: &[&str],
) -> Result<&'a HashMap<String, String>, String> {
    if let Some(p) = parsed.positionals.first() {
        return Err(format!("expected --flag, got `{p}`"));
    }
    check_known(&parsed.flags, known)?;
    Ok(&parsed.flags)
}

fn flag<T: std::str::FromStr>(
    flags: &HashMap<String, String>,
    key: &str,
    default: T,
) -> Result<T, String> {
    match flags.get(key) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("invalid value `{v}` for --{key}")),
    }
}

/// A flag with no default: absent means `None`.
fn opt_flag<T: std::str::FromStr>(
    flags: &HashMap<String, String>,
    key: &str,
) -> Result<Option<T>, String> {
    flags
        .get(key)
        .map(|v| {
            v.parse()
                .map_err(|_| format!("invalid value `{v}` for --{key}"))
        })
        .transpose()
}

/// The CLI's geometry grammar is the campaign spec's grammar (`r1`,
/// `r5-K`, `r6-K`) — one parser, shared with the exp subsystem.
fn geometry(name: &str) -> Result<RaidGeometry, String> {
    availsim::exp::spec::parse_geometry_label(name)
}

fn cmd_solve(flags: &HashMap<String, String>) -> Result<(), Box<dyn Error>> {
    let lambda: f64 = flag(flags, "lambda", 1e-6)?;
    let hep = Hep::new(flag(flags, "hep", 0.0)?)?;
    let geom = geometry(&flag(flags, "raid", "r5-3".to_string())?)?;
    let policy: String = flag(flags, "policy", "conventional".to_string())?;
    let params = ModelParams::paper_defaults(geom, lambda, hep)?;

    let (u, mttdl) = match policy.as_str() {
        "conventional" if geom.fault_tolerance() == 1 => {
            let m = Raid5Conventional::new(params)?;
            (m.solve()?.unavailability(), m.mttdl_hours()?)
        }
        "conventional" => {
            let m = GenericKofN::new(params)?;
            (m.solve()?.unavailability(), m.mttdl_hours()?)
        }
        "failover" => {
            let m = Raid5FailOver::new(params)?;
            (m.solve()?.unavailability(), m.mttdl_hours()?)
        }
        other => return Err(format!("unknown policy `{other}`").into()),
    };
    println!(
        "{} λ={lambda:.3e} hep={} policy={policy}",
        geom.label(),
        hep.value()
    );
    println!("  unavailability : {u:.6e}");
    println!(
        "  availability   : {:.4} nines",
        nines::nines_from_unavailability(u)
    );
    println!(
        "  downtime       : {:.4} min/yr",
        nines::downtime_minutes_per_year(u)
    );
    println!(
        "  MTTDL          : {:.0} h ({:.1} yr)",
        mttdl,
        mttdl / 8766.0
    );
    Ok(())
}

fn cmd_sweep(flags: &HashMap<String, String>) -> Result<(), Box<dyn Error>> {
    let hep = Hep::new(flag(flags, "hep", 0.01)?)?;
    let from: f64 = flag(flags, "from", 5e-7)?;
    let to: f64 = flag(flags, "to", 5.5e-6)?;
    let points: usize = flag(flags, "points", 11)?;
    if !(from > 0.0 && to > from && points >= 2) {
        return Err("need 0 < from < to and points >= 2".into());
    }
    println!(
        "{:>12} {:>12} {:>10} {:>10}",
        "lambda", "U(hep)", "nines", "vs hep=0"
    );
    let step = (to - from) / (points - 1) as f64;
    for i in 0..points {
        let lam = from + i as f64 * step;
        let params = ModelParams::raid5_3plus1(lam, hep)?;
        let u = Raid5Conventional::new(params)?.solve()?.unavailability();
        let u0 = Raid5Conventional::new(params.with_hep(Hep::ZERO))?
            .solve()?
            .unavailability();
        println!(
            "{:>12.4e} {:>12.4e} {:>10.3} {:>9.1}x",
            lam,
            u,
            nines::nines_from_unavailability(u),
            u / u0
        );
    }
    Ok(())
}

fn cmd_compare(flags: &HashMap<String, String>) -> Result<(), Box<dyn Error>> {
    let lambda: f64 = flag(flags, "lambda", 1e-5)?;
    let capacity: u64 = flag(flags, "capacity", 21)?;
    println!(
        "{:<12} {:>7} {:>6} {:>9} {:>11} {:>10}",
        "config", "arrays", "disks", "hep=0", "hep=0.001", "hep=0.01"
    );
    let base = compare_equal_capacity(capacity, lambda, Hep::ZERO)?;
    for (i, row) in base.iter().enumerate() {
        let mut cells = vec![row.nines()];
        for h in [0.001, 0.01] {
            cells.push(compare_equal_capacity(capacity, lambda, Hep::new(h)?)?[i].nines());
        }
        println!(
            "{:<12} {:>7} {:>6} {:>9.3} {:>11.3} {:>10.3}",
            row.label, row.arrays, row.total_disks, cells[0], cells[1], cells[2]
        );
    }
    Ok(())
}

fn cmd_validate(flags: &HashMap<String, String>) -> Result<(), Box<dyn Error>> {
    let lambda: f64 = flag(flags, "lambda", 1e-3)?;
    let hep = Hep::new(flag(flags, "hep", 0.01)?)?;
    let iterations: u64 = flag(flags, "iterations", 4_000)?;
    let threads: usize = flag(flags, "threads", 0)?;
    let tele = parse_telemetry_flags(flags)?;
    let lse = parse_lse_flags(flags)?;
    let mut params = ModelParams::raid5_3plus1(lambda, hep)?;
    if let Some(scrub) = lse {
        // The Fig. 2 exact chain splits the rebuild completion by the same
        // LSE probability the MC engines draw, so the cross-check below
        // covers the data-loss tier too.
        params = params.with_scrubbing(scrub);
    }
    let markov = Raid5Conventional::new(params)?.solve()?;
    let variance = parse_variance_flags(flags)?;
    let mut phases = PhaseSpans::new();
    let started = Instant::now();
    let est = ConventionalMc::new(params)?.run(&McConfig {
        iterations,
        horizon_hours: 87_600.0,
        seed: flag(flags, "seed", 42u64)?,
        confidence: 0.99,
        threads,
        variance,
        telemetry: tele.enabled(),
    })?;
    phases.record("run", started.elapsed().as_micros() as u64);
    println!("markov availability : {:.9}", markov.availability());
    println!("mc availability     : {}", est.availability);
    if !matches!(variance, McVariance::Naive) {
        println!(
            "rare-event mode     : {variance} (ESS {:.0} of {}, max weight {:.3e})",
            est.effective_sample_size, est.iterations, est.max_weight
        );
    }
    println!(
        "verdict             : {}",
        if est.is_consistent_with(markov.availability()) {
            "consistent (Markov inside the 99% CI)"
        } else {
            "INCONSISTENT — investigate"
        }
    );
    if lse.is_some() {
        println!("p(data loss)        : {}", est.p_data_loss);
        println!(
            "nomdl               : {:.4e} events/TB-mission",
            est.nomdl_per_tb
        );
        match est.mean_time_to_first_loss_hours {
            Some(t) => println!("mean 1st loss       : {t:.0} h"),
            None => println!("mean 1st loss       : none observed"),
        }
    }
    write_metrics(
        &tele,
        &MetricsReport {
            command: "validate",
            counters: &est.counters,
            threads: threads as u64,
            phases: &phases,
            cell_micros: None,
            utilization: None,
        },
    )?;
    Ok(())
}

fn cmd_fleet(flags: &HashMap<String, String>) -> Result<(), Box<dyn Error>> {
    let arrays: u32 = flag(flags, "arrays", 100u32)?;
    let lambda: f64 = flag(flags, "lambda", 1e-6)?;
    let hep = Hep::new(flag(flags, "hep", 0.01)?)?;
    let geom = geometry(&flag(flags, "raid", "r5-3".to_string())?)?;
    let iterations: u64 = flag(flags, "iterations", 500)?;
    let horizon: f64 = flag(flags, "horizon", 87_600.0)?;
    let seed: u64 = flag(flags, "seed", 42u64)?;
    let threads: usize = flag(flags, "threads", 0)?;
    let tele = parse_telemetry_flags(flags)?;
    let lse = parse_lse_flags(flags)?;
    let repairmen: Option<u32> = opt_flag(flags, "repairmen")?;
    let dependence = match flags.get("dependence") {
        None => DependenceLevel::Zero,
        Some(v) => DependenceLevel::parse(v).ok_or_else(|| {
            format!("unknown dependence `{v}` (use zero, low, moderate, high, complete)")
        })?,
    };
    let domains = match (
        opt_flag::<u32>(flags, "domain-arrays")?,
        opt_flag::<f64>(flags, "domain-rate")?,
    ) {
        (None, None) => None,
        (Some(domain_arrays), Some(rate)) => Some(DomainFailures {
            domain_arrays,
            rate,
        }),
        _ => return Err("--domain-arrays and --domain-rate must be set together".into()),
    };
    let failover = match flags.get("failover-capacity") {
        None => {
            for k in ["failover-policy", "failback-rate"] {
                if flags.contains_key(k) {
                    return Err(format!("--{k} requires --failover-capacity").into());
                }
            }
            None
        }
        Some(v) => {
            let capacity = if v == "inf" {
                None
            } else {
                Some(v.parse::<u32>().map_err(|_| {
                    format!("invalid value `{v}` for --failover-capacity (use a count or `inf`)")
                })?)
            };
            let policy = match flags.get("failover-policy") {
                None => FailoverPolicy::default(),
                Some(p) => FailoverPolicy::parse(p)
                    .ok_or_else(|| format!("unknown failover policy `{p}` (use queue, loss)"))?,
            };
            Some((capacity, policy, opt_flag::<f64>(flags, "failback-rate")?))
        }
    };

    let mut spec = FleetSpec::new(arrays, geom)?;
    if let Some(crews) = repairmen {
        spec = spec.with_repairmen(crews)?;
    }
    let mut params = ModelParams::paper_defaults(geom, lambda, hep)?;
    if let Some(scrub) = lse {
        params = params.with_scrubbing(scrub);
    }
    if let Some((capacity, policy, rate)) = failover {
        // The fail-back default is the disk-change rate: switching back to
        // the primary is an operator-driven maintenance action.
        spec = spec.with_failover(FleetFailover {
            capacity,
            policy,
            failback_rate: rate.unwrap_or(params.disk_change_rate),
        })?;
    }
    let dc = spec.datacenter(lambda, hep.value())?;
    let mut phases = PhaseSpans::new();
    let started = Instant::now();
    let est = FleetMc::new(spec, params)?
        .with_coupling(FleetCoupling {
            dependence,
            domains,
        })?
        .run(&McConfig {
            iterations,
            horizon_hours: horizon,
            seed,
            confidence: 0.99,
            threads,
            variance: McVariance::Naive,
            telemetry: tele.enabled(),
        })?;
    phases.record("run", started.elapsed().as_micros() as u64);

    println!(
        "fleet {arrays} x {} ({} disks) λ={lambda:.3e} hep={} — {iterations} missions of {horizon} h",
        geom.label(),
        spec.total_disks(),
        hep.value()
    );
    println!(
        "  disk failures          : {:.3}/day (fleet MTBF {:.1} h)",
        dc.expected_failures_per_day(),
        dc.mean_time_between_failures_hours()
    );
    println!(
        "  human errors           : {:.3}/year (given hep per service action)",
        dc.expected_human_errors_per_year()
    );
    println!(
        "  repair crews           : {}",
        match spec.repairmen() {
            Some(c) => c.to_string(),
            None => "unlimited".to_string(),
        }
    );
    if dependence != DependenceLevel::Zero {
        println!("  operator dependence    : {dependence} (THERP)");
    }
    if let Some(d) = domains {
        println!(
            "  failure domains        : shelves of {} struck at {:.3e}/h",
            d.domain_arrays, d.rate
        );
    }
    if let Some(s) = lse {
        println!(
            "  lse scrubbing          : rate {:.3e}/disk-h, scrub every {} h",
            s.lse_rate, s.scrub_interval_hours
        );
    }
    if let Some(f) = spec.failover() {
        match f.capacity {
            None => println!("  DR failover            : unlimited slots (ideal site)"),
            Some(k) => println!(
                "  DR failover            : {k} slots ({} policy), fail-back {:.3e}/h",
                f.policy, f.failback_rate
            ),
        }
    }
    println!("  per-array availability : {}", est.availability);
    println!(
        "  per-array downtime     : {:.4} h/yr ({:.4} nines)",
        est.annual_array_downtime_hours,
        nines::nines_from_unavailability(est.array_unavailability())
    );
    println!(
        "  any-array-down         : {:.4} h/yr (fleet availability {:.9})",
        est.annual_any_down_hours, est.fleet_availability
    );
    if spec.failover().is_some() {
        println!("  DR-credited avail      : {}", est.credited_availability);
        println!(
            "  DR-credited fleet      : {:.9} (uncovered unavailability {:.4e})",
            est.credited_fleet_availability,
            est.credited_array_unavailability()
        );
        println!(
            "  DR site                : mean occupancy {:.4}, queue wait {:.4} array-h/mission",
            est.mean_dr_occupancy(),
            est.mean_dr_queue_wait_hours()
        );
        println!(
            "  DR events              : {} failovers, {} failbacks, {} queue waits, {} rejections",
            est.failovers, est.failbacks, est.dr_queue_waits, est.dr_rejections
        );
    }
    if lse.is_some() {
        println!("  p(data loss)           : {}", est.p_data_loss);
        println!(
            "  nomdl                  : {:.4e} events/TB-mission",
            est.nomdl_per_tb
        );
        match est.mean_time_to_first_loss_hours {
            Some(t) => println!("  mean time to 1st loss  : {t:.0} h"),
            None => println!("  mean time to 1st loss  : none observed"),
        }
    }
    println!(
        "  simultaneous degraded  : mean {:.4}, peak {}",
        est.mean_degraded(),
        est.max_degraded
    );
    // The head of the degraded distribution: every bin until the shares
    // become negligible (always at least the 0/1 bins).
    print!("  degraded time share    :");
    let mut printed = 0;
    for (k, &share) in est.degraded_time_share.iter().enumerate() {
        if k > 1 && share < 1e-6 {
            break;
        }
        let label = if k == DEGRADED_BINS - 1 {
            format!("{k}+")
        } else {
            k.to_string()
        };
        print!(" {label}:{:.4}%", share * 100.0);
        printed = k + 1;
    }
    // The last bin absorbs every k >= 32; surface it even when the
    // interior bins are empty (e.g. shelf-wide domain outages).
    let tail = est.degraded_time_share[DEGRADED_BINS - 1];
    if printed < DEGRADED_BINS && tail >= 1e-6 {
        print!(" .. {}+:{:.4}%", DEGRADED_BINS - 1, tail * 100.0);
    }
    println!();
    write_metrics(
        &tele,
        &MetricsReport {
            command: "fleet",
            counters: &est.counters,
            threads: threads as u64,
            phases: &phases,
            cell_micros: None,
            utilization: None,
        },
    )?;
    Ok(())
}

/// Parses `--variance naive|failure-biasing|splitting` plus its optional
/// tuning flags (`--bias`, `--levels`, `--effort`) into a [`McVariance`] —
/// the same vocabulary as the campaign spec's `[mc] variance` key.
fn parse_variance_flags(flags: &HashMap<String, String>) -> Result<McVariance, Box<dyn Error>> {
    let name: String = flag(flags, "variance", "naive".to_string())?;
    let variance = match name.as_str() {
        "naive" => {
            for (k, scheme) in [
                ("bias", "failure-biasing"),
                ("levels", "splitting"),
                ("effort", "splitting"),
            ] {
                if flags.contains_key(k) {
                    return Err(format!("--{k} requires --variance {scheme}").into());
                }
            }
            McVariance::Naive
        }
        "failure-biasing" => {
            for k in ["levels", "effort"] {
                if flags.contains_key(k) {
                    return Err(format!("--{k} requires --variance splitting").into());
                }
            }
            McVariance::FailureBiasing {
                bias: flag(flags, "bias", McVariance::DEFAULT_BIAS)?,
            }
        }
        "splitting" => {
            if flags.contains_key("bias") {
                return Err("--bias requires --variance failure-biasing".into());
            }
            McVariance::Splitting {
                levels: flag(flags, "levels", McVariance::DEFAULT_LEVELS)?,
                effort: flag(flags, "effort", McVariance::DEFAULT_EFFORT)?,
            }
        }
        other => {
            return Err(format!(
                "unknown variance `{other}` (use naive, failure-biasing, splitting)"
            )
            .into())
        }
    };
    Ok(variance)
}

/// Parses the `--lse-rate F --scrub-interval H` pair into an optional
/// scrubbing model — the same vocabulary (and pair-together rule) as the
/// campaign spec's `[lse]` section.
fn parse_lse_flags(
    flags: &HashMap<String, String>,
) -> Result<Option<ScrubbingModel>, Box<dyn Error>> {
    match (
        opt_flag::<f64>(flags, "lse-rate")?,
        opt_flag::<f64>(flags, "scrub-interval")?,
    ) {
        (None, None) => Ok(None),
        (Some(rate), Some(hours)) => Ok(Some(ScrubbingModel::new(rate, hours)?)),
        _ => Err("--lse-rate and --scrub-interval must be set together".into()),
    }
}

/// Parses `--metrics <path>`, `--metrics-format json|prom`, and
/// `--progress` into the spec layer's [`TelemetrySettings`] — the same
/// vocabulary as the campaign spec's `[telemetry]` section.
fn parse_telemetry_flags(
    flags: &HashMap<String, String>,
) -> Result<TelemetrySettings, Box<dyn Error>> {
    let metrics = flags.get("metrics").cloned();
    let format = match flags.get("metrics-format") {
        None => MetricsFormat::default(),
        Some(v) => {
            if metrics.is_none() {
                return Err("--metrics-format requires --metrics <path>".into());
            }
            MetricsFormat::parse(v).ok_or_else(|| {
                format!("unknown format `{v}` for --metrics-format (use json, prom)")
            })?
        }
    };
    Ok(TelemetrySettings {
        metrics,
        format,
        progress: flag(flags, "progress", false)?,
    })
}

/// Everything a `--metrics` snapshot reports. The counter snapshot is the
/// deterministic section (byte-identical at any worker count); the rest
/// is wall-clock and goes into a clearly-marked nondeterministic section.
struct MetricsReport<'a> {
    command: &'static str,
    counters: &'a CounterSnapshot,
    /// Requested worker threads (0 = auto). Nondeterministic section: the
    /// whole point of the block merge is that this does not change bytes.
    threads: u64,
    phases: &'a PhaseSpans,
    /// Per-cell wall times, ascending, microseconds (batch only).
    cell_micros: Option<&'a [u64]>,
    /// Worker utilization in [0, 1] (batch only).
    utilization: Option<f64>,
}

/// Renders a metrics snapshot in the requested exposition format.
fn render_metrics(r: &MetricsReport<'_>, format: MetricsFormat) -> String {
    match format {
        MetricsFormat::Json => {
            let mut w = JsonSnapshot::root();
            w.str_field("tool", "availsim");
            w.str_field("command", r.command);
            w.begin_object("deterministic");
            for (c, v) in r.counters.iter() {
                w.u64_field(c.name(), v);
            }
            w.end_object();
            w.begin_object("nondeterministic");
            w.str_field("note", "wall-clock measurements; vary run to run");
            w.u64_field("threads_requested", r.threads);
            if !r.phases.is_empty() {
                w.begin_object("phase_micros");
                for (phase, micros) in r.phases.iter() {
                    w.u64_field(phase, micros);
                }
                w.end_object();
            }
            if let Some(times) = r.cell_micros {
                w.begin_object("cell_micros");
                for (key, p) in [("p50", 50.0), ("p90", 90.0), ("p99", 99.0), ("max", 100.0)] {
                    w.u64_field(key, percentile_u64(times, p));
                }
                w.end_object();
            }
            if let Some(u) = r.utilization {
                w.f64_field("worker_utilization", u);
            }
            w.end_object();
            w.finish()
        }
        MetricsFormat::Prometheus => {
            let mut w = PrometheusWriter::new();
            w.comment(&format!(
                "availsim {} metrics — deterministic section (byte-identical at any worker count)",
                r.command
            ));
            write_counters(&mut w, r.counters);
            w.comment("nondeterministic section: wall-clock measurements, vary run to run");
            w.metric_u64(
                "availsim_threads_requested",
                "Requested worker threads (0 = auto)",
                "gauge",
                r.threads,
            );
            for (phase, micros) in r.phases.iter() {
                w.metric_u64(
                    &format!("availsim_phase_{phase}_micros"),
                    "Phase wall time, microseconds",
                    "gauge",
                    micros,
                );
            }
            if let Some(times) = r.cell_micros {
                for (key, p) in [("p50", 50.0), ("p90", 90.0), ("p99", 99.0), ("max", 100.0)] {
                    w.metric_u64(
                        &format!("availsim_cell_micros_{key}"),
                        "Per-cell wall time percentile, microseconds",
                        "gauge",
                        percentile_u64(times, p),
                    );
                }
            }
            if let Some(u) = r.utilization {
                w.gauge_f64(
                    "availsim_worker_utilization",
                    "Fraction of the worker pool busy inside cells",
                    u,
                );
            }
            w.finish()
        }
    }
}

/// Writes the metrics snapshot when `--metrics` (or the spec's
/// `[telemetry] metrics`) names a destination.
fn write_metrics(tele: &TelemetrySettings, r: &MetricsReport<'_>) -> Result<(), Box<dyn Error>> {
    let Some(path) = &tele.metrics else {
        return Ok(());
    };
    let text = render_metrics(r, tele.format);
    std::fs::write(path, text).map_err(|e| format!("cannot write metrics `{path}`: {e}"))?;
    eprintln!("wrote metrics {path}");
    Ok(())
}

fn cmd_batch(parsed: &ParsedArgs) -> Result<(), Box<dyn Error>> {
    let spec_path = parsed
        .positionals
        .first()
        .ok_or("batch needs a spec file: availsim batch <spec-file>")?;
    if let Some(extra) = parsed.positionals.get(1) {
        return Err(format!("unexpected extra argument `{extra}`").into());
    }
    let flags = &parsed.flags;
    check_known(
        flags,
        &[
            "workers",
            "out-dir",
            "dry-run",
            "keep-going",
            "metrics",
            "metrics-format",
            "progress",
        ],
    )?;
    let workers: usize = flag(flags, "workers", 0)?;
    let keep_going: bool = flag(flags, "keep-going", false)?;
    let dry_run: bool = flag(flags, "dry-run", false)?;
    let out_dir: String = flag(flags, "out-dir", String::new())?;
    let cli_tele = parse_telemetry_flags(flags)?;

    let mut phases = PhaseSpans::new();
    let plan_started = Instant::now();
    let text = std::fs::read_to_string(spec_path)
        .map_err(|e| format!("cannot read `{spec_path}`: {e}"))?;
    let mut scenario = Scenario::parse(&text)?;
    // CLI telemetry flags override the spec's `[telemetry]` section.
    if cli_tele.metrics.is_some() {
        scenario.telemetry.metrics = cli_tele.metrics;
        scenario.telemetry.format = cli_tele.format;
    }
    scenario.telemetry.progress |= cli_tele.progress;
    let plan = plan::expand(&scenario)?;
    phases.record("plan", plan_started.elapsed().as_micros() as u64);

    if dry_run {
        print!("{}", plan.describe());
        return Ok(());
    }

    // Progress streams to stderr: stdout stays byte-deterministic for the
    // CSV/JSON report blocks.
    let sink = |line: &str| eprintln!("{line}");
    let progress: Option<&run::ProgressSink<'_>> = if scenario.telemetry.progress {
        Some(&sink)
    } else {
        None
    };
    let run_started = Instant::now();
    let result = run::run_with_progress(
        &plan,
        &run::RunConfig {
            workers,
            keep_going,
        },
        progress,
    )?;
    phases.record("run", run_started.elapsed().as_micros() as u64);

    let report_started = Instant::now();
    print!("{}", report::summary(&result));
    let csv = report::to_csv(&result);
    let json = report::to_json(&result);
    if out_dir.is_empty() {
        println!("\n--- csv ---");
        print!("{csv}");
        println!("--- json ---");
        print!("{json}");
    } else {
        let dir = Path::new(&out_dir);
        std::fs::create_dir_all(dir)?;
        let csv_path = dir.join(format!("{}.csv", scenario.name));
        let json_path = dir.join(format!("{}.json", scenario.name));
        std::fs::write(&csv_path, csv)?;
        std::fs::write(&json_path, json)?;
        println!("\nwrote {}", csv_path.display());
        println!("wrote {}", json_path.display());
    }
    phases.record("report", report_started.elapsed().as_micros() as u64);

    let mut cell_micros: Vec<u64> = result.cells.iter().map(|c| c.elapsed_micros).collect();
    cell_micros.sort_unstable();
    write_metrics(
        &scenario.telemetry,
        &MetricsReport {
            command: "batch",
            counters: &result.counters,
            threads: workers as u64,
            phases: &phases,
            cell_micros: Some(&cell_micros),
            utilization: Some(result.worker_utilization()),
        },
    )?;
    Ok(())
}

fn cmd_serve(flags: &HashMap<String, String>) -> Result<(), Box<dyn Error>> {
    let config = availsim::serve::ServeConfig {
        port: flag(flags, "port", 0u16)?,
        workers: flag(flags, "workers", 0usize)?,
        queue_capacity: flag(flags, "queue-capacity", 64usize)?,
        default_deadline_ms: flag(flags, "default-deadline-ms", 0u64)?,
        drain_ms: flag(flags, "drain-ms", 2_000u64)?,
        cache_capacity: flag(flags, "cache-capacity", 1_024usize)?,
        ..availsim::serve::ServeConfig::default()
    };
    if config.queue_capacity == 0 {
        return Err("--queue-capacity must be at least 1".into());
    }
    // Install the handlers before binding so a SIGTERM racing startup
    // still drains instead of killing the process mid-accept.
    availsim::serve::signal::install_handlers();
    let server = availsim::serve::Server::bind(config)?;
    println!("listening on http://{}", server.addr());
    use std::io::Write as _;
    std::io::stdout().flush()?;
    let drained_clean = server.run(availsim::serve::signal::stop_flag())?;
    eprintln!(
        "drained {}",
        if drained_clean {
            "clean"
        } else {
            "with cooperative cancellation"
        }
    );
    Ok(())
}

fn usage() -> &'static str {
    "availsim — human-error-aware storage availability (DATE'17 reproduction)

USAGE:
  availsim solve    [--lambda F] [--hep F] [--raid r1|r5-K|r6-K] [--policy conventional|failover]
  availsim sweep    [--hep F] [--from F] [--to F] [--points N]
  availsim compare  [--lambda F] [--capacity N]
  availsim validate [--lambda F] [--hep F] [--iterations N] [--seed N] [--threads N]
                    [--variance naive|failure-biasing|splitting]
                    [--bias F] [--levels N] [--effort N]
                    [--lse-rate F --scrub-interval H]
                    [--metrics PATH] [--metrics-format json|prom]
  availsim fleet    [--arrays N] [--raid r1|r5-K|r6-K] [--lambda F] [--hep F]
                    [--iterations N] [--horizon F] [--seed N] [--threads N]
                    [--repairmen N] [--dependence zero|low|moderate|high|complete]
                    [--domain-arrays N --domain-rate F]
                    [--failover-capacity N|inf] [--failover-policy queue|loss]
                    [--failback-rate F]
                    [--lse-rate F --scrub-interval H]
                    [--metrics PATH] [--metrics-format json|prom]
  availsim batch    <spec-file> [--workers N] [--out-dir DIR] [--dry-run] [--keep-going]
                    [--metrics PATH] [--metrics-format json|prom] [--progress]
  availsim serve    [--port N] [--workers N] [--queue-capacity N]
                    [--default-deadline-ms N] [--drain-ms N] [--cache-capacity N]
  availsim --version | -V

Flags accept both `--flag value` and `--flag=value`; duplicates are errors.
`--threads 0` and `--workers 0` (the defaults) mean **auto**: use the
machine's available parallelism. Any other value pins the pool size; the
estimates are byte-identical either way (the block merge is
thread-count-invariant), so `0` is always safe. The campaign spec spells
it `[mc] threads = 0` with the same meaning.
`batch` runs an experiment campaign from a spec file (see examples/specs/).
`--metrics PATH` enables the deterministic telemetry layer and writes an
engine-counter snapshot (`--metrics-format prom` for Prometheus text
exposition); the counters are byte-identical at any worker count, with
wall-clock figures segregated into a nondeterministic section. `batch
--progress` streams `cell k/N done` lines to stderr as cells finish; both
can also come from the spec's [telemetry] section.
`validate --variance failure-biasing` turns on rare-event importance
sampling, so the cross-check works at paper-grade λ where naive MC would
observe no failures at all.
`fleet` simulates N arrays as one mission on a shared event queue and
reports fleet-level availability, annual downtime, and the distribution of
simultaneously degraded arrays (tail bin 32+ absorbs every count >= 32).
Couplings: `--repairmen` caps the shared repair-crew pool (FIFO queue),
`--dependence` escalates the per-incident HEP with operator workload
(THERP), and `--domain-arrays`/`--domain-rate` add shelf-wide strikes.
`--failover-capacity` adds a shared disaster-recovery site with that many
slots (`inf` = ideal site): arrays that leave service fail over and serve
degraded from DR; beyond capacity they queue FIFO (`--failover-policy
loss` rejects instead, Erlang-loss style). `--failback-rate` tunes the
switch-back rate (default: the disk-change rate). `batch --keep-going`
continues past failing cells and marks them in status/error report
columns instead of aborting the campaign.
`serve` runs an overload-safe HTTP availability service on 127.0.0.1
(`--port 0` picks an ephemeral port): POST /v1/query answers one
estimate per request, exact CTMC queries inline, Monte-Carlo queries
through a bounded queue with admission control (full queue answers 503 +
Retry-After), per-request deadlines (expired answers a fixed 408), a
canonical-key result cache (replays are byte-identical), GET /health and
GET /metrics, and graceful drain on SIGTERM within `--drain-ms`.
`--lse-rate F --scrub-interval H` (a pair) attach the latent-sector-error
scrubbing model: every rebuild completion risks reading an unreadable
sector, routing the mission to data loss. `validate` and `fleet` then
report p(data loss), NOMDL (loss events per usable-capacity unit and
mission), and the mean time to first loss; a campaign spec's [lse]
section does the same for `batch` and adds the p_data_loss/nomdl_per_tb
report columns.
"
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprint!("{}", usage());
        return ExitCode::FAILURE;
    };
    let parsed = match parse_flags(&args[1..]) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}\n\n{}", usage());
            return ExitCode::FAILURE;
        }
    };
    let result = match cmd.as_str() {
        "solve" => flags_only(&parsed, &["lambda", "hep", "raid", "policy"])
            .map_err(Into::into)
            .and_then(cmd_solve),
        "sweep" => flags_only(&parsed, &["hep", "from", "to", "points"])
            .map_err(Into::into)
            .and_then(cmd_sweep),
        "compare" => flags_only(&parsed, &["lambda", "capacity"])
            .map_err(Into::into)
            .and_then(cmd_compare),
        "validate" => flags_only(
            &parsed,
            &[
                "lambda",
                "hep",
                "iterations",
                "seed",
                "threads",
                "variance",
                "bias",
                "levels",
                "effort",
                "lse-rate",
                "scrub-interval",
                "metrics",
                "metrics-format",
            ],
        )
        .map_err(Into::into)
        .and_then(cmd_validate),
        "fleet" => flags_only(
            &parsed,
            &[
                "arrays",
                "raid",
                "lambda",
                "hep",
                "iterations",
                "horizon",
                "seed",
                "threads",
                "repairmen",
                "dependence",
                "domain-arrays",
                "domain-rate",
                "failover-capacity",
                "failover-policy",
                "failback-rate",
                "lse-rate",
                "scrub-interval",
                "metrics",
                "metrics-format",
            ],
        )
        .map_err(Into::into)
        .and_then(cmd_fleet),
        "batch" => cmd_batch(&parsed),
        "serve" => flags_only(
            &parsed,
            &[
                "port",
                "workers",
                "queue-capacity",
                "default-deadline-ms",
                "drain-ms",
                "cache-capacity",
            ],
        )
        .map_err(Into::into)
        .and_then(cmd_serve),
        "help" | "--help" | "-h" => {
            print!("{}", usage());
            Ok(())
        }
        "version" | "--version" | "-V" => {
            println!("availsim {}", env!("CARGO_PKG_VERSION"));
            Ok(())
        }
        other => Err(format!("unknown command `{other}`").into()),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
