//! `availsim` — command-line front end for the availability models.
//!
//! ```text
//! availsim solve    --lambda 1e-6 --hep 0.01 [--raid r5-3] [--policy failover]
//! availsim sweep    --hep 0.01 [--from 5e-7] [--to 5.5e-6] [--points 11]
//! availsim compare  [--lambda 1e-5] [--capacity 21]
//! availsim validate [--lambda 1e-3] [--hep 0.01] [--iterations 4000]
//! ```

use availsim::core::markov::{GenericKofN, Raid5Conventional, Raid5FailOver};
use availsim::core::mc::{ConventionalMc, McConfig};
use availsim::core::volume::compare_equal_capacity;
use availsim::core::{nines, ModelParams};
use availsim::hra::Hep;
use availsim::storage::RaidGeometry;
use std::collections::HashMap;
use std::error::Error;
use std::process::ExitCode;

fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let key = args[i]
            .strip_prefix("--")
            .ok_or_else(|| format!("expected --flag, got `{}`", args[i]))?;
        let value = args
            .get(i + 1)
            .ok_or_else(|| format!("--{key} needs a value"))?;
        flags.insert(key.to_string(), value.clone());
        i += 2;
    }
    Ok(flags)
}

fn flag<T: std::str::FromStr>(
    flags: &HashMap<String, String>,
    key: &str,
    default: T,
) -> Result<T, String> {
    match flags.get(key) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("invalid value `{v}` for --{key}")),
    }
}

fn geometry(name: &str) -> Result<RaidGeometry, String> {
    match name {
        "r1" => Ok(RaidGeometry::raid1_pair()),
        other => {
            let (level, k) = other
                .split_once('-')
                .ok_or_else(|| format!("unknown raid `{other}` (use r1, r5-<k>, r6-<k>)"))?;
            let k: u32 = k
                .parse()
                .map_err(|_| format!("bad disk count in `{other}`"))?;
            match level {
                "r5" => RaidGeometry::raid5(k).map_err(|e| e.to_string()),
                "r6" => RaidGeometry::raid6(k).map_err(|e| e.to_string()),
                _ => Err(format!("unknown raid level `{level}`")),
            }
        }
    }
}

fn cmd_solve(flags: &HashMap<String, String>) -> Result<(), Box<dyn Error>> {
    let lambda: f64 = flag(flags, "lambda", 1e-6)?;
    let hep = Hep::new(flag(flags, "hep", 0.0)?)?;
    let geom = geometry(&flag(flags, "raid", "r5-3".to_string())?)?;
    let policy: String = flag(flags, "policy", "conventional".to_string())?;
    let params = ModelParams::paper_defaults(geom, lambda, hep)?;

    let (u, mttdl) = match policy.as_str() {
        "conventional" if geom.fault_tolerance() == 1 => {
            let m = Raid5Conventional::new(params)?;
            (m.solve()?.unavailability(), m.mttdl_hours()?)
        }
        "conventional" => {
            let m = GenericKofN::new(params)?;
            (m.solve()?.unavailability(), m.mttdl_hours()?)
        }
        "failover" => {
            let m = Raid5FailOver::new(params)?;
            (m.solve()?.unavailability(), m.mttdl_hours()?)
        }
        other => return Err(format!("unknown policy `{other}`").into()),
    };
    println!(
        "{} λ={lambda:.3e} hep={} policy={policy}",
        geom.label(),
        hep.value()
    );
    println!("  unavailability : {u:.6e}");
    println!(
        "  availability   : {:.4} nines",
        nines::nines_from_unavailability(u)
    );
    println!(
        "  downtime       : {:.4} min/yr",
        nines::downtime_minutes_per_year(u)
    );
    println!(
        "  MTTDL          : {:.0} h ({:.1} yr)",
        mttdl,
        mttdl / 8766.0
    );
    Ok(())
}

fn cmd_sweep(flags: &HashMap<String, String>) -> Result<(), Box<dyn Error>> {
    let hep = Hep::new(flag(flags, "hep", 0.01)?)?;
    let from: f64 = flag(flags, "from", 5e-7)?;
    let to: f64 = flag(flags, "to", 5.5e-6)?;
    let points: usize = flag(flags, "points", 11)?;
    if !(from > 0.0 && to > from && points >= 2) {
        return Err("need 0 < from < to and points >= 2".into());
    }
    println!(
        "{:>12} {:>12} {:>10} {:>10}",
        "lambda", "U(hep)", "nines", "vs hep=0"
    );
    let step = (to - from) / (points - 1) as f64;
    for i in 0..points {
        let lam = from + i as f64 * step;
        let params = ModelParams::raid5_3plus1(lam, hep)?;
        let u = Raid5Conventional::new(params)?.solve()?.unavailability();
        let u0 = Raid5Conventional::new(params.with_hep(Hep::ZERO))?
            .solve()?
            .unavailability();
        println!(
            "{:>12.4e} {:>12.4e} {:>10.3} {:>9.1}x",
            lam,
            u,
            nines::nines_from_unavailability(u),
            u / u0
        );
    }
    Ok(())
}

fn cmd_compare(flags: &HashMap<String, String>) -> Result<(), Box<dyn Error>> {
    let lambda: f64 = flag(flags, "lambda", 1e-5)?;
    let capacity: u64 = flag(flags, "capacity", 21)?;
    println!(
        "{:<12} {:>7} {:>6} {:>9} {:>11} {:>10}",
        "config", "arrays", "disks", "hep=0", "hep=0.001", "hep=0.01"
    );
    let base = compare_equal_capacity(capacity, lambda, Hep::ZERO)?;
    for (i, row) in base.iter().enumerate() {
        let mut cells = vec![row.nines()];
        for h in [0.001, 0.01] {
            cells.push(compare_equal_capacity(capacity, lambda, Hep::new(h)?)?[i].nines());
        }
        println!(
            "{:<12} {:>7} {:>6} {:>9.3} {:>11.3} {:>10.3}",
            row.label, row.arrays, row.total_disks, cells[0], cells[1], cells[2]
        );
    }
    Ok(())
}

fn cmd_validate(flags: &HashMap<String, String>) -> Result<(), Box<dyn Error>> {
    let lambda: f64 = flag(flags, "lambda", 1e-3)?;
    let hep = Hep::new(flag(flags, "hep", 0.01)?)?;
    let iterations: u64 = flag(flags, "iterations", 4_000)?;
    let params = ModelParams::raid5_3plus1(lambda, hep)?;
    let markov = Raid5Conventional::new(params)?.solve()?;
    let est = ConventionalMc::new(params)?.run(&McConfig {
        iterations,
        horizon_hours: 87_600.0,
        seed: flag(flags, "seed", 42u64)?,
        confidence: 0.99,
        threads: 0,
    })?;
    println!("markov availability : {:.9}", markov.availability());
    println!("mc availability     : {}", est.availability);
    println!(
        "verdict             : {}",
        if est.is_consistent_with(markov.availability()) {
            "consistent (Markov inside the 99% CI)"
        } else {
            "INCONSISTENT — investigate"
        }
    );
    Ok(())
}

fn usage() -> &'static str {
    "availsim — human-error-aware storage availability (DATE'17 reproduction)

USAGE:
  availsim solve    [--lambda F] [--hep F] [--raid r1|r5-K|r6-K] [--policy conventional|failover]
  availsim sweep    [--hep F] [--from F] [--to F] [--points N]
  availsim compare  [--lambda F] [--capacity N]
  availsim validate [--lambda F] [--hep F] [--iterations N] [--seed N]
"
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprint!("{}", usage());
        return ExitCode::FAILURE;
    };
    let flags = match parse_flags(&args[1..]) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}\n\n{}", usage());
            return ExitCode::FAILURE;
        }
    };
    let result = match cmd.as_str() {
        "solve" => cmd_solve(&flags),
        "sweep" => cmd_sweep(&flags),
        "compare" => cmd_compare(&flags),
        "validate" => cmd_validate(&flags),
        "help" | "--help" | "-h" => {
            print!("{}", usage());
            Ok(())
        }
        other => Err(format!("unknown command `{other}`").into()),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
