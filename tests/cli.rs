//! Integration tests for the `availsim` command-line binary.

use std::process::Command;

fn run(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_availsim"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn solve_prints_the_pinned_point() {
    let (ok, stdout, _) = run(&["solve", "--lambda", "1e-6", "--hep", "0.01"]);
    assert!(ok);
    assert!(stdout.contains("RAID5(3+1)"));
    assert!(
        stdout.contains("4.929"),
        "unavailability mantissa: {stdout}"
    );
    assert!(stdout.contains("6.3072 nines"), "{stdout}");
}

#[test]
fn solve_supports_failover_and_raid6() {
    let (ok, stdout, _) = run(&["solve", "--policy", "failover", "--hep", "0.01"]);
    assert!(ok);
    assert!(stdout.contains("policy=failover"));

    let (ok, stdout, _) = run(&["solve", "--raid", "r6-6", "--lambda", "1e-5"]);
    assert!(ok);
    assert!(stdout.contains("RAID6(6+2)"));
}

#[test]
fn sweep_reports_underestimation_column() {
    let (ok, stdout, _) = run(&["sweep", "--points", "3"]);
    assert!(ok);
    assert!(stdout.contains("vs hep=0"));
    assert!(stdout.lines().count() >= 4);
}

#[test]
fn compare_lists_three_configs() {
    let (ok, stdout, _) = run(&["compare"]);
    assert!(ok);
    for label in ["RAID1(1+1)", "RAID5(3+1)", "RAID5(7+1)"] {
        assert!(stdout.contains(label), "{label} missing:\n{stdout}");
    }
}

#[test]
fn validate_is_consistent_at_high_rates() {
    let (ok, stdout, _) = run(&["validate", "--iterations", "2000"]);
    assert!(ok);
    assert!(stdout.contains("consistent"), "{stdout}");
}

#[test]
fn errors_are_reported_not_panicked() {
    let (ok, _, stderr) = run(&["solve", "--raid", "r9-3"]);
    assert!(!ok);
    assert!(stderr.contains("unknown raid"));

    let (ok, _, stderr) = run(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("unknown command"));

    let (ok, _, stderr) = run(&["solve", "--lambda"]);
    assert!(!ok);
    assert!(stderr.contains("needs a value"));

    let (ok, _, stderr) = run(&[]);
    assert!(!ok);
    assert!(stderr.contains("USAGE"));
}

#[test]
fn help_succeeds() {
    let (ok, stdout, _) = run(&["help"]);
    assert!(ok);
    assert!(stdout.contains("USAGE"));
}

#[test]
fn solve_rejects_bad_flag_values() {
    let (ok, _, stderr) = run(&["solve", "--lambda", "not-a-number"]);
    assert!(!ok);
    assert!(stderr.contains("invalid value"), "{stderr}");

    let (ok, _, stderr) = run(&["solve", "--hep", "1.5"]);
    assert!(!ok, "hep outside [0,1] must fail");
    assert!(stderr.starts_with("error:"), "{stderr}");

    let (ok, _, stderr) = run(&["solve", "--policy", "quantum"]);
    assert!(!ok);
    assert!(stderr.contains("unknown policy"), "{stderr}");

    let (ok, _, stderr) = run(&["solve", "lambda", "1e-6"]);
    assert!(!ok, "positional argument without -- must fail");
    assert!(stderr.contains("expected --flag"), "{stderr}");
}

#[test]
fn solve_supports_raid1_pair() {
    let (ok, stdout, _) = run(&[
        "solve", "--raid", "r1", "--lambda", "1e-5", "--hep", "0.001",
    ]);
    assert!(ok);
    assert!(stdout.contains("RAID1(1+1)"), "{stdout}");
    assert!(stdout.contains("MTTDL"), "{stdout}");
}

#[test]
fn sweep_rejects_inverted_or_degenerate_ranges() {
    let (ok, _, stderr) = run(&["sweep", "--from", "2e-6", "--to", "1e-6"]);
    assert!(!ok);
    assert!(stderr.contains("need 0 < from < to"), "{stderr}");

    let (ok, _, stderr) = run(&["sweep", "--points", "1"]);
    assert!(!ok);
    assert!(stderr.contains("points >= 2"), "{stderr}");
}

#[test]
fn compare_respects_capacity_and_lambda_flags() {
    // 42 = lcm(1, 3, 7): usable capacity must tile every per-array capacity.
    let (ok, stdout, _) = run(&["compare", "--capacity", "42", "--lambda", "2e-5"]);
    assert!(ok);
    assert!(stdout.contains("config"), "{stdout}");
    assert!(stdout.contains("hep=0.01"), "{stdout}");
    assert!(stdout.lines().count() >= 4, "{stdout}");

    // A capacity that tiles no geometry is a reported error, not a panic.
    let (ok, _, stderr) = run(&["compare", "--capacity", "10"]);
    assert!(!ok);
    assert!(stderr.contains("not a multiple"), "{stderr}");
}

#[test]
fn validate_prints_both_estimates_and_honors_seed() {
    let (ok, stdout, _) = run(&["validate", "--iterations", "1500", "--seed", "7"]);
    assert!(ok);
    assert!(stdout.contains("markov availability"), "{stdout}");
    assert!(stdout.contains("mc availability"), "{stdout}");
    assert!(stdout.contains("verdict"), "{stdout}");

    // Same seed must replay the identical Monte-Carlo estimate...
    let (ok, rerun, _) = run(&["validate", "--iterations", "1500", "--seed", "7"]);
    assert!(ok);
    assert_eq!(stdout, rerun, "same seed must be bit-reproducible");

    // ...and a different seed must actually change it.
    let (ok, other, _) = run(&["validate", "--iterations", "1500", "--seed", "8"]);
    assert!(ok);
    let mc_line = |s: &str| {
        s.lines()
            .find(|l| l.contains("mc availability"))
            .map(String::from)
    };
    assert_ne!(
        mc_line(&stdout),
        mc_line(&other),
        "--seed appears to be ignored"
    );
}

#[test]
fn help_flag_aliases_work() {
    for alias in ["--help", "-h"] {
        let (ok, stdout, _) = run(&[alias]);
        assert!(ok, "{alias} must exit 0");
        assert!(stdout.contains("USAGE"), "{stdout}");
    }
}
