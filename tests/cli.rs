//! Integration tests for the `availsim` command-line binary.

use std::path::PathBuf;
use std::process::Command;

fn run(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_availsim"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

/// Writes a campaign spec into the test-scoped tmpdir and returns its path.
fn write_spec(file_name: &str, contents: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(file_name);
    std::fs::write(&path, contents).unwrap();
    path
}

const SURFACE_SPEC: &str = "\
[campaign]
name = cli-surface
seed = 42
model = markov-conventional

[axes]
raid = [r1, r5-3]
hep = [0, 0.001, 0.01]
lambda = [1e-6, 1e-5]
";

#[test]
fn solve_prints_the_pinned_point() {
    let (ok, stdout, _) = run(&["solve", "--lambda", "1e-6", "--hep", "0.01"]);
    assert!(ok);
    assert!(stdout.contains("RAID5(3+1)"));
    assert!(
        stdout.contains("4.929"),
        "unavailability mantissa: {stdout}"
    );
    assert!(stdout.contains("6.3072 nines"), "{stdout}");
}

#[test]
fn solve_supports_failover_and_raid6() {
    let (ok, stdout, _) = run(&["solve", "--policy", "failover", "--hep", "0.01"]);
    assert!(ok);
    assert!(stdout.contains("policy=failover"));

    let (ok, stdout, _) = run(&["solve", "--raid", "r6-6", "--lambda", "1e-5"]);
    assert!(ok);
    assert!(stdout.contains("RAID6(6+2)"));
}

#[test]
fn sweep_reports_underestimation_column() {
    let (ok, stdout, _) = run(&["sweep", "--points", "3"]);
    assert!(ok);
    assert!(stdout.contains("vs hep=0"));
    assert!(stdout.lines().count() >= 4);
}

#[test]
fn compare_lists_three_configs() {
    let (ok, stdout, _) = run(&["compare"]);
    assert!(ok);
    for label in ["RAID1(1+1)", "RAID5(3+1)", "RAID5(7+1)"] {
        assert!(stdout.contains(label), "{label} missing:\n{stdout}");
    }
}

#[test]
fn validate_is_consistent_at_high_rates() {
    let (ok, stdout, _) = run(&["validate", "--iterations", "2000"]);
    assert!(ok);
    assert!(stdout.contains("consistent"), "{stdout}");
}

#[test]
fn validate_rare_event_mode_works_at_paper_grade_lambda() {
    // λ = 1e-7 is hopeless for naive MC at this budget; with failure
    // biasing the cross-check still reaches a verdict and reports the
    // importance-sampling diagnostics.
    let (ok, stdout, _) = run(&[
        "validate",
        "--lambda",
        "1e-7",
        "--iterations",
        "4000",
        "--variance",
        "failure-biasing",
    ]);
    assert!(ok, "{stdout}");
    assert!(
        stdout.contains("rare-event mode     : failure-biasing(bias=0.5)"),
        "{stdout}"
    );
    assert!(stdout.contains("ESS"), "{stdout}");
    assert!(stdout.contains("consistent"), "{stdout}");
}

#[test]
fn validate_variance_flags_are_checked() {
    let (ok, _, stderr) = run(&["validate", "--variance", "quantum"]);
    assert!(!ok);
    assert!(stderr.contains("unknown variance"), "{stderr}");

    let (ok, _, stderr) = run(&["validate", "--bias", "0.5"]);
    assert!(!ok);
    assert!(stderr.contains("requires --variance"), "{stderr}");

    let (ok, _, stderr) = run(&["validate", "--variance", "failure-biasing", "--effort", "8"]);
    assert!(!ok);
    assert!(stderr.contains("requires --variance splitting"), "{stderr}");

    let (ok, _, stderr) = run(&["validate", "--variance", "failure-biasing", "--bias", "1.5"]);
    assert!(!ok, "bias outside [0,1) must fail");
    assert!(stderr.contains("bias"), "{stderr}");
}

#[test]
fn errors_are_reported_not_panicked() {
    let (ok, _, stderr) = run(&["solve", "--raid", "r9-3"]);
    assert!(!ok);
    assert!(stderr.contains("unknown raid"));

    let (ok, _, stderr) = run(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("unknown command"));

    let (ok, _, stderr) = run(&["solve", "--lambda"]);
    assert!(!ok);
    assert!(stderr.contains("needs a value"));

    let (ok, _, stderr) = run(&[]);
    assert!(!ok);
    assert!(stderr.contains("USAGE"));
}

#[test]
fn help_succeeds() {
    let (ok, stdout, _) = run(&["help"]);
    assert!(ok);
    assert!(stdout.contains("USAGE"));
}

#[test]
fn solve_rejects_bad_flag_values() {
    let (ok, _, stderr) = run(&["solve", "--lambda", "not-a-number"]);
    assert!(!ok);
    assert!(stderr.contains("invalid value"), "{stderr}");

    let (ok, _, stderr) = run(&["solve", "--hep", "1.5"]);
    assert!(!ok, "hep outside [0,1] must fail");
    assert!(stderr.starts_with("error:"), "{stderr}");

    let (ok, _, stderr) = run(&["solve", "--policy", "quantum"]);
    assert!(!ok);
    assert!(stderr.contains("unknown policy"), "{stderr}");

    let (ok, _, stderr) = run(&["solve", "lambda", "1e-6"]);
    assert!(!ok, "positional argument without -- must fail");
    assert!(stderr.contains("expected --flag"), "{stderr}");
}

#[test]
fn solve_supports_raid1_pair() {
    let (ok, stdout, _) = run(&[
        "solve", "--raid", "r1", "--lambda", "1e-5", "--hep", "0.001",
    ]);
    assert!(ok);
    assert!(stdout.contains("RAID1(1+1)"), "{stdout}");
    assert!(stdout.contains("MTTDL"), "{stdout}");
}

#[test]
fn sweep_rejects_inverted_or_degenerate_ranges() {
    let (ok, _, stderr) = run(&["sweep", "--from", "2e-6", "--to", "1e-6"]);
    assert!(!ok);
    assert!(stderr.contains("need 0 < from < to"), "{stderr}");

    let (ok, _, stderr) = run(&["sweep", "--points", "1"]);
    assert!(!ok);
    assert!(stderr.contains("points >= 2"), "{stderr}");
}

#[test]
fn compare_respects_capacity_and_lambda_flags() {
    // 42 = lcm(1, 3, 7): usable capacity must tile every per-array capacity.
    let (ok, stdout, _) = run(&["compare", "--capacity", "42", "--lambda", "2e-5"]);
    assert!(ok);
    assert!(stdout.contains("config"), "{stdout}");
    assert!(stdout.contains("hep=0.01"), "{stdout}");
    assert!(stdout.lines().count() >= 4, "{stdout}");

    // A capacity that tiles no geometry is a reported error, not a panic.
    let (ok, _, stderr) = run(&["compare", "--capacity", "10"]);
    assert!(!ok);
    assert!(stderr.contains("not a multiple"), "{stderr}");
}

#[test]
fn validate_prints_both_estimates_and_honors_seed() {
    let (ok, stdout, _) = run(&["validate", "--iterations", "1500", "--seed", "7"]);
    assert!(ok);
    assert!(stdout.contains("markov availability"), "{stdout}");
    assert!(stdout.contains("mc availability"), "{stdout}");
    assert!(stdout.contains("verdict"), "{stdout}");

    // Same seed must replay the identical Monte-Carlo estimate...
    let (ok, rerun, _) = run(&["validate", "--iterations", "1500", "--seed", "7"]);
    assert!(ok);
    assert_eq!(stdout, rerun, "same seed must be bit-reproducible");

    // ...and a different seed must actually change it.
    let (ok, other, _) = run(&["validate", "--iterations", "1500", "--seed", "8"]);
    assert!(ok);
    let mc_line = |s: &str| {
        s.lines()
            .find(|l| l.contains("mc availability"))
            .map(String::from)
    };
    assert_ne!(
        mc_line(&stdout),
        mc_line(&other),
        "--seed appears to be ignored"
    );
}

#[test]
fn equals_flag_syntax_matches_space_syntax() {
    let (ok_eq, eq_out, _) = run(&["solve", "--lambda=1e-6", "--hep=0.01"]);
    let (ok_sp, sp_out, _) = run(&["solve", "--lambda", "1e-6", "--hep", "0.01"]);
    assert!(ok_eq && ok_sp);
    assert_eq!(eq_out, sp_out, "--flag=value must behave like --flag value");

    // Mixed forms in one invocation also work.
    let (ok, out, _) = run(&["solve", "--lambda=1e-6", "--hep", "0.01"]);
    assert!(ok);
    assert_eq!(out, eq_out);
}

#[test]
fn duplicate_flags_are_rejected_with_a_clear_error() {
    for args in [
        ["solve", "--lambda", "1e-6", "--lambda", "2e-6"].as_slice(),
        ["solve", "--lambda=1e-6", "--lambda=2e-6"].as_slice(),
        ["solve", "--lambda", "1e-6", "--lambda=2e-6"].as_slice(),
    ] {
        let (ok, _, stderr) = run(args);
        assert!(!ok, "duplicate flags must fail: {args:?}");
        assert!(stderr.contains("duplicate flag --lambda"), "{stderr}");
    }
}

#[test]
fn unknown_flags_are_rejected_not_ignored() {
    let (ok, _, stderr) = run(&["solve", "--lamda", "1e-6"]);
    assert!(!ok, "misspelled flag must fail");
    assert!(stderr.contains("unknown flag --lamda"), "{stderr}");

    let (ok, _, stderr) = run(&["sweep", "--capacity", "21"]);
    assert!(!ok, "another subcommand's flag must fail");
    assert!(stderr.contains("unknown flag --capacity"), "{stderr}");

    // A typo'd --dry-run must not silently launch the full campaign.
    let spec = write_spec("typo.campaign", SURFACE_SPEC);
    let (ok, _, stderr) = run(&["batch", spec.to_str().unwrap(), "--dry_run=true"]);
    assert!(!ok);
    assert!(stderr.contains("unknown flag --dry_run"), "{stderr}");
}

#[test]
fn empty_flag_name_is_rejected() {
    let (ok, _, stderr) = run(&["solve", "--=3"]);
    assert!(!ok);
    assert!(stderr.contains("missing flag name"), "{stderr}");
}

#[test]
fn batch_dry_run_is_byte_stable_and_matches_the_golden_plan() {
    let spec = write_spec("dryrun.campaign", SURFACE_SPEC);
    let spec = spec.to_str().unwrap();
    let (ok, first, _) = run(&["batch", spec, "--dry-run"]);
    assert!(ok);
    let (ok, second, _) = run(&["batch", "--dry-run", spec]);
    assert!(ok);
    assert_eq!(first, second, "dry-run output must be byte-stable");

    // Golden pins: grid arithmetic and the derived cell seeds for campaign
    // seed 42. These may only change with an intentional (documented) break
    // of the seed-derivation scheme.
    assert!(first.contains("cells     : 12"), "{first}");
    assert!(
        first.contains("axes      : raid[2] x policy[1] x lambda[2] x hep[3]"),
        "{first}"
    );
    assert!(
        first.contains(
            "      0 0xab4c4adfbb450230 RAID1(1+1)   conventional         1e-6        0.0"
        ),
        "cell 0 seed drifted:\n{first}"
    );
    assert!(
        first.contains("0x31c74a60d8c59d4"),
        "cell 1 seed drifted:\n{first}"
    );
}

#[test]
fn batch_dry_run_of_the_shipped_biased_campaign_is_byte_stable() {
    // The rare-event fig6 variant ships in-repo; its dry-run plan is a
    // golden artifact (including the variance line and derived cell seeds).
    let spec = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/examples/specs/fig6_raid_biased.campaign"
    );
    let (ok, first, _) = run(&["batch", spec, "--dry-run"]);
    assert!(ok, "{first}");
    let (ok, second, _) = run(&["batch", "--dry-run", spec]);
    assert!(ok);
    assert_eq!(first, second, "dry-run output must be byte-stable");

    assert!(first.contains("campaign fig6-raid-biased"), "{first}");
    assert!(first.contains("  model     : mc"), "{first}");
    assert!(
        first.contains("  variance  : failure-biasing(bias=0.5)"),
        "{first}"
    );
    assert!(
        first.contains("  capacity  : 21 disk units (volume metrics on)"),
        "{first}"
    );
    assert!(first.contains("cells     : 9"), "{first}");
    assert!(
        first.contains("axes      : raid[3] x policy[1] x lambda[1] x hep[3]"),
        "{first}"
    );
    // Seed derivation golden pin: campaign seed 42 shares fig6_raid's cell
    // seeds (same scheme, same indices).
    assert!(
        first.contains("0xab4c4adfbb450230"),
        "cell 0 seed drifted:\n{first}"
    );
}

#[test]
fn fleet_reports_datacenter_and_availability_metrics() {
    let args = [
        "fleet",
        "--arrays",
        "20",
        "--lambda",
        "1e-4",
        "--hep",
        "0.01",
        "--iterations",
        "200",
        "--seed",
        "9",
    ];
    let (ok, stdout, _) = run(&args);
    assert!(ok, "{stdout}");
    assert!(
        stdout.contains("fleet 20 x RAID5(3+1) (80 disks)"),
        "{stdout}"
    );
    assert!(stdout.contains("disk failures"), "{stdout}");
    assert!(stdout.contains("per-array availability"), "{stdout}");
    assert!(stdout.contains("any-array-down"), "{stdout}");
    assert!(stdout.contains("simultaneous degraded"), "{stdout}");
    assert!(stdout.contains("degraded time share    : 0:"), "{stdout}");

    // Seed determinism: the whole report replays bit-for-bit.
    let (ok, rerun, _) = run(&args);
    assert!(ok);
    assert_eq!(stdout, rerun, "same seed must be bit-reproducible");
}

#[test]
fn fleet_rejects_bad_configurations() {
    let (ok, _, stderr) = run(&["fleet", "--arrays", "0"]);
    assert!(!ok);
    assert!(stderr.contains("at least one array"), "{stderr}");

    let (ok, _, stderr) = run(&["fleet", "--arrays", "1000000"]);
    assert!(!ok, "above MAX_ARRAYS must fail");
    assert!(stderr.contains("at most"), "{stderr}");

    let (ok, _, stderr) = run(&["fleet", "--workers", "2"]);
    assert!(!ok);
    assert!(stderr.contains("unknown flag --workers"), "{stderr}");

    let (ok, _, stderr) = run(&["fleet", "--repairmen", "0"]);
    assert!(!ok);
    assert!(stderr.contains("at least one repair crew"), "{stderr}");

    let (ok, _, stderr) = run(&["fleet", "--dependence", "severe"]);
    assert!(!ok);
    assert!(stderr.contains("unknown dependence"), "{stderr}");

    let (ok, _, stderr) = run(&["fleet", "--domain-arrays", "4"]);
    assert!(!ok);
    assert!(stderr.contains("must be set together"), "{stderr}");

    let (ok, _, stderr) = run(&[
        "fleet",
        "--arrays",
        "4",
        "--domain-arrays",
        "5",
        "--domain-rate",
        "1e-4",
    ]);
    assert!(!ok);
    assert!(stderr.contains("exceeds the fleet"), "{stderr}");
}

#[test]
fn fleet_couplings_report_their_settings_and_stay_reproducible() {
    let args = [
        "fleet",
        "--arrays",
        "16",
        "--lambda",
        "1e-4",
        "--hep",
        "0.01",
        "--iterations",
        "150",
        "--seed",
        "11",
        "--repairmen",
        "2",
        "--dependence",
        "high",
    ];
    let (ok, stdout, _) = run(&args);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("repair crews           : 2"), "{stdout}");
    assert!(
        stdout.contains("operator dependence    : high (THERP)"),
        "{stdout}"
    );
    let (ok, rerun, _) = run(&args);
    assert!(ok);
    assert_eq!(stdout, rerun, "coupled run must be bit-reproducible");

    // Without couplings the report says the pool is unlimited and stays
    // silent about dependence and domains.
    let (ok, stdout, _) = run(&["fleet", "--iterations", "20", "--arrays", "4"]);
    assert!(ok, "{stdout}");
    assert!(
        stdout.contains("repair crews           : unlimited"),
        "{stdout}"
    );
    assert!(!stdout.contains("operator dependence"), "{stdout}");
    assert!(!stdout.contains("failure domains"), "{stdout}");
}

#[test]
fn fleet_domain_strikes_surface_the_tail_bin() {
    // A single shelf covering all 40 arrays: every strike exceeds the
    // histogram's exact range, so the 32+ tail must be rendered with its
    // absorbing label rather than as a phantom `k = 32` count.
    let args = [
        "fleet",
        "--arrays",
        "40",
        "--lambda",
        "1e-6",
        "--iterations",
        "50",
        "--horizon",
        "20000",
        "--seed",
        "7",
        "--domain-arrays",
        "40",
        "--domain-rate",
        "1e-3",
    ];
    let (ok, stdout, _) = run(&args);
    assert!(ok, "{stdout}");
    assert!(
        stdout.contains("failure domains        : shelves of 40 struck at 1.000e-3/h"),
        "{stdout}"
    );
    assert!(stdout.contains(" 32+:"), "{stdout}");
    assert!(
        !stdout.contains(" 32:"),
        "exact-32 label must not appear: {stdout}"
    );
    assert!(stdout.contains("peak 40"), "{stdout}");
    let (ok, rerun, _) = run(&args);
    assert!(ok);
    assert_eq!(stdout, rerun, "domain run must be bit-reproducible");
}

#[test]
fn batch_dry_run_of_the_shipped_fleet_campaign_is_byte_stable() {
    let spec = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/examples/specs/fleet_scaling.campaign"
    );
    let (ok, first, _) = run(&["batch", spec, "--dry-run"]);
    assert!(ok, "{first}");
    let (ok, second, _) = run(&["batch", "--dry-run", spec]);
    assert!(ok);
    assert_eq!(first, second, "dry-run output must be byte-stable");

    assert!(first.contains("campaign fleet-scaling"), "{first}");
    assert!(first.contains("  model     : mc"), "{first}");
    assert!(
        first.contains("  fleet     : 25 arrays per cell"),
        "{first}"
    );
    assert!(first.contains("cells     : 2"), "{first}");
    assert!(
        first.contains("axes      : raid[1] x policy[1] x lambda[1] x hep[2]"),
        "{first}"
    );
    // Seed derivation golden pin: campaign seed 42 shares the other
    // shipped campaigns' cell-0 seed (same scheme, same index).
    assert!(
        first.contains("0xab4c4adfbb450230"),
        "cell 0 seed drifted:\n{first}"
    );
}

#[test]
fn batch_runs_the_fleet_campaign_end_to_end() {
    let spec = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/examples/specs/fleet_scaling.campaign"
    );
    let (ok, stdout, stderr) = run(&["batch", spec]);
    assert!(ok, "{stdout}\n{stderr}");
    assert!(stdout.contains("campaign fleet-scaling"), "{stdout}");
    assert_eq!(stdout.matches("\"cell\":").count(), 2, "{stdout}");
    // hep = 0.01 must cost availability vs hep = 0 in the CSV rows.
    let csv: Vec<&str> = stdout
        .lines()
        .skip_while(|l| !l.starts_with("cell,"))
        .take(3)
        .collect();
    assert_eq!(csv.len(), 3, "{stdout}");
    let u_of = |line: &str| {
        line.split(',')
            .nth(6)
            .unwrap()
            .parse::<f64>()
            .expect("unavailability column")
    };
    assert!(
        u_of(csv[2]) > u_of(csv[1]),
        "hep=0.01 must be less available: {csv:?}"
    );
}

#[test]
fn batch_dry_run_of_the_shipped_dataloss_campaign_is_byte_stable() {
    let spec = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/examples/specs/raid_dataloss.campaign"
    );
    let (ok, first, _) = run(&["batch", spec, "--dry-run"]);
    assert!(ok, "{first}");
    let (ok, second, _) = run(&["batch", "--dry-run", spec]);
    assert!(ok);
    assert_eq!(first, second, "dry-run output must be byte-stable");

    assert!(first.contains("campaign raid-dataloss"), "{first}");
    assert!(first.contains("  model     : mc"), "{first}");
    assert!(
        first.contains("  lse       : rate 0.0001/disk-h, scrub every 672.0 h"),
        "{first}"
    );
    assert!(first.contains("cells     : 4"), "{first}");
    // Seed derivation golden pin: campaign seed 42 shares the other
    // shipped campaigns' cell-0 seed (same scheme, same index).
    assert!(
        first.contains("0xab4c4adfbb450230"),
        "cell 0 seed drifted:\n{first}"
    );
}

#[test]
fn batch_runs_the_dataloss_campaign_end_to_end() {
    let spec = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/examples/specs/raid_dataloss.campaign"
    );
    let (ok, stdout, stderr) = run(&["batch", spec]);
    assert!(ok, "{stdout}\n{stderr}");
    assert!(stdout.contains("campaign raid-dataloss"), "{stdout}");
    let csv: Vec<&str> = stdout
        .lines()
        .skip_while(|l| !l.starts_with("cell,"))
        .take(5)
        .collect();
    assert_eq!(csv.len(), 5, "{stdout}");
    assert!(csv[0].ends_with(",p_data_loss,nomdl_per_tb"), "{}", csv[0]);
    // λ = 5e-4 rebuilds five times as often as λ = 1e-4, so its missions
    // must lose data more often (cells 0/1 are λ=1e-4, cells 2/3 5e-4).
    let p_of = |line: &str| {
        let f: Vec<&str> = line.split(',').collect();
        f[f.len() - 2].parse::<f64>().expect("p_data_loss column")
    };
    assert!(p_of(csv[3]) > p_of(csv[1]), "{csv:?}");
    assert!(stdout.contains("\"p_data_loss\": "), "{stdout}");
    assert!(stdout.contains("\"nomdl_per_tb\": "), "{stdout}");
}

#[test]
fn validate_and_fleet_report_the_data_loss_tier() {
    let (ok, stdout, _) = run(&[
        "validate",
        "--lambda",
        "1e-3",
        "--iterations",
        "400",
        "--lse-rate",
        "1e-4",
        "--scrub-interval",
        "336",
    ]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("p(data loss)"), "{stdout}");
    assert!(stdout.contains("nomdl"), "{stdout}");
    // The Fig. 2 chain splits its rebuild completion by the same LSE
    // probability, so the exact-vs-MC verdict still holds with LSE on.
    assert!(stdout.contains("consistent"), "{stdout}");

    let (ok, stdout, _) = run(&[
        "fleet",
        "--arrays",
        "4",
        "--lambda",
        "1e-3",
        "--iterations",
        "100",
        "--horizon",
        "20000",
        "--lse-rate",
        "1e-3",
        "--scrub-interval",
        "1000",
    ]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("lse scrubbing"), "{stdout}");
    assert!(stdout.contains("p(data loss)"), "{stdout}");
    assert!(stdout.contains("mean time to 1st loss"), "{stdout}");

    // Without the flags the loss lines stay out of the output.
    let (ok, stdout, _) = run(&["validate", "--iterations", "200"]);
    assert!(ok);
    assert!(!stdout.contains("p(data loss)"), "{stdout}");
}

#[test]
fn lse_flags_are_paired_and_validated() {
    for cmd in ["validate", "fleet"] {
        let (ok, _, stderr) = run(&[cmd, "--lse-rate", "1e-4"]);
        assert!(!ok);
        assert!(stderr.contains("must be set together"), "{cmd}: {stderr}");
        let (ok, _, stderr) = run(&[cmd, "--scrub-interval", "336"]);
        assert!(!ok);
        assert!(stderr.contains("must be set together"), "{cmd}: {stderr}");
    }
    let (ok, _, stderr) = run(&["validate", "--lse-rate", "-1", "--scrub-interval", "336"]);
    assert!(!ok);
    assert!(stderr.contains("nonnegative"), "{stderr}");
    let (ok, _, stderr) = run(&["validate", "--lse-rate", "1e-4", "--scrub-interval", "0"]);
    assert!(!ok);
    assert!(stderr.contains("must be positive"), "{stderr}");
    // Subcommands without the data-loss tier reject the flags loudly.
    let (ok, _, stderr) = run(&["solve", "--lse-rate", "1e-4", "--scrub-interval", "336"]);
    assert!(!ok);
    assert!(stderr.contains("unknown flag --lse-rate"), "{stderr}");
}

#[test]
fn batch_rejects_invalid_fleet_specs() {
    let spec = write_spec(
        "fleet-markov.campaign",
        "[campaign]\nname = x\n[fleet]\narrays = 4\n",
    );
    let (ok, _, stderr) = run(&["batch", spec.to_str().unwrap(), "--dry-run"]);
    assert!(!ok);
    assert!(stderr.contains("requires `model = mc`"), "{stderr}");

    let spec = write_spec(
        "fleet-zero.campaign",
        "[campaign]\nname = x\nmodel = mc\n[fleet]\narrays = 0\n",
    );
    let (ok, _, stderr) = run(&["batch", spec.to_str().unwrap(), "--dry-run"]);
    assert!(!ok);
    assert!(stderr.contains("at least one array"), "{stderr}");

    let spec = write_spec(
        "fleet-failover.campaign",
        "[campaign]\nname = x\nmodel = mc\n[axes]\npolicy = [failover]\n[fleet]\narrays = 4\n",
    );
    let (ok, _, stderr) = run(&["batch", spec.to_str().unwrap(), "--dry-run"]);
    assert!(!ok);
    assert!(stderr.contains("conventional policy only"), "{stderr}");

    let spec = write_spec(
        "fleet-biased.campaign",
        "[campaign]\nname = x\nmodel = mc\n[mc]\nvariance = failure-biasing\n[fleet]\narrays = 4\n",
    );
    let (ok, _, stderr) = run(&["batch", spec.to_str().unwrap(), "--dry-run"]);
    assert!(!ok);
    assert!(stderr.contains("naive sampling only"), "{stderr}");

    // Degenerate coupling keys are line-numbered parse errors.
    let spec = write_spec(
        "fleet-no-crews.campaign",
        "[campaign]\nname = x\nmodel = mc\n[fleet]\narrays = 4\nrepairmen = 0\n",
    );
    let (ok, _, stderr) = run(&["batch", spec.to_str().unwrap(), "--dry-run"]);
    assert!(!ok);
    assert!(
        stderr.contains("line 6") && stderr.contains("at least one repair crew"),
        "{stderr}"
    );
}

#[test]
fn batch_dry_run_describes_fleet_couplings() {
    let spec = write_spec(
        "fleet-coupled.campaign",
        "[campaign]\nname = coupled\nmodel = mc\n[mc]\niterations = 50\n\
         [fleet]\narrays = 24\nrepairmen = 3\ndependence = moderate\n\
         domain_arrays = 8\ndomain_rate = 1e-5\n",
    );
    let (ok, stdout, _) = run(&["batch", spec.to_str().unwrap(), "--dry-run"]);
    assert!(ok, "{stdout}");
    assert!(
        stdout.contains(
            "fleet     : 24 arrays per cell, 3 repair crews, \
             moderate dependence, domains of 8 at 1e-5/h"
        ),
        "{stdout}"
    );
}

#[test]
fn batch_runs_a_campaign_end_to_end_on_stdout() {
    let spec = write_spec("stdout.campaign", SURFACE_SPEC);
    let (ok, stdout, _) = run(&["batch", spec.to_str().unwrap()]);
    assert!(ok, "{stdout}");
    // Summary table with timing, then the two machine-readable reports.
    assert!(stdout.contains("campaign cli-surface"), "{stdout}");
    assert!(stdout.contains("time-us"), "{stdout}");
    assert!(stdout.contains("--- csv ---"), "{stdout}");
    assert!(
        stdout.contains("cell,seed,raid,policy,lambda,hep,unavailability"),
        "{stdout}"
    );
    assert!(stdout.contains("--- json ---"), "{stdout}");
    assert!(stdout.contains("\"campaign\": \"cli-surface\""), "{stdout}");
    // 12 cells in both reports.
    assert_eq!(stdout.matches("\"cell\":").count(), 12, "{stdout}");
}

#[test]
fn batch_metric_files_are_identical_for_1_and_3_workers() {
    let spec = write_spec("workers.campaign", SURFACE_SPEC);
    let spec = spec.to_str().unwrap();
    let dir1 = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("campaign-w1");
    let dir3 = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("campaign-w3");
    let (ok, out, _) = run(&[
        "batch",
        spec,
        "--workers=1",
        "--out-dir",
        dir1.to_str().unwrap(),
    ]);
    assert!(ok, "{out}");
    assert!(out.contains("wrote "), "{out}");
    let (ok, _, _) = run(&[
        "batch",
        spec,
        "--workers=3",
        "--out-dir",
        dir3.to_str().unwrap(),
    ]);
    assert!(ok);
    for file in ["cli-surface.csv", "cli-surface.json"] {
        let a = std::fs::read(dir1.join(file)).unwrap();
        let b = std::fs::read(dir3.join(file)).unwrap();
        assert!(!a.is_empty());
        assert_eq!(a, b, "{file} must be byte-identical across worker counts");
    }
}

#[test]
fn batch_reports_spec_errors_with_line_numbers() {
    let spec = write_spec("broken.campaign", "[campaign]\nname = broken\nseed = pi\n");
    let (ok, _, stderr) = run(&["batch", spec.to_str().unwrap()]);
    assert!(!ok);
    assert!(stderr.contains("line 3"), "{stderr}");

    let (ok, _, stderr) = run(&["batch"]);
    assert!(!ok);
    assert!(stderr.contains("batch needs a spec file"), "{stderr}");

    let (ok, _, stderr) = run(&["batch", "/nonexistent/x.campaign"]);
    assert!(!ok);
    assert!(stderr.contains("cannot read"), "{stderr}");

    let spec = write_spec("ok.campaign", SURFACE_SPEC);
    let (ok, _, stderr) = run(&["batch", spec.to_str().unwrap(), "extra-positional"]);
    assert!(!ok);
    assert!(stderr.contains("unexpected extra argument"), "{stderr}");
}

#[test]
fn non_batch_commands_still_reject_positionals() {
    let (ok, _, stderr) = run(&["compare", "stray"]);
    assert!(!ok);
    assert!(stderr.contains("expected --flag"), "{stderr}");
}

/// A small Monte-Carlo campaign that exercises the telemetry counters.
const MC_SPEC: &str = "\
[campaign]
name = cli-mc
seed = 7
model = mc

[axes]
raid = [r5-3]
lambda = [1e-4]
hep = [0, 0.01]

[mc]
iterations = 300
";

/// Extracts the deterministic counter section of a `--metrics` JSON
/// snapshot (everything from the `deterministic` key up to the
/// `nondeterministic` key, which holds the wall-clock measurements).
fn deterministic_section(path: &std::path::Path) -> String {
    let text = std::fs::read_to_string(path).unwrap();
    let start = text
        .find("\"deterministic\"")
        .expect("deterministic section");
    let end = text
        .find("\"nondeterministic\"")
        .expect("nondeterministic section");
    text[start..end].to_string()
}

#[test]
fn validate_metrics_deterministic_section_is_thread_count_invariant() {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    let m1 = dir.join("validate-t1.json");
    let m4 = dir.join("validate-t4.json");
    let base = ["validate", "--iterations", "800", "--seed", "5"];
    let (ok, _, stderr) = run(&[
        &base[..],
        &["--threads", "1", "--metrics", m1.to_str().unwrap()],
    ]
    .concat());
    assert!(ok, "{stderr}");
    assert!(stderr.contains("wrote metrics"), "{stderr}");
    let (ok, _, _) = run(&[
        &base[..],
        &["--threads", "4", "--metrics", m4.to_str().unwrap()],
    ]
    .concat());
    assert!(ok);
    let (d1, d4) = (deterministic_section(&m1), deterministic_section(&m4));
    assert_eq!(d1, d4, "counters must be byte-identical across threads");
    assert!(d1.contains("\"availsim_missions_total\": 800"), "{d1}");
    assert!(
        !d1.contains("\"availsim_jump_transitions_total\": 0"),
        "jump-chain counters must be live: {d1}"
    );
}

#[test]
fn fleet_metrics_deterministic_section_is_thread_count_invariant() {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    let m1 = dir.join("fleet-t1.json");
    let m4 = dir.join("fleet-t4.json");
    let base = [
        "fleet",
        "--arrays",
        "8",
        "--lambda",
        "1e-4",
        "--iterations",
        "100",
        "--seed",
        "3",
        "--repairmen",
        "1",
    ];
    let (ok, _, stderr) = run(&[
        &base[..],
        &["--threads", "1", "--metrics", m1.to_str().unwrap()],
    ]
    .concat());
    assert!(ok, "{stderr}");
    let (ok, _, _) = run(&[
        &base[..],
        &["--threads", "4", "--metrics", m4.to_str().unwrap()],
    ]
    .concat());
    assert!(ok);
    let (d1, d4) = (deterministic_section(&m1), deterministic_section(&m4));
    assert_eq!(d1, d4, "counters must be byte-identical across threads");
    assert!(d1.contains("\"availsim_missions_total\": 100"), "{d1}");
    assert!(
        !d1.contains("\"availsim_queue_scheduled_total\": 0"),
        "fleet runs must exercise the indexed queue: {d1}"
    );
}

#[test]
fn batch_metrics_snapshot_is_worker_count_invariant() {
    let spec = write_spec("metrics.campaign", MC_SPEC);
    let spec = spec.to_str().unwrap();
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    let m1 = dir.join("batch-w1.json");
    let m3 = dir.join("batch-w3.json");
    let (ok, _, stderr) = run(&[
        "batch",
        spec,
        "--workers=1",
        "--metrics",
        m1.to_str().unwrap(),
    ]);
    assert!(ok, "{stderr}");
    let (ok, _, _) = run(&[
        "batch",
        spec,
        "--workers=3",
        "--metrics",
        m3.to_str().unwrap(),
    ]);
    assert!(ok);
    let (d1, d3) = (deterministic_section(&m1), deterministic_section(&m3));
    assert_eq!(d1, d3, "counters must be byte-identical across workers");
    // Two cells x 300 iterations.
    assert!(d1.contains("\"availsim_missions_total\": 600"), "{d1}");
    // The nondeterministic section carries the batch-only extras.
    let text = std::fs::read_to_string(&m1).unwrap();
    assert!(text.contains("\"worker_utilization\":"), "{text}");
    assert!(text.contains("\"cell_micros\":"), "{text}");
    assert!(text.contains("\"p99\":"), "{text}");
}

#[test]
fn metrics_prometheus_format_emits_exposition_text() {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    let path = dir.join("validate.prom");
    let (ok, _, stderr) = run(&[
        "validate",
        "--iterations",
        "300",
        "--metrics",
        path.to_str().unwrap(),
        "--metrics-format",
        "prom",
    ]);
    assert!(ok, "{stderr}");
    let text = std::fs::read_to_string(&path).unwrap();
    assert!(text.contains("# HELP availsim_missions_total"), "{text}");
    assert!(
        text.contains("# TYPE availsim_missions_total counter"),
        "{text}"
    );
    assert!(text.contains("availsim_missions_total 300"), "{text}");
    assert!(
        text.contains("# TYPE availsim_queue_depth_high_water gauge"),
        "{text}"
    );
    assert!(text.contains("deterministic section"), "{text}");
    assert!(text.contains("nondeterministic section"), "{text}");
}

#[test]
fn telemetry_flags_are_rejected_where_unsupported() {
    for cmd in ["solve", "sweep", "compare"] {
        let (ok, _, stderr) = run(&[cmd, "--metrics", "/tmp/x.json"]);
        assert!(!ok, "{cmd} must reject --metrics");
        assert!(stderr.contains("unknown flag --metrics"), "{cmd}: {stderr}");
    }
    // Progress streaming only makes sense for multi-cell campaigns.
    for cmd in ["validate", "fleet", "solve"] {
        let (ok, _, stderr) = run(&[cmd, "--progress"]);
        assert!(!ok, "{cmd} must reject --progress");
        assert!(
            stderr.contains("unknown flag --progress"),
            "{cmd}: {stderr}"
        );
    }

    let (ok, _, stderr) = run(&["validate", "--metrics-format", "prom"]);
    assert!(!ok);
    assert!(stderr.contains("requires --metrics"), "{stderr}");

    let (ok, _, stderr) = run(&[
        "validate",
        "--metrics",
        "/tmp/x.json",
        "--metrics-format",
        "xml",
    ]);
    assert!(!ok);
    assert!(stderr.contains("unknown format `xml`"), "{stderr}");
}

#[test]
fn telemetry_spec_errors_are_line_numbered() {
    let spec = write_spec(
        "tele-format.campaign",
        "[campaign]\nname = t\nmodel = mc\n[telemetry]\nformat = prom\n",
    );
    let (ok, _, stderr) = run(&["batch", spec.to_str().unwrap(), "--dry-run"]);
    assert!(!ok);
    assert!(
        stderr.contains("line 5") && stderr.contains("requires a `metrics` destination"),
        "{stderr}"
    );

    let spec = write_spec(
        "tele-progress.campaign",
        "[campaign]\nname = t\nmodel = mc\n[telemetry]\nprogress = maybe\n",
    );
    let (ok, _, stderr) = run(&["batch", spec.to_str().unwrap(), "--dry-run"]);
    assert!(!ok);
    assert!(
        stderr.contains("line 5") && stderr.contains("expects true or false"),
        "{stderr}"
    );
}

#[test]
fn batch_dry_run_shows_the_telemetry_line_only_when_configured() {
    let spec = write_spec("tele-dry.campaign", MC_SPEC);
    let spec = spec.to_str().unwrap();
    let (ok, stdout, _) = run(&["batch", spec, "--dry-run"]);
    assert!(ok);
    assert!(!stdout.contains("telemetry"), "{stdout}");

    let (ok, stdout, _) = run(&[
        "batch",
        spec,
        "--dry-run",
        "--metrics",
        "m.prom",
        "--metrics-format",
        "prom",
        "--progress",
    ]);
    assert!(ok, "{stdout}");
    assert!(
        stdout.contains("  telemetry : metrics -> m.prom (prom), progress on"),
        "{stdout}"
    );
}

#[test]
fn batch_progress_streams_cell_lines_to_stderr_only() {
    let spec = write_spec("progress.campaign", MC_SPEC);
    let spec = spec.to_str().unwrap();
    let (ok, plain_out, _) = run(&["batch", spec]);
    assert!(ok);
    let (ok, stdout, stderr) = run(&["batch", spec, "--progress"]);
    assert!(ok, "{stderr}");
    // The summary header carries wall-clock timing, so compare from the
    // machine-readable reports down: they must be untouched by --progress.
    let reports = |s: &str| s[s.find("--- csv ---").expect("csv report")..].to_string();
    assert_eq!(
        reports(&stdout),
        reports(&plain_out),
        "--progress must not perturb the deterministic stdout report"
    );
    let lines: Vec<&str> = stderr.lines().filter(|l| l.contains("done (U=")).collect();
    assert_eq!(lines.len(), 2, "one progress line per cell: {stderr}");
    assert!(lines.iter().all(|l| l.contains("/2 done")), "{stderr}");
}

#[test]
fn fleet_failover_reports_dr_metrics_and_stays_reproducible() {
    let args = [
        "fleet",
        "--arrays",
        "12",
        "--lambda",
        "1e-4",
        "--hep",
        "0.01",
        "--iterations",
        "150",
        "--seed",
        "13",
        "--failover-capacity",
        "2",
        "--failover-policy",
        "loss",
        "--failback-rate",
        "0.05",
    ];
    let (ok, stdout, _) = run(&args);
    assert!(ok, "{stdout}");
    assert!(
        stdout.contains("DR failover            : 2 slots (loss policy), fail-back 5.000e-2/h"),
        "{stdout}"
    );
    assert!(stdout.contains("DR-credited avail"), "{stdout}");
    assert!(stdout.contains("DR site"), "{stdout}");
    assert!(stdout.contains("failovers"), "{stdout}");
    let (ok, rerun, _) = run(&args);
    assert!(ok);
    assert_eq!(stdout, rerun, "DR run must be bit-reproducible");

    // The ideal site covers everything: credited availability is exactly 1.
    let (ok, stdout, _) = run(&[
        "fleet",
        "--arrays",
        "8",
        "--lambda",
        "1e-4",
        "--iterations",
        "80",
        "--failover-capacity",
        "inf",
    ]);
    assert!(ok, "{stdout}");
    assert!(
        stdout.contains("DR failover            : unlimited slots (ideal site)"),
        "{stdout}"
    );
    assert!(
        stdout.contains("uncovered unavailability 0.0000e0"),
        "{stdout}"
    );

    // Without the flags the report stays silent about DR.
    let (ok, stdout, _) = run(&["fleet", "--iterations", "20", "--arrays", "4"]);
    assert!(ok);
    assert!(!stdout.contains("DR"), "{stdout}");
}

#[test]
fn fleet_failover_flags_are_validated() {
    let (ok, _, stderr) = run(&["fleet", "--failover-policy", "loss"]);
    assert!(!ok);
    assert!(
        stderr.contains("--failover-policy requires --failover-capacity"),
        "{stderr}"
    );

    let (ok, _, stderr) = run(&["fleet", "--failback-rate", "0.1"]);
    assert!(!ok);
    assert!(
        stderr.contains("--failback-rate requires --failover-capacity"),
        "{stderr}"
    );

    let (ok, _, stderr) = run(&["fleet", "--failover-capacity", "many"]);
    assert!(!ok);
    assert!(stderr.contains("use a count or `inf`"), "{stderr}");

    let (ok, _, stderr) = run(&["fleet", "--failover-capacity", "0"]);
    assert!(!ok);
    assert!(stderr.contains("at least one failover slot"), "{stderr}");

    let (ok, _, stderr) = run(&[
        "fleet",
        "--failover-capacity",
        "2",
        "--failover-policy",
        "teleport",
    ]);
    assert!(!ok);
    assert!(
        stderr.contains("unknown failover policy `teleport` (use queue, loss)"),
        "{stderr}"
    );

    let (ok, _, stderr) = run(&["fleet", "--failover-capacity", "2", "--failback-rate", "-1"]);
    assert!(!ok);
    assert!(stderr.contains("fail-back rate"), "{stderr}");
}

#[test]
fn failover_and_keep_going_flags_are_rejected_where_unsupported() {
    // DR failover belongs to the fleet engine only.
    for cmd in ["solve", "validate", "batch"] {
        let spec = write_spec("no-dr.campaign", SURFACE_SPEC);
        let args: Vec<&str> = if cmd == "batch" {
            vec![cmd, spec.to_str().unwrap(), "--failover-capacity", "2"]
        } else {
            vec![cmd, "--failover-capacity", "2"]
        };
        let (ok, _, stderr) = run(&args);
        assert!(!ok, "{cmd} must reject --failover-capacity");
        assert!(
            stderr.contains("unknown flag --failover-capacity"),
            "{cmd}: {stderr}"
        );
    }
    // Continue-on-error is a campaign concept; single runs just fail.
    for cmd in ["solve", "validate", "fleet"] {
        let (ok, _, stderr) = run(&[cmd, "--keep-going"]);
        assert!(!ok, "{cmd} must reject --keep-going");
        assert!(
            stderr.contains("unknown flag --keep-going"),
            "{cmd}: {stderr}"
        );
    }
}

#[test]
fn batch_failover_spec_errors_name_their_line() {
    // DR keys without a fleet size blame the failover_capacity line.
    let spec = write_spec(
        "dr-no-arrays.campaign",
        "[campaign]\nname = x\nmodel = mc\n[fleet]\nfailover_capacity = 2\n",
    );
    let (ok, _, stderr) = run(&["batch", spec.to_str().unwrap(), "--dry-run"]);
    assert!(!ok);
    assert!(
        stderr.contains("line 5") && stderr.contains("requires `arrays`"),
        "{stderr}"
    );

    // A policy without a capacity blames the policy's own line.
    let spec = write_spec(
        "dr-orphan-policy.campaign",
        "[campaign]\nname = x\nmodel = mc\n[fleet]\narrays = 8\nfailover_policy = loss\n",
    );
    let (ok, _, stderr) = run(&["batch", spec.to_str().unwrap(), "--dry-run"]);
    assert!(!ok);
    assert!(
        stderr.contains("line 6") && stderr.contains("requires a `failover_capacity` key"),
        "{stderr}"
    );

    // Zero slots is a value error on the capacity line.
    let spec = write_spec(
        "dr-zero.campaign",
        "[campaign]\nname = x\nmodel = mc\n[fleet]\narrays = 8\nfailover_capacity = 0\n",
    );
    let (ok, _, stderr) = run(&["batch", spec.to_str().unwrap(), "--dry-run"]);
    assert!(!ok);
    assert!(
        stderr.contains("line 6") && stderr.contains("at least one failover slot"),
        "{stderr}"
    );
}

#[test]
fn batch_dry_run_of_the_shipped_failover_campaign_is_byte_stable() {
    let spec = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/examples/specs/fleet_failover.campaign"
    );
    let (ok, first, _) = run(&["batch", spec, "--dry-run"]);
    assert!(ok, "{first}");
    let (ok, second, _) = run(&["batch", "--dry-run", spec]);
    assert!(ok);
    assert_eq!(first, second, "dry-run output must be byte-stable");

    assert!(first.contains("campaign fleet-failover"), "{first}");
    assert!(
        first.contains(
            "fleet     : 16 arrays per cell, 2 repair crews, \
             DR capacity 2 (queue), fail-back 0.25/h"
        ),
        "{first}"
    );
    assert!(first.contains("cells     : 2"), "{first}");
    // Seed derivation golden pin shared by every campaign at seed 42.
    assert!(
        first.contains("0xab4c4adfbb450230"),
        "cell 0 seed drifted:\n{first}"
    );
}

#[test]
fn batch_runs_the_failover_campaign_and_reports_the_credit() {
    let spec = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/examples/specs/fleet_failover.campaign"
    );
    let (ok, stdout, stderr) = run(&["batch", spec]);
    assert!(ok, "{stdout}\n{stderr}");
    let header = stdout
        .lines()
        .find(|l| l.starts_with("cell,"))
        .expect("csv header");
    assert!(header.ends_with(",credited_unavailability"), "{header}");
    // The DR credit can only help: credited <= plain on every row.
    for line in stdout
        .lines()
        .skip_while(|l| !l.starts_with("cell,"))
        .skip(1)
        .take(2)
    {
        let cols: Vec<&str> = line.split(',').collect();
        let plain: f64 = cols[6].parse().expect("unavailability");
        let credited: f64 = cols[cols.len() - 1].parse().expect("credited");
        assert!(credited <= plain, "{line}");
    }
    assert!(stdout.contains("\"credited_unavailability\":"), "{stdout}");
}

/// A campaign where exactly one of the two cells fails: RAID6 under the
/// Fig. 3 fail-over chain is invalid (fault tolerance must be 1).
const KEEP_GOING_SPEC: &str = "\
[campaign]
name = kg
seed = 42
model = markov-failover

[axes]
raid = [r5-3, r6-4]
hep = 0.01
lambda = 1e-5
";

#[test]
fn batch_keep_going_completes_with_a_deterministic_failure_row() {
    let spec = write_spec("keep-going.campaign", KEEP_GOING_SPEC);
    let spec = spec.to_str().unwrap();

    // Without the flag the campaign aborts on the bad cell.
    let (ok, _, stderr) = run(&["batch", spec]);
    assert!(!ok);
    assert!(stderr.contains("cell 1"), "{stderr}");

    let (ok, stdout, _) = run(&["batch", spec, "--keep-going"]);
    assert!(ok, "{stdout}");
    let header = stdout
        .lines()
        .find(|l| l.starts_with("cell,"))
        .expect("csv header");
    assert!(header.ends_with(",status,error"), "{header}");
    let rows: Vec<&str> = stdout
        .lines()
        .skip_while(|l| !l.starts_with("cell,"))
        .skip(1)
        .take(2)
        .collect();
    assert!(rows[0].contains(",ok,"), "{}", rows[0]);
    assert!(rows[1].contains(",error,"), "{}", rows[1]);
    assert!(stdout.contains("\"failed_cells\": 1"), "{stdout}");
    assert!(stdout.contains("1 cell(s) failed"), "{stdout}");

    // Deterministic placement: report files are worker-count invariant.
    let dir1 = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("kg-w1");
    let dir3 = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("kg-w3");
    let (ok, _, _) = run(&[
        "batch",
        spec,
        "--keep-going",
        "--workers=1",
        "--out-dir",
        dir1.to_str().unwrap(),
    ]);
    assert!(ok);
    let (ok, _, _) = run(&[
        "batch",
        spec,
        "--keep-going",
        "--workers=3",
        "--out-dir",
        dir3.to_str().unwrap(),
    ]);
    assert!(ok);
    for file in ["kg.csv", "kg.json"] {
        let a = std::fs::read(dir1.join(file)).unwrap();
        let b = std::fs::read(dir3.join(file)).unwrap();
        assert!(!a.is_empty());
        assert_eq!(a, b, "{file} must be byte-identical across worker counts");
    }
}

#[test]
fn help_flag_aliases_work() {
    for alias in ["--help", "-h"] {
        let (ok, stdout, _) = run(&[alias]);
        assert!(ok, "{alias} must exit 0");
        assert!(stdout.contains("USAGE"), "{stdout}");
        assert!(stdout.contains("batch"), "{stdout}");
        assert!(stdout.contains("serve"), "{stdout}");
    }
}

#[test]
fn version_aliases_print_the_crate_version_and_exit_zero() {
    let golden = format!("availsim {}\n", env!("CARGO_PKG_VERSION"));
    for alias in ["--version", "-V", "version"] {
        let (ok, stdout, stderr) = run(&[alias]);
        assert!(ok, "{alias} must exit 0: {stderr}");
        assert_eq!(stdout, golden, "{alias} golden drifted");
        assert!(stderr.is_empty(), "{alias} must not write stderr: {stderr}");
    }
}

#[test]
fn threads_zero_is_auto_and_keeps_the_estimate_bytes() {
    // `--threads 0` (the default, documented "auto") must run and answer
    // the exact same bytes as a pinned pool: the block merge makes thread
    // count pure presentation.
    let base = ["validate", "--iterations", "600", "--seed", "4"];
    let (ok, auto_out, _) = run(&[&base[..], &["--threads", "0"]].concat());
    assert!(ok, "{auto_out}");
    let (ok, pinned_out, _) = run(&[&base[..], &["--threads", "3"]].concat());
    assert!(ok);
    assert_eq!(auto_out, pinned_out, "--threads 0 must not move the bytes");
}

#[test]
fn workers_zero_is_auto_for_batch_and_the_spec_spells_it_threads() {
    // `batch --workers 0` (auto) matches a pinned worker pool…
    let spec = write_spec("auto-workers.campaign", MC_SPEC);
    let spec = spec.to_str().unwrap();
    let (ok, auto_out, _) = run(&["batch", spec, "--workers=0"]);
    assert!(ok, "{auto_out}");
    let (ok, pinned_out, _) = run(&["batch", spec, "--workers=2"]);
    assert!(ok);
    let reports = |s: &str| s[s.find("--- csv ---").expect("csv report")..].to_string();
    assert_eq!(
        reports(&auto_out),
        reports(&pinned_out),
        "--workers 0 must not move the report bytes"
    );

    // …and the campaign spec's `[mc] threads = 0` names the same contract
    // in the dry-run plan.
    let spec = write_spec(
        "auto-threads.campaign",
        "[campaign]\nname = auto\nmodel = mc\n[mc]\niterations = 50\nthreads = 0\n",
    );
    let (ok, stdout, _) = run(&["batch", spec.to_str().unwrap(), "--dry-run"]);
    assert!(ok, "{stdout}");
    assert!(
        stdout.contains("threads   : auto (machine parallelism)"),
        "{stdout}"
    );
}

#[cfg(unix)]
#[test]
fn serve_drains_on_sigterm_and_exits_zero() {
    use std::io::{BufRead, BufReader, Read};
    use std::process::{Command, Stdio};
    use std::time::{Duration, Instant};

    let mut child = Command::new(env!("CARGO_BIN_EXE_availsim"))
        .args(["serve", "--port", "0", "--drain-ms", "500"])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn serve");

    // The startup line is flushed before the accept loop starts; once it
    // arrives, the signal handlers are installed and the port is bound.
    let mut stdout = BufReader::new(child.stdout.take().expect("stdout pipe"));
    let mut line = String::new();
    stdout.read_line(&mut line).expect("startup line");
    assert!(line.starts_with("listening on http://127.0.0.1:"), "{line}");

    let ok = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .expect("send SIGTERM")
        .success();
    assert!(ok, "kill -TERM failed");

    // An idle server must drain well inside the budget and exit 0.
    let begun = Instant::now();
    let status = loop {
        if let Some(status) = child.try_wait().expect("try_wait") {
            break status;
        }
        assert!(
            begun.elapsed() < Duration::from_secs(30),
            "serve did not exit after SIGTERM"
        );
        std::thread::sleep(Duration::from_millis(20));
    };
    assert!(status.success(), "SIGTERM must exit 0, got {status:?}");
    let mut stderr = String::new();
    child
        .stderr
        .take()
        .expect("stderr pipe")
        .read_to_string(&mut stderr)
        .unwrap();
    assert!(stderr.contains("drained clean"), "{stderr}");
}

#[test]
fn serve_flags_are_validated_without_binding() {
    let (ok, _, stderr) = run(&["serve", "--port", "not-a-port"]);
    assert!(!ok);
    assert!(stderr.contains("invalid value"), "{stderr}");

    let (ok, _, stderr) = run(&["serve", "--queue-capacity", "0"]);
    assert!(!ok, "a zero-slot queue can admit nothing");
    assert!(stderr.contains("at least 1"), "{stderr}");

    let (ok, _, stderr) = run(&["serve", "--threads", "2"]);
    assert!(!ok, "serve spells its pool --workers");
    assert!(stderr.contains("unknown flag --threads"), "{stderr}");

    let (ok, _, stderr) = run(&["serve", "stray"]);
    assert!(!ok);
    assert!(stderr.contains("expected --flag"), "{stderr}");
}
