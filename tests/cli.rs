//! Integration tests for the `availsim` command-line binary.

use std::process::Command;

fn run(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_availsim"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn solve_prints_the_pinned_point() {
    let (ok, stdout, _) = run(&["solve", "--lambda", "1e-6", "--hep", "0.01"]);
    assert!(ok);
    assert!(stdout.contains("RAID5(3+1)"));
    assert!(stdout.contains("4.929"), "unavailability mantissa: {stdout}");
    assert!(stdout.contains("6.3072 nines"), "{stdout}");
}

#[test]
fn solve_supports_failover_and_raid6() {
    let (ok, stdout, _) = run(&["solve", "--policy", "failover", "--hep", "0.01"]);
    assert!(ok);
    assert!(stdout.contains("policy=failover"));

    let (ok, stdout, _) = run(&["solve", "--raid", "r6-6", "--lambda", "1e-5"]);
    assert!(ok);
    assert!(stdout.contains("RAID6(6+2)"));
}

#[test]
fn sweep_reports_underestimation_column() {
    let (ok, stdout, _) = run(&["sweep", "--points", "3"]);
    assert!(ok);
    assert!(stdout.contains("vs hep=0"));
    assert!(stdout.lines().count() >= 4);
}

#[test]
fn compare_lists_three_configs() {
    let (ok, stdout, _) = run(&["compare"]);
    assert!(ok);
    for label in ["RAID1(1+1)", "RAID5(3+1)", "RAID5(7+1)"] {
        assert!(stdout.contains(label), "{label} missing:\n{stdout}");
    }
}

#[test]
fn validate_is_consistent_at_high_rates() {
    let (ok, stdout, _) = run(&["validate", "--iterations", "2000"]);
    assert!(ok);
    assert!(stdout.contains("consistent"), "{stdout}");
}

#[test]
fn errors_are_reported_not_panicked() {
    let (ok, _, stderr) = run(&["solve", "--raid", "r9-3"]);
    assert!(!ok);
    assert!(stderr.contains("unknown raid"));

    let (ok, _, stderr) = run(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("unknown command"));

    let (ok, _, stderr) = run(&["solve", "--lambda"]);
    assert!(!ok);
    assert!(stderr.contains("needs a value"));

    let (ok, _, stderr) = run(&[]);
    assert!(!ok);
    assert!(stderr.contains("USAGE"));
}

#[test]
fn help_succeeds() {
    let (ok, stdout, _) = run(&["help"]);
    assert!(ok);
    assert!(stdout.contains("USAGE"));
}
