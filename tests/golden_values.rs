//! Golden-value regression tests: exact (to stated tolerance) numbers for
//! the key operating points, pinned so that refactors of the solvers or the
//! chains cannot silently change the reproduced results.
//!
//! The values were produced by this library (GTH solve of the DESIGN.md §3
//! chains at the paper's §V parameters) and cross-checked against the
//! closed-form first-order expansions in EXPERIMENTS.md.

use availsim::core::markov::{
    GenericKofN, Raid5Conventional, Raid5FailOver, WrongReplacementTiming,
};
use availsim::core::ModelParams;
use availsim::hra::Hep;
use availsim::storage::RaidGeometry;

fn params(lambda: f64, hep: f64) -> ModelParams {
    ModelParams::raid5_3plus1(lambda, Hep::new(hep).unwrap()).unwrap()
}

fn assert_rel(actual: f64, expected: f64, tol: f64, what: &str) {
    let rel = (actual - expected).abs() / expected.abs();
    assert!(
        rel < tol,
        "{what}: {actual:.6e} vs pinned {expected:.6e} (rel {rel:.2e})"
    );
}

#[test]
fn conventional_unavailability_pinned() {
    // (λ, hep) -> U from the Fig. 2 chain, change-action timing.
    let cases = [
        (1e-6, 0.0, 4.000e-9),
        (1e-6, 0.001, 5.635e-8),
        (1e-6, 0.01, 4.929e-7),
        (5e-7, 0.01, 2.4556e-7),
        (1e-5, 0.01, 5.2565e-6),
    ];
    for (lam, hep, expected) in cases {
        let u = Raid5Conventional::new(params(lam, hep))
            .unwrap()
            .solve()
            .unwrap()
            .unavailability();
        assert_rel(u, expected, 1e-3, &format!("U(λ={lam}, hep={hep})"));
    }
}

#[test]
fn conventional_as_labeled_unavailability_pinned() {
    let u = Raid5Conventional::new(params(1e-6, 0.01))
        .unwrap()
        .with_timing(WrongReplacementTiming::RepairCompletion)
        .solve()
        .unwrap()
        .unavailability();
    assert_rel(u, 5.730e-8, 1e-3, "as-labeled U(λ=1e-6, hep=0.01)");
}

#[test]
fn failover_unavailability_pinned() {
    let cases = [
        (1e-6, 0.0, 4.006e-9),
        (1e-6, 0.001, 4.027e-9),
        (1e-6, 0.01, 4.413e-9),
    ];
    for (lam, hep, expected) in cases {
        let u = Raid5FailOver::new(params(lam, hep))
            .unwrap()
            .solve()
            .unwrap()
            .unavailability();
        assert_rel(
            u,
            expected,
            2e-2,
            &format!("failover U(λ={lam}, hep={hep})"),
        );
    }
}

#[test]
fn headline_factors_pinned() {
    // 263X-band underestimation at the foot of the Fig. 4 grid.
    let u0 = Raid5Conventional::new(params(5e-7, 0.0))
        .unwrap()
        .solve()
        .unwrap()
        .unavailability();
    let u1 = Raid5Conventional::new(params(5e-7, 0.01))
        .unwrap()
        .solve()
        .unwrap()
        .unavailability();
    assert_rel(u1 / u0, 246.5, 2e-2, "underestimation factor at λ=5e-7");

    // Fig. 7 improvement at hep = 0.01.
    let conv = Raid5Conventional::new(params(1e-6, 0.01))
        .unwrap()
        .solve()
        .unwrap()
        .unavailability();
    let fo = Raid5FailOver::new(params(1e-6, 0.01))
        .unwrap()
        .solve()
        .unwrap()
        .unavailability();
    assert_rel(conv / fo, 111.7, 2e-2, "fail-over improvement at hep=0.01");
}

#[test]
fn raid1_pair_pinned() {
    let p = ModelParams::paper_defaults(RaidGeometry::raid1_pair(), 1e-5, Hep::new(0.01).unwrap())
        .unwrap();
    let u = Raid5Conventional::new(p)
        .unwrap()
        .solve()
        .unwrap()
        .unavailability();
    // 2λ/exit(EXP)·[hep·μs/(…)] + DL term; pinned from the solver.
    assert_rel(u, 2.5069e-6, 1e-2, "RAID1(1+1) U(λ=1e-5, hep=0.01)");
}

#[test]
fn raid6_extension_pinned() {
    let p = ModelParams::paper_defaults(
        RaidGeometry::raid6(6).unwrap(),
        1e-5,
        Hep::new(0.01).unwrap(),
    )
    .unwrap();
    let u = GenericKofN::new(p)
        .unwrap()
        .solve()
        .unwrap()
        .unavailability();
    assert_rel(u, 1.0223e-8, 2e-2, "RAID6(6+2) U(λ=1e-5, hep=0.01)");
}

#[test]
fn mttdl_pinned() {
    // hep = 0 closed form: (μ_DF + n·λ + (n−1)·λ)/(n·(n−1)·λ²) with n=4.
    let m = Raid5Conventional::new(params(1e-6, 0.0))
        .unwrap()
        .mttdl_hours()
        .unwrap();
    let expect = (0.1 + 7e-6) / (12.0 * 1e-12);
    assert_rel(m, expect, 1e-6, "MTTDL closed form");
}

#[test]
fn mc_point_estimate_pinned_by_seed() {
    // Full determinism: a fixed seed must reproduce the exact availability
    // bit pattern across runs and thread counts.
    use availsim::core::mc::{ConventionalMc, McConfig};
    let mc = ConventionalMc::new(params(1e-3, 0.01)).unwrap();
    let run = |threads| {
        mc.run(&McConfig {
            iterations: 500,
            horizon_hours: 10_000.0,
            seed: 20_170_327, // DATE'17 conference date
            confidence: 0.99,
            threads,
            ..McConfig::default()
        })
        .unwrap()
        .overall_availability
    };
    let a1 = run(1);
    let a4 = run(4);
    assert_eq!(a1.to_bits(), a4.to_bits());
    // And the value itself is pinned (regression against RNG changes).
    assert_rel(a1, 0.9961, 1e-3, "seeded MC availability");
}
