//! Shape tests for every figure and table of the paper: who wins, which way
//! the curves bend, and the order of magnitude of each headline — the
//! reproduction criteria from DESIGN.md §5.

use availsim::core::analysis::{fig7_policy_sweep, underestimation_sweep};
use availsim::core::markov::{Raid5Conventional, Raid5FailOver};
use availsim::core::mc::{ConventionalMc, McConfig};
use availsim::core::volume::compare_equal_capacity;
use availsim::core::ModelParams;
use availsim::hra::Hep;
use availsim::storage::FailureModel;

fn params(lambda: f64, hep: f64) -> ModelParams {
    ModelParams::raid5_3plus1(lambda, Hep::new(hep).unwrap()).unwrap()
}

/// Fig. 4 shape: availability decreases monotonically in λ and in hep; the
/// hep = 0.01 curve sits strictly below hep = 0.001 across the whole grid.
#[test]
fn fig4_markov_curves_are_ordered_and_monotone() {
    let grid: Vec<f64> = (1..=11).map(|i| i as f64 * 5e-7).collect();
    let mut prev_01 = f64::INFINITY;
    let mut prev_001 = f64::INFINITY;
    for &lam in &grid {
        let n001 = Raid5Conventional::new(params(lam, 0.001))
            .unwrap()
            .solve()
            .unwrap()
            .nines();
        let n01 = Raid5Conventional::new(params(lam, 0.01))
            .unwrap()
            .solve()
            .unwrap()
            .nines();
        assert!(n01 < n001, "hep ordering at λ={lam}");
        assert!(n001 <= prev_001 && n01 <= prev_01, "monotone in λ at {lam}");
        prev_001 = n001;
        prev_01 = n01;
    }
    // Range check: the paper's y-axis spans ~4.5..8.5 nines.
    let top = Raid5Conventional::new(params(5e-7, 0.001))
        .unwrap()
        .solve()
        .unwrap()
        .nines();
    let bottom = Raid5Conventional::new(params(5.5e-6, 0.01))
        .unwrap()
        .solve()
        .unwrap()
        .nines();
    assert!(top > 7.0 && top < 9.0, "top of the plot {top}");
    assert!(bottom > 4.5 && bottom < 6.5, "bottom of the plot {bottom}");
}

/// Fig. 4 validation: the Markov points must fall inside the MC confidence
/// intervals (run at a reduced grid for test speed).
#[test]
fn fig4_markov_inside_mc_confidence_interval() {
    for &(lam, hep) in &[(3e-6, 0.01), (5.5e-6, 0.001)] {
        let p = params(lam, hep);
        let markov = Raid5Conventional::new(p).unwrap().solve().unwrap();
        let est = ConventionalMc::new(p)
            .unwrap()
            .run(&McConfig {
                iterations: 60_000,
                horizon_hours: 87_600.0,
                seed: 4,
                confidence: 0.99,
                threads: 0,
                ..McConfig::default()
            })
            .unwrap();
        assert!(
            est.is_consistent_with(markov.availability()),
            "λ={lam} hep={hep}: markov {:.9} outside {}",
            markov.availability(),
            est.availability
        );
    }
}

/// Fig. 5 shape: for every Weibull field fit, availability decreases in hep;
/// and the fits with higher nominal rate sit lower.
#[test]
fn fig5_weibull_ordering() {
    let fits = availsim::storage::SCHROEDER_GIBSON_FITS;
    let run = |rate: f64, beta: f64, hep: f64| -> f64 {
        let p = params(rate, hep);
        let mc = ConventionalMc::with_failure_model(p, FailureModel::weibull(rate, beta).unwrap())
            .unwrap();
        mc.run(&McConfig {
            iterations: 30_000,
            horizon_hours: 87_600.0,
            seed: 5,
            confidence: 0.99,
            threads: 0,
            ..McConfig::default()
        })
        .unwrap()
        .nines()
    };
    // hep monotonicity for the steepest fit.
    let (rate, beta) = fits[3];
    let n0 = run(rate, beta, 0.0);
    let n001 = run(rate, beta, 0.001);
    let n01 = run(rate, beta, 0.01);
    assert!(n0 > n001 && n001 > n01, "hep ordering: {n0} {n001} {n01}");
    // Rate ordering at hep = 0.01: the mildest fit beats the steepest.
    let (r0, b0) = fits[0];
    let gentle = run(r0, b0, 0.01);
    assert!(gentle > n01, "rate ordering: {gentle} vs {n01}");
}

/// Fig. 6 shape: RAID1 leads at hep = 0; at hep = 0.01 RAID5(7+1) leads and
/// RAID1's advantage is gone (the paper's ranking inversion).
#[test]
fn fig6_ranking_inversion() {
    let at = |hep: f64| {
        let rows = compare_equal_capacity(21, 1e-5, Hep::new(hep).unwrap()).unwrap();
        (rows[0].nines(), rows[1].nines(), rows[2].nines()) // R1, R5(3+1), R5(7+1)
    };
    let (r1_0, r5a_0, r5b_0) = at(0.0);
    assert!(
        r1_0 > r5a_0 && r5a_0 > r5b_0,
        "clean ranking {r1_0} {r5a_0} {r5b_0}"
    );
    let (r1_2, r5a_2, r5b_2) = at(0.01);
    assert!(
        r5b_2 > r1_2,
        "inversion: R5(7+1) {r5b_2} must beat R1 {r1_2}"
    );
    assert!(
        r5a_2 > r1_2,
        "R5(3+1) {r5a_2} must beat R1 {r1_2} at hep=0.01"
    );
    // All configurations lose availability when hep appears.
    assert!(r1_2 < r1_0 && r5a_2 < r5a_0 && r5b_2 < r5b_0);
}

/// Fig. 7 shape + headline: fail-over dominates, the gap grows with hep and
/// reaches ~two orders of magnitude at hep = 0.01.
#[test]
fn fig7_failover_two_orders_of_magnitude() {
    let rows = fig7_policy_sweep(params(1e-6, 0.0)).unwrap();
    assert!(rows[0].improvement() >= 1.0);
    assert!(rows[1].improvement() > rows[0].improvement());
    assert!(rows[2].improvement() > rows[1].improvement());
    assert!(
        rows[2].improvement() > 50.0 && rows[2].improvement() < 500.0,
        "improvement {}",
        rows[2].improvement()
    );
}

/// Headline: the downtime-underestimation maximum lands in the paper's
/// "up to 263X" band over the Fig. 4 grid.
#[test]
fn headline_underestimation_band() {
    let grid: Vec<f64> = (1..=11).map(|i| i as f64 * 5e-7).collect();
    let (_, max) = underestimation_sweep(params(1e-6, 0.01), &grid).unwrap();
    assert!((200.0..320.0).contains(&max), "max {max}");
}

/// §V-B: at hep = 0.001 the availability drop is one to two orders of
/// magnitude for small λ.
#[test]
fn headline_one_to_two_orders_at_low_hep() {
    let u0 = Raid5Conventional::new(params(1e-7, 0.0))
        .unwrap()
        .solve()
        .unwrap()
        .unavailability();
    let u1 = Raid5Conventional::new(params(1e-7, 0.001))
        .unwrap()
        .solve()
        .unwrap()
        .unavailability();
    let ratio = u1 / u0;
    assert!((10.0..200.0).contains(&ratio), "ratio {ratio}");
}

/// The fail-over MC agrees with the fail-over chain (Fig. 3 is validated
/// the same way Fig. 2 is validated by Fig. 4).
#[test]
fn failover_mc_validates_failover_markov() {
    use availsim::core::mc::FailOverMc;
    let p = params(2e-3, 0.02);
    let markov = Raid5FailOver::new(p).unwrap().solve().unwrap();
    let est = FailOverMc::new(p)
        .unwrap()
        .run(&McConfig {
            iterations: 2_000,
            horizon_hours: 20_000.0,
            seed: 6,
            confidence: 0.99,
            threads: 0,
            ..McConfig::default()
        })
        .unwrap();
    assert!(
        est.is_consistent_with(markov.availability()),
        "markov {} outside {}",
        markov.availability(),
        est.availability
    );
}
