//! Smoke tests executing the examples the README leads with, end to end.
//!
//! These shell out to `cargo run --example` (the only stable way to locate
//! example binaries from an integration test) and assert on the rendered
//! output, so a drifting example API or a panicking walkthrough fails CI.

use std::process::Command;

fn run_example(name: &str) -> String {
    let out = Command::new(env!("CARGO"))
        .args(["run", "--quiet", "--example", name])
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .unwrap_or_else(|e| panic!("cargo run --example {name} failed to spawn: {e}"));
    assert!(
        out.status.success(),
        "example `{name}` exited nonzero:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn quickstart_reproduces_the_headline_table() {
    let stdout = run_example("quickstart");
    assert!(stdout.contains("RAID5 (3+1)"), "{stdout}");
    assert!(stdout.contains("unavailability"), "{stdout}");
    assert!(stdout.contains("with fail-over"), "{stdout}");
    assert!(
        stdout.contains("underestimates downtime"),
        "headline underestimation factor missing:\n{stdout}"
    );
}

#[test]
fn campaign_example_expands_runs_and_verifies_determinism() {
    let stdout = run_example("campaign");
    assert!(stdout.contains("campaign hep-lambda-surface"), "{stdout}");
    assert!(stdout.contains("cells     : 12"), "{stdout}");
    assert!(stdout.contains("CSV:"), "{stdout}");
    assert!(
        stdout.contains("byte-identical to 1 worker"),
        "determinism check missing:\n{stdout}"
    );
}

#[test]
fn hra_calculator_walks_heart_and_therp() {
    let stdout = run_example("hra_calculator");
    assert!(stdout.contains("published hep bands"), "{stdout}");
    assert!(stdout.contains("HEART assessment"), "{stdout}");
    assert!(stdout.contains("THERP event tree"), "{stdout}");
    assert!(stdout.contains("procedure-level hep"), "{stdout}");
    assert!(stdout.contains("recovery dynamics"), "{stdout}");
}
