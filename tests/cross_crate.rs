//! Cross-crate integration: the public API as a downstream user would
//! compose it — HRA quantification feeding storage models feeding the
//! availability analyses, with the CTMC and simulation kernels underneath.

use availsim::core::markov::{GenericKofN, Raid5Conventional};
use availsim::core::{nines, ModelParams};
use availsim::ctmc::{CtmcBuilder, SteadyStateMethod};
use availsim::hra::heart::disk_replacement_example;
use availsim::hra::therp::disk_replacement_tree;
use availsim::hra::{Hep, RecoveryModel};
use availsim::sim::distributions::{Exponential, Lifetime, Weibull};
use availsim::sim::rng::SimRng;
use availsim::sim::stats::{ks_test, t_interval, RunningStats};
use availsim::storage::{
    ArrayStatus, DatacenterModel, DiskArray, FailureModel, RaidGeometry, ServiceRates, Volume,
};

/// End-to-end: HEART → hep → Markov model → nines, all through public API.
#[test]
fn heart_to_availability_pipeline() {
    let hep = disk_replacement_example().hep().unwrap();
    assert!(hep.is_within_enterprise_band());

    let params = ModelParams::raid5_3plus1(1e-6, hep).unwrap();
    let solved = Raid5Conventional::new(params).unwrap().solve().unwrap();
    let n = solved.nines();
    // hep ≈ 0.008 lands between the paper's 0.001 and 0.01 sweep points.
    let n_low = Raid5Conventional::new(params.with_hep(Hep::new(0.001).unwrap()))
        .unwrap()
        .solve()
        .unwrap()
        .nines();
    let n_high = Raid5Conventional::new(params.with_hep(Hep::new(0.01).unwrap()))
        .unwrap()
        .solve()
        .unwrap()
        .nines();
    assert!(n_high < n && n < n_low, "{n_high} < {n} < {n_low}");
}

/// THERP tree hep ≈ HEART hep order of magnitude; recovery model exposes
/// the paper's μ_he dynamics.
#[test]
fn therp_and_recovery_compose() {
    let base = Hep::new(0.01).unwrap();
    let tree = disk_replacement_tree(base).unwrap();
    let overall = tree.overall_hep().unwrap();
    assert!(overall.value() > 0.001 && overall.value() < 0.1);

    let recovery = RecoveryModel::paper_defaults(overall).unwrap();
    assert!(recovery.mean_outage_hours() > 0.9 && recovery.mean_outage_hours() < 1.5);
    assert!(recovery.escalation_probability() < 0.05);
}

/// The service-rate table flows from storage into the core parameters.
#[test]
fn service_rates_match_model_params() {
    let rates = ServiceRates::paper_defaults();
    let params = ModelParams::raid5_3plus1(1e-6, Hep::ZERO).unwrap();
    assert_eq!(params.disk_repair_rate, rates.disk_repair);
    assert_eq!(params.ddf_recovery_rate, rates.backup_restore);
    assert_eq!(params.human_recovery_rate, rates.human_error_recovery);
    assert_eq!(params.removed_crash_rate, rates.removed_disk_crash);
}

/// A user-built CTMC and the packaged model agree on a two-state system.
#[test]
fn custom_ctmc_through_facade() {
    let mut b = CtmcBuilder::new();
    let up = b.state("up").unwrap();
    let down = b.state("down").unwrap();
    b.transition(up, down, 1e-4).unwrap();
    b.transition(down, up, 0.1).unwrap();
    let chain = b.build().unwrap();
    let gth = chain.steady_state().unwrap();
    let lu = chain
        .steady_state_with(SteadyStateMethod::DirectLu)
        .unwrap();
    assert!((gth[1] - 1e-4 / (0.1 + 1e-4)).abs() < 1e-15);
    assert!((gth[1] - lu[1]).abs() < 1e-12);
    assert!((nines::nines_from_unavailability(gth[1]) - 3.0).abs() < 0.01);
}

/// Storage state machine drives the same verdicts the Markov states encode.
#[test]
fn array_state_machine_mirrors_markov_states() {
    let mut array = DiskArray::new(RaidGeometry::raid5(3).unwrap());
    assert_eq!(array.status(), ArrayStatus::Optimal); // OP
    array.fail_disk().unwrap();
    assert_eq!(array.status(), ArrayStatus::Degraded); // EXP
    array.wrong_removal().unwrap();
    assert_eq!(array.status(), ArrayStatus::Unavailable); // DU
    array.crash_wrongly_removed().unwrap();
    assert_eq!(array.status(), ArrayStatus::DataLoss); // DL
    array.restore_from_backup();
    assert_eq!(array.status(), ArrayStatus::Optimal); // back to OP
}

/// Sampling through the facade: distributions, KS validation, CI machinery.
#[test]
fn simulation_kernel_through_facade() {
    let d = Weibull::from_rate_shape(2e-5, 1.48).unwrap();
    let mut rng = SimRng::seed_from(77);
    let samples: Vec<f64> = (0..3_000).map(|_| d.sample(&mut rng)).collect();
    let ks = ks_test(&samples, &d).unwrap();
    assert!(ks.p_value > 0.01);

    let e = Exponential::from_mean(5.0).unwrap();
    let mut stats = RunningStats::new();
    for _ in 0..5_000 {
        stats.push(e.sample(&mut rng));
    }
    let ci = t_interval(&stats, 0.99).unwrap();
    assert!(ci.contains(5.0), "{ci}");
}

/// The generic chain extends the paper to RAID6 through the same API.
#[test]
fn raid6_extension_is_reachable() {
    let params = ModelParams::paper_defaults(
        RaidGeometry::raid6(6).unwrap(),
        1e-5,
        Hep::new(0.01).unwrap(),
    )
    .unwrap();
    let model = GenericKofN::new(params).unwrap();
    let solved = model.solve().unwrap();
    assert!(
        solved.nines() > 6.0,
        "RAID6 should be strong: {}",
        solved.nines()
    );
    let mttdl_years = model.mttdl_hours().unwrap() / availsim::storage::HOURS_PER_YEAR;
    assert!(mttdl_years > 1_000.0);
}

/// Fleet arithmetic and volume composition agree on disk counts.
#[test]
fn datacenter_and_volume_bookkeeping() {
    let dc = DatacenterModel::new(1_000_000, 1e-6, 0.01).unwrap();
    let geometry = RaidGeometry::raid5(3).unwrap();
    let arrays = dc.num_disks() / u64::from(geometry.total_disks());
    let volume = Volume::new(geometry, arrays);
    assert_eq!(volume.total_disks(), 1_000_000);
    assert_eq!(volume.usable_capacity(), 750_000);
    // Failure stream feeds the fleet model.
    let fm = FailureModel::exponential(dc.per_disk_failure_rate()).unwrap();
    assert!((fm.mttf_hours() - 1e6).abs() < 1.0);
}
