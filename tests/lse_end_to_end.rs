//! End-to-end LSE study: the scrubbing exposure model (storage) feeds the
//! generic availability chain (core), closing the loop the paper's
//! introduction opens when it names LSEs among the main data-loss sources.

use availsim::core::markov::GenericKofN;
use availsim::core::ModelParams;
use availsim::hra::Hep;
use availsim::storage::{RaidGeometry, ScrubbingModel, HOURS_PER_YEAR};

fn model_with_scrub(days: f64) -> GenericKofN {
    let geometry = RaidGeometry::raid5(7).unwrap();
    let params = ModelParams::paper_defaults(geometry, 1e-5, Hep::new(0.001).unwrap()).unwrap();
    let scrub =
        ScrubbingModel::new(ScrubbingModel::field_defaults().lse_rate, days * 24.0).unwrap();
    let p_ue = scrub.rebuild_failure_probability(geometry.total_disks() - 1);
    GenericKofN::new(params)
        .unwrap()
        .with_rebuild_failure_probability(p_ue)
}

#[test]
fn tighter_scrubbing_monotonically_improves_both_metrics() {
    let mut prev_u = 0.0;
    let mut prev_mttdl = f64::INFINITY;
    for days in [1.0, 7.0, 30.0, 120.0] {
        let m = model_with_scrub(days);
        let u = m.solve().unwrap().unavailability();
        let mttdl = m.mttdl_hours().unwrap();
        assert!(
            u >= prev_u,
            "unavailability must grow with the period ({days} d)"
        );
        assert!(
            mttdl <= prev_mttdl,
            "mttdl must shrink with the period ({days} d)"
        );
        prev_u = u;
        prev_mttdl = mttdl;
    }
}

#[test]
fn weekly_scrub_keeps_mttdl_in_century_range() {
    let m = model_with_scrub(7.0);
    let years = m.mttdl_hours().unwrap() / HOURS_PER_YEAR;
    assert!(years > 100.0 && years < 5_000.0, "MTTDL {years:.0} yr");
}

#[test]
fn lse_and_human_error_compose() {
    // Both effects must be visible simultaneously: removing either one
    // improves the solved unavailability.
    let geometry = RaidGeometry::raid5(7).unwrap();
    let scrub = ScrubbingModel::field_defaults();
    let p_ue = scrub.rebuild_failure_probability(geometry.total_disks() - 1);

    let full = GenericKofN::new(
        ModelParams::paper_defaults(geometry, 1e-5, Hep::new(0.01).unwrap()).unwrap(),
    )
    .unwrap()
    .with_rebuild_failure_probability(p_ue)
    .solve()
    .unwrap()
    .unavailability();

    let no_lse = GenericKofN::new(
        ModelParams::paper_defaults(geometry, 1e-5, Hep::new(0.01).unwrap()).unwrap(),
    )
    .unwrap()
    .solve()
    .unwrap()
    .unavailability();

    let no_hep = GenericKofN::new(ModelParams::paper_defaults(geometry, 1e-5, Hep::ZERO).unwrap())
        .unwrap()
        .with_rebuild_failure_probability(p_ue)
        .solve()
        .unwrap()
        .unavailability();

    assert!(
        no_lse < full,
        "removing LSEs must help: {no_lse:.3e} vs {full:.3e}"
    );
    assert!(
        no_hep < full,
        "removing human error must help: {no_hep:.3e} vs {full:.3e}"
    );
}

#[test]
fn sizing_helper_meets_its_target_in_the_chain() {
    // required_scrub_interval promises p_ue <= target; verify through the
    // whole pipeline that the chain's DL mass behaves accordingly.
    let geometry = RaidGeometry::raid5(7).unwrap();
    let lse_rate = ScrubbingModel::field_defaults().lse_rate;
    let target = 1e-4;
    let interval =
        ScrubbingModel::required_scrub_interval(lse_rate, geometry.total_disks() - 1, target)
            .unwrap();
    let scrub = ScrubbingModel::new(lse_rate, interval).unwrap();
    let p_ue = scrub.rebuild_failure_probability(geometry.total_disks() - 1);
    assert!((p_ue - target).abs() < 1e-12);

    let params = ModelParams::paper_defaults(geometry, 1e-5, Hep::ZERO).unwrap();
    let with = GenericKofN::new(params)
        .unwrap()
        .with_rebuild_failure_probability(p_ue)
        .mttdl_hours()
        .unwrap();
    let without = GenericKofN::new(params).unwrap().mttdl_hours().unwrap();
    // At p_ue = 1e-4 the MTTDL penalty must stay below ~35%.
    assert!(with > 0.65 * without, "{with:.3e} vs {without:.3e}");
}
