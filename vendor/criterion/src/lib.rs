//! Offline vendored shim of the [criterion](https://crates.io/crates/criterion)
//! benchmarking API surface used by this workspace.
//!
//! The build container cannot reach crates.io, so this crate provides the
//! subset the nine bench targets rely on — [`Criterion`],
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`], [`black_box`], and
//! the [`criterion_group!`] / [`criterion_main!`] macros — with a simple
//! median-of-samples wall-clock measurement and a plain-text report. Swap it
//! for the real `criterion` in `[workspace.dependencies]` once a registry is
//! reachable.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver: holds measurement settings, runs closures,
/// prints one line per benchmark.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 20,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(2),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark (min 2).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Time spent running the closure before measurement starts.
    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.warm_up_time = t;
        self
    }

    /// Total time budget for the timed samples.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// CLI-args hook. The shim honours one flag: `--test` (alias
    /// `--quick`), real criterion's "run each benchmark once to check it
    /// works" mode — samples and time budgets collapse to near-zero so
    /// `cargo bench -- --test` *executes* every bench body in seconds
    /// (used by CI's quick-mode bench step). All other arguments are
    /// ignored.
    pub fn configure_from_args(mut self) -> Self {
        if std::env::args().any(|a| a == "--test" || a == "--quick") {
            self.sample_size = 2;
            self.warm_up_time = Duration::from_millis(1);
            self.measurement_time = Duration::from_millis(20);
        }
        self
    }

    /// Times `f` under the label `id`.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(self, id, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        let settings = self.clone();
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            settings,
        }
    }

    /// End-of-run hook invoked by [`criterion_main!`].
    pub fn final_summary(&mut self) {}
}

/// A named collection of benchmarks sharing the parent's settings.
///
/// Setting overrides here scopes them to the group, matching real criterion:
/// the parent [`Criterion`] is untouched once the group is dropped.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    settings: Criterion,
}

impl BenchmarkGroup<'_> {
    /// Per-group override of the parent's sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.settings.sample_size = n.max(2);
        self
    }

    /// Per-group override of the parent's measurement budget.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.settings.measurement_time = t;
        self
    }

    /// Times `f` under `group/id`.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_one(&self.settings, &label, &mut f);
        self
    }

    /// Times `f(b, input)` under `group/id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_one(&self.settings, &label, &mut |b: &mut Bencher| {
            b_with(b, input, &mut f)
        });
        self
    }

    /// Closes the group (report already printed per benchmark).
    pub fn finish(self) {}
}

fn b_with<I: ?Sized, F>(b: &mut Bencher, input: &I, f: &mut F)
where
    F: FnMut(&mut Bencher, &I),
{
    f(b, input);
}

/// A `name/parameter` benchmark label.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Label `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Label from the parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

/// Things usable as a benchmark label.
pub trait IntoBenchmarkId {
    /// The rendered label.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.label
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] does the timing.
pub struct Bencher {
    iters_per_sample: u64,
    samples: Vec<Duration>,
    mode: Mode,
}

enum Mode {
    /// Short calibration run to size `iters_per_sample`.
    Calibrate { elapsed: Duration, iters: u64 },
    /// Real measurement.
    Measure,
}

impl Bencher {
    /// Times repeated calls of `routine`.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        match self.mode {
            Mode::Calibrate { .. } => {
                // Run for ~10ms to estimate the per-call cost.
                let start = Instant::now();
                let mut iters = 0u64;
                while start.elapsed() < Duration::from_millis(10) {
                    black_box(routine());
                    iters += 1;
                }
                self.mode = Mode::Calibrate {
                    elapsed: start.elapsed(),
                    iters,
                };
            }
            Mode::Measure => {
                let start = Instant::now();
                for _ in 0..self.iters_per_sample {
                    black_box(routine());
                }
                self.samples.push(start.elapsed());
            }
        }
    }

    /// `iter` variant that hands the routine a fresh input per batch.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        self.iter(|| routine(setup()));
    }
}

/// Batch sizing hint (ignored by the shim).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

fn run_one<F>(c: &Criterion, label: &str, f: &mut F)
where
    F: FnMut(&mut Bencher),
{
    // Calibration pass: find how many iterations fill one sample slot.
    let mut bencher = Bencher {
        iters_per_sample: 1,
        samples: Vec::new(),
        mode: Mode::Calibrate {
            elapsed: Duration::ZERO,
            iters: 1,
        },
    };
    f(&mut bencher);
    let per_call = match bencher.mode {
        Mode::Calibrate { elapsed, iters } => elapsed.as_secs_f64() / iters.max(1) as f64,
        Mode::Measure => 1e-6,
    };

    // Warm-up.
    let warm_start = Instant::now();
    while warm_start.elapsed() < c.warm_up_time {
        let mut wb = Bencher {
            iters_per_sample: 1,
            samples: Vec::new(),
            mode: Mode::Measure,
        };
        f(&mut wb);
    }

    let sample_budget = c.measurement_time.as_secs_f64() / c.sample_size as f64;
    let iters_per_sample = (sample_budget / per_call.max(1e-9)).ceil().max(1.0) as u64;

    let mut bencher = Bencher {
        iters_per_sample,
        samples: Vec::with_capacity(c.sample_size),
        mode: Mode::Measure,
    };
    for _ in 0..c.sample_size {
        f(&mut bencher);
    }

    let mut per_iter: Vec<f64> = bencher
        .samples
        .iter()
        .map(|d| d.as_secs_f64() / iters_per_sample as f64)
        .collect();
    if per_iter.is_empty() {
        println!("{label:<48} time: [no samples — closure never called b.iter]");
        return;
    }
    per_iter.sort_by(|a, b| a.total_cmp(b));
    let median = per_iter[per_iter.len() / 2];
    let (lo, hi) = (per_iter[0], per_iter[per_iter.len() - 1]);
    println!(
        "{label:<48} time: [{} {} {}]",
        fmt_time(lo),
        fmt_time(median),
        fmt_time(hi)
    );
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

/// Bundles bench functions (optionally with a shared `config = ...`) into one
/// callable group, mirroring criterion's macro forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config.configure_from_args();
            $($target(&mut criterion);)+
            criterion.final_summary();
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Generates `main` running each group, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
