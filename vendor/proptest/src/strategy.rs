//! The [`Strategy`] trait and the combinators the workspace's property suites
//! use: ranges, tuples, [`Just`], map/flat-map, and unions.

use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating random values of one type.
///
/// Unlike real proptest there is no value tree and no shrinking: `generate`
/// directly yields a value from the RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Keeps only values satisfying `pred` (rejection sampling, bounded).
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            pred,
            whence,
        }
    }
}

/// Blanket impl so `Box<dyn Strategy>` (and references) compose.
impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Always yields a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    pred: F,
    whence: &'static str,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter `{}` rejected 10000 consecutive values",
            self.whence
        );
    }
}

/// Uniform choice among boxed strategies of one value type (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
    _marker: PhantomData<T>,
}

impl<T> Union<T> {
    /// A union over `options`; must be non-empty.
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Self {
            options,
            _marker: PhantomData,
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

macro_rules! impl_int_range {
    ($($ty:ty),+) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty integer range strategy");
                let span = (self.end as u128 - self.start as u128) as u64;
                self.start + rng.below(span) as $ty
            }
        }

        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty integer range strategy");
                let span = hi as u128 - lo as u128 + 1;
                if span > u64::MAX as u128 {
                    // Full-domain range: every bit pattern is in range.
                    return rng.next_u64() as $ty;
                }
                lo + rng.below(span as u64) as $ty
            }
        }
    )+};
}

impl_int_range!(usize, u8, u16, u32, u64);

macro_rules! impl_signed_range {
    ($($ty:ty),+) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty integer range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $ty
            }
        }

        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty integer range strategy");
                let span = hi as i128 - lo as i128 + 1;
                if span > u64::MAX as i128 {
                    // Full-domain range: every bit pattern is in range.
                    return rng.next_u64() as $ty;
                }
                (lo as i128 + rng.below(span as u64) as i128) as $ty
            }
        }
    )+};
}

impl_signed_range!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty float range strategy");
        // Half the draws are log-uniform when the range spans several orders
        // of magnitude on one side of zero — availability models care about
        // the small-rate corner, which a uniform draw would never visit.
        let (lo, hi) = (self.start, self.end);
        if lo > 0.0 && hi / lo > 1e3 && rng.next_f64() < 0.5 {
            let (llo, lhi) = (lo.ln(), hi.ln());
            let x = (llo + rng.next_f64() * (lhi - llo)).exp();
            return x.clamp(lo, hi.next_down());
        }
        let x = lo + rng.next_f64() * (hi - lo);
        x.clamp(lo, hi.next_down())
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty float range strategy");
        lo + rng.next_f64() * (hi - lo)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty float range strategy");
        let x = self.start + (rng.next_f64() as f32) * (self.end - self.start);
        x.clamp(self.start, self.end.next_down())
    }
}

macro_rules! impl_tuple {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple!(A);
impl_tuple!(A, B);
impl_tuple!(A, B, C);
impl_tuple!(A, B, C, D);
impl_tuple!(A, B, C, D, E);
impl_tuple!(A, B, C, D, E, F);
impl_tuple!(A, B, C, D, E, F, G);
impl_tuple!(A, B, C, D, E, F, G, H);
impl_tuple!(A, B, C, D, E, F, G, H, I);
impl_tuple!(A, B, C, D, E, F, G, H, I, J);
