//! Test-runner plumbing: configuration, case errors, and the deterministic
//! generator RNG.

use std::fmt;

/// Per-suite configuration; only `cases` is interpreted by the shim.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// Why a single generated case failed.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failure carrying `message`.
    pub fn fail(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Deterministic generator RNG (splitmix64), seeded from the test name so
/// every property replays the same case sequence on every run.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// An RNG whose stream is a pure function of `test_name`.
    pub fn for_test(test_name: &str) -> Self {
        // FNV-1a over the name gives a stable, well-mixed seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self {
            state: h ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Next raw 64-bit output (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)` with 53-bit resolution.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Modulo bias is irrelevant at test-generation scale.
        self.next_u64() % bound
    }
}
