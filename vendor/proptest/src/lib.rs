//! Offline vendored shim of the [proptest](https://crates.io/crates/proptest)
//! API surface used by this workspace.
//!
//! The build container has no network access to crates.io, so this crate
//! re-implements the subset of proptest the test suites rely on:
//!
//! * the [`Strategy`] trait with `prop_map` / `prop_flat_map`,
//! * range, tuple, [`Just`], union (`prop_oneof!`) and collection strategies,
//! * [`arbitrary::any`] for primitives,
//! * the [`proptest!`], [`prop_assert!`], [`prop_assert_eq!`] and
//!   [`prop_oneof!`] macros,
//! * [`test_runner::ProptestConfig`] with per-suite case counts.
//!
//! Generation is purely random and there is **no shrinking**: a failing case
//! reports its case index, and because the RNG stream is a pure function of
//! the test name, rerunning the test replays the identical failing inputs.
//! That is sufficient for CI-style property checking; swap this crate for the
//! real `proptest` by editing `[workspace.dependencies]` once a registry is
//! reachable.

#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::prop_assert;
    pub use crate::prop_assert_eq;
    pub use crate::prop_assert_ne;
    pub use crate::prop_oneof;
    pub use crate::proptest;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
}

/// Declares a block of property tests.
///
/// Supports the real-proptest form:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     #[test]
///     fn my_prop(x in 0.0f64..1.0, n in 1usize..10) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!(($cfg); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

/// Internal: expands each `#[test] fn name(arg in strategy, ...) { body }`
/// item into a plain `#[test]` that loops over generated cases.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr);) => {};
    (($cfg:expr); $(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&$strat, &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest case {}/{} failed for `{}`: {}",
                        case + 1,
                        config.cases,
                        stringify!($name),
                        e
                    );
                }
            }
        }
        $crate::__proptest_items!(($cfg); $($rest)*);
    };
}

/// Asserts a condition inside a `proptest!` body, failing the current case
/// (with an optional formatted message) instead of panicking outright.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Equality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (lhs, rhs) = (&$a, &$b);
        if !(*lhs == *rhs) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {} == {}", stringify!($a), stringify!($b)),
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$a, &$b);
        if !(*lhs == *rhs) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    }};
}

/// Inequality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (lhs, rhs) = (&$a, &$b);
        if *lhs == *rhs {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} != {}",
                stringify!($a),
                stringify!($b)
            )));
        }
    }};
}

/// Picks uniformly among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {{
        let options: ::std::vec::Vec<
            ::std::boxed::Box<dyn $crate::strategy::Strategy<Value = _>>,
        > = vec![$(::std::boxed::Box::new($strat)),+];
        $crate::strategy::Union::new(options)
    }};
}
