//! `any::<T>()` for primitives.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws one value from the type's full domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The canonical strategy for `T` (`any::<u64>()` etc.).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// See [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_uint {
    ($($ty:ty),+) => {$(
        impl Arbitrary for $ty {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $ty
            }
        }
    )+};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite, sign-symmetric, spanning many magnitudes.
        let mag = (rng.next_f64() * 600.0 - 300.0).exp2();
        if rng.next_u64() & 1 == 1 {
            -mag
        } else {
            mag
        }
    }
}
