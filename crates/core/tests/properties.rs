//! Property-based tests of the availability models over the full parameter
//! space the paper explores (and beyond).

use availsim_core::markov::{
    GenericKofN, Raid5Conventional, Raid5FailOver, WrongReplacementTiming,
};
use availsim_core::ModelParams;
use availsim_hra::Hep;
use availsim_storage::RaidGeometry;
use proptest::prelude::*;

fn arb_params() -> impl Strategy<Value = ModelParams> {
    (
        2u32..9,       // data disks for raid5
        1e-8f64..1e-3, // λ
        0.0f64..0.3,   // hep
        0.01f64..1.0,  // μ_DF
        0.001f64..0.5, // μ_DDF
        0.1f64..5.0,   // μ_he
        0.1f64..5.0,   // μ_ch
        0.0f64..0.1,   // λ_crash
    )
        .prop_map(|(k, lam, hep, mu_df, mu_ddf, mu_he, mu_ch, crash)| {
            let mut p = ModelParams::paper_defaults(
                RaidGeometry::raid5(k).unwrap(),
                lam,
                Hep::new(hep).unwrap(),
            )
            .unwrap();
            p.disk_repair_rate = mu_df;
            p.ddf_recovery_rate = mu_ddf;
            p.human_recovery_rate = mu_he;
            p.disk_change_rate = mu_ch;
            p.removed_crash_rate = crash;
            p
        })
}

/// The paper's operating regime: failures are rare relative to every
/// service process (λ ≤ 2e-5 against service rates ≥ 0.03).
fn arb_paper_regime() -> impl Strategy<Value = ModelParams> {
    (
        2u32..9,
        1e-8f64..2e-5,
        0.05f64..0.5, // μ_DF
        0.01f64..0.1, // μ_DDF
        0.5f64..2.0,  // μ_he
        0.5f64..2.0,  // μ_ch
        0.0f64..0.02, // λ_crash
    )
        .prop_map(|(k, lam, mu_df, mu_ddf, mu_he, mu_ch, crash)| {
            let mut p =
                ModelParams::paper_defaults(RaidGeometry::raid5(k).unwrap(), lam, Hep::ZERO)
                    .unwrap();
            p.disk_repair_rate = mu_df;
            p.ddf_recovery_rate = mu_ddf;
            p.human_recovery_rate = mu_he;
            p.disk_change_rate = mu_ch;
            p.removed_crash_rate = crash;
            p
        })
}

/// Documented model boundary (found by property testing): outside the
/// rare-failure regime, the Fig. 2 abstraction lets a wrong replacement act
/// as a repair *shortcut*. The `DU → OP` edge bundles "undo the error and
/// complete the repair" at rate `μ_he`; when `μ_he ≫ μ_DF` and the restore
/// rate `μ_DDF` is very slow, routing through DU shortens the exposed window
/// enough that *more* human error means *less* downtime. The paper's
/// conclusions are unaffected (its λ/μ ratios are ≤ 2e-4), but users feeding
/// the model aggressive rates should know the boundary exists.
#[test]
fn hep_can_help_outside_the_rare_failure_regime() {
    let mut p = ModelParams::paper_defaults(
        RaidGeometry::raid5(2).unwrap(),
        9.5e-4, // λ comparable to μ_DF
        Hep::ZERO,
    )
    .unwrap();
    p.disk_repair_rate = 0.01; // 100-hour repairs
    p.ddf_recovery_rate = 0.001; // 1000-hour restores
    p.human_recovery_rate = 3.5;
    p.disk_change_rate = 0.1;
    p.removed_crash_rate = 0.0;

    let u0 = Raid5Conventional::new(p)
        .unwrap()
        .solve()
        .unwrap()
        .unavailability();
    let u_hep = Raid5Conventional::new(p.with_hep(Hep::new(0.2).unwrap()))
        .unwrap()
        .solve()
        .unwrap()
        .unavailability();
    assert!(
        u_hep < u0,
        "expected the shortcut artifact: hep=0.2 ({u_hep:.4e}) below hep=0 ({u0:.4e})"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn conventional_unavailability_is_a_probability(p in arb_params()) {
        let s = Raid5Conventional::new(p).unwrap().solve().unwrap();
        let u = s.unavailability();
        prop_assert!((0.0..=1.0).contains(&u), "u = {u}");
        let total: f64 = s.probabilities().iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-10);
        prop_assert!(s.probabilities().iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn failover_unavailability_is_a_probability(p in arb_params()) {
        let s = Raid5FailOver::new(p).unwrap().solve().unwrap();
        let u = s.unavailability();
        prop_assert!((0.0..=1.0).contains(&u), "u = {u}");
        let total: f64 = s.probabilities().iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-10);
    }

    #[test]
    fn more_hep_never_helps_in_the_paper_regime(p in arb_paper_regime()) {
        // Monotonicity in hep holds in the rare-failure regime (λ ≪ service
        // rates). Outside it the Fig. 2 abstraction admits a "shortcut"
        // artifact — see `hep_can_help_outside_the_rare_failure_regime`.
        let lo = Raid5Conventional::new(p.with_hep(Hep::new(0.0).unwrap()))
            .unwrap().solve().unwrap().unavailability();
        let hi = Raid5Conventional::new(p.with_hep(Hep::new(0.05).unwrap()))
            .unwrap().solve().unwrap().unavailability();
        prop_assert!(hi >= lo * (1.0 - 1e-9), "hep=0 gives {lo}, hep=0.05 gives {hi}");
    }

    #[test]
    fn failover_never_loses_in_the_paper_regime(p in arb_paper_regime()) {
        // With hep > 0 in the rare-failure regime, delayed replacement wins.
        // (At hep = 0 exactly, fail-over is worse by an O(λ³) term: the
        // no-spare window OPns→EXPns1→DLns adds exposure conventional
        // replacement does not have.)
        let p = p.with_hep(Hep::new(0.01).unwrap());
        let conv = Raid5Conventional::new(p).unwrap().solve().unwrap().unavailability();
        let fo = Raid5FailOver::new(p).unwrap().solve().unwrap().unavailability();
        prop_assert!(fo <= conv * (1.0 + 1e-6), "fo {fo} vs conv {conv}");
    }

    #[test]
    fn generic_m1_equals_fig2(p in arb_params()) {
        let generic = GenericKofN::new(p).unwrap().solve().unwrap().unavailability();
        let fig2 = Raid5Conventional::new(p)
            .unwrap()
            .with_timing(WrongReplacementTiming::RepairCompletion)
            .solve()
            .unwrap()
            .unavailability();
        let rel = if fig2 == 0.0 { generic } else { (generic - fig2).abs() / fig2 };
        prop_assert!(rel < 1e-8, "generic {generic:.6e} vs fig2 {fig2:.6e}");
    }

    #[test]
    fn mttdl_is_positive_and_finite(p in arb_params()) {
        let conv = Raid5Conventional::new(p).unwrap().mttdl_hours().unwrap();
        prop_assert!(conv.is_finite() && conv > 0.0);
        let fo = Raid5FailOver::new(p).unwrap().mttdl_hours().unwrap();
        prop_assert!(fo.is_finite() && fo > 0.0);
    }

    #[test]
    fn faster_repair_never_hurts(p in arb_params()) {
        let mut faster = p;
        faster.disk_repair_rate = p.disk_repair_rate * 2.0;
        let base = Raid5Conventional::new(p).unwrap().solve().unwrap().unavailability();
        let quick = Raid5Conventional::new(faster).unwrap().solve().unwrap().unavailability();
        prop_assert!(quick <= base * (1.0 + 1e-9), "quick {quick} vs base {base}");
    }

    #[test]
    fn nines_conversions_roundtrip(u in 1e-15f64..0.99) {
        use availsim_core::nines::{nines_from_unavailability, unavailability_from_nines};
        let n = nines_from_unavailability(u);
        let back = unavailability_from_nines(n);
        prop_assert!((back - u).abs() / u < 1e-10);
    }
}

/// Monte-Carlo vs Markov over random (but fast-mixing) operating points —
/// the Fig. 4 methodology as a property.
#[test]
fn mc_agrees_with_markov_at_random_points() {
    use availsim_core::mc::{ConventionalMc, McConfig};
    let heps = [0.0, 0.01, 0.05];
    let lambdas = [5e-4, 2e-3];
    let mut checked = 0;
    for (i, &hep) in heps.iter().enumerate() {
        for (j, &lam) in lambdas.iter().enumerate() {
            let p = ModelParams::raid5_3plus1(lam, Hep::new(hep).unwrap()).unwrap();
            let config = McConfig {
                iterations: 400,
                horizon_hours: 20_000.0,
                seed: (i * 10 + j) as u64,
                confidence: 0.995,
                threads: 0,
                ..McConfig::default()
            };
            let est = ConventionalMc::new(p).unwrap().run(&config).unwrap();
            let markov = Raid5Conventional::new(p).unwrap().solve().unwrap();
            assert!(
                est.is_consistent_with(markov.availability()),
                "λ={lam}, hep={hep}: markov {} outside {}",
                markov.availability(),
                est.availability
            );
            checked += 1;
        }
    }
    assert_eq!(checked, 6);
}
