//! Statistical oracle suite for the rare-event Monte-Carlo schemes.
//!
//! The exponential Fig. 2 / Fig. 3 models have *exact* CTMC solutions, so
//! the biased estimators can be held to analytic answers instead of to
//! other simulations:
//!
//! 1. across a λ grid — including points where naive MC at the same budget
//!    observes **zero** failures — the importance-sampled CI must cover the
//!    exact chain unavailability;
//! 2. the ESS / max-weight diagnostics must stay within bounds (weights
//!    well-behaved, no single path dominating);
//! 3. every scheme honours the `threads = 1` vs `threads = N` bit-identity
//!    contract (per-mission weights merged in index order);
//! 4. fixed-effort splitting, run on an exponential model so the oracle
//!    applies, must cover the same exact value.
//!
//! Property tests (vendored proptest, fixed per-test RNG streams) pin the
//! algebraic guarantees: weights are always finite and positive, `bias = 0`
//! degenerates bit-for-bit to the naive estimator, and single-level
//! splitting is bit-for-bit the plain event-queue run.

use availsim_core::markov::{Raid5Conventional, Raid5FailOver};
use availsim_core::mc::{ConventionalMc, FailOverMc, McConfig, McVariance, SimWorkspace};
use availsim_core::ModelParams;
use availsim_hra::Hep;
use availsim_sim::rng::SimRng;
use availsim_storage::FailureModel;
use proptest::prelude::*;

fn params(lambda: f64, hep: f64) -> ModelParams {
    ModelParams::raid5_3plus1(lambda, Hep::new(hep).unwrap()).unwrap()
}

/// Ten-year missions: the paper's horizon, long enough that the finite-
/// horizon transient (≈ 1/μ_DDF ≈ 33 h of relaxation) is negligible next
/// to the CI widths checked here.
fn biased_config(iterations: u64, seed: u64) -> McConfig {
    McConfig {
        iterations,
        horizon_hours: 87_600.0,
        seed,
        confidence: 0.99,
        threads: 0,
        variance: McVariance::failure_biasing(),
        telemetry: false,
    }
}

#[test]
fn biased_ci_covers_exact_fig2_unavailability_across_the_lambda_grid() {
    // Spans four decades down to λ = 1e-9, where the exact unavailability
    // is ~1e-10 — far beyond anything 4000 naive missions could see.
    for &lambda in &[1e-9, 1e-8, 1e-7, 1e-6] {
        let p = params(lambda, 0.01);
        let exact = Raid5Conventional::new(p)
            .unwrap()
            .solve()
            .unwrap()
            .unavailability();
        let est = ConventionalMc::new(p)
            .unwrap()
            .run(&biased_config(4_000, 2024))
            .unwrap();
        assert!(est.unavailability() > 0.0, "λ={lambda}: estimate is zero");
        assert!(
            est.is_consistent_with_unavailability(exact),
            "λ={lambda}: exact {exact:.4e} outside CI {} (U_est {:.4e})",
            est.availability,
            est.unavailability()
        );
        // The CI is informative at the unavailability's own scale, not a
        // cover-everything interval.
        assert!(
            est.availability.half_width < 10.0 * exact,
            "λ={lambda}: half-width {:.3e} swamps U={exact:.3e}",
            est.availability.half_width
        );
    }
}

#[test]
fn biased_ci_covers_exact_fig3_unavailability() {
    for &lambda in &[1e-8, 1e-6] {
        let p = params(lambda, 0.01);
        let exact = Raid5FailOver::new(p)
            .unwrap()
            .solve()
            .unwrap()
            .unavailability();
        let est = FailOverMc::new(p)
            .unwrap()
            .run(&biased_config(6_000, 7_777))
            .unwrap();
        assert!(est.unavailability() > 0.0, "λ={lambda}: estimate is zero");
        assert!(
            est.is_consistent_with_unavailability(exact),
            "λ={lambda}: exact {exact:.4e} outside CI {} (U_est {:.4e})",
            est.availability,
            est.unavailability()
        );
    }
}

#[test]
fn naive_mc_at_the_same_budget_sees_no_failures_where_biasing_resolves() {
    // The headline rare-event scenario: at λ = 1e-9 a naive 4000-mission
    // run observes nothing (degenerate zero-width CI that the scale-aware
    // consistency check rightly refuses), while the biased run with the
    // identical budget brackets the exact answer.
    let p = params(1e-9, 0.01);
    let exact = Raid5Conventional::new(p)
        .unwrap()
        .solve()
        .unwrap()
        .unavailability();
    let naive = ConventionalMc::new(p)
        .unwrap()
        .run(&McConfig {
            variance: McVariance::Naive,
            ..biased_config(4_000, 2024)
        })
        .unwrap();
    assert_eq!(
        naive.du_events + naive.dl_events,
        0,
        "naive budget unexpectedly observed an outage"
    );
    assert_eq!(naive.unavailability(), 0.0);
    assert_eq!(naive.availability.half_width, 0.0);
    assert!(!naive.is_consistent_with_unavailability(exact));

    let biased = ConventionalMc::new(p)
        .unwrap()
        .run(&biased_config(4_000, 2024))
        .unwrap();
    assert!(biased.is_consistent_with_unavailability(exact));
}

#[test]
fn importance_sampling_diagnostics_stay_within_bounds() {
    for &lambda in &[1e-8, 1e-6] {
        let p = params(lambda, 0.01);
        let est = ConventionalMc::new(p)
            .unwrap()
            .run(&biased_config(4_000, 99))
            .unwrap();
        // Forcing caps every weight by P(first failure ≤ horizon) times the
        // branch ratios; nothing should blow up, and the weight spectrum
        // must keep a healthy share of the sample effective.
        assert!(est.max_weight.is_finite());
        assert!(est.max_weight > 0.0);
        assert!(
            est.max_weight < 100.0,
            "λ={lambda}: max weight {} out of band",
            est.max_weight
        );
        assert!(
            est.effective_sample_size > est.iterations as f64 * 0.01,
            "λ={lambda}: ESS {} of {} — weights degenerate",
            est.effective_sample_size,
            est.iterations
        );
        assert!(est.effective_sample_size <= est.iterations as f64 + 1e-6);
    }
}

#[test]
fn rare_event_schemes_are_bit_identical_across_thread_counts() {
    let p = params(1e-7, 0.01);
    let biased = |threads| {
        ConventionalMc::new(p)
            .unwrap()
            .run(&McConfig {
                threads,
                ..biased_config(700, 5)
            })
            .unwrap()
    };
    let split = |threads| {
        ConventionalMc::new(params(2e-4, 0.02))
            .unwrap()
            .run(&McConfig {
                iterations: 96, // not a multiple of the block size
                horizon_hours: 20_000.0,
                seed: 5,
                confidence: 0.99,
                threads,
                variance: McVariance::Splitting {
                    levels: 2,
                    effort: 24,
                },
                telemetry: false,
            })
            .unwrap()
    };
    let fo_biased = |threads| {
        FailOverMc::new(p)
            .unwrap()
            .run(&McConfig {
                threads,
                ..biased_config(700, 9)
            })
            .unwrap()
    };
    for (a, b) in [
        (biased(1), biased(4)),
        (split(1), split(4)),
        (fo_biased(1), fo_biased(4)),
    ] {
        assert_eq!(
            a.overall_availability.to_bits(),
            b.overall_availability.to_bits()
        );
        assert_eq!(a.availability.mean.to_bits(), b.availability.mean.to_bits());
        assert_eq!(
            a.availability.half_width.to_bits(),
            b.availability.half_width.to_bits()
        );
        assert_eq!(
            a.effective_sample_size.to_bits(),
            b.effective_sample_size.to_bits()
        );
        assert_eq!(a.max_weight.to_bits(), b.max_weight.to_bits());
        assert_eq!(a.du_events, b.du_events);
        assert_eq!(a.dl_events, b.dl_events);
    }
}

#[test]
fn splitting_ci_covers_exact_ctmc_on_the_event_queue_engine() {
    // With exponential failures the event-queue engine is distribution-
    // equivalent to the Fig. 2 chain, so the analytic oracle also holds
    // the splitting estimator to account.
    let p = params(3e-4, 0.01);
    let exact = Raid5Conventional::new(p)
        .unwrap()
        .solve()
        .unwrap()
        .unavailability();
    let est = ConventionalMc::new(p)
        .unwrap()
        .run(&McConfig {
            iterations: 160,
            horizon_hours: 20_000.0,
            seed: 31,
            confidence: 0.99,
            threads: 0,
            variance: McVariance::Splitting {
                levels: 2,
                effort: 48,
            },
            telemetry: false,
        })
        .unwrap();
    assert!(est.unavailability() > 0.0);
    assert!(
        est.is_consistent_with_unavailability(exact),
        "exact {exact:.4e} outside CI {} (U_est {:.4e})",
        est.availability,
        est.unavailability()
    );
}

#[test]
fn biased_precision_run_reaches_a_relative_target_cheaply() {
    // run_to_precision with biasing: ±10% relative on an unavailability
    // around 1e-7 must converge within a budget naive MC could never meet
    // (naive needs ~1/U-scale mission counts; see BENCH_4.json).
    let p = params(2e-7, 0.01);
    let exact = Raid5Conventional::new(p)
        .unwrap()
        .solve()
        .unwrap()
        .unavailability();
    let target = 0.1 * exact;
    let est = ConventionalMc::new(p)
        .unwrap()
        .run_to_precision(&biased_config(2_000, 64), target, 400_000)
        .unwrap();
    assert!(
        est.availability.half_width <= target,
        "did not converge: hw {:.3e} vs target {target:.3e} after {} missions",
        est.availability.half_width,
        est.iterations
    );
    assert!(est.is_consistent_with_unavailability(exact));
    assert!(
        est.iterations < 400_000,
        "biased precision run burnt the whole cap"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Likelihood-ratio weights are always finite and strictly positive —
    /// for both models, across the paper's parameter space and the whole
    /// legal bias range.
    #[test]
    fn weights_are_finite_and_positive(
        lambda in 1e-9f64..1e-3,
        hep in 0.0f64..0.3,
        bias in 0.05f64..0.95,
        seed in 0u64..1_000,
    ) {
        let p = params(lambda, hep);
        let conv = ConventionalMc::new(p).unwrap();
        let fo = FailOverMc::new(p).unwrap();
        let mut ws = SimWorkspace::new();
        for i in 0..16u64 {
            let mut rng = SimRng::substream(seed, i);
            let out = conv.simulate_once_biased_with(50_000.0, bias, &mut rng, &mut ws);
            prop_assert!(out.weight.is_finite() && out.weight > 0.0,
                "conventional weight {}", out.weight);
            prop_assert!((out.weight * out.downtime_hours).is_finite());
            let mut rng = SimRng::substream(seed ^ 0xABCD, i);
            let out = fo.simulate_once_biased_with(50_000.0, bias, &mut rng, &mut ws);
            prop_assert!(out.weight.is_finite() && out.weight > 0.0,
                "failover weight {}", out.weight);
        }
    }

    /// `bias = 0` is *exactly* the naive estimator — same bits, same RNG
    /// consumption, same diagnostics — on both models.
    #[test]
    fn zero_bias_is_bitwise_naive(
        lambda in 1e-6f64..2e-3,
        hep in 0.0f64..0.2,
        seed in 0u64..1_000,
    ) {
        let cfg = McConfig {
            iterations: 64,
            horizon_hours: 30_000.0,
            seed,
            confidence: 0.95,
            threads: 2,
            ..McConfig::default()
        };
        let zero = McConfig {
            variance: McVariance::FailureBiasing { bias: 0.0 },
            ..cfg
        };
        let p = params(lambda, hep);
        let conv = ConventionalMc::new(p).unwrap();
        let (a, b) = (conv.run(&cfg).unwrap(), conv.run(&zero).unwrap());
        prop_assert_eq!(a.overall_availability.to_bits(), b.overall_availability.to_bits());
        prop_assert_eq!(a.availability.half_width.to_bits(), b.availability.half_width.to_bits());
        prop_assert_eq!(a.max_weight.to_bits(), b.max_weight.to_bits());
        prop_assert_eq!(a.du_events, b.du_events);
        let fo = FailOverMc::new(p).unwrap();
        let (a, b) = (fo.run(&cfg).unwrap(), fo.run(&zero).unwrap());
        prop_assert_eq!(a.overall_availability.to_bits(), b.overall_availability.to_bits());
        prop_assert_eq!(a.dl_events, b.dl_events);
    }

    /// Single-level splitting is *exactly* the general event-queue run —
    /// run-for-run, on the Weibull models splitting exists for.
    #[test]
    fn one_level_splitting_is_bitwise_the_event_queue_run(
        rate in 1e-4f64..2e-3,
        shape in 0.8f64..2.0,
        hep in 0.0f64..0.2,
        seed in 0u64..1_000,
        effort in 2u64..64,
    ) {
        let weibull = FailureModel::weibull(rate, shape).unwrap();
        let mc = ConventionalMc::with_failure_model(params(1e-4, hep), weibull).unwrap();
        let cfg = McConfig {
            iterations: 48,
            horizon_hours: 30_000.0,
            seed,
            confidence: 0.95,
            threads: 2,
            ..McConfig::default()
        };
        let naive = mc.run(&McConfig { variance: McVariance::Naive, ..cfg }).unwrap();
        let split = mc.run(&McConfig {
            variance: McVariance::Splitting { levels: 1, effort },
            ..cfg
        }).unwrap();
        prop_assert_eq!(naive.overall_availability.to_bits(), split.overall_availability.to_bits());
        prop_assert_eq!(naive.availability.half_width.to_bits(), split.availability.half_width.to_bits());
        prop_assert_eq!(naive.mean_downtime_hours.to_bits(), split.mean_downtime_hours.to_bits());
        prop_assert_eq!(naive.du_events, split.du_events);
        prop_assert_eq!(naive.dl_events, split.dl_events);
    }
}
