//! Fleet-suite oracle tests: `FleetMc` against the exact Fig. 2 chain,
//! against the single-array engines, and against its own determinism and
//! accounting contracts. Run in CI as a named step.

use availsim_core::markov::Raid5Conventional;
use availsim_core::mc::{
    ConventionalMc, DomainFailures, FleetCoupling, FleetEstimate, FleetMc, McConfig, McEngine,
    McVariance, SimWorkspace, DEGRADED_BINS,
};
use availsim_core::ModelParams;
use availsim_hra::{DependenceLevel, Hep};
use availsim_sim::rng::SimRng;
use availsim_storage::{FailoverPolicy, FailureModel, FleetFailover, FleetSpec, RaidGeometry};

fn spec(arrays: u32) -> FleetSpec {
    FleetSpec::new(arrays, RaidGeometry::raid5(3).unwrap()).unwrap()
}

fn params(lambda: f64, hep: f64) -> ModelParams {
    ModelParams::raid5_3plus1(lambda, Hep::new(hep).unwrap()).unwrap()
}

fn quick_config(iterations: u64) -> McConfig {
    McConfig {
        iterations,
        horizon_hours: 10_000.0,
        seed: 23,
        confidence: 0.99,
        threads: 2,
        ..McConfig::default()
    }
}

#[test]
fn rejects_mismatched_geometry_and_rare_event_schemes() {
    let fleet = FleetSpec::new(4, RaidGeometry::raid5(7).unwrap()).unwrap();
    assert!(FleetMc::new(fleet, params(1e-4, 0.01)).is_err());

    let mc = FleetMc::new(spec(4), params(1e-4, 0.01)).unwrap();
    for variance in [McVariance::failure_biasing(), McVariance::splitting()] {
        let cfg = McConfig {
            variance,
            ..quick_config(10)
        };
        assert!(mc.run(&cfg).is_err(), "{variance} must be rejected");
    }
    assert!(mc
        .run(&McConfig {
            iterations: 1,
            ..quick_config(10)
        })
        .is_err());
}

#[test]
fn single_array_fleet_matches_the_markov_answer() {
    // A = 1 is exactly the conventional model; the fleet estimate must
    // bracket the Fig. 2 chain like the single-array engines do.
    let p = params(1e-3, 0.01);
    let markov = Raid5Conventional::new(p).unwrap().solve().unwrap();
    let est = FleetMc::new(spec(1), p)
        .unwrap()
        .run(&quick_config(600))
        .unwrap();
    let u = markov.unavailability();
    let gap = (est.array_unavailability() - u).abs();
    assert!(
        gap <= est.availability.half_width,
        "fleet U {:.3e} vs markov {u:.3e} (hw {:.3e})",
        est.array_unavailability(),
        est.availability.half_width
    );
    // With one array, fleet-down and array-down coincide.
    assert!((est.fleet_availability - est.overall_array_availability).abs() < 1e-12);
    assert_eq!(est.arrays, 1);
}

#[test]
fn fleet_per_array_availability_matches_the_single_array_engine() {
    // Independence: per-array availability must not depend on A. The
    // CIs of a 16-array fleet and the single-array event-queue engine
    // must overlap.
    let p = params(1e-3, 0.02);
    let fleet = FleetMc::new(spec(16), p)
        .unwrap()
        .run(&quick_config(200))
        .unwrap();
    let single = ConventionalMc::new(p)
        .unwrap()
        .with_engine(McEngine::EventQueue)
        .run(&quick_config(600))
        .unwrap();
    let gap = (fleet.availability.mean - single.availability.mean).abs();
    assert!(
        gap <= fleet.availability.half_width + single.availability.half_width,
        "fleet {} vs single {}",
        fleet.availability,
        single.availability
    );
    assert!(fleet.du_events > 0);
    assert!(fleet.dl_events > 0);
}

#[test]
fn degraded_distribution_is_a_time_share_and_scales_with_fleet_size() {
    let p = params(1e-3, 0.01);
    let small = FleetMc::new(spec(2), p)
        .unwrap()
        .run(&quick_config(60))
        .unwrap();
    let large = FleetMc::new(spec(64), p)
        .unwrap()
        .run(&quick_config(60))
        .unwrap();
    for est in [&small, &large] {
        let total: f64 = est.degraded_time_share.iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "shares sum to {total}");
        assert!(est.degraded_time_share.iter().all(|&s| s >= 0.0));
    }
    // A 32x bigger fleet spends more time with at least one array
    // degraded, and its expected simultaneous-degraded count grows.
    assert!(large.degraded_time_share[0] < small.degraded_time_share[0]);
    assert!(large.mean_degraded() > small.mean_degraded());
    assert!(large.max_degraded >= small.max_degraded);
    assert!(u32::try_from(DEGRADED_BINS).unwrap() > large.max_degraded);
}

#[test]
fn fleet_and_array_downtime_accounting_are_consistent() {
    let p = params(2e-3, 0.05);
    let est = FleetMc::new(spec(8), p)
        .unwrap()
        .run(&quick_config(100))
        .unwrap();
    // Any-array-down time is bounded by summed array downtime (union
    // bound) and positive at these rates.
    let total_time = est.horizon_hours * est.iterations as f64;
    let summed = est.mean_array_downtime_hours * 8.0 * est.iterations as f64;
    assert!(est.annual_any_down_hours > 0.0);
    assert!((1.0 - est.fleet_availability) * total_time <= summed + 1e-6);
    // DU share is a proper fraction and both causes occurred.
    assert!(est.du_downtime_share > 0.0 && est.du_downtime_share < 1.0);
    // Annualisation is the unavailability times the year constant.
    assert!(
        (est.annual_array_downtime_hours
            - est.array_unavailability() * availsim_storage::HOURS_PER_YEAR)
            .abs()
            < 1e-9
    );
}

#[test]
fn thread_count_never_changes_a_bit() {
    let p = params(1e-3, 0.02);
    let mc = FleetMc::new(spec(8), p).unwrap();
    let run = |threads| {
        mc.run(&McConfig {
            iterations: 300, // not a multiple of the block size
            horizon_hours: 20_000.0,
            seed: 77,
            confidence: 0.95,
            threads,
            ..McConfig::default()
        })
        .unwrap()
    };
    let one = run(1);
    let four = run(4);
    assert_eq!(
        one.overall_array_availability.to_bits(),
        four.overall_array_availability.to_bits()
    );
    assert_eq!(
        one.fleet_availability.to_bits(),
        four.fleet_availability.to_bits()
    );
    assert_eq!(
        one.availability.mean.to_bits(),
        four.availability.mean.to_bits()
    );
    assert_eq!(
        one.availability.half_width.to_bits(),
        four.availability.half_width.to_bits()
    );
    assert_eq!(one.du_events, four.du_events);
    assert_eq!(one.dl_events, four.dl_events);
    assert_eq!(one.max_degraded, four.max_degraded);
    for (a, b) in one
        .degraded_time_share
        .iter()
        .zip(&four.degraded_time_share)
    {
        assert_eq!(a.to_bits(), b.to_bits());
    }
    assert!(one.mean_array_downtime_hours > 0.0);
}

#[test]
fn extreme_rate_missions_do_not_overflow_the_event_guards() {
    // Regression for the fleet event payload's gen/epoch width: a valid
    // but absurd λ·horizon drives each disk slot through >100k
    // fail/repair cycles in one mission, far past what a 16-bit counter
    // could hold — the mission must complete (overflow checks are on in
    // test builds) with sane accounting.
    let p = params(0.05, 0.0); // mean lifetime 20 h
    let mc = FleetMc::new(spec(1), p).unwrap();
    let mut ws = SimWorkspace::new();
    let mut rng = SimRng::seed_from(3);
    let horizon = 4_000_000.0;
    let out = mc.simulate_once_with(horizon, &mut rng, &mut ws);
    assert!(out.dl_events > 65_536, "got {} DL events", out.dl_events);
    let total: f64 = out.degraded_hours.iter().sum();
    assert!((total - horizon).abs() < 1e-3, "total {total}");
    assert!(out.array_downtime_hours() > 0.0 && out.array_downtime_hours() < horizon);
}

#[test]
fn weibull_fleets_are_supported() {
    let weibull = FailureModel::weibull(1e-3, 1.48).unwrap();
    let mc = FleetMc::with_failure_model(spec(4), params(1e-4, 0.01), weibull).unwrap();
    let est = mc.run(&quick_config(100)).unwrap();
    assert!(est.overall_array_availability < 1.0);
    assert!(est.overall_array_availability > 0.5);
}

#[test]
fn workspace_reuse_matches_fresh_workspaces_bitwise() {
    let p = params(2e-3, 0.05);
    let mc = FleetMc::new(spec(8), p).unwrap();
    let mut reused = SimWorkspace::new();
    for s in 100..103 {
        let mut rng = SimRng::seed_from(s);
        let _ = mc.simulate_once_with(30_000.0, &mut rng, &mut reused);
    }
    let mut fresh = SimWorkspace::new();
    let mut rng_a = SimRng::seed_from(9);
    let mut rng_b = SimRng::seed_from(9);
    let a = mc.simulate_once_with(30_000.0, &mut rng_a, &mut reused);
    let b = mc.simulate_once_with(30_000.0, &mut rng_b, &mut fresh);
    assert_eq!(
        a.array_downtime_hours().to_bits(),
        b.array_downtime_hours().to_bits()
    );
    assert_eq!(a.any_down_hours.to_bits(), b.any_down_hours.to_bits());
    assert_eq!(a.du_events, b.du_events);
    assert_eq!(a.dl_events, b.dl_events);
    assert_eq!(a.max_degraded, b.max_degraded);
}

/// Every estimate field as raw bits, so "byte-identical" is one equality.
fn digest(est: &FleetEstimate) -> (Vec<u64>, u64, u64, u32) {
    let mut bits = vec![
        est.overall_array_availability.to_bits(),
        est.fleet_availability.to_bits(),
        est.availability.mean.to_bits(),
        est.availability.half_width.to_bits(),
        est.mean_array_downtime_hours.to_bits(),
        est.annual_array_downtime_hours.to_bits(),
        est.annual_any_down_hours.to_bits(),
        est.du_downtime_share.to_bits(),
    ];
    bits.extend(est.degraded_time_share.iter().map(|s| s.to_bits()));
    (bits, est.du_events, est.dl_events, est.max_degraded)
}

fn pin_config(threads: usize) -> McConfig {
    McConfig {
        iterations: 300,
        horizon_hours: 20_000.0,
        seed: 77,
        confidence: 0.95,
        threads,
        ..McConfig::default()
    }
}

/// Frozen from the pre-coupling `FleetMc` (PR 5): the independent limit
/// must keep reproducing these exact bits at any worker count. Pinned by
/// the unlimited-crew, the slack-pool, and the ideal-DR tests alike.
const GOLDEN_SCALARS: [u64; 8] = [
    0x3fefdf96eabac622, // overall_array_availability
    0x3fef006aaf848d71, // fleet_availability
    0x3fefdf96eabac620, // availability.mean
    0x3f1f39512e1f9183, // availability.half_width
    0x4053c8233b8091df, // mean_array_downtime_hours
    0x404157391961ce1b, // annual_array_downtime_hours
    0x407117dd6cf18e65, // annual_any_down_hours
    0x3fc4f82731a782d6, // du_downtime_share
];
const GOLDEN_HIST_HEAD: [u64; 6] = [
    0x3fe7e291ad343c7f,
    0x3fcc7e26fa23ca5f,
    0x3f9d6159b989cb86,
    0x3f61f7dfc78dff46,
    0x3f1ba9d896813645,
    0x3ec25fa902151d7a,
];
const GOLDEN_EVENTS: (u64, u64, u32) = (30_569, 4_853, 5);

fn golden_bits() -> Vec<u64> {
    let mut golden = GOLDEN_SCALARS.to_vec();
    golden.extend_from_slice(&GOLDEN_HIST_HEAD);
    golden.extend(std::iter::repeat_n(
        0u64,
        DEGRADED_BINS - GOLDEN_HIST_HEAD.len(),
    ));
    golden
}

#[test]
fn repair_crew_unlimited_pool_pins_the_pre_coupling_golden_bits() {
    // The independent limit — unlimited crews, zero dependence, no
    // domains — and a never-binding pool of `c = A` crews pin the
    // pre-coupling bits.
    let golden = golden_bits();
    let p = params(1e-3, 0.02);
    let unlimited = FleetMc::new(spec(8), p).unwrap();
    let slack_pool = FleetMc::new(spec(8).with_repairmen(8).unwrap(), p).unwrap();
    for mc in [&unlimited, &slack_pool] {
        for threads in [1, 4] {
            let est = mc.run(&pin_config(threads)).unwrap();
            let (bits, du, dl, maxd) = digest(&est);
            assert_eq!(bits, golden, "threads = {threads}");
            assert_eq!((du, dl, maxd), GOLDEN_EVENTS, "threads = {threads}");
        }
    }
}

#[test]
fn dependence_zero_level_and_lone_incidents_change_nothing() {
    // Explicit zero dependence is the engine default, bit for bit; and
    // with a single array there is never a *concurrent* incident, so
    // even complete dependence cannot escalate anything.
    let p = params(1e-3, 0.02);
    let base_8 = FleetMc::new(spec(8), p)
        .unwrap()
        .run(&pin_config(2))
        .unwrap();
    let zero_8 = FleetMc::new(spec(8), p)
        .unwrap()
        .with_coupling(FleetCoupling {
            dependence: DependenceLevel::Zero,
            domains: None,
        })
        .unwrap()
        .run(&pin_config(2))
        .unwrap();
    assert_eq!(digest(&base_8), digest(&zero_8));

    let base_1 = FleetMc::new(spec(1), p)
        .unwrap()
        .run(&pin_config(2))
        .unwrap();
    let complete_1 = FleetMc::new(spec(1), p)
        .unwrap()
        .with_coupling(FleetCoupling {
            dependence: DependenceLevel::Complete,
            domains: None,
        })
        .unwrap()
        .run(&pin_config(2))
        .unwrap();
    assert_eq!(digest(&base_1), digest(&complete_1));
}

#[test]
fn repair_crew_scarcity_and_dependence_both_hurt_availability() {
    let p = params(2e-3, 0.02);
    let cfg = quick_config(150);
    let run = |spec: FleetSpec, coupling: Option<FleetCoupling>| {
        let mut mc = FleetMc::new(spec, p).unwrap();
        if let Some(c) = coupling {
            mc = mc.with_coupling(c).unwrap();
        }
        mc.run(&cfg).unwrap()
    };
    let free = run(spec(16), None);
    let starved = run(spec(16).with_repairmen(1).unwrap(), None);
    assert!(
        starved.overall_array_availability < free.overall_array_availability,
        "1 crew {} vs unlimited {}",
        starved.overall_array_availability,
        free.overall_array_availability
    );
    assert!(starved.max_degraded >= free.max_degraded);

    let coupled = run(
        spec(16),
        Some(FleetCoupling {
            dependence: DependenceLevel::High,
            domains: None,
        }),
    );
    assert!(
        coupled.overall_array_availability < free.overall_array_availability,
        "high dependence {} vs zero {}",
        coupled.overall_array_availability,
        free.overall_array_availability
    );
    assert!(coupled.du_events > free.du_events);
}

/// Stationary availability of the M/M/c machine-repairman model:
/// `N` machines failing at rate `nu`, `c` crews repairing at rate `mu`,
/// via the birth-death chain on the number of failed machines.
fn machine_repairman_availability(n: u32, crews: Option<u32>, nu: f64, mu: f64) -> f64 {
    let n = n as usize;
    let c = crews.map_or(n, |c| (c as usize).min(n));
    let mut pi = vec![0.0f64; n + 1];
    pi[0] = 1.0;
    for k in 0..n {
        pi[k + 1] = pi[k] * ((n - k) as f64 * nu) / ((k + 1).min(c) as f64 * mu);
    }
    let z: f64 = pi.iter().sum();
    let mean_down: f64 = pi
        .iter()
        .enumerate()
        .map(|(k, p)| k as f64 * p)
        .sum::<f64>()
        / z;
    1.0 - mean_down / n as f64
}

#[test]
fn repair_crew_pool_matches_the_machine_repairman_closed_form() {
    // Exact M/M/c oracle: per-array domain strikes (shelves of one) at
    // rate ν are the "machine failures", the crew-bound DL restore at
    // rate μ is the "repair", and the disk/operator physics is turned
    // off (λ ≈ 0, hep = 0). The MC confidence interval must cover the
    // closed-form availability across a crews × ν grid.
    const N: u32 = 12;
    const MU: f64 = 0.25;
    let mut p = params(1e-12, 0.0);
    p.ddf_recovery_rate = MU;
    for crews in [Some(1), Some(2), Some(4), None] {
        for nu in [0.01, 0.04] {
            let fleet = match crews {
                Some(c) => spec(N).with_repairmen(c).unwrap(),
                None => spec(N),
            };
            let est = FleetMc::new(fleet, p)
                .unwrap()
                .with_coupling(FleetCoupling {
                    dependence: DependenceLevel::Zero,
                    domains: Some(DomainFailures {
                        domain_arrays: 1,
                        rate: nu,
                    }),
                })
                .unwrap()
                .run(&McConfig {
                    iterations: 160,
                    horizon_hours: 30_000.0,
                    seed: 911,
                    confidence: 0.99,
                    threads: 2,
                    ..McConfig::default()
                })
                .unwrap();
            let exact = machine_repairman_availability(N, crews, nu, MU);
            let gap = (est.availability.mean - exact).abs();
            assert!(
                gap <= est.availability.half_width,
                "c = {crews:?}, ν = {nu}: mc {} vs exact {exact:.6} (hw {:.2e})",
                est.availability,
                est.availability.half_width
            );
        }
    }
}

#[test]
fn domain_failures_knock_out_whole_shelves() {
    // One shelf covering the entire 40-array fleet: every strike drives
    // the degraded count to 40 at once, past the histogram's 32+ tail.
    let mut p = params(1e-6, 0.01);
    p.ddf_recovery_rate = 0.03;
    let est = FleetMc::new(spec(40), p)
        .unwrap()
        .with_coupling(FleetCoupling {
            dependence: DependenceLevel::Zero,
            domains: Some(DomainFailures {
                domain_arrays: 40,
                rate: 1e-3,
            }),
        })
        .unwrap()
        .run(&quick_config(60))
        .unwrap();
    assert_eq!(est.max_degraded, 40);
    assert!(est.dl_events >= 40 * 60, "dl_events {}", est.dl_events);
    assert!(
        est.degraded_time_share[DEGRADED_BINS - 1] > 0.0,
        "the 32+ tail bin must absorb shelf-wide outages"
    );
}

#[test]
fn domain_coupling_is_validated() {
    let p = params(1e-3, 0.01);
    let cases = [
        (0u32, 1e-3, "at least one array per shelf"),
        (9, 1e-3, "exceeds the fleet"),
        (2, 0.0, "must be positive"),
        (2, f64::INFINITY, "must be positive"),
        (2, -1.0, "must be positive"),
    ];
    for (domain_arrays, rate, needle) in cases {
        let err = FleetMc::new(spec(8), p)
            .unwrap()
            .with_coupling(FleetCoupling {
                dependence: DependenceLevel::Zero,
                domains: Some(DomainFailures {
                    domain_arrays,
                    rate,
                }),
            })
            .unwrap_err()
            .to_string();
        assert!(err.contains(needle), "{err}");
    }
}

#[test]
fn domain_and_crew_couplings_keep_the_thread_bit_identity() {
    // The determinism contract survives every coupling at once: a
    // starved crew pool, high operator dependence, and shelf strikes.
    let p = params(1e-3, 0.02);
    let run = |threads| {
        FleetMc::new(spec(12).with_repairmen(2).unwrap(), p)
            .unwrap()
            .with_coupling(FleetCoupling {
                dependence: DependenceLevel::High,
                domains: Some(DomainFailures {
                    domain_arrays: 4,
                    rate: 1e-4,
                }),
            })
            .unwrap()
            .run(&pin_config(threads))
            .unwrap()
    };
    let one = run(1);
    let four = run(4);
    assert_eq!(digest(&one), digest(&four));
    assert!(one.dl_events > 0 && one.max_degraded >= 4);
}

#[test]
fn degraded_hours_sum_to_the_horizon_per_mission() {
    let p = params(1e-3, 0.01);
    let mc = FleetMc::new(spec(4), p).unwrap();
    let mut ws = SimWorkspace::new();
    let mut rng = SimRng::seed_from(5);
    let out = mc.simulate_once_with(25_000.0, &mut rng, &mut ws);
    let total: f64 = out.degraded_hours.iter().sum();
    assert!((total - 25_000.0).abs() < 1e-6, "total {total}");
}

fn failover(capacity: Option<u32>, policy: FailoverPolicy, failback_rate: f64) -> FleetFailover {
    FleetFailover {
        capacity,
        policy,
        failback_rate,
    }
}

#[test]
fn ideal_dr_site_pins_the_no_failover_golden_bits() {
    // The `failover_capacity = ∞` limit admits every incident and fails
    // back instantly without touching the RNG stream, so every plain
    // estimate bit must reproduce the PR 6 engine exactly — at any
    // worker count. The only thing that moves is the credit: with every
    // down hour served from DR, credited unavailability is exactly zero.
    let golden = golden_bits();
    let p = params(1e-3, 0.02);
    let ideal = spec(8)
        .with_failover(failover(None, FailoverPolicy::Queue, 0.1))
        .unwrap();
    let mc = FleetMc::new(ideal, p).unwrap();
    for threads in [1, 4] {
        let est = mc.run(&pin_config(threads)).unwrap();
        let (bits, du, dl, maxd) = digest(&est);
        assert_eq!(bits, golden, "threads = {threads}");
        assert_eq!((du, dl, maxd), GOLDEN_EVENTS, "threads = {threads}");
        assert_eq!(est.overall_credited_array_availability, 1.0);
        assert_eq!(est.credited_fleet_availability, 1.0);
        assert_eq!(est.credited_availability.mean, 1.0);
        assert_eq!(est.credited_availability.half_width, 0.0);
        assert!(est.failovers > 0);
        assert!(est.failbacks <= est.failovers);
        assert_eq!(est.dr_queue_waits, 0);
        assert_eq!(est.dr_rejections, 0);
        // Ideal slots are held only while the array is down, so the
        // occupancy distribution is a proper time-share too.
        let occ: f64 = est.dr_occupancy_share.iter().sum();
        assert!((occ - 1.0).abs() < 1e-9, "occupancy shares sum to {occ}");
    }
}

#[test]
fn bounded_failover_keeps_the_thread_bit_identity() {
    // The determinism contract survives the full DR machinery: bounded
    // capacity, FIFO queue, switch-back races, and a starved crew pool.
    let p = params(1e-3, 0.02);
    let run = |threads| {
        FleetMc::new(
            spec(12)
                .with_repairmen(2)
                .unwrap()
                .with_failover(failover(Some(2), FailoverPolicy::Queue, 0.02))
                .unwrap(),
            p,
        )
        .unwrap()
        .with_coupling(FleetCoupling {
            dependence: DependenceLevel::Moderate,
            domains: Some(DomainFailures {
                domain_arrays: 4,
                rate: 1e-4,
            }),
        })
        .unwrap()
        .run(&pin_config(threads))
        .unwrap()
    };
    let one = run(1);
    let four = run(4);
    assert_eq!(digest(&one), digest(&four));
    assert_eq!(
        one.overall_credited_array_availability.to_bits(),
        four.overall_credited_array_availability.to_bits()
    );
    assert_eq!(
        one.credited_availability.mean.to_bits(),
        four.credited_availability.mean.to_bits()
    );
    assert_eq!(
        one.dr_queue_wait_hours.to_bits(),
        four.dr_queue_wait_hours.to_bits()
    );
    for (a, b) in one.dr_occupancy_share.iter().zip(&four.dr_occupancy_share) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
    assert_eq!(one.failovers, four.failovers);
    assert_eq!(one.failbacks, four.failbacks);
    assert_eq!(one.dr_queue_waits, four.dr_queue_waits);
    assert_eq!(one.dr_rejections, four.dr_rejections);
    // The scenario actually exercises the coupling.
    assert!(one.failovers > 0 && one.failbacks > 0 && one.dr_queue_waits > 0);
    assert_eq!(one.dr_rejections, 0, "queue policy never rejects");
    assert!(one.credited_array_unavailability() < one.array_unavailability());
}

/// Exact stationary analysis of the DR-limited fleet in the degenerate
/// regime (disk/operator physics off, per-array strikes at ν, unlimited
/// crews restoring at μ, fail-back at φ with hep = 0): a CTMC on
/// `(s, x, b)` — `s` down arrays holding a DR slot, `x` down arrays
/// queued (queue policy) or rejected (loss policy), `b` restored arrays
/// still failing back (each holds a slot). `s + b ≤ k`, `s + x + b ≤ N`.
struct DrChain {
    n: u32,
    k: u32,
    nu: f64,
    mu: f64,
    phi: f64,
    queue: bool,
}

impl DrChain {
    fn states(&self) -> Vec<(u32, u32, u32)> {
        let mut states = Vec::new();
        for s in 0..=self.k.min(self.n) {
            for b in 0..=(self.k - s).min(self.n - s) {
                for x in 0..=(self.n - s - b) {
                    // Under the queue policy an array only queues while
                    // the site is full, and is admitted the instant a
                    // slot frees — `x > 0` forces `s + b = k`.
                    if self.queue && x > 0 && s + b != self.k {
                        continue;
                    }
                    states.push((s, x, b));
                }
            }
        }
        states
    }

    /// Out-transitions of one state as `(target, rate)` pairs. Strikes
    /// on already-down arrays are no-ops and omitted.
    fn transitions(&self, (s, x, b): (u32, u32, u32)) -> Vec<((u32, u32, u32), f64)> {
        let mut out = Vec::new();
        let free = (self.n - s - x - b) as f64;
        if free > 0.0 {
            // A healthy array is struck: admitted if a slot is free,
            // queued/rejected otherwise.
            let target = if s + b < self.k {
                (s + 1, x, b)
            } else {
                (s, x + 1, b)
            };
            out.push((target, free * self.nu));
        }
        if b > 0 {
            // A failing-back array is re-struck: it keeps its slot and
            // goes back to serving from DR.
            out.push(((s + 1, x, b - 1), f64::from(b) * self.nu));
            // A fail-back completes: under the queue policy the freed
            // slot goes straight to the queue head (a down array, which
            // starts serving); otherwise the slot idles.
            let target = if self.queue && x > 0 {
                (s + 1, x - 1, b - 1)
            } else {
                (s, x, b - 1)
            };
            out.push((target, f64::from(b) * self.phi));
        }
        if s > 0 {
            // A served array is restored: it returns to OP and starts
            // failing back, still holding its slot.
            out.push(((s - 1, x, b + 1), f64::from(s) * self.mu));
        }
        if x > 0 {
            // A queued/rejected array is restored: it abandons the DR
            // site entirely.
            out.push(((s, x - 1, b), f64::from(x) * self.mu));
        }
        out
    }

    /// Stationary distribution via dense Gaussian elimination on
    /// `πQ = 0`, `Σπ = 1` (the state space stays well under 200 states
    /// for the test grid).
    fn stationary(&self) -> (Vec<(u32, u32, u32)>, Vec<f64>) {
        let states = self.states();
        let index: std::collections::HashMap<_, _> = states
            .iter()
            .copied()
            .enumerate()
            .map(|(i, st)| (st, i))
            .collect();
        let m = states.len();
        // Row i of the linear system is balance for state i; the last
        // row is replaced by normalisation.
        let mut a = vec![vec![0.0f64; m + 1]; m];
        for (j, &st) in states.iter().enumerate() {
            for (target, rate) in self.transitions(st) {
                let i = index[&target];
                a[i][j] += rate; // inflow to `target` from `st`
                a[j][j] -= rate; // outflow from `st`
            }
        }
        for col in a.last_mut().unwrap().iter_mut().take(m) {
            *col = 1.0;
        }
        a[m - 1][m] = 1.0;
        // Gaussian elimination with partial pivoting.
        for col in 0..m {
            let pivot = (col..m)
                .max_by(|&r1, &r2| a[r1][col].abs().total_cmp(&a[r2][col].abs()))
                .unwrap();
            a.swap(col, pivot);
            let diag = a[col][col];
            assert!(diag.abs() > 1e-12, "singular balance matrix");
            let pivot_row = a[col].clone();
            for (row, vals) in a.iter_mut().enumerate() {
                if row != col && vals[col] != 0.0 {
                    let factor = vals[col] / diag;
                    for (t, &p) in vals[col..=m].iter_mut().zip(&pivot_row[col..=m]) {
                        *t -= factor * p;
                    }
                }
            }
        }
        let pi: Vec<f64> = (0..m).map(|i| a[i][m] / a[i][i]).collect();
        (states, pi)
    }

    /// `(plain, credited)` exact per-array unavailability: down arrays
    /// are `s + x`; only the uncredited `x` count against the credit.
    fn unavailability(&self) -> (f64, f64) {
        let (states, pi) = self.stationary();
        let mut down = 0.0;
        let mut uncovered = 0.0;
        for (&(s, x, _), &p) in states.iter().zip(&pi) {
            down += f64::from(s + x) * p;
            uncovered += f64::from(x) * p;
        }
        (down / f64::from(self.n), uncovered / f64::from(self.n))
    }
}

#[test]
fn bounded_dr_capacity_matches_the_exact_markov_chain() {
    // Same oracle regime as the machine-repairman test — per-array
    // domain strikes, disk/operator physics off — but with a bounded DR
    // site in the loop. The MC confidence intervals must cover the
    // exact chain's plain *and* credited unavailability on every grid
    // cell, under both admission policies.
    const N: u32 = 12;
    const MU: f64 = 0.25;
    const NU: f64 = 0.01;
    const PHI: f64 = 0.1;
    let mut p = params(1e-12, 0.0);
    p.ddf_recovery_rate = MU;
    for policy in [FailoverPolicy::Queue, FailoverPolicy::Loss] {
        for k in [1u32, 2, 4] {
            let chain = DrChain {
                n: N,
                k,
                nu: NU,
                mu: MU,
                phi: PHI,
                queue: policy == FailoverPolicy::Queue,
            };
            let (exact_u, exact_credited_u) = chain.unavailability();
            let est = FleetMc::new(
                spec(N)
                    .with_failover(failover(Some(k), policy, PHI))
                    .unwrap(),
                p,
            )
            .unwrap()
            .with_coupling(FleetCoupling {
                dependence: DependenceLevel::Zero,
                domains: Some(DomainFailures {
                    domain_arrays: 1,
                    rate: NU,
                }),
            })
            .unwrap()
            .run(&McConfig {
                iterations: 160,
                horizon_hours: 30_000.0,
                seed: 911,
                confidence: 0.99,
                threads: 2,
                ..McConfig::default()
            })
            .unwrap();
            let gap = (est.availability.mean - (1.0 - exact_u)).abs();
            assert!(
                gap <= est.availability.half_width,
                "k = {k}, {policy}: plain mc {} vs exact {:.6} (hw {:.2e})",
                est.availability,
                1.0 - exact_u,
                est.availability.half_width
            );
            let credited_gap = (est.credited_availability.mean - (1.0 - exact_credited_u)).abs();
            assert!(
                credited_gap <= est.credited_availability.half_width,
                "k = {k}, {policy}: credited mc {} vs exact {:.6} (hw {:.2e})",
                est.credited_availability,
                1.0 - exact_credited_u,
                est.credited_availability.half_width
            );
            match policy {
                FailoverPolicy::Queue => {
                    assert!(est.dr_queue_waits > 0 && est.dr_rejections == 0)
                }
                FailoverPolicy::Loss => {
                    assert!(est.dr_rejections > 0 && est.dr_queue_waits == 0)
                }
            }
        }
    }
    // The unbounded site is the k → ∞ limit: nothing queues, nothing is
    // rejected, and the plain answer is the crew-free machine-repairman
    // closed form.
    let est = FleetMc::new(
        spec(N)
            .with_failover(failover(None, FailoverPolicy::Queue, PHI))
            .unwrap(),
        p,
    )
    .unwrap()
    .with_coupling(FleetCoupling {
        dependence: DependenceLevel::Zero,
        domains: Some(DomainFailures {
            domain_arrays: 1,
            rate: NU,
        }),
    })
    .unwrap()
    .run(&McConfig {
        iterations: 160,
        horizon_hours: 30_000.0,
        seed: 911,
        confidence: 0.99,
        threads: 2,
        ..McConfig::default()
    })
    .unwrap();
    let exact = machine_repairman_availability(N, None, NU, MU);
    let gap = (est.availability.mean - exact).abs();
    assert!(
        gap <= est.availability.half_width,
        "k = ∞: mc {} vs exact {exact:.6}",
        est.availability
    );
    assert_eq!(est.overall_credited_array_availability, 1.0);
    assert_eq!(est.dr_queue_waits, 0);
    assert_eq!(est.dr_rejections, 0);
}

#[test]
fn dr_contention_orders_credited_unavailability_by_capacity() {
    // More DR slots can only help: credited unavailability must fall
    // monotonically along k = 1 → 2 → 4 → ∞ in a contended regime, and
    // the plain estimate must not react to the DR site at all (serving
    // from DR does not repair anything).
    const N: u32 = 12;
    let mut p = params(1e-12, 0.0);
    p.ddf_recovery_rate = 0.05;
    let run = |capacity: Option<Option<u32>>| {
        let mut fleet = spec(N);
        if let Some(cap) = capacity {
            fleet = fleet
                .with_failover(failover(cap, FailoverPolicy::Queue, 0.05))
                .unwrap();
        }
        FleetMc::new(fleet, p)
            .unwrap()
            .with_coupling(FleetCoupling {
                dependence: DependenceLevel::Zero,
                domains: Some(DomainFailures {
                    domain_arrays: 1,
                    rate: 0.02,
                }),
            })
            .unwrap()
            .run(&quick_config(80))
            .unwrap()
    };
    let none = run(None);
    let k1 = run(Some(Some(1)));
    let k2 = run(Some(Some(2)));
    let k4 = run(Some(Some(4)));
    let ideal = run(Some(None));
    // The ideal site draws nothing, so it cannot perturb the physics:
    // its plain bits are identical to running with no site at all. (A
    // bounded site arms real switch-back clocks, which legitimately
    // shift the stream.)
    assert_eq!(
        none.overall_array_availability.to_bits(),
        ideal.overall_array_availability.to_bits()
    );
    assert_eq!(none.dl_events, ideal.dl_events);
    let u = |est: &FleetEstimate| est.credited_array_unavailability();
    assert!(u(&k1) > u(&k2), "k1 {} vs k2 {}", u(&k1), u(&k2));
    assert!(u(&k2) > u(&k4), "k2 {} vs k4 {}", u(&k2), u(&k4));
    assert!(u(&k4) > u(&ideal), "k4 {} vs ideal {}", u(&k4), u(&ideal));
    assert_eq!(u(&ideal), 0.0);
    // Serving from DR does not repair anything: the credit can only
    // discount the plain downtime, never exceed it.
    for est in [&k1, &k2, &k4] {
        assert!(u(est) <= est.array_unavailability() + 1e-12);
    }
    // Queue pressure shows up in the waiting-time telemetry, and a
    // one-slot site can never report more than one busy slot.
    assert!(k1.mean_dr_queue_wait_hours() > 0.0);
    assert!(k1.mean_dr_occupancy() <= 1.0 + 1e-9);
}
