//! Fleet-suite oracle tests: `FleetMc` against the exact Fig. 2 chain,
//! against the single-array engines, and against its own determinism and
//! accounting contracts. Run in CI as a named step.

use availsim_core::markov::Raid5Conventional;
use availsim_core::mc::{
    ConventionalMc, FleetMc, McConfig, McEngine, McVariance, SimWorkspace, DEGRADED_BINS,
};
use availsim_core::ModelParams;
use availsim_hra::Hep;
use availsim_sim::rng::SimRng;
use availsim_storage::{FailureModel, FleetSpec, RaidGeometry};

fn spec(arrays: u32) -> FleetSpec {
    FleetSpec::new(arrays, RaidGeometry::raid5(3).unwrap()).unwrap()
}

fn params(lambda: f64, hep: f64) -> ModelParams {
    ModelParams::raid5_3plus1(lambda, Hep::new(hep).unwrap()).unwrap()
}

fn quick_config(iterations: u64) -> McConfig {
    McConfig {
        iterations,
        horizon_hours: 10_000.0,
        seed: 23,
        confidence: 0.99,
        threads: 2,
        ..McConfig::default()
    }
}

#[test]
fn rejects_mismatched_geometry_and_rare_event_schemes() {
    let fleet = FleetSpec::new(4, RaidGeometry::raid5(7).unwrap()).unwrap();
    assert!(FleetMc::new(fleet, params(1e-4, 0.01)).is_err());

    let mc = FleetMc::new(spec(4), params(1e-4, 0.01)).unwrap();
    for variance in [McVariance::failure_biasing(), McVariance::splitting()] {
        let cfg = McConfig {
            variance,
            ..quick_config(10)
        };
        assert!(mc.run(&cfg).is_err(), "{variance} must be rejected");
    }
    assert!(mc
        .run(&McConfig {
            iterations: 1,
            ..quick_config(10)
        })
        .is_err());
}

#[test]
fn single_array_fleet_matches_the_markov_answer() {
    // A = 1 is exactly the conventional model; the fleet estimate must
    // bracket the Fig. 2 chain like the single-array engines do.
    let p = params(1e-3, 0.01);
    let markov = Raid5Conventional::new(p).unwrap().solve().unwrap();
    let est = FleetMc::new(spec(1), p)
        .unwrap()
        .run(&quick_config(600))
        .unwrap();
    let u = markov.unavailability();
    let gap = (est.array_unavailability() - u).abs();
    assert!(
        gap <= est.availability.half_width,
        "fleet U {:.3e} vs markov {u:.3e} (hw {:.3e})",
        est.array_unavailability(),
        est.availability.half_width
    );
    // With one array, fleet-down and array-down coincide.
    assert!((est.fleet_availability - est.overall_array_availability).abs() < 1e-12);
    assert_eq!(est.arrays, 1);
}

#[test]
fn fleet_per_array_availability_matches_the_single_array_engine() {
    // Independence: per-array availability must not depend on A. The
    // CIs of a 16-array fleet and the single-array event-queue engine
    // must overlap.
    let p = params(1e-3, 0.02);
    let fleet = FleetMc::new(spec(16), p)
        .unwrap()
        .run(&quick_config(200))
        .unwrap();
    let single = ConventionalMc::new(p)
        .unwrap()
        .with_engine(McEngine::EventQueue)
        .run(&quick_config(600))
        .unwrap();
    let gap = (fleet.availability.mean - single.availability.mean).abs();
    assert!(
        gap <= fleet.availability.half_width + single.availability.half_width,
        "fleet {} vs single {}",
        fleet.availability,
        single.availability
    );
    assert!(fleet.du_events > 0);
    assert!(fleet.dl_events > 0);
}

#[test]
fn degraded_distribution_is_a_time_share_and_scales_with_fleet_size() {
    let p = params(1e-3, 0.01);
    let small = FleetMc::new(spec(2), p)
        .unwrap()
        .run(&quick_config(60))
        .unwrap();
    let large = FleetMc::new(spec(64), p)
        .unwrap()
        .run(&quick_config(60))
        .unwrap();
    for est in [&small, &large] {
        let total: f64 = est.degraded_time_share.iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "shares sum to {total}");
        assert!(est.degraded_time_share.iter().all(|&s| s >= 0.0));
    }
    // A 32x bigger fleet spends more time with at least one array
    // degraded, and its expected simultaneous-degraded count grows.
    assert!(large.degraded_time_share[0] < small.degraded_time_share[0]);
    assert!(large.mean_degraded() > small.mean_degraded());
    assert!(large.max_degraded >= small.max_degraded);
    assert!(u32::try_from(DEGRADED_BINS).unwrap() > large.max_degraded);
}

#[test]
fn fleet_and_array_downtime_accounting_are_consistent() {
    let p = params(2e-3, 0.05);
    let est = FleetMc::new(spec(8), p)
        .unwrap()
        .run(&quick_config(100))
        .unwrap();
    // Any-array-down time is bounded by summed array downtime (union
    // bound) and positive at these rates.
    let total_time = est.horizon_hours * est.iterations as f64;
    let summed = est.mean_array_downtime_hours * 8.0 * est.iterations as f64;
    assert!(est.annual_any_down_hours > 0.0);
    assert!((1.0 - est.fleet_availability) * total_time <= summed + 1e-6);
    // DU share is a proper fraction and both causes occurred.
    assert!(est.du_downtime_share > 0.0 && est.du_downtime_share < 1.0);
    // Annualisation is the unavailability times the year constant.
    assert!(
        (est.annual_array_downtime_hours
            - est.array_unavailability() * availsim_storage::HOURS_PER_YEAR)
            .abs()
            < 1e-9
    );
}

#[test]
fn thread_count_never_changes_a_bit() {
    let p = params(1e-3, 0.02);
    let mc = FleetMc::new(spec(8), p).unwrap();
    let run = |threads| {
        mc.run(&McConfig {
            iterations: 300, // not a multiple of the block size
            horizon_hours: 20_000.0,
            seed: 77,
            confidence: 0.95,
            threads,
            ..McConfig::default()
        })
        .unwrap()
    };
    let one = run(1);
    let four = run(4);
    assert_eq!(
        one.overall_array_availability.to_bits(),
        four.overall_array_availability.to_bits()
    );
    assert_eq!(
        one.fleet_availability.to_bits(),
        four.fleet_availability.to_bits()
    );
    assert_eq!(
        one.availability.mean.to_bits(),
        four.availability.mean.to_bits()
    );
    assert_eq!(
        one.availability.half_width.to_bits(),
        four.availability.half_width.to_bits()
    );
    assert_eq!(one.du_events, four.du_events);
    assert_eq!(one.dl_events, four.dl_events);
    assert_eq!(one.max_degraded, four.max_degraded);
    for (a, b) in one
        .degraded_time_share
        .iter()
        .zip(&four.degraded_time_share)
    {
        assert_eq!(a.to_bits(), b.to_bits());
    }
    assert!(one.mean_array_downtime_hours > 0.0);
}

#[test]
fn extreme_rate_missions_do_not_overflow_the_event_guards() {
    // Regression for the fleet event payload's gen/epoch width: a valid
    // but absurd λ·horizon drives each disk slot through >100k
    // fail/repair cycles in one mission, far past what a 16-bit counter
    // could hold — the mission must complete (overflow checks are on in
    // test builds) with sane accounting.
    let p = params(0.05, 0.0); // mean lifetime 20 h
    let mc = FleetMc::new(spec(1), p).unwrap();
    let mut ws = SimWorkspace::new();
    let mut rng = SimRng::seed_from(3);
    let horizon = 4_000_000.0;
    let out = mc.simulate_once_with(horizon, &mut rng, &mut ws);
    assert!(out.dl_events > 65_536, "got {} DL events", out.dl_events);
    let total: f64 = out.degraded_hours.iter().sum();
    assert!((total - horizon).abs() < 1e-3, "total {total}");
    assert!(out.array_downtime_hours() > 0.0 && out.array_downtime_hours() < horizon);
}

#[test]
fn weibull_fleets_are_supported() {
    let weibull = FailureModel::weibull(1e-3, 1.48).unwrap();
    let mc = FleetMc::with_failure_model(spec(4), params(1e-4, 0.01), weibull).unwrap();
    let est = mc.run(&quick_config(100)).unwrap();
    assert!(est.overall_array_availability < 1.0);
    assert!(est.overall_array_availability > 0.5);
}

#[test]
fn workspace_reuse_matches_fresh_workspaces_bitwise() {
    let p = params(2e-3, 0.05);
    let mc = FleetMc::new(spec(8), p).unwrap();
    let mut reused = SimWorkspace::new();
    for s in 100..103 {
        let mut rng = SimRng::seed_from(s);
        let _ = mc.simulate_once_with(30_000.0, &mut rng, &mut reused);
    }
    let mut fresh = SimWorkspace::new();
    let mut rng_a = SimRng::seed_from(9);
    let mut rng_b = SimRng::seed_from(9);
    let a = mc.simulate_once_with(30_000.0, &mut rng_a, &mut reused);
    let b = mc.simulate_once_with(30_000.0, &mut rng_b, &mut fresh);
    assert_eq!(
        a.array_downtime_hours().to_bits(),
        b.array_downtime_hours().to_bits()
    );
    assert_eq!(a.any_down_hours.to_bits(), b.any_down_hours.to_bits());
    assert_eq!(a.du_events, b.du_events);
    assert_eq!(a.dl_events, b.dl_events);
    assert_eq!(a.max_degraded, b.max_degraded);
}

#[test]
fn degraded_hours_sum_to_the_horizon_per_mission() {
    let p = params(1e-3, 0.01);
    let mc = FleetMc::new(spec(4), p).unwrap();
    let mut ws = SimWorkspace::new();
    let mut rng = SimRng::seed_from(5);
    let out = mc.simulate_once_with(25_000.0, &mut rng, &mut ws);
    let total: f64 = out.degraded_hours.iter().sum();
    assert!((total - 25_000.0).abs() < 1e-6, "total {total}");
}
