//! Fleet-suite oracle tests: `FleetMc` against the exact Fig. 2 chain,
//! against the single-array engines, and against its own determinism and
//! accounting contracts. Run in CI as a named step.

use availsim_core::markov::Raid5Conventional;
use availsim_core::mc::{
    ConventionalMc, DomainFailures, FleetCoupling, FleetEstimate, FleetMc, McConfig, McEngine,
    McVariance, SimWorkspace, DEGRADED_BINS,
};
use availsim_core::ModelParams;
use availsim_hra::{DependenceLevel, Hep};
use availsim_sim::rng::SimRng;
use availsim_storage::{FailureModel, FleetSpec, RaidGeometry};

fn spec(arrays: u32) -> FleetSpec {
    FleetSpec::new(arrays, RaidGeometry::raid5(3).unwrap()).unwrap()
}

fn params(lambda: f64, hep: f64) -> ModelParams {
    ModelParams::raid5_3plus1(lambda, Hep::new(hep).unwrap()).unwrap()
}

fn quick_config(iterations: u64) -> McConfig {
    McConfig {
        iterations,
        horizon_hours: 10_000.0,
        seed: 23,
        confidence: 0.99,
        threads: 2,
        ..McConfig::default()
    }
}

#[test]
fn rejects_mismatched_geometry_and_rare_event_schemes() {
    let fleet = FleetSpec::new(4, RaidGeometry::raid5(7).unwrap()).unwrap();
    assert!(FleetMc::new(fleet, params(1e-4, 0.01)).is_err());

    let mc = FleetMc::new(spec(4), params(1e-4, 0.01)).unwrap();
    for variance in [McVariance::failure_biasing(), McVariance::splitting()] {
        let cfg = McConfig {
            variance,
            ..quick_config(10)
        };
        assert!(mc.run(&cfg).is_err(), "{variance} must be rejected");
    }
    assert!(mc
        .run(&McConfig {
            iterations: 1,
            ..quick_config(10)
        })
        .is_err());
}

#[test]
fn single_array_fleet_matches_the_markov_answer() {
    // A = 1 is exactly the conventional model; the fleet estimate must
    // bracket the Fig. 2 chain like the single-array engines do.
    let p = params(1e-3, 0.01);
    let markov = Raid5Conventional::new(p).unwrap().solve().unwrap();
    let est = FleetMc::new(spec(1), p)
        .unwrap()
        .run(&quick_config(600))
        .unwrap();
    let u = markov.unavailability();
    let gap = (est.array_unavailability() - u).abs();
    assert!(
        gap <= est.availability.half_width,
        "fleet U {:.3e} vs markov {u:.3e} (hw {:.3e})",
        est.array_unavailability(),
        est.availability.half_width
    );
    // With one array, fleet-down and array-down coincide.
    assert!((est.fleet_availability - est.overall_array_availability).abs() < 1e-12);
    assert_eq!(est.arrays, 1);
}

#[test]
fn fleet_per_array_availability_matches_the_single_array_engine() {
    // Independence: per-array availability must not depend on A. The
    // CIs of a 16-array fleet and the single-array event-queue engine
    // must overlap.
    let p = params(1e-3, 0.02);
    let fleet = FleetMc::new(spec(16), p)
        .unwrap()
        .run(&quick_config(200))
        .unwrap();
    let single = ConventionalMc::new(p)
        .unwrap()
        .with_engine(McEngine::EventQueue)
        .run(&quick_config(600))
        .unwrap();
    let gap = (fleet.availability.mean - single.availability.mean).abs();
    assert!(
        gap <= fleet.availability.half_width + single.availability.half_width,
        "fleet {} vs single {}",
        fleet.availability,
        single.availability
    );
    assert!(fleet.du_events > 0);
    assert!(fleet.dl_events > 0);
}

#[test]
fn degraded_distribution_is_a_time_share_and_scales_with_fleet_size() {
    let p = params(1e-3, 0.01);
    let small = FleetMc::new(spec(2), p)
        .unwrap()
        .run(&quick_config(60))
        .unwrap();
    let large = FleetMc::new(spec(64), p)
        .unwrap()
        .run(&quick_config(60))
        .unwrap();
    for est in [&small, &large] {
        let total: f64 = est.degraded_time_share.iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "shares sum to {total}");
        assert!(est.degraded_time_share.iter().all(|&s| s >= 0.0));
    }
    // A 32x bigger fleet spends more time with at least one array
    // degraded, and its expected simultaneous-degraded count grows.
    assert!(large.degraded_time_share[0] < small.degraded_time_share[0]);
    assert!(large.mean_degraded() > small.mean_degraded());
    assert!(large.max_degraded >= small.max_degraded);
    assert!(u32::try_from(DEGRADED_BINS).unwrap() > large.max_degraded);
}

#[test]
fn fleet_and_array_downtime_accounting_are_consistent() {
    let p = params(2e-3, 0.05);
    let est = FleetMc::new(spec(8), p)
        .unwrap()
        .run(&quick_config(100))
        .unwrap();
    // Any-array-down time is bounded by summed array downtime (union
    // bound) and positive at these rates.
    let total_time = est.horizon_hours * est.iterations as f64;
    let summed = est.mean_array_downtime_hours * 8.0 * est.iterations as f64;
    assert!(est.annual_any_down_hours > 0.0);
    assert!((1.0 - est.fleet_availability) * total_time <= summed + 1e-6);
    // DU share is a proper fraction and both causes occurred.
    assert!(est.du_downtime_share > 0.0 && est.du_downtime_share < 1.0);
    // Annualisation is the unavailability times the year constant.
    assert!(
        (est.annual_array_downtime_hours
            - est.array_unavailability() * availsim_storage::HOURS_PER_YEAR)
            .abs()
            < 1e-9
    );
}

#[test]
fn thread_count_never_changes_a_bit() {
    let p = params(1e-3, 0.02);
    let mc = FleetMc::new(spec(8), p).unwrap();
    let run = |threads| {
        mc.run(&McConfig {
            iterations: 300, // not a multiple of the block size
            horizon_hours: 20_000.0,
            seed: 77,
            confidence: 0.95,
            threads,
            ..McConfig::default()
        })
        .unwrap()
    };
    let one = run(1);
    let four = run(4);
    assert_eq!(
        one.overall_array_availability.to_bits(),
        four.overall_array_availability.to_bits()
    );
    assert_eq!(
        one.fleet_availability.to_bits(),
        four.fleet_availability.to_bits()
    );
    assert_eq!(
        one.availability.mean.to_bits(),
        four.availability.mean.to_bits()
    );
    assert_eq!(
        one.availability.half_width.to_bits(),
        four.availability.half_width.to_bits()
    );
    assert_eq!(one.du_events, four.du_events);
    assert_eq!(one.dl_events, four.dl_events);
    assert_eq!(one.max_degraded, four.max_degraded);
    for (a, b) in one
        .degraded_time_share
        .iter()
        .zip(&four.degraded_time_share)
    {
        assert_eq!(a.to_bits(), b.to_bits());
    }
    assert!(one.mean_array_downtime_hours > 0.0);
}

#[test]
fn extreme_rate_missions_do_not_overflow_the_event_guards() {
    // Regression for the fleet event payload's gen/epoch width: a valid
    // but absurd λ·horizon drives each disk slot through >100k
    // fail/repair cycles in one mission, far past what a 16-bit counter
    // could hold — the mission must complete (overflow checks are on in
    // test builds) with sane accounting.
    let p = params(0.05, 0.0); // mean lifetime 20 h
    let mc = FleetMc::new(spec(1), p).unwrap();
    let mut ws = SimWorkspace::new();
    let mut rng = SimRng::seed_from(3);
    let horizon = 4_000_000.0;
    let out = mc.simulate_once_with(horizon, &mut rng, &mut ws);
    assert!(out.dl_events > 65_536, "got {} DL events", out.dl_events);
    let total: f64 = out.degraded_hours.iter().sum();
    assert!((total - horizon).abs() < 1e-3, "total {total}");
    assert!(out.array_downtime_hours() > 0.0 && out.array_downtime_hours() < horizon);
}

#[test]
fn weibull_fleets_are_supported() {
    let weibull = FailureModel::weibull(1e-3, 1.48).unwrap();
    let mc = FleetMc::with_failure_model(spec(4), params(1e-4, 0.01), weibull).unwrap();
    let est = mc.run(&quick_config(100)).unwrap();
    assert!(est.overall_array_availability < 1.0);
    assert!(est.overall_array_availability > 0.5);
}

#[test]
fn workspace_reuse_matches_fresh_workspaces_bitwise() {
    let p = params(2e-3, 0.05);
    let mc = FleetMc::new(spec(8), p).unwrap();
    let mut reused = SimWorkspace::new();
    for s in 100..103 {
        let mut rng = SimRng::seed_from(s);
        let _ = mc.simulate_once_with(30_000.0, &mut rng, &mut reused);
    }
    let mut fresh = SimWorkspace::new();
    let mut rng_a = SimRng::seed_from(9);
    let mut rng_b = SimRng::seed_from(9);
    let a = mc.simulate_once_with(30_000.0, &mut rng_a, &mut reused);
    let b = mc.simulate_once_with(30_000.0, &mut rng_b, &mut fresh);
    assert_eq!(
        a.array_downtime_hours().to_bits(),
        b.array_downtime_hours().to_bits()
    );
    assert_eq!(a.any_down_hours.to_bits(), b.any_down_hours.to_bits());
    assert_eq!(a.du_events, b.du_events);
    assert_eq!(a.dl_events, b.dl_events);
    assert_eq!(a.max_degraded, b.max_degraded);
}

/// Every estimate field as raw bits, so "byte-identical" is one equality.
fn digest(est: &FleetEstimate) -> (Vec<u64>, u64, u64, u32) {
    let mut bits = vec![
        est.overall_array_availability.to_bits(),
        est.fleet_availability.to_bits(),
        est.availability.mean.to_bits(),
        est.availability.half_width.to_bits(),
        est.mean_array_downtime_hours.to_bits(),
        est.annual_array_downtime_hours.to_bits(),
        est.annual_any_down_hours.to_bits(),
        est.du_downtime_share.to_bits(),
    ];
    bits.extend(est.degraded_time_share.iter().map(|s| s.to_bits()));
    (bits, est.du_events, est.dl_events, est.max_degraded)
}

fn pin_config(threads: usize) -> McConfig {
    McConfig {
        iterations: 300,
        horizon_hours: 20_000.0,
        seed: 77,
        confidence: 0.95,
        threads,
        ..McConfig::default()
    }
}

#[test]
fn repair_crew_unlimited_pool_pins_the_pre_coupling_golden_bits() {
    // Frozen from the pre-coupling `FleetMc` (PR 5): the independent
    // limit — unlimited crews, zero dependence, no domains — must keep
    // reproducing these exact bits at any worker count. A pool of
    // `c = A` crews never binds either, so it pins the same bits.
    const GOLDEN_SCALARS: [u64; 8] = [
        0x3fefdf96eabac622, // overall_array_availability
        0x3fef006aaf848d71, // fleet_availability
        0x3fefdf96eabac620, // availability.mean
        0x3f1f39512e1f9183, // availability.half_width
        0x4053c8233b8091df, // mean_array_downtime_hours
        0x404157391961ce1b, // annual_array_downtime_hours
        0x407117dd6cf18e65, // annual_any_down_hours
        0x3fc4f82731a782d6, // du_downtime_share
    ];
    const GOLDEN_HIST_HEAD: [u64; 6] = [
        0x3fe7e291ad343c7f,
        0x3fcc7e26fa23ca5f,
        0x3f9d6159b989cb86,
        0x3f61f7dfc78dff46,
        0x3f1ba9d896813645,
        0x3ec25fa902151d7a,
    ];
    let mut golden = GOLDEN_SCALARS.to_vec();
    golden.extend_from_slice(&GOLDEN_HIST_HEAD);
    golden.extend(std::iter::repeat_n(
        0u64,
        DEGRADED_BINS - GOLDEN_HIST_HEAD.len(),
    ));

    let p = params(1e-3, 0.02);
    let unlimited = FleetMc::new(spec(8), p).unwrap();
    let slack_pool = FleetMc::new(spec(8).with_repairmen(8).unwrap(), p).unwrap();
    for mc in [&unlimited, &slack_pool] {
        for threads in [1, 4] {
            let est = mc.run(&pin_config(threads)).unwrap();
            let (bits, du, dl, maxd) = digest(&est);
            assert_eq!(bits, golden, "threads = {threads}");
            assert_eq!((du, dl, maxd), (30_569, 4_853, 5), "threads = {threads}");
        }
    }
}

#[test]
fn dependence_zero_level_and_lone_incidents_change_nothing() {
    // Explicit zero dependence is the engine default, bit for bit; and
    // with a single array there is never a *concurrent* incident, so
    // even complete dependence cannot escalate anything.
    let p = params(1e-3, 0.02);
    let base_8 = FleetMc::new(spec(8), p)
        .unwrap()
        .run(&pin_config(2))
        .unwrap();
    let zero_8 = FleetMc::new(spec(8), p)
        .unwrap()
        .with_coupling(FleetCoupling {
            dependence: DependenceLevel::Zero,
            domains: None,
        })
        .unwrap()
        .run(&pin_config(2))
        .unwrap();
    assert_eq!(digest(&base_8), digest(&zero_8));

    let base_1 = FleetMc::new(spec(1), p)
        .unwrap()
        .run(&pin_config(2))
        .unwrap();
    let complete_1 = FleetMc::new(spec(1), p)
        .unwrap()
        .with_coupling(FleetCoupling {
            dependence: DependenceLevel::Complete,
            domains: None,
        })
        .unwrap()
        .run(&pin_config(2))
        .unwrap();
    assert_eq!(digest(&base_1), digest(&complete_1));
}

#[test]
fn repair_crew_scarcity_and_dependence_both_hurt_availability() {
    let p = params(2e-3, 0.02);
    let cfg = quick_config(150);
    let run = |spec: FleetSpec, coupling: Option<FleetCoupling>| {
        let mut mc = FleetMc::new(spec, p).unwrap();
        if let Some(c) = coupling {
            mc = mc.with_coupling(c).unwrap();
        }
        mc.run(&cfg).unwrap()
    };
    let free = run(spec(16), None);
    let starved = run(spec(16).with_repairmen(1).unwrap(), None);
    assert!(
        starved.overall_array_availability < free.overall_array_availability,
        "1 crew {} vs unlimited {}",
        starved.overall_array_availability,
        free.overall_array_availability
    );
    assert!(starved.max_degraded >= free.max_degraded);

    let coupled = run(
        spec(16),
        Some(FleetCoupling {
            dependence: DependenceLevel::High,
            domains: None,
        }),
    );
    assert!(
        coupled.overall_array_availability < free.overall_array_availability,
        "high dependence {} vs zero {}",
        coupled.overall_array_availability,
        free.overall_array_availability
    );
    assert!(coupled.du_events > free.du_events);
}

/// Stationary availability of the M/M/c machine-repairman model:
/// `N` machines failing at rate `nu`, `c` crews repairing at rate `mu`,
/// via the birth-death chain on the number of failed machines.
fn machine_repairman_availability(n: u32, crews: Option<u32>, nu: f64, mu: f64) -> f64 {
    let n = n as usize;
    let c = crews.map_or(n, |c| (c as usize).min(n));
    let mut pi = vec![0.0f64; n + 1];
    pi[0] = 1.0;
    for k in 0..n {
        pi[k + 1] = pi[k] * ((n - k) as f64 * nu) / ((k + 1).min(c) as f64 * mu);
    }
    let z: f64 = pi.iter().sum();
    let mean_down: f64 = pi
        .iter()
        .enumerate()
        .map(|(k, p)| k as f64 * p)
        .sum::<f64>()
        / z;
    1.0 - mean_down / n as f64
}

#[test]
fn repair_crew_pool_matches_the_machine_repairman_closed_form() {
    // Exact M/M/c oracle: per-array domain strikes (shelves of one) at
    // rate ν are the "machine failures", the crew-bound DL restore at
    // rate μ is the "repair", and the disk/operator physics is turned
    // off (λ ≈ 0, hep = 0). The MC confidence interval must cover the
    // closed-form availability across a crews × ν grid.
    const N: u32 = 12;
    const MU: f64 = 0.25;
    let mut p = params(1e-12, 0.0);
    p.ddf_recovery_rate = MU;
    for crews in [Some(1), Some(2), Some(4), None] {
        for nu in [0.01, 0.04] {
            let fleet = match crews {
                Some(c) => spec(N).with_repairmen(c).unwrap(),
                None => spec(N),
            };
            let est = FleetMc::new(fleet, p)
                .unwrap()
                .with_coupling(FleetCoupling {
                    dependence: DependenceLevel::Zero,
                    domains: Some(DomainFailures {
                        domain_arrays: 1,
                        rate: nu,
                    }),
                })
                .unwrap()
                .run(&McConfig {
                    iterations: 160,
                    horizon_hours: 30_000.0,
                    seed: 911,
                    confidence: 0.99,
                    threads: 2,
                    ..McConfig::default()
                })
                .unwrap();
            let exact = machine_repairman_availability(N, crews, nu, MU);
            let gap = (est.availability.mean - exact).abs();
            assert!(
                gap <= est.availability.half_width,
                "c = {crews:?}, ν = {nu}: mc {} vs exact {exact:.6} (hw {:.2e})",
                est.availability,
                est.availability.half_width
            );
        }
    }
}

#[test]
fn domain_failures_knock_out_whole_shelves() {
    // One shelf covering the entire 40-array fleet: every strike drives
    // the degraded count to 40 at once, past the histogram's 32+ tail.
    let mut p = params(1e-6, 0.01);
    p.ddf_recovery_rate = 0.03;
    let est = FleetMc::new(spec(40), p)
        .unwrap()
        .with_coupling(FleetCoupling {
            dependence: DependenceLevel::Zero,
            domains: Some(DomainFailures {
                domain_arrays: 40,
                rate: 1e-3,
            }),
        })
        .unwrap()
        .run(&quick_config(60))
        .unwrap();
    assert_eq!(est.max_degraded, 40);
    assert!(est.dl_events >= 40 * 60, "dl_events {}", est.dl_events);
    assert!(
        est.degraded_time_share[DEGRADED_BINS - 1] > 0.0,
        "the 32+ tail bin must absorb shelf-wide outages"
    );
}

#[test]
fn domain_coupling_is_validated() {
    let p = params(1e-3, 0.01);
    let cases = [
        (0u32, 1e-3, "at least one array per shelf"),
        (9, 1e-3, "exceeds the fleet"),
        (2, 0.0, "must be positive"),
        (2, f64::INFINITY, "must be positive"),
        (2, -1.0, "must be positive"),
    ];
    for (domain_arrays, rate, needle) in cases {
        let err = FleetMc::new(spec(8), p)
            .unwrap()
            .with_coupling(FleetCoupling {
                dependence: DependenceLevel::Zero,
                domains: Some(DomainFailures {
                    domain_arrays,
                    rate,
                }),
            })
            .unwrap_err()
            .to_string();
        assert!(err.contains(needle), "{err}");
    }
}

#[test]
fn domain_and_crew_couplings_keep_the_thread_bit_identity() {
    // The determinism contract survives every coupling at once: a
    // starved crew pool, high operator dependence, and shelf strikes.
    let p = params(1e-3, 0.02);
    let run = |threads| {
        FleetMc::new(spec(12).with_repairmen(2).unwrap(), p)
            .unwrap()
            .with_coupling(FleetCoupling {
                dependence: DependenceLevel::High,
                domains: Some(DomainFailures {
                    domain_arrays: 4,
                    rate: 1e-4,
                }),
            })
            .unwrap()
            .run(&pin_config(threads))
            .unwrap()
    };
    let one = run(1);
    let four = run(4);
    assert_eq!(digest(&one), digest(&four));
    assert!(one.dl_events > 0 && one.max_degraded >= 4);
}

#[test]
fn degraded_hours_sum_to_the_horizon_per_mission() {
    let p = params(1e-3, 0.01);
    let mc = FleetMc::new(spec(4), p).unwrap();
    let mut ws = SimWorkspace::new();
    let mut rng = SimRng::seed_from(5);
    let out = mc.simulate_once_with(25_000.0, &mut rng, &mut ws);
    let total: f64 = out.degraded_hours.iter().sum();
    assert!((total - 25_000.0).abs() < 1e-6, "total {total}");
}
