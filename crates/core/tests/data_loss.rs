//! Data-loss oracle suite: the MC `p_data_loss` interval must cover the
//! exact first-passage probability of the matching DL-absorbing chain
//! (the `ctmc` transient/absorbing machinery) on every cell of a
//! λ × scrub-interval × geometry grid, and the `lse_rate = 0` runs must
//! stay bit-identical to the LSE-free engines at any thread count. Run in
//! CI as a named step.

use availsim_core::mc::{ConventionalMc, FleetMc, McConfig, McEngine};
use availsim_core::ModelParams;
use availsim_ctmc::CtmcBuilder;
use availsim_hra::Hep;
use availsim_storage::{FleetSpec, RaidGeometry, ScrubbingModel};

fn params(geometry: RaidGeometry, lambda: f64, hep: f64) -> ModelParams {
    ModelParams::paper_defaults(geometry, lambda, Hep::new(hep).unwrap()).unwrap()
}

fn config(iterations: u64, horizon: f64, seed: u64) -> McConfig {
    McConfig {
        iterations,
        horizon_hours: horizon,
        seed,
        confidence: 0.99,
        threads: 2,
        ..McConfig::default()
    }
}

/// Exact P(first data loss ≤ horizon) of the Fig. 2 chain with the
/// LSE-split rebuild completion — the DL-absorbing twin of the chain the
/// MC engines replay (DL keeps no restore edge, so its transient mass at
/// the horizon is the first-passage probability the per-mission loss
/// indicator estimates).
fn exact_p_loss(p: &ModelParams, horizon: f64) -> f64 {
    let n = f64::from(p.disks());
    let hep = p.hep.value();
    let ue = p.rebuild_lse_probability();
    let lam = p.disk_failure_rate;
    let mut b = CtmcBuilder::new();
    let op = b.state("OP").unwrap();
    let exp = b.state("EXP").unwrap();
    let du = b.state("DU").unwrap();
    let dl = b.state("DL").unwrap();
    b.transition(op, exp, n * lam).unwrap();
    // Second failure during service, or a rebuild completion that read an
    // unreadable sector: both lose data.
    b.transition(
        exp,
        dl,
        (n - 1.0) * lam + (1.0 - hep) * ue * p.disk_repair_rate,
    )
    .unwrap();
    b.transition(exp, op, (1.0 - hep) * (1.0 - ue) * p.disk_repair_rate)
        .unwrap();
    // Default wrong-replacement timing: the change-action rate μ_ch.
    b.transition(exp, du, hep * p.disk_change_rate).unwrap();
    b.transition(du, op, (1.0 - hep) * p.human_recovery_rate)
        .unwrap();
    b.transition(du, dl, p.removed_crash_rate).unwrap();
    let chain = b.build().unwrap();
    let mut p0 = vec![0.0; chain.num_states()];
    p0[op.index()] = 1.0;
    chain.transient(&p0, horizon, 1e-12).unwrap()[dl.index()]
}

#[test]
fn p_data_loss_ci_covers_the_absorbing_chain_on_the_oracle_grid() {
    // λ × scrub-interval × {raid5, raid6} grid; every cell's Wilson
    // interval must cover the exact first-passage probability.
    let horizon = 10_000.0;
    let geometries = [
        RaidGeometry::raid5(3).unwrap(),
        RaidGeometry::raid6(4).unwrap(),
    ];
    for &lambda in &[5e-5, 2e-4] {
        for &interval in &[168.0, 672.0] {
            for &geometry in &geometries {
                let scrub = ScrubbingModel::new(1e-4, interval).unwrap();
                let p = params(geometry, lambda, 0.01).with_scrubbing(scrub);
                let exact = exact_p_loss(&p, horizon);
                assert!(
                    exact > 0.01 && exact < 0.99,
                    "degenerate oracle cell: exact {exact}"
                );
                let est = ConventionalMc::new(p)
                    .unwrap()
                    .run(&config(1_500, horizon, 97))
                    .unwrap();
                assert!(
                    (exact - est.p_data_loss.mean).abs() <= est.p_data_loss.half_width,
                    "λ={lambda} T={interval} {}: exact {exact:.4} outside \
                     {:.4} ± {:.4}",
                    geometry.label(),
                    est.p_data_loss.mean,
                    est.p_data_loss.half_width
                );
                // NOMDL and mean-time-to-first-loss come along for free on
                // every lossy cell.
                assert!(est.nomdl_per_tb > 0.0);
                let mttfl = est.mean_time_to_first_loss_hours.unwrap();
                assert!(mttfl > 0.0 && mttfl < horizon);
            }
        }
    }
}

#[test]
fn event_queue_engine_matches_the_absorbing_chain_too() {
    // The per-disk event-queue engine estimates the same first-passage
    // probability through a completely different mechanism (per-rebuild
    // Bernoulli instead of a split exit rate).
    let horizon = 20_000.0;
    let scrub = ScrubbingModel::new(1e-4, 336.0).unwrap();
    for &lambda in &[1e-4, 5e-4] {
        let p = params(RaidGeometry::raid5(3).unwrap(), lambda, 0.01).with_scrubbing(scrub);
        let exact = exact_p_loss(&p, horizon);
        let est = ConventionalMc::new(p)
            .unwrap()
            .with_engine(McEngine::EventQueue)
            .run(&config(1_000, horizon, 131))
            .unwrap();
        assert!(
            (exact - est.p_data_loss.mean).abs() <= est.p_data_loss.half_width,
            "λ={lambda}: exact {exact:.4} outside {:.4} ± {:.4}",
            est.p_data_loss.mean,
            est.p_data_loss.half_width
        );
    }
}

#[test]
fn zero_lse_rate_is_a_bitwise_noop_at_any_thread_count() {
    // The golden-digest pin: an attached zero-rate scrubbing model draws
    // nothing and changes nothing, at threads 1 and 4, on both engines.
    let zero = ScrubbingModel::new(0.0, 336.0).unwrap();
    let base = params(RaidGeometry::raid5(3).unwrap(), 1e-3, 0.01);
    for engine in [McEngine::JumpChain, McEngine::EventQueue] {
        for threads in [1, 4] {
            let cfg = McConfig {
                threads,
                ..config(512, 10_000.0, 7)
            };
            let plain = ConventionalMc::new(base)
                .unwrap()
                .with_engine(engine)
                .run(&cfg)
                .unwrap();
            let zeroed = ConventionalMc::new(base.with_scrubbing(zero))
                .unwrap()
                .with_engine(engine)
                .run(&cfg)
                .unwrap();
            let digest = |e: &availsim_core::mc::AvailabilityEstimate| {
                [
                    e.overall_availability.to_bits(),
                    e.availability.mean.to_bits(),
                    e.availability.half_width.to_bits(),
                    e.p_data_loss.mean.to_bits(),
                    e.nomdl_per_tb.to_bits(),
                    e.du_events,
                    e.dl_events,
                    e.loss_missions,
                ]
            };
            assert_eq!(digest(&plain), digest(&zeroed), "{engine:?} t={threads}");
        }
    }
}

#[test]
fn loss_metrics_are_thread_count_invariant_with_live_lse() {
    let scrub = ScrubbingModel::new(1e-4, 672.0).unwrap();
    let p = params(RaidGeometry::raid5(3).unwrap(), 5e-4, 0.01).with_scrubbing(scrub);
    let mc = ConventionalMc::new(p).unwrap();
    let mut cfg = config(512, 20_000.0, 3);
    cfg.threads = 1;
    let a = mc.run(&cfg).unwrap();
    cfg.threads = 4;
    let b = mc.run(&cfg).unwrap();
    assert_eq!(a.loss_missions, b.loss_missions);
    assert_eq!(a.p_data_loss.mean.to_bits(), b.p_data_loss.mean.to_bits());
    assert_eq!(a.nomdl_per_tb.to_bits(), b.nomdl_per_tb.to_bits());
    assert_eq!(
        a.mean_time_to_first_loss_hours.unwrap().to_bits(),
        b.mean_time_to_first_loss_hours.unwrap().to_bits()
    );
}

#[test]
fn fleet_zero_lse_rate_is_a_bitwise_noop() {
    let spec = FleetSpec::new(4, RaidGeometry::raid5(3).unwrap()).unwrap();
    let base = params(RaidGeometry::raid5(3).unwrap(), 1e-3, 0.01);
    let zero = base.with_scrubbing(ScrubbingModel::new(0.0, 336.0).unwrap());
    let cfg = config(96, 10_000.0, 23);
    let plain = FleetMc::new(spec, base).unwrap().run(&cfg).unwrap();
    let zeroed = FleetMc::new(spec, zero).unwrap().run(&cfg).unwrap();
    assert_eq!(
        plain.overall_array_availability.to_bits(),
        zeroed.overall_array_availability.to_bits()
    );
    assert_eq!(plain.dl_events, zeroed.dl_events);
    assert_eq!(plain.loss_missions, zeroed.loss_missions);
    assert_eq!(
        plain.p_data_loss.mean.to_bits(),
        zeroed.p_data_loss.mean.to_bits()
    );
    assert_eq!(plain.nomdl_per_tb.to_bits(), zeroed.nomdl_per_tb.to_bits());
}

#[test]
fn fleet_lse_exposure_produces_rebuild_losses() {
    let spec = FleetSpec::new(4, RaidGeometry::raid5(3).unwrap()).unwrap();
    let base = params(RaidGeometry::raid5(3).unwrap(), 1e-3, 0.0);
    let lse = base.with_scrubbing(ScrubbingModel::new(1e-3, 1_000.0).unwrap());
    assert!(lse.rebuild_lse_probability() > 0.3);
    let mut cfg = config(64, 10_000.0, 29);
    cfg.telemetry = true;
    let plain = FleetMc::new(spec, base).unwrap().run(&cfg).unwrap();
    let lossy = FleetMc::new(spec, lse).unwrap().run(&cfg).unwrap();
    assert!(lossy.dl_events > plain.dl_events);
    assert!(lossy.loss_missions > 0);
    assert!(lossy.p_data_loss.mean > 0.0);
    assert!(lossy.nomdl_per_tb > 0.0);
    let mttfl = lossy.mean_time_to_first_loss_hours.unwrap();
    assert!(mttfl > 0.0 && mttfl < 10_000.0);
    // The fleet NOMDL normalizes by the fleet's usable capacity (4 arrays
    // × 3 data disks).
    let per_mission = lossy.dl_events as f64 / lossy.iterations as f64;
    assert!((lossy.nomdl_per_tb - per_mission / 12.0).abs() < 1e-15);
    // Telemetry: every LSE hit is a DL entry, and the DL-entry counter
    // matches the estimate's event total.
    use availsim_sim::telemetry::Counter;
    let hits = lossy.counters.get(Counter::RebuildLseHits);
    let dl = lossy.counters.get(Counter::DataLossEvents);
    assert!(hits > 0);
    assert!(hits <= dl);
    assert_eq!(dl, lossy.dl_events);
    assert_eq!(plain.counters.get(Counter::RebuildLseHits), 0);
}

#[test]
fn fleet_loss_metrics_are_thread_count_invariant() {
    let spec = FleetSpec::new(3, RaidGeometry::raid5(3).unwrap()).unwrap();
    let p = params(RaidGeometry::raid5(3).unwrap(), 1e-3, 0.01)
        .with_scrubbing(ScrubbingModel::new(5e-4, 672.0).unwrap());
    let mc = FleetMc::new(spec, p).unwrap();
    let mut cfg = config(96, 10_000.0, 41);
    cfg.threads = 1;
    let a = mc.run(&cfg).unwrap();
    cfg.threads = 4;
    let b = mc.run(&cfg).unwrap();
    assert_eq!(a.loss_missions, b.loss_missions);
    assert_eq!(a.p_data_loss.mean.to_bits(), b.p_data_loss.mean.to_bits());
    assert_eq!(a.nomdl_per_tb.to_bits(), b.nomdl_per_tb.to_bits());
    assert_eq!(
        a.mean_time_to_first_loss_hours.unwrap().to_bits(),
        b.mean_time_to_first_loss_hours.unwrap().to_bits()
    );
}
