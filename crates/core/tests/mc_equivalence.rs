//! Statistical-equivalence suite for the jump-chain fast path.
//!
//! The fast path replays the paper's chains directly (Gillespie-style); the
//! event-queue engine simulates per-disk clocks. With exponential failures
//! the two are *distribution*-identical but consume the RNG differently, so
//! agreement is checked statistically, on the same grid the paper uses:
//!
//! 1. each engine's confidence interval must contain the exact Fig. 2
//!    Markov availability (Markov cross-validation at exponential rates);
//! 2. the two engines' intervals must overlap each other (CI overlap);
//! 3. both engines stay bit-identical across thread counts, and workspace
//!    reuse across missions must not leak state between iterations.

use availsim_core::markov::{Raid5Conventional, Raid5FailOver};
use availsim_core::mc::{ConventionalMc, FailOverMc, McConfig, McEngine, SimWorkspace};
use availsim_core::ModelParams;
use availsim_hra::Hep;
use availsim_sim::rng::SimRng;

fn params(lambda: f64, hep: f64) -> ModelParams {
    ModelParams::raid5_3plus1(lambda, Hep::new(hep).unwrap()).unwrap()
}

fn config(iterations: u64, seed: u64) -> McConfig {
    McConfig {
        iterations,
        horizon_hours: 10_000.0,
        seed,
        confidence: 0.99,
        threads: 0,
        ..McConfig::default()
    }
}

/// Intervals `[m1 ± h1]` and `[m2 ± h2]` overlap.
fn overlaps(m1: f64, h1: f64, m2: f64, h2: f64) -> bool {
    (m1 - m2).abs() <= h1 + h2
}

#[test]
fn conventional_engines_agree_with_fig2_markov_over_the_grid() {
    // λ grid spanning the regime where 500 × 10kh missions resolve the
    // unavailability well; hep at the paper's headline setting.
    for &lambda in &[5e-4, 1e-3, 2e-3] {
        let p = params(lambda, 0.01);
        let markov = Raid5Conventional::new(p).unwrap().solve().unwrap();
        let mut cis = Vec::new();
        for engine in [McEngine::JumpChain, McEngine::EventQueue] {
            let mc = ConventionalMc::new(p).unwrap().with_engine(engine);
            let est = mc.run(&config(500, 31)).unwrap();
            assert!(
                est.is_consistent_with(markov.availability()),
                "λ={lambda}, {engine:?}: markov {} outside CI {}",
                markov.availability(),
                est.availability
            );
            cis.push(est.availability);
        }
        assert!(
            overlaps(
                cis[0].mean,
                cis[0].half_width,
                cis[1].mean,
                cis[1].half_width
            ),
            "λ={lambda}: fast-path CI {} does not overlap event-queue CI {}",
            cis[0],
            cis[1]
        );
    }
}

#[test]
fn failover_engines_agree_with_fig3_markov() {
    let p = params(1e-3, 0.01);
    let markov = Raid5FailOver::new(p).unwrap().solve().unwrap();
    let mut cis = Vec::new();
    for engine in [McEngine::JumpChain, McEngine::EventQueue] {
        let mc = FailOverMc::new(p).unwrap().with_engine(engine);
        let est = mc.run(&config(600, 47)).unwrap();
        assert!(
            est.is_consistent_with(markov.availability()),
            "{engine:?}: markov {} outside CI {}",
            markov.availability(),
            est.availability
        );
        cis.push(est.availability);
    }
    assert!(
        overlaps(
            cis[0].mean,
            cis[0].half_width,
            cis[1].mean,
            cis[1].half_width
        ),
        "fast-path CI {} does not overlap event-queue CI {}",
        cis[0],
        cis[1]
    );
}

#[test]
fn du_share_is_statistically_equivalent_between_engines() {
    // Not just availability: the cause attribution (the paper's DU vs DL
    // split) must match between the engines too.
    let p = params(2e-3, 0.05);
    let cfg = config(800, 5);
    let fast = ConventionalMc::new(p)
        .unwrap()
        .with_engine(McEngine::JumpChain)
        .run(&cfg)
        .unwrap();
    let general = ConventionalMc::new(p)
        .unwrap()
        .with_engine(McEngine::EventQueue)
        .run(&cfg)
        .unwrap();
    assert!(fast.du_events > 0 && general.du_events > 0);
    let rel = (fast.du_downtime_share - general.du_downtime_share).abs()
        / general.du_downtime_share.max(1e-12);
    assert!(
        rel < 0.35,
        "du share fast {} vs general {}",
        fast.du_downtime_share,
        general.du_downtime_share
    );
}

#[test]
fn both_engines_are_bit_identical_across_thread_counts() {
    let p = params(1e-3, 0.01);
    for engine in [McEngine::JumpChain, McEngine::EventQueue] {
        let conv = ConventionalMc::new(p).unwrap().with_engine(engine);
        let fo = FailOverMc::new(p).unwrap().with_engine(engine);
        let mk = |threads| McConfig {
            threads,
            ..config(700, 13) // not a multiple of the scheduling block
        };
        let (c1, c8) = (conv.run(&mk(1)).unwrap(), conv.run(&mk(8)).unwrap());
        let (f1, f8) = (fo.run(&mk(1)).unwrap(), fo.run(&mk(8)).unwrap());
        for (a, b) in [(&c1, &c8), (&f1, &f8)] {
            assert_eq!(
                a.overall_availability.to_bits(),
                b.overall_availability.to_bits(),
                "{engine:?}"
            );
            assert_eq!(
                a.availability.half_width.to_bits(),
                b.availability.half_width.to_bits(),
                "{engine:?}"
            );
            assert_eq!(
                a.mean_downtime_hours.to_bits(),
                b.mean_downtime_hours.to_bits(),
                "{engine:?}"
            );
            assert_eq!(a.du_events, b.du_events, "{engine:?}");
            assert_eq!(a.dl_events, b.dl_events, "{engine:?}");
        }
    }
}

#[test]
fn precision_runs_use_the_fast_path_and_converge() {
    let mc = ConventionalMc::new(params(1e-3, 0.01)).unwrap();
    let cfg = config(100, 3);
    let est = mc.run_to_precision(&cfg, 5e-4, 100_000).unwrap();
    assert!(est.availability.half_width <= 5e-4);
    // The Markov answer stays inside the tightened interval.
    let markov = Raid5Conventional::new(params(1e-3, 0.01))
        .unwrap()
        .solve()
        .unwrap();
    assert!(est.is_consistent_with(markov.availability()));
}

#[test]
fn shared_workspace_across_models_does_not_leak_state() {
    // One workspace, alternating between the two models and engines: every
    // mission must match the run of a dedicated fresh workspace bit-by-bit.
    let p = params(2e-3, 0.05);
    let conv = ConventionalMc::new(p).unwrap();
    let conv_eq = ConventionalMc::new(p)
        .unwrap()
        .with_engine(McEngine::EventQueue);
    let fo = FailOverMc::new(p).unwrap();
    let mut shared = SimWorkspace::new();
    for i in 0..20u64 {
        let seed = 900 + i;
        let mut r1 = SimRng::seed_from(seed);
        let mut r2 = SimRng::seed_from(seed);
        let (shared_out, fresh_out) = match i % 3 {
            0 => (
                conv.simulate_once_with(20_000.0, &mut r1, &mut shared),
                conv.simulate_once_with(20_000.0, &mut r2, &mut SimWorkspace::new()),
            ),
            1 => (
                conv_eq.simulate_once_with(20_000.0, &mut r1, &mut shared),
                conv_eq.simulate_once_with(20_000.0, &mut r2, &mut SimWorkspace::new()),
            ),
            _ => (
                fo.simulate_once_with(20_000.0, &mut r1, &mut shared),
                fo.simulate_once_with(20_000.0, &mut r2, &mut SimWorkspace::new()),
            ),
        };
        assert_eq!(
            shared_out.downtime_hours.to_bits(),
            fresh_out.downtime_hours.to_bits(),
            "iteration {i}"
        );
        assert_eq!(shared_out.du_events, fresh_out.du_events, "iteration {i}");
        assert_eq!(shared_out.dl_events, fresh_out.dl_events, "iteration {i}");
    }
}
