//! Availability ↔ "number of nines" ↔ downtime conversions.
//!
//! The paper reports every result as a number of nines,
//! `nines = −log10(1 − A)`; five nines means at most ~5.3 minutes of
//! downtime a year.

use availsim_storage::HOURS_PER_YEAR;

/// Number of nines of an availability value:`−log10(1 − A)`.
///
/// Perfect availability maps to `+inf`; values below zero are clamped at 0
/// nines (an always-down system).
pub fn nines(availability: f64) -> f64 {
    if availability >= 1.0 {
        return f64::INFINITY;
    }
    if availability <= 0.0 {
        return 0.0;
    }
    -(1.0 - availability).log10()
}

/// Number of nines directly from an *unavailability* — preferred when `u`
/// is tiny, because it avoids the `1 − (1 − u)` cancellation entirely.
pub fn nines_from_unavailability(unavailability: f64) -> f64 {
    if unavailability <= 0.0 {
        return f64::INFINITY;
    }
    if unavailability >= 1.0 {
        return 0.0;
    }
    -unavailability.log10()
}

/// Availability for a given number of nines.
pub fn availability_from_nines(n: f64) -> f64 {
    1.0 - 10f64.powf(-n)
}

/// Unavailability for a given number of nines.
pub fn unavailability_from_nines(n: f64) -> f64 {
    10f64.powf(-n)
}

/// Expected downtime in hours per year for an unavailability.
pub fn downtime_hours_per_year(unavailability: f64) -> f64 {
    unavailability.clamp(0.0, 1.0) * HOURS_PER_YEAR
}

/// Expected downtime in minutes per year for an unavailability.
pub fn downtime_minutes_per_year(unavailability: f64) -> f64 {
    downtime_hours_per_year(unavailability) * 60.0
}

/// Formats an availability as a human-readable summary, e.g.
/// `"0.99999 (5.0 nines, 5.3 min/yr downtime)"`.
pub fn summarize(availability: f64) -> String {
    let u = (1.0 - availability).max(0.0);
    format!(
        "{availability:.9} ({:.2} nines, {:.2} min/yr downtime)",
        nines(availability),
        downtime_minutes_per_year(u)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_numbers() {
        assert!((nines(0.9) - 1.0).abs() < 1e-12);
        assert!((nines(0.999) - 3.0).abs() < 1e-9);
        assert!((nines(0.99999) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn edge_cases() {
        assert!(nines(1.0).is_infinite());
        assert_eq!(nines(0.0), 0.0);
        assert_eq!(nines(-0.5), 0.0);
        assert!(nines_from_unavailability(0.0).is_infinite());
        assert_eq!(nines_from_unavailability(1.0), 0.0);
    }

    #[test]
    fn unavailability_path_is_precise_for_tiny_u() {
        // At u = 1e-12 the availability-path hits f64 rounding; the
        // unavailability path must stay exact.
        let n = nines_from_unavailability(1e-12);
        assert!((n - 12.0).abs() < 1e-12);
    }

    #[test]
    fn roundtrips() {
        for &n in &[0.5, 1.0, 3.3, 7.0] {
            let a = availability_from_nines(n);
            assert!((nines(a) - n).abs() < 1e-6, "n={n}");
            let u = unavailability_from_nines(n);
            assert!((nines_from_unavailability(u) - n).abs() < 1e-12);
            assert!((a + u - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn downtime_conversions() {
        // Five nines ≈ 5.26 minutes per year.
        let u = unavailability_from_nines(5.0);
        let m = downtime_minutes_per_year(u);
        assert!((m - 5.26).abs() < 0.01, "got {m}");
        // One nine = 876.6 hours per year.
        assert!((downtime_hours_per_year(0.1) - 876.6).abs() < 1e-9);
    }

    #[test]
    fn summary_format() {
        let s = summarize(0.99999);
        assert!(s.contains("nines"), "{s}");
        assert!(s.contains("min/yr"), "{s}");
    }
}
