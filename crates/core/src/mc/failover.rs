//! Monte-Carlo model of the automatic fail-over policy — an event-driven
//! replay of the Fig. 3 chain, used to cross-validate the analytical model.
//!
//! All transitions (failures included) are exponential races, so this
//! simulator is distribution-equivalent to the twelve-state CTMC; its value
//! is methodological: agreement between two independently coded artifacts —
//! a generator-matrix solve and an event-driven simulation — catches
//! transcription mistakes in either.

use self::states::Mode;
use super::{AvailabilityEstimate, IterationOutcome, McConfig};
use crate::error::Result;
use crate::params::ModelParams;
use availsim_sim::engine::EventQueue;
use availsim_sim::rng::SimRng;
use availsim_storage::{DowntimeLog, OutageCause};

mod states {
    /// The twelve Fig. 3 states.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Mode {
        Op,
        Exp1,
        OpNs,
        ExpNs1,
        ExpNs2,
        Exp2,
        Du1,
        Du2,
        DuNs1,
        DuNs2,
        Dl,
        DlNs,
    }

    impl Mode {
        /// Whether the array serves I/O in this state.
        pub fn is_up(self) -> bool {
            matches!(
                self,
                Mode::Op | Mode::Exp1 | Mode::OpNs | Mode::ExpNs1 | Mode::ExpNs2 | Mode::Exp2
            )
        }

        /// Whether the state is a data-loss state (vs. human-error DU).
        pub fn is_data_loss(self) -> bool {
            matches!(self, Mode::Dl | Mode::DlNs)
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Jump {
    to: Mode,
    epoch: u64,
    counts_as_du: bool,
    counts_as_dl: bool,
}

/// The automatic fail-over Monte-Carlo model.
#[derive(Debug, Clone, Copy)]
pub struct FailOverMc {
    params: ModelParams,
}

impl FailOverMc {
    /// Creates the model.
    ///
    /// # Errors
    /// Propagates parameter validation errors.
    pub fn new(params: ModelParams) -> Result<Self> {
        params.validate()?;
        Ok(FailOverMc { params })
    }

    /// The model parameters.
    pub fn params(&self) -> &ModelParams {
        &self.params
    }

    /// Outgoing transitions of a state as `(rate, target)` pairs —
    /// the DESIGN.md §3.2 table, shared verbatim with the Markov model's
    /// builder through the tests that compare both.
    fn exits(&self, mode: Mode) -> Vec<(f64, Mode)> {
        let p = &self.params;
        let n = f64::from(p.disks());
        let hep = p.hep.value();
        let lam = p.disk_failure_rate;
        let (mu_df, mu_ddf) = (p.disk_repair_rate, p.ddf_recovery_rate);
        let (mu_he, mu_ch) = (p.human_recovery_rate, p.disk_change_rate);
        let crash = p.removed_crash_rate;
        use Mode::*;
        match mode {
            Op => vec![(n * lam, Exp1)],
            Exp1 => vec![((n - 1.0) * lam, Dl), (mu_df, OpNs)],
            OpNs => vec![
                (n * lam, ExpNs1),
                ((1.0 - hep) * mu_ch, Op),
                (hep * mu_ch, ExpNs2),
            ],
            ExpNs1 => vec![
                ((1.0 - hep) * mu_df, OpNs),
                ((1.0 - hep) * mu_ch, Exp1),
                (hep * (mu_df + mu_ch), DuNs1),
                ((n - 1.0) * lam, DlNs),
            ],
            ExpNs2 => vec![
                ((1.0 - hep) * mu_he, Op),
                (hep * mu_he, DuNs2),
                (crash, ExpNs1),
                ((n - 1.0) * lam, DuNs1),
            ],
            Exp2 => vec![
                ((1.0 - hep) * mu_he, Op),
                (hep * mu_he, Du2),
                (crash, Exp1),
                ((n - 1.0) * lam, Du1),
            ],
            Du1 => vec![
                ((1.0 - hep) * mu_he, Exp1),
                (crash, Dl),
                (mu_ddf, Op),
                (hep * mu_he, Du2),
            ],
            Du2 => vec![((1.0 - hep) * mu_he, Exp2), (2.0 * crash, Du1)],
            DuNs1 => vec![
                ((1.0 - hep) * mu_he, ExpNs1),
                (crash, DlNs),
                (mu_ddf, OpNs),
                ((1.0 - hep) * mu_ch, Du1),
            ],
            DuNs2 => vec![((1.0 - hep) * mu_he, ExpNs2), (2.0 * crash, DuNs1)],
            Dl => vec![(mu_ddf, Op)],
            DlNs => vec![(mu_ddf, OpNs), ((1.0 - hep) * mu_ch, Dl)],
        }
    }

    /// Runs the full Monte-Carlo estimation.
    ///
    /// # Errors
    /// Propagates configuration errors.
    pub fn run(&self, config: &McConfig) -> Result<AvailabilityEstimate> {
        super::run_iterations(config, |i| {
            let mut rng = SimRng::substream(config.seed, i);
            self.simulate_once(config.horizon_hours, &mut rng)
        })
    }

    /// Simulates one mission.
    pub fn simulate_once(&self, horizon: f64, rng: &mut SimRng) -> IterationOutcome {
        let mut queue: EventQueue<Jump> = EventQueue::new();
        let mut log = DowntimeLog::new();
        let mut mode = Mode::Op;
        let mut epoch = 0u64;
        let (mut du_events, mut dl_events) = (0u64, 0u64);

        let arm = |mode: Mode, epoch: u64, queue: &mut EventQueue<Jump>, rng: &mut SimRng| {
            for (rate, to) in self.exits(mode) {
                if rate > 0.0 {
                    let dt = -rng.next_open_f64().ln() / rate;
                    let _ = queue.schedule(
                        dt,
                        Jump {
                            to,
                            epoch,
                            counts_as_du: !to.is_up() && !to.is_data_loss(),
                            counts_as_dl: to.is_data_loss(),
                        },
                    );
                }
            }
        };

        arm(mode, epoch, &mut queue, rng);
        while let Some(t) = queue.peek_time() {
            if t > horizon {
                break;
            }
            let (_, jump) = queue.pop().expect("peeked event exists");
            if jump.epoch != epoch {
                continue;
            }
            let was_up = mode.is_up();
            let was_dl = mode.is_data_loss();
            mode = jump.to;
            epoch += 1;
            let now_up = mode.is_up();
            match (was_up, now_up) {
                (true, false) => {
                    if jump.counts_as_dl {
                        dl_events += 1;
                        log.begin(t, OutageCause::DataLoss);
                    } else {
                        debug_assert!(jump.counts_as_du);
                        du_events += 1;
                        log.begin(t, OutageCause::HumanError);
                    }
                }
                (false, true) => log.end(t),
                (false, false) => {
                    // Down-to-down: re-attribute if the class changed
                    // (e.g. DUns1 → DLns counts as a fresh DL event).
                    if !was_dl && mode.is_data_loss() {
                        dl_events += 1;
                        log.end(t);
                        log.begin(t, OutageCause::DataLoss);
                    } else if was_dl && !mode.is_data_loss() {
                        du_events += 1;
                        log.end(t);
                        log.begin(t, OutageCause::HumanError);
                    }
                }
                (true, true) => {}
            }
            arm(mode, epoch, &mut queue, rng);
        }

        log.finalize(horizon);
        IterationOutcome {
            downtime_hours: log.total_downtime(),
            du_downtime_hours: log.downtime_by_cause(OutageCause::HumanError),
            dl_downtime_hours: log.downtime_by_cause(OutageCause::DataLoss),
            du_events,
            dl_events,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::markov::Raid5FailOver;
    use availsim_hra::Hep;

    fn params(lambda: f64, hep: f64) -> ModelParams {
        ModelParams::raid5_3plus1(lambda, Hep::new(hep).unwrap()).unwrap()
    }

    fn quick_config(iterations: u64) -> McConfig {
        McConfig {
            iterations,
            horizon_hours: 10_000.0,
            seed: 11,
            confidence: 0.99,
            threads: 2,
        }
    }

    #[test]
    fn exit_rates_match_the_markov_chain() {
        // Every (rate, target) pair of the simulator must equal the chain's
        // generator entry — the two artifacts encode one table.
        let p = params(1e-4, 0.01);
        let mc = FailOverMc::new(p).unwrap();
        let chain = Raid5FailOver::new(p).unwrap().build_chain().unwrap();
        use super::states::Mode::*;
        let label = |m| match m {
            Op => "OP",
            Exp1 => "EXP1",
            OpNs => "OPns",
            ExpNs1 => "EXPns1",
            ExpNs2 => "EXPns2",
            Exp2 => "EXP2",
            Du1 => "DU1",
            Du2 => "DU2",
            DuNs1 => "DUns1",
            DuNs2 => "DUns2",
            Dl => "DL",
            DlNs => "DLns",
        };
        for mode in [
            Op, Exp1, OpNs, ExpNs1, ExpNs2, Exp2, Du1, Du2, DuNs1, DuNs2, Dl, DlNs,
        ] {
            let from = chain.find_state(label(mode)).expect("state exists");
            let mut total = 0.0;
            for (rate, to) in mc.exits(mode) {
                let to_id = chain.find_state(label(to)).expect("state exists");
                let chain_rate = chain.rate(from, to_id);
                assert!(
                    (rate - chain_rate).abs() < 1e-15,
                    "{} -> {}: mc {rate} vs chain {chain_rate}",
                    label(mode),
                    label(to)
                );
                total += rate;
            }
            assert!(
                (total - chain.exit_rate(from)).abs() < 1e-15,
                "{}",
                label(mode)
            );
        }
    }

    #[test]
    fn no_downtime_without_events() {
        let mc = FailOverMc::new(params(1e-15, 0.01)).unwrap();
        let est = mc.run(&quick_config(10)).unwrap();
        assert_eq!(est.overall_availability, 1.0);
    }

    #[test]
    fn agrees_with_markov_at_high_rates() {
        let p = params(1e-3, 0.01);
        let mc = FailOverMc::new(p).unwrap();
        let est = mc.run(&quick_config(600)).unwrap();
        let markov = Raid5FailOver::new(p).unwrap().solve().unwrap();
        assert!(
            est.is_consistent_with(markov.availability()),
            "markov {} outside CI {}",
            markov.availability(),
            est.availability
        );
    }

    #[test]
    fn beats_conventional_mc_under_human_error() {
        use crate::mc::ConventionalMc;
        let p = params(1e-3, 0.05);
        let cfg = quick_config(400);
        let fo = FailOverMc::new(p).unwrap().run(&cfg).unwrap();
        let conv = ConventionalMc::new(p).unwrap().run(&cfg).unwrap();
        assert!(
            fo.overall_availability > conv.overall_availability,
            "fo {} conv {}",
            fo.overall_availability,
            conv.overall_availability
        );
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let p = params(1e-3, 0.01);
        let mc = FailOverMc::new(p).unwrap();
        let mut cfg = quick_config(64);
        cfg.threads = 1;
        let a = mc.run(&cfg).unwrap();
        cfg.threads = 8;
        let b = mc.run(&cfg).unwrap();
        assert_eq!(
            a.overall_availability.to_bits(),
            b.overall_availability.to_bits()
        );
    }

    #[test]
    fn hep_zero_never_enters_du() {
        let mc = FailOverMc::new(params(2e-3, 0.0)).unwrap();
        let est = mc.run(&quick_config(300)).unwrap();
        assert_eq!(est.du_events, 0);
    }
}
