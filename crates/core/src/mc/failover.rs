//! Monte-Carlo model of the automatic fail-over policy — a replay of the
//! Fig. 3 chain, used to cross-validate the analytical model.
//!
//! All transitions (failures included) are exponential races, so this
//! simulator is distribution-equivalent to the twelve-state CTMC; its value
//! is methodological: agreement between two independently coded artifacts —
//! a generator-matrix solve and an event-driven simulation — catches
//! transcription mistakes in either.
//!
//! Two engines replay the chain (see [`McEngine`]): the general
//! event-queue engine samples one exponential per enabled exit and lets
//! the queue race them; the jump-chain fast path samples the sojourn from
//! the state's total exit rate and picks the winner with one uniform —
//! two RNG draws per transition, no heap.

use self::states::Mode;
use super::{
    biased_pick, AvailabilityEstimate, IterationOutcome, McConfig, McEngine, McVariance,
    SimWorkspace,
};
use crate::error::{CoreError, Result};
use crate::params::ModelParams;
use availsim_sim::indexed_queue::{IndexedEventQueue, QueueStats};
use availsim_sim::rng::SimRng;
use availsim_sim::telemetry::{Counter, Telemetry};
use availsim_storage::{DowntimeLog, OutageCause};

mod states {
    /// The twelve Fig. 3 states.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Mode {
        Op,
        Exp1,
        OpNs,
        ExpNs1,
        ExpNs2,
        Exp2,
        Du1,
        Du2,
        DuNs1,
        DuNs2,
        Dl,
        DlNs,
    }

    impl Mode {
        /// All states, indexed by `mode as usize`.
        pub const ALL: [Mode; 12] = [
            Mode::Op,
            Mode::Exp1,
            Mode::OpNs,
            Mode::ExpNs1,
            Mode::ExpNs2,
            Mode::Exp2,
            Mode::Du1,
            Mode::Du2,
            Mode::DuNs1,
            Mode::DuNs2,
            Mode::Dl,
            Mode::DlNs,
        ];

        /// Whether the array serves I/O in this state.
        pub fn is_up(self) -> bool {
            matches!(
                self,
                Mode::Op | Mode::Exp1 | Mode::OpNs | Mode::ExpNs1 | Mode::ExpNs2 | Mode::Exp2
            )
        }

        /// Whether the state is a data-loss state (vs. human-error DU).
        pub fn is_data_loss(self) -> bool {
            matches!(self, Mode::Dl | Mode::DlNs)
        }
    }
}

/// The Fig. 3 switch-back race out of the network-storage serving states,
/// shared with the fleet engine's DR coupling ([`super::FleetMc`]): a
/// successful fail-back at `(1 − hep)·φ` races a botched switch-back
/// (DR-side human error) at `hep·φ`. Returned as reciprocal rates (`∞`
/// disables a lane, and `sample_exp_inv` then draws nothing) so callers
/// multiply instead of divide.
pub(crate) fn failback_race_inv(hep: f64, failback_rate: f64) -> (f64, f64) {
    (
        ((1.0 - hep) * failback_rate).recip(),
        (hep * failback_rate).recip(),
    )
}

/// Event payload of the general engine, 8 bytes so a queue entry stays 24
/// (the per-mission `epoch` guard never approaches `u32::MAX`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Jump {
    to: Mode,
    epoch: u32,
}

/// Most exits any Fig. 3 state has (the table rows are fixed-size so the
/// whole model stays `Copy` and allocation-free).
const MAX_EXITS: usize = 4;

/// Precomputed outgoing transitions of all twelve states: per state the
/// `(rate, target, in-biased-set)` triples (in the DESIGN.md §3.2 table
/// order), the number of entries, and the total exit rate. The biased flag
/// marks the failure / human-error / crash exits that balanced failure
/// biasing inflates. Built once per model in [`FailOverMc::new`], shared by
/// both engines so neither allocates in the mission loop.
#[derive(Debug, Clone, Copy)]
struct JumpTable {
    exits: [[(f64, Mode, bool); MAX_EXITS]; 12],
    /// Reciprocal exit rates (`∞` for disabled exits), so the event-queue
    /// engine's per-exit draws multiply instead of divide.
    inv_rates: [[f64; MAX_EXITS]; 12],
    len: [usize; 12],
    totals: [f64; 12],
}

impl JumpTable {
    fn exits_of(&self, mode: Mode) -> &[(f64, Mode, bool)] {
        let i = mode as usize;
        &self.exits[i][..self.len[i]]
    }

    fn inv_rates_of(&self, mode: Mode) -> &[f64] {
        let i = mode as usize;
        &self.inv_rates[i][..self.len[i]]
    }
}

/// Reusable scratch of the general event-queue engine. Cleared (capacity
/// retained) at the start of every mission.
#[derive(Debug, Default)]
pub(crate) struct FoScratch {
    queue: IndexedEventQueue<Jump>,
}

impl FoScratch {
    /// Empties the queue, retaining its allocated capacity.
    pub(crate) fn reset(&mut self) {
        self.queue.clear();
    }

    /// Cumulative traffic counters of the mission event queue.
    pub(crate) fn queue_stats(&self) -> QueueStats {
        self.queue.stats()
    }
}

/// Flushes a mission's locally accumulated chain tallies into the registry
/// — one batched store per mission behind a single well-predicted branch,
/// keeping the transition loop at plain register increments.
#[inline]
fn flush_chain_counters(
    tele: &mut Telemetry,
    transitions: u64,
    exp_draws: u64,
    uniform_draws: u64,
) {
    if !tele.enabled() {
        return;
    }
    tele.add(Counter::JumpTransitions, transitions);
    tele.add(Counter::RngExpDraws, exp_draws);
    tele.add(Counter::RngUniformDraws, uniform_draws);
}

/// The automatic fail-over Monte-Carlo model.
#[derive(Debug, Clone, Copy)]
pub struct FailOverMc {
    params: ModelParams,
    engine: McEngine,
    table: JumpTable,
}

impl FailOverMc {
    /// Creates the model.
    ///
    /// # Errors
    /// Propagates parameter validation errors. A live LSE/scrubbing model
    /// is rejected: the Fig. 3 chain has no rebuild-completion data-loss
    /// branch, and silently ignoring the exposure would overstate
    /// availability (a zero-rate model is accepted — it is numerically
    /// off).
    pub fn new(params: ModelParams) -> Result<Self> {
        params.validate()?;
        if params.rebuild_lse_probability() > 0.0 {
            return Err(CoreError::InvalidParameter(
                "the fail-over model does not support LSE-aware rebuilds; \
                 remove the scrubbing model (or set `lse_rate = 0`), or use \
                 the conventional/fleet Monte-Carlo engines"
                    .into(),
            ));
        }
        let mut mc = FailOverMc {
            params,
            engine: McEngine::Auto,
            table: JumpTable {
                exits: [[(0.0, Mode::Op, false); MAX_EXITS]; 12],
                inv_rates: [[f64::INFINITY; MAX_EXITS]; 12],
                len: [0; 12],
                totals: [0.0; 12],
            },
        };
        for mode in Mode::ALL {
            let i = mode as usize;
            let exits = mc.exits(mode);
            assert!(exits.len() <= MAX_EXITS, "exit table row overflow");
            for (k, &(rate, to, biased)) in exits.iter().enumerate() {
                mc.table.exits[i][k] = (rate, to, biased);
                mc.table.inv_rates[i][k] = rate.recip();
                mc.table.totals[i] += rate;
            }
            mc.table.len[i] = exits.len();
        }
        Ok(mc)
    }

    /// Selects the per-mission engine. Every Fig. 3 transition is
    /// exponential, so [`McEngine::Auto`] (and [`McEngine::JumpChain`])
    /// resolve to the jump-chain fast path; [`McEngine::EventQueue`] forces
    /// the general engine, the cross-validation reference.
    pub fn with_engine(mut self, engine: McEngine) -> Self {
        self.engine = engine;
        self
    }

    /// The model parameters.
    pub fn params(&self) -> &ModelParams {
        &self.params
    }

    /// Whether the configured engine resolves to the fast path.
    fn fast_path(&self) -> bool {
        !matches!(self.engine, McEngine::EventQueue)
    }

    /// Outgoing transitions of a state as `(rate, target, biased)` triples —
    /// the DESIGN.md §3.2 table, shared verbatim with the Markov model's
    /// builder through the tests that compare both. The `biased` flag marks
    /// the exits whose rate carries a failure (λ), a human-error slip
    /// (`hep·μ`), or a removed-disk crash — the set balanced failure
    /// biasing inflates; the service/recovery exits stay unbiased.
    fn exits(&self, mode: Mode) -> Vec<(f64, Mode, bool)> {
        let p = &self.params;
        let n = f64::from(p.disks());
        let hep = p.hep.value();
        let lam = p.disk_failure_rate;
        let (mu_df, mu_ddf) = (p.disk_repair_rate, p.ddf_recovery_rate);
        let (mu_he, mu_ch) = (p.human_recovery_rate, p.disk_change_rate);
        let crash = p.removed_crash_rate;
        use Mode::*;
        match mode {
            Op => vec![(n * lam, Exp1, true)],
            Exp1 => vec![((n - 1.0) * lam, Dl, true), (mu_df, OpNs, false)],
            OpNs => vec![
                (n * lam, ExpNs1, true),
                ((1.0 - hep) * mu_ch, Op, false),
                (hep * mu_ch, ExpNs2, true),
            ],
            ExpNs1 => vec![
                ((1.0 - hep) * mu_df, OpNs, false),
                ((1.0 - hep) * mu_ch, Exp1, false),
                (hep * (mu_df + mu_ch), DuNs1, true),
                ((n - 1.0) * lam, DlNs, true),
            ],
            ExpNs2 => vec![
                ((1.0 - hep) * mu_he, Op, false),
                (hep * mu_he, DuNs2, true),
                (crash, ExpNs1, true),
                ((n - 1.0) * lam, DuNs1, true),
            ],
            Exp2 => vec![
                ((1.0 - hep) * mu_he, Op, false),
                (hep * mu_he, Du2, true),
                (crash, Exp1, true),
                ((n - 1.0) * lam, Du1, true),
            ],
            Du1 => vec![
                ((1.0 - hep) * mu_he, Exp1, false),
                (crash, Dl, true),
                (mu_ddf, Op, false),
                (hep * mu_he, Du2, true),
            ],
            Du2 => vec![((1.0 - hep) * mu_he, Exp2, false), (2.0 * crash, Du1, true)],
            DuNs1 => vec![
                ((1.0 - hep) * mu_he, ExpNs1, false),
                (crash, DlNs, true),
                (mu_ddf, OpNs, false),
                ((1.0 - hep) * mu_ch, Du1, false),
            ],
            DuNs2 => vec![
                ((1.0 - hep) * mu_he, ExpNs2, false),
                (2.0 * crash, DuNs1, true),
            ],
            Dl => vec![(mu_ddf, Op, false)],
            DlNs => vec![(mu_ddf, OpNs, false), ((1.0 - hep) * mu_ch, Dl, false)],
        }
    }

    /// Resolves the variance scheme against the configured engine: every
    /// Fig. 3 transition is exponential, so failure biasing always applies
    /// (on the fast path), while splitting — the scheme for models with no
    /// tractable path density — has nothing to offer here and is rejected.
    ///
    /// # Errors
    /// [`CoreError::InvalidParameter`] for splitting, for biasing on a
    /// forced [`McEngine::EventQueue`], or for invalid scheme parameters.
    fn resolve_bias(&self, variance: McVariance) -> Result<Option<f64>> {
        variance.validate()?;
        match variance {
            McVariance::Naive => Ok(None),
            McVariance::FailureBiasing { bias } => {
                if matches!(self.engine, McEngine::EventQueue) {
                    Err(CoreError::InvalidParameter(
                        "failure biasing runs on the jump-chain fast path; \
                         do not force McEngine::EventQueue with it"
                            .into(),
                    ))
                } else if bias <= 0.0 {
                    Ok(None) // exactly the naive estimator
                } else {
                    Ok(Some(bias))
                }
            }
            McVariance::Splitting { .. } => Err(CoreError::InvalidParameter(
                "splitting targets the conventional model's event-queue engine \
                 (non-exponential lifetimes); the fail-over chain is fully \
                 exponential — use McVariance::FailureBiasing instead"
                    .into(),
            )),
        }
    }

    /// Runs the full Monte-Carlo estimation.
    ///
    /// Each worker thread allocates one [`SimWorkspace`] and reuses it for
    /// every mission it claims, so the mission loop is allocation-free in
    /// steady state on both engines.
    ///
    /// # Errors
    /// Propagates configuration errors and invalid engine/variance
    /// combinations (see [`McVariance`]).
    pub fn run(&self, config: &McConfig) -> Result<AvailabilityEstimate> {
        self.run_with_cancel(config, None)
    }

    /// [`run`](Self::run) plus an optional cooperative
    /// [`CancelToken`](availsim_sim::parallel::CancelToken): a tripped
    /// deadline or explicit cancel stops the block scheduler and returns
    /// [`CoreError::DeadlineExpired`](crate::CoreError::DeadlineExpired)
    /// instead of an estimate. Uncancelled runs are bit-identical to
    /// [`run`](Self::run).
    ///
    /// # Errors
    /// As [`run`](Self::run), plus `DeadlineExpired` on cancellation.
    pub fn run_with_cancel(
        &self,
        config: &McConfig,
        cancel: Option<&availsim_sim::parallel::CancelToken>,
    ) -> Result<AvailabilityEstimate> {
        let fast = self.fast_path();
        let bias = self.resolve_bias(config.variance)?;
        super::run_iterations_cancellable(
            config,
            cancel,
            || SimWorkspace::with_telemetry(config.telemetry),
            |ws, i| {
                let mut rng = SimRng::substream(config.seed, i);
                match bias {
                    Some(bias) => self.simulate_jump_chain_biased(
                        config.horizon_hours,
                        bias,
                        &mut rng,
                        &mut ws.log,
                        &mut ws.telemetry,
                    ),
                    None if fast => self.simulate_jump_chain(
                        config.horizon_hours,
                        &mut rng,
                        &mut ws.log,
                        &mut ws.telemetry,
                    ),
                    None => self.simulate_event_queue(config.horizon_hours, &mut rng, ws),
                }
            },
        )
    }

    /// Simulates one mission with a fresh scratch workspace (hot loops
    /// should use [`Self::simulate_once_with`]). Engine selection follows
    /// [`Self::with_engine`].
    pub fn simulate_once(&self, horizon: f64, rng: &mut SimRng) -> IterationOutcome {
        let mut ws = SimWorkspace::new();
        self.simulate_once_with(horizon, rng, &mut ws)
    }

    /// Simulates one mission on a reusable [`SimWorkspace`] —
    /// allocation-free once the workspace buffers have grown. The mission
    /// fully resets the workspace state it reads, so reuse across missions
    /// never leaks state between iterations.
    pub fn simulate_once_with(
        &self,
        horizon: f64,
        rng: &mut SimRng,
        ws: &mut SimWorkspace,
    ) -> IterationOutcome {
        if self.fast_path() {
            self.simulate_jump_chain(horizon, rng, &mut ws.log, &mut ws.telemetry)
        } else {
            self.simulate_event_queue(horizon, rng, ws)
        }
    }

    /// The jump-chain fast path: sample the sojourn from the state's total
    /// exit rate, pick the winning transition with one uniform — two RNG
    /// draws per transition, no event queue.
    fn simulate_jump_chain(
        &self,
        horizon: f64,
        rng: &mut SimRng,
        log: &mut DowntimeLog,
        tele: &mut Telemetry,
    ) -> IterationOutcome {
        log.clear();
        let mut mode = Mode::Op;
        let mut t = 0.0;
        let (mut du_events, mut dl_events) = (0u64, 0u64);
        let (mut transitions, mut exp_draws, mut uniform_draws) = (0u64, 0u64, 0u64);

        loop {
            let total = self.table.totals[mode as usize];
            let Some(dt) = rng.sample_exp(total) else {
                break; // absorbing state: no enabled exits
            };
            exp_draws += 1;
            t += dt;
            if t > horizon {
                break;
            }
            // Winner ∝ rate: walk the cumulative distribution. Rounding can
            // leave `u` a hair past the last bucket; the final enabled exit
            // then wins (its upper edge is the total by construction).
            let mut u = rng.next_f64() * total;
            uniform_draws += 1;
            let mut next = mode;
            for &(rate, to, _) in self.table.exits_of(mode) {
                if rate <= 0.0 {
                    continue;
                }
                next = to;
                if u < rate {
                    break;
                }
                u -= rate;
            }
            account_transition(mode, next, t, log, &mut du_events, &mut dl_events);
            mode = next;
            transitions += 1;
        }

        log.finalize(horizon);
        flush_chain_counters(tele, transitions, exp_draws, uniform_draws);
        outcome_from(log, du_events, dl_events, 1.0)
    }

    /// Simulates one importance-sampled mission on a reusable workspace
    /// (see [`McVariance::FailureBiasing`]); the returned outcome's
    /// `weight` carries the path's likelihood ratio. `bias <= 0` falls back
    /// to [`Self::simulate_once_with`] with weight 1.
    pub fn simulate_once_biased_with(
        &self,
        horizon: f64,
        bias: f64,
        rng: &mut SimRng,
        ws: &mut SimWorkspace,
    ) -> IterationOutcome {
        if bias > 0.0 {
            self.simulate_jump_chain_biased(horizon, bias, rng, &mut ws.log, &mut ws.telemetry)
        } else {
            self.simulate_once_with(horizon, rng, ws)
        }
    }

    /// The importance-sampled jump chain: the first OP sojourn is *forced*
    /// into the mission window (its hit probability multiplies the weight),
    /// and in every state the winning exit is drawn with [`biased_pick`] —
    /// the failure / human-error / crash exits share proposal mass `bias`.
    /// Same two RNG draws per transition as the naive fast path.
    fn simulate_jump_chain_biased(
        &self,
        horizon: f64,
        bias: f64,
        rng: &mut SimRng,
        log: &mut DowntimeLog,
        tele: &mut Telemetry,
    ) -> IterationOutcome {
        log.clear();
        let mut mode = Mode::Op;
        let mut t = 0.0;
        let mut weight = 1.0f64;
        let mut force_next_failure = true;
        let (mut du_events, mut dl_events) = (0u64, 0u64);
        let (mut transitions, mut exp_draws, mut uniform_draws) = (0u64, 0u64, 0u64);

        loop {
            let total = self.table.totals[mode as usize];
            let dt = if mode == Mode::Op && force_next_failure {
                force_next_failure = false;
                match rng.sample_exp_within(total, horizon - t) {
                    Some((dt, p_hit)) => {
                        exp_draws += 1;
                        weight *= p_hit;
                        dt
                    }
                    None => break,
                }
            } else {
                match rng.sample_exp(total) {
                    Some(dt) => {
                        exp_draws += 1;
                        dt
                    }
                    None => break, // absorbing state: no enabled exits
                }
            };
            t += dt;
            if t > horizon {
                break;
            }
            let exits = self.table.exits_of(mode);
            let next = if exits.len() == 1 {
                exits[0].1
            } else {
                let mut flags = [(0.0, false); MAX_EXITS];
                for (k, &(rate, _, biased)) in exits.iter().enumerate() {
                    flags[k] = (rate, biased);
                }
                let (idx, ratio) = biased_pick(rng, &flags[..exits.len()], total, bias);
                uniform_draws += 1;
                weight *= ratio;
                exits[idx].1
            };
            account_transition(mode, next, t, log, &mut du_events, &mut dl_events);
            mode = next;
            transitions += 1;
        }

        log.finalize(horizon);
        flush_chain_counters(tele, transitions, exp_draws, uniform_draws);
        outcome_from(log, du_events, dl_events, weight)
    }

    /// The general event-queue engine: arm one exponential clock per
    /// enabled exit and let the queue race them (epoch-guarded against
    /// stale events). Distribution-identical to the jump chain; kept as
    /// the cross-validation reference.
    fn simulate_event_queue(
        &self,
        horizon: f64,
        rng: &mut SimRng,
        ws: &mut SimWorkspace,
    ) -> IterationOutcome {
        ws.failover.reset();
        ws.log.clear();
        let queue = &mut ws.failover.queue;
        let log = &mut ws.log;
        let tele = &mut ws.telemetry;
        let mut mode = Mode::Op;
        let mut epoch = 0u32;
        let (mut du_events, mut dl_events) = (0u64, 0u64);
        let (mut transitions, mut exp_draws) = (0u64, 0u64);

        let arm = |mode: Mode,
                   epoch: u32,
                   queue: &mut IndexedEventQueue<Jump>,
                   rng: &mut SimRng,
                   exp_draws: &mut u64| {
            let exits = self.table.exits_of(mode);
            let invs = self.table.inv_rates_of(mode);
            for (&(_, to, _), &inv) in exits.iter().zip(invs) {
                // The armed draw multiplies by the precomputed 1/rate;
                // a delay landing past the horizon can never fire —
                // the draw still happens (the stream is the contract),
                // but the queue never holds the event.
                if let Some(dt) = rng.sample_exp_inv(inv) {
                    *exp_draws += 1;
                    if queue.now() + dt <= horizon {
                        let _ = queue.schedule(dt, Jump { to, epoch });
                    } else {
                        queue.note_expired();
                    }
                }
            }
        };

        arm(mode, epoch, queue, rng, &mut exp_draws);
        while let Some((t, jump)) = queue.pop_due(horizon) {
            if jump.epoch != epoch {
                continue;
            }
            // Every event in the queue belongs to the epoch that just
            // ended (the chain quiesces completely on each transition), so
            // the losers of the race are removed in one bulk pass instead
            // of surfacing later as stale pops. The epoch guard above
            // stays as a defensive invariant.
            queue.cancel_all();
            account_transition(mode, jump.to, t, log, &mut du_events, &mut dl_events);
            mode = jump.to;
            epoch += 1;
            transitions += 1;
            arm(mode, epoch, queue, rng, &mut exp_draws);
        }

        log.finalize(horizon);
        flush_chain_counters(tele, transitions, exp_draws, 0);
        outcome_from(log, du_events, dl_events, 1.0)
    }
}

/// Downtime/event accounting for one `was → now` transition at time `t` —
/// the single source of truth shared by both engines, including the
/// down-to-down re-attribution rule (e.g. `DUns1 → DLns` closes the
/// human-error outage and opens a data-loss one at the same instant).
fn account_transition(
    was: Mode,
    now: Mode,
    t: f64,
    log: &mut DowntimeLog,
    du_events: &mut u64,
    dl_events: &mut u64,
) {
    match (was.is_up(), now.is_up()) {
        (true, false) => {
            if now.is_data_loss() {
                *dl_events += 1;
                log.begin(t, OutageCause::DataLoss);
            } else {
                *du_events += 1;
                log.begin(t, OutageCause::HumanError);
            }
        }
        (false, true) => log.end(t),
        (false, false) => {
            if !was.is_data_loss() && now.is_data_loss() {
                *dl_events += 1;
                log.end(t);
                log.begin(t, OutageCause::DataLoss);
            } else if was.is_data_loss() && !now.is_data_loss() {
                *du_events += 1;
                log.end(t);
                log.begin(t, OutageCause::HumanError);
            }
        }
        (true, true) => {}
    }
}

fn outcome_from(
    log: &DowntimeLog,
    du_events: u64,
    dl_events: u64,
    weight: f64,
) -> IterationOutcome {
    IterationOutcome {
        downtime_hours: log.total_downtime(),
        du_downtime_hours: log.downtime_by_cause(OutageCause::HumanError),
        dl_downtime_hours: log.downtime_by_cause(OutageCause::DataLoss),
        du_events,
        dl_events,
        // First entry into a data-loss state (the chain logs every DL
        // entry as a DataLoss outage, including down-to-down
        // re-attributions at the same instant).
        first_loss_hours: log
            .outages()
            .iter()
            .filter(|o| o.cause == OutageCause::DataLoss)
            .map(|o| o.start)
            .fold(f64::INFINITY, f64::min),
        weight,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::markov::Raid5FailOver;
    use availsim_hra::Hep;

    fn params(lambda: f64, hep: f64) -> ModelParams {
        ModelParams::raid5_3plus1(lambda, Hep::new(hep).unwrap()).unwrap()
    }

    fn quick_config(iterations: u64) -> McConfig {
        McConfig {
            iterations,
            horizon_hours: 10_000.0,
            seed: 11,
            confidence: 0.99,
            threads: 2,
            ..McConfig::default()
        }
    }

    #[test]
    fn exit_rates_match_the_markov_chain() {
        // Every (rate, target) pair of the simulator must equal the chain's
        // generator entry — the two artifacts encode one table.
        let p = params(1e-4, 0.01);
        let mc = FailOverMc::new(p).unwrap();
        let chain = Raid5FailOver::new(p).unwrap().build_chain().unwrap();
        use super::states::Mode::*;
        let label = |m| match m {
            Op => "OP",
            Exp1 => "EXP1",
            OpNs => "OPns",
            ExpNs1 => "EXPns1",
            ExpNs2 => "EXPns2",
            Exp2 => "EXP2",
            Du1 => "DU1",
            Du2 => "DU2",
            DuNs1 => "DUns1",
            DuNs2 => "DUns2",
            Dl => "DL",
            DlNs => "DLns",
        };
        for mode in Mode::ALL {
            let from = chain.find_state(label(mode)).expect("state exists");
            let mut total = 0.0;
            for (rate, to, _) in mc.exits(mode) {
                let to_id = chain.find_state(label(to)).expect("state exists");
                let chain_rate = chain.rate(from, to_id);
                assert!(
                    (rate - chain_rate).abs() < 1e-15,
                    "{} -> {}: mc {rate} vs chain {chain_rate}",
                    label(mode),
                    label(to)
                );
                total += rate;
            }
            assert!(
                (total - chain.exit_rate(from)).abs() < 1e-15,
                "{}",
                label(mode)
            );
        }
    }

    #[test]
    fn precomputed_table_matches_exits() {
        let mc = FailOverMc::new(params(1e-4, 0.01)).unwrap();
        for mode in Mode::ALL {
            let fresh = mc.exits(mode);
            let cached = mc.table.exits_of(mode);
            assert_eq!(fresh.len(), cached.len());
            let mut total = 0.0;
            for ((r1, t1, b1), (r2, t2, b2)) in fresh.iter().zip(cached) {
                assert_eq!(r1.to_bits(), r2.to_bits());
                assert_eq!(t1, t2);
                assert_eq!(b1, b2);
                total += r1;
            }
            assert!((total - mc.table.totals[mode as usize]).abs() < 1e-15);
        }
    }

    #[test]
    fn live_lse_model_is_rejected_at_construction() {
        use availsim_storage::ScrubbingModel;
        let p = params(1e-4, 0.01).with_scrubbing(ScrubbingModel::new(1e-4, 336.0).unwrap());
        let err = FailOverMc::new(p).unwrap_err().to_string();
        assert!(err.contains("LSE-aware rebuilds"), "{err}");
        // A zero-rate model is numerically off and stays accepted.
        let z = params(1e-4, 0.01).with_scrubbing(ScrubbingModel::new(0.0, 336.0).unwrap());
        assert!(FailOverMc::new(z).is_ok());
    }

    #[test]
    fn no_downtime_without_events() {
        for engine in [McEngine::JumpChain, McEngine::EventQueue] {
            let mc = FailOverMc::new(params(1e-15, 0.01))
                .unwrap()
                .with_engine(engine);
            let est = mc.run(&quick_config(10)).unwrap();
            assert_eq!(est.overall_availability, 1.0);
        }
    }

    #[test]
    fn agrees_with_markov_at_high_rates() {
        let p = params(1e-3, 0.01);
        let markov = Raid5FailOver::new(p).unwrap().solve().unwrap();
        for engine in [McEngine::JumpChain, McEngine::EventQueue] {
            let mc = FailOverMc::new(p).unwrap().with_engine(engine);
            let est = mc.run(&quick_config(600)).unwrap();
            assert!(
                est.is_consistent_with(markov.availability()),
                "{engine:?}: markov {} outside CI {}",
                markov.availability(),
                est.availability
            );
        }
    }

    #[test]
    fn beats_conventional_mc_under_human_error() {
        use crate::mc::ConventionalMc;
        let p = params(1e-3, 0.05);
        let cfg = quick_config(400);
        let fo = FailOverMc::new(p).unwrap().run(&cfg).unwrap();
        let conv = ConventionalMc::new(p).unwrap().run(&cfg).unwrap();
        assert!(
            fo.overall_availability > conv.overall_availability,
            "fo {} conv {}",
            fo.overall_availability,
            conv.overall_availability
        );
    }

    #[test]
    fn deterministic_across_thread_counts() {
        for engine in [McEngine::JumpChain, McEngine::EventQueue] {
            let p = params(1e-3, 0.01);
            let mc = FailOverMc::new(p).unwrap().with_engine(engine);
            let mut cfg = quick_config(64);
            cfg.threads = 1;
            let a = mc.run(&cfg).unwrap();
            cfg.threads = 8;
            let b = mc.run(&cfg).unwrap();
            assert_eq!(
                a.overall_availability.to_bits(),
                b.overall_availability.to_bits(),
                "{engine:?}"
            );
        }
    }

    #[test]
    fn hep_zero_never_enters_du() {
        for engine in [McEngine::JumpChain, McEngine::EventQueue] {
            let mc = FailOverMc::new(params(2e-3, 0.0))
                .unwrap()
                .with_engine(engine);
            let est = mc.run(&quick_config(300)).unwrap();
            assert_eq!(est.du_events, 0, "{engine:?}");
        }
    }

    #[test]
    fn biased_exit_set_marks_failure_error_and_crash_rates() {
        // Every biased-flagged rate must be built from λ, hep, or the crash
        // rate: turning all three off must zero exactly the biased exits.
        let mut p = params(1e-4, 0.0);
        p.removed_crash_rate = 0.0;
        let mc = FailOverMc::new(p).unwrap();
        for mode in Mode::ALL {
            for (rate, to, biased) in mc.exits(mode) {
                if biased {
                    // hep = 0, crash = 0 ⇒ only λ-driven exits keep a rate.
                    let failure_driven = rate > 0.0;
                    if failure_driven {
                        assert!(
                            rate <= 4.0 * p.disk_failure_rate + 1e-18,
                            "{mode:?} -> {to:?}: biased rate {rate} is not λ-scale"
                        );
                    }
                } else {
                    assert!(rate > 0.0, "{mode:?} -> {to:?}: service exit disabled");
                }
            }
        }
    }

    #[test]
    fn failure_biasing_covers_fig3_markov_where_naive_sees_nothing() {
        let p = params(1e-8, 0.01);
        let exact = Raid5FailOver::new(p)
            .unwrap()
            .solve()
            .unwrap()
            .unavailability();
        let cfg = McConfig {
            variance: crate::mc::McVariance::failure_biasing(),
            horizon_hours: 87_600.0,
            ..quick_config(600)
        };
        let est = FailOverMc::new(p).unwrap().run(&cfg).unwrap();
        assert!(est.unavailability() > 0.0);
        assert!(
            est.is_consistent_with_unavailability(exact),
            "exact {exact:.3e} outside CI {} (U_est {:.3e})",
            est.availability,
            est.unavailability()
        );
        let naive = FailOverMc::new(p)
            .unwrap()
            .run(&McConfig {
                horizon_hours: 87_600.0,
                ..quick_config(600)
            })
            .unwrap();
        assert_eq!(naive.du_events + naive.dl_events, 0);
    }

    #[test]
    fn zero_bias_degenerates_to_naive_and_splitting_is_rejected() {
        let p = params(1e-3, 0.01);
        let mc = FailOverMc::new(p).unwrap();
        let naive = mc.run(&quick_config(200)).unwrap();
        let zero = mc
            .run(&McConfig {
                variance: crate::mc::McVariance::FailureBiasing { bias: 0.0 },
                ..quick_config(200)
            })
            .unwrap();
        assert_eq!(
            naive.overall_availability.to_bits(),
            zero.overall_availability.to_bits()
        );
        assert!(mc
            .run(&McConfig {
                variance: crate::mc::McVariance::splitting(),
                ..quick_config(10)
            })
            .is_err());
        assert!(mc
            .with_engine(McEngine::EventQueue)
            .run(&McConfig {
                variance: crate::mc::McVariance::failure_biasing(),
                ..quick_config(10)
            })
            .is_err());
    }

    #[test]
    fn workspace_reuse_matches_fresh_workspaces_bitwise() {
        let p = params(2e-3, 0.05);
        for engine in [McEngine::JumpChain, McEngine::EventQueue] {
            let mc = FailOverMc::new(p).unwrap().with_engine(engine);
            let mut reused = SimWorkspace::new();
            for s in 500..504 {
                let mut rng = SimRng::seed_from(s);
                let _ = mc.simulate_once_with(30_000.0, &mut rng, &mut reused);
            }
            reused.log.begin(3.0, OutageCause::DataLoss); // poison
            let mut fresh = SimWorkspace::new();
            let mut rng_a = SimRng::seed_from(9);
            let mut rng_b = SimRng::seed_from(9);
            let a = mc.simulate_once_with(30_000.0, &mut rng_a, &mut reused);
            let b = mc.simulate_once_with(30_000.0, &mut rng_b, &mut fresh);
            assert_eq!(
                a.downtime_hours.to_bits(),
                b.downtime_hours.to_bits(),
                "{engine:?}"
            );
            assert_eq!(a.du_events, b.du_events, "{engine:?}");
            assert_eq!(a.dl_events, b.dl_events, "{engine:?}");
        }
    }
}
