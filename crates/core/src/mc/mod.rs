//! Monte-Carlo availability models (the paper's reference models).
//!
//! Both simulators replay the semantics of the Markov chains as
//! discrete-event simulations:
//!
//! * [`ConventionalMc`] — conventional replacement with *per-disk* failure
//!   clocks, so non-exponential (Weibull) lifetimes are supported; this is
//!   the model behind the paper's Fig. 1, Fig. 4, and Fig. 5.
//! * [`FailOverMc`] — automatic fail-over; an event-driven replay of the
//!   Fig. 3 chain used to cross-validate it.
//!
//! The availability estimator follows the paper: total uptime over total
//! simulated time, with a Student-t confidence interval over per-iteration
//! availabilities ("the error of MC simulations is inversely proportional to
//! the root square of the number of iterations and the t-student coefficient
//! for a target confidence level").

mod conventional;
mod failover;

pub use conventional::ConventionalMc;
pub use failover::FailOverMc;

use crate::error::{CoreError, Result};
use crate::nines;
use availsim_sim::parallel::ordered_parallel_map_with;
use availsim_sim::stats::{t_interval, ConfidenceInterval, RunningStats};
use availsim_storage::{DowntimeLog, EventTrace};

/// Which per-mission engine a Monte-Carlo model runs.
///
/// # Fast-path selection rule
///
/// Under [`McEngine::Auto`] (the default) a model takes the **jump-chain
/// fast path** exactly when every transition in it is exponential, because
/// then the mission is a replay of a small continuous-time Markov chain:
/// in `OP` the next failure is `Exp(n·λ)` (minimum of `n` memoryless disk
/// clocks), and in the degraded and down states the competing services and
/// failures are a race of exponentials, so the simulator can sample one
/// sojourn time from the total exit rate and pick the winning transition
/// with a single extra uniform — no event queue, no per-disk clocks.
///
/// * [`ConventionalMc`]: exponential [`availsim_storage::FailureModel`] →
///   fast path; Weibull (or any other non-memoryless lifetime) → the
///   general event-queue engine with per-disk failure clocks.
/// * [`FailOverMc`]: all Fig. 3 transitions are exponential races, so
///   `Auto` always resolves to the fast path.
///
/// Both engines honour the [`McConfig::threads`] determinism contract and
/// draw every mission from the same per-iteration RNG substream, but they
/// consume that stream differently, so their estimates differ by Monte-
/// Carlo noise (they are distribution-identical, which the statistical
/// equivalence suite checks against the Fig. 2 chain).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum McEngine {
    /// Resolve automatically (see the fast-path selection rule above).
    #[default]
    Auto,
    /// Always run the general discrete-event engine, even when the model is
    /// fully exponential — the cross-validation reference for the fast
    /// path, and the only engine that can record an [`EventTrace`].
    EventQueue,
    /// Require the jump-chain fast path. Running a model whose failure
    /// distribution is not exponential fails with
    /// [`CoreError::InvalidParameter`].
    JumpChain,
}

/// Reusable per-worker simulation scratch: every buffer a mission needs,
/// allocated once and recycled, so the per-mission loop performs **zero
/// heap allocations after warm-up**.
///
/// [`ConventionalMc::run`] and [`FailOverMc::run`] build one workspace per
/// worker thread (via
/// [`ordered_parallel_map_with`](availsim_sim::parallel::ordered_parallel_map_with))
/// and reuse it for every mission that worker claims. Each mission fully
/// resets the parts of the workspace it reads before touching them, so
/// results never depend on what a previous mission left behind — the
/// bit-identity-across-thread-counts contract of [`McConfig::threads`]
/// holds even though workspaces are shared across missions.
///
/// For single-mission use, pair a workspace with
/// [`ConventionalMc::simulate_once_with`] /
/// [`FailOverMc::simulate_once_with`]:
///
/// ```
/// use availsim_core::mc::{ConventionalMc, SimWorkspace};
/// use availsim_core::ModelParams;
/// use availsim_hra::Hep;
/// use availsim_sim::rng::SimRng;
///
/// # fn main() -> availsim_core::Result<()> {
/// let params = ModelParams::raid5_3plus1(1e-3, Hep::new(0.01)?)?;
/// let mc = ConventionalMc::new(params)?;
/// let mut ws = SimWorkspace::new();
/// let mut total = 0.0;
/// for i in 0..100 {
///     let mut rng = SimRng::substream(7, i);
///     total += mc.simulate_once_with(10_000.0, &mut rng, &mut ws).downtime_hours;
/// }
/// assert!(total >= 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct SimWorkspace {
    /// Event queue + per-slot failure-clock generations for
    /// [`ConventionalMc`]'s general engine.
    pub(crate) conventional: conventional::ConvScratch,
    /// Event queue for [`FailOverMc`]'s general engine.
    pub(crate) failover: failover::FoScratch,
    /// Downtime accounting, shared by every engine.
    pub(crate) log: DowntimeLog,
    /// Reusable Fig. 1-style trace buffer (see [`Self::trace_mut`]).
    pub(crate) trace: EventTrace,
}

impl SimWorkspace {
    /// Creates an empty workspace. Buffers grow on first use and are then
    /// recycled by every subsequent mission.
    pub fn new() -> Self {
        Self::default()
    }

    /// Resets every buffer to its just-constructed state while retaining
    /// allocated capacity.
    ///
    /// Calling this between missions is *not* required — each simulation
    /// entry point resets the buffers it uses — but it is the cheap way to
    /// scrub a workspace whose previous mission panicked or that is being
    /// handed to a different model.
    pub fn reset(&mut self) {
        self.conventional.reset(0);
        self.failover.reset();
        self.log.clear();
        self.trace.clear();
    }

    /// The reusable trace buffer, for callers that record per-mission
    /// event timelines without reallocating:
    /// `mc.simulate_once(h, &mut rng, Some(ws.trace_mut()))` after a
    /// [`availsim_storage::EventTrace::clear`].
    pub fn trace_mut(&mut self) -> &mut EventTrace {
        &mut self.trace
    }

    /// Read access to the trace buffer filled via [`Self::trace_mut`].
    pub fn trace(&self) -> &EventTrace {
        &self.trace
    }
}

/// Configuration of a Monte-Carlo run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct McConfig {
    /// Number of independent iterations (missions).
    pub iterations: u64,
    /// Mission time per iteration, hours.
    pub horizon_hours: f64,
    /// Base seed; iteration `i` always uses substream `i`, so results do not
    /// depend on the number of worker threads.
    pub seed: u64,
    /// Confidence level for the availability interval (e.g. `0.99`).
    pub confidence: f64,
    /// Worker threads; `0` (auto) means clamp to the machine's
    /// [`std::thread::available_parallelism`].
    ///
    /// # Determinism contract
    ///
    /// The thread count never changes any result bit. Iterations are
    /// scheduled in fixed-size blocks whose boundaries depend only on
    /// `iterations` (never on `threads`), each iteration draws from its own
    /// seed substream, and block partials are merged in block order — so
    /// `threads = 1` and `threads = N` produce identical estimates down to
    /// the last floating-point bit. Only wall-clock time varies.
    pub threads: usize,
}

impl Default for McConfig {
    fn default() -> Self {
        McConfig {
            iterations: 10_000,
            horizon_hours: 87_600.0, // ten years
            seed: 0x5EED_DA7A,
            confidence: 0.99,
            threads: 0,
        }
    }
}

impl McConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    /// Returns [`CoreError::InvalidParameter`] for zero iterations, a
    /// non-positive horizon, or a confidence outside `(0, 1)`.
    pub fn validate(&self) -> Result<()> {
        if self.iterations < 2 {
            return Err(CoreError::InvalidParameter(
                "at least two iterations are needed for a confidence interval".into(),
            ));
        }
        if !(self.horizon_hours.is_finite() && self.horizon_hours > 0.0) {
            return Err(CoreError::InvalidParameter(format!(
                "horizon must be positive, got {}",
                self.horizon_hours
            )));
        }
        if !(self.confidence > 0.0 && self.confidence < 1.0) {
            return Err(CoreError::InvalidParameter(format!(
                "confidence must be in (0,1), got {}",
                self.confidence
            )));
        }
        Ok(())
    }

    /// Resolves `threads`: an explicit count is used as-is; `0` (auto) is
    /// clamped to the machine's available parallelism (1 if unknown).
    fn effective_threads(&self) -> usize {
        availsim_sim::parallel::resolve_workers(self.threads)
    }
}

/// Outcome of one simulated mission.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct IterationOutcome {
    /// Total downtime within the mission, hours.
    pub downtime_hours: f64,
    /// Downtime caused by human errors (DU class), hours.
    pub du_downtime_hours: f64,
    /// Downtime caused by data loss (DL class), hours.
    pub dl_downtime_hours: f64,
    /// Number of data-unavailability events.
    pub du_events: u64,
    /// Number of data-loss events.
    pub dl_events: u64,
}

/// Aggregate result of a Monte-Carlo availability run.
#[derive(Debug, Clone)]
pub struct AvailabilityEstimate {
    /// Per-iteration availability interval (Student-t).
    pub availability: ConfidenceInterval,
    /// Total uptime over total time — the paper's point estimator.
    pub overall_availability: f64,
    /// Mean downtime per mission, hours.
    pub mean_downtime_hours: f64,
    /// Share of downtime caused by human error (`DU`), in `[0, 1]`.
    pub du_downtime_share: f64,
    /// Total DU events across all iterations.
    pub du_events: u64,
    /// Total DL events across all iterations.
    pub dl_events: u64,
    /// Number of iterations.
    pub iterations: u64,
    /// Mission time per iteration, hours.
    pub horizon_hours: f64,
}

impl AvailabilityEstimate {
    /// Unavailability of the point estimator.
    pub fn unavailability(&self) -> f64 {
        1.0 - self.overall_availability
    }

    /// Availability in nines (from the overall estimator).
    pub fn nines(&self) -> f64 {
        nines::nines(self.overall_availability)
    }

    /// Whether an external availability value (e.g. from a Markov model)
    /// falls inside this run's confidence interval.
    pub fn is_consistent_with(&self, availability: f64) -> bool {
        self.availability.contains(availability)
    }
}

/// Minimum pilot batch for [`run_to_precision`]. [`McConfig::validate`]
/// accepts `iterations >= 2`, but a 2-mission pilot has a degenerate
/// variance estimate — with two identical samples the Student-t half-width
/// collapses to zero and the precision loop would declare victory on no
/// statistical evidence. The pilot is therefore clamped up to this floor
/// before the first batch.
const MIN_PILOT_ITERATIONS: u64 = 32;

/// Runs batches of missions until the availability interval's half-width
/// falls below `target_half_width` (absolute, on availability) or
/// `max_iterations` is reached — the sequential version of the paper's
/// "iterations vs error" relationship.
///
/// The iteration indices (and therefore RNG substreams) continue across
/// batches, so the sequential run is exactly a prefix-extension of a fixed
/// run with the same seed. `config.iterations` seeds the pilot batch,
/// clamped up to [`MIN_PILOT_ITERATIONS`] so the first variance estimate
/// is non-degenerate — but never past `max_iterations`, which stays a hard
/// budget.
///
/// Like [`run_iterations_with`], each worker thread builds its scratch via
/// `make_ws` once per batch and reuses it across all missions it claims.
pub(crate) fn run_to_precision_with<W, I, F>(
    config: &McConfig,
    target_half_width: f64,
    max_iterations: u64,
    make_ws: I,
    sim: F,
) -> Result<AvailabilityEstimate>
where
    I: Fn() -> W + Sync,
    F: Fn(&mut W, u64) -> IterationOutcome + Sync,
{
    if target_half_width.is_nan() || target_half_width <= 0.0 {
        return Err(CoreError::InvalidParameter(format!(
            "target half-width must be positive, got {target_half_width}"
        )));
    }
    // The degenerate-variance floor applies only as far as the caller's
    // iteration budget allows (and ≥ 2 keeps the config valid).
    let mut total = config
        .iterations
        .max(MIN_PILOT_ITERATIONS)
        .min(max_iterations)
        .max(2);
    loop {
        let cfg = McConfig {
            iterations: total,
            ..*config
        };
        let est = run_iterations_with(&cfg, &make_ws, &sim)?;
        if est.availability.half_width <= target_half_width || total >= max_iterations {
            return Ok(est);
        }
        // Quadratic growth rule: required n scales with (hw/target)².
        let ratio = (est.availability.half_width / target_half_width).powi(2);
        let next = ((total as f64) * ratio * 1.2).ceil() as u64;
        total = next.clamp(total + 1, max_iterations);
    }
}

/// Iterations per scheduling block (minimum). Block boundaries depend only
/// on the iteration count, never on the thread count — the cornerstone of
/// the [`McConfig::threads`] determinism contract.
const BLOCK_ITERATIONS: u64 = 256;

/// Cap on the number of scheduling blocks, so the per-block partials kept
/// for the ordered merge stay a few hundred kilobytes even for billion-
/// iteration runs (blocks grow past [`BLOCK_ITERATIONS`] instead).
const MAX_BLOCKS: u64 = 4096;

/// Runs `config.iterations` missions of `sim` in parallel and aggregates —
/// the workspace-free convenience wrapper over [`run_iterations_with`],
/// kept for runner-level tests that need no scratch state.
#[cfg(test)]
pub(crate) fn run_iterations<F>(config: &McConfig, sim: F) -> Result<AvailabilityEstimate>
where
    F: Fn(u64) -> IterationOutcome + Sync,
{
    run_iterations_with(config, || (), |_, i| sim(i))
}

/// Runs `config.iterations` missions of `sim` in parallel and aggregates.
///
/// `sim` is called with a worker-scoped scratch value and the iteration
/// index, and must be deterministic given the index alone (each iteration
/// derives its own RNG substream from it, and must fully reset whatever
/// scratch state it reads). `make_ws` runs once per worker thread, so the
/// scratch — typically a [`SimWorkspace`] — is built a handful of times per
/// run and reused for every mission, keeping the per-mission loop
/// allocation-free.
///
/// Threads claim fixed-size blocks of iterations from a shared cursor, so
/// load balances dynamically; block partials are reassembled and merged in
/// block order, so the aggregate is bit-identical at any thread count.
pub(crate) fn run_iterations_with<W, I, F>(
    config: &McConfig,
    make_ws: I,
    sim: F,
) -> Result<AvailabilityEstimate>
where
    I: Fn() -> W + Sync,
    F: Fn(&mut W, u64) -> IterationOutcome + Sync,
{
    config.validate()?;
    let iterations = config.iterations;
    let block_size = BLOCK_ITERATIONS.max(iterations.div_ceil(MAX_BLOCKS));
    let blocks = iterations.div_ceil(block_size);
    let threads = config.effective_threads();

    #[derive(Clone, Copy)]
    struct Partial {
        stats: RunningStats,
        downtime: f64,
        du_downtime: f64,
        du_events: u64,
        dl_events: u64,
    }

    let partials = ordered_parallel_map_with(
        blocks,
        threads,
        make_ws,
        |ws, block| {
            let lo = block * block_size;
            let hi = (lo + block_size).min(iterations);
            let mut p = Partial {
                stats: RunningStats::new(),
                downtime: 0.0,
                du_downtime: 0.0,
                du_events: 0,
                dl_events: 0,
            };
            for i in lo..hi {
                let out = sim(ws, i);
                p.stats
                    .push(1.0 - out.downtime_hours / config.horizon_hours);
                p.downtime += out.downtime_hours;
                p.du_downtime += out.du_downtime_hours;
                p.du_events += out.du_events;
                p.dl_events += out.dl_events;
            }
            p
        },
        |_| false,
    );

    let mut stats = RunningStats::new();
    let (mut downtime, mut du_dt, mut du_ev, mut dl_ev) = (0.0, 0.0, 0u64, 0u64);
    for (_, p) in partials {
        stats.merge(&p.stats);
        downtime += p.downtime;
        du_dt += p.du_downtime;
        du_ev += p.du_events;
        dl_ev += p.dl_events;
    }

    let availability = t_interval(&stats, config.confidence).map_err(CoreError::from)?;
    let total_time = config.horizon_hours * iterations as f64;
    Ok(AvailabilityEstimate {
        availability,
        overall_availability: 1.0 - downtime / total_time,
        mean_downtime_hours: downtime / iterations as f64,
        du_downtime_share: if downtime > 0.0 {
            du_dt / downtime
        } else {
            0.0
        },
        du_events: du_ev,
        dl_events: dl_ev,
        iterations,
        horizon_hours: config.horizon_hours,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_validation() {
        let mut c = McConfig::default();
        assert!(c.validate().is_ok());
        c.iterations = 1;
        assert!(c.validate().is_err());
        c = McConfig {
            horizon_hours: 0.0,
            ..McConfig::default()
        };
        assert!(c.validate().is_err());
        c = McConfig {
            confidence: 1.0,
            ..McConfig::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn runner_aggregates_deterministically_across_thread_counts() {
        let sim = |i: u64| IterationOutcome {
            downtime_hours: (i % 10) as f64,
            du_downtime_hours: (i % 10) as f64 / 2.0,
            dl_downtime_hours: (i % 10) as f64 / 2.0,
            du_events: i % 3,
            dl_events: i % 2,
        };
        let mk = |threads| McConfig {
            iterations: 1000,
            horizon_hours: 100.0,
            seed: 1,
            confidence: 0.95,
            threads,
        };
        let one = run_iterations(&mk(1), sim).unwrap();
        let many = run_iterations(&mk(4), sim).unwrap();
        assert_eq!(
            one.overall_availability.to_bits(),
            many.overall_availability.to_bits()
        );
        assert_eq!(one.du_events, many.du_events);
        assert!((one.availability.mean - many.availability.mean).abs() < 1e-12);
    }

    #[test]
    fn real_model_is_bit_identical_at_1_and_4_threads() {
        // Regression for the determinism contract on McConfig::threads: the
        // full ConventionalMc (real floating-point downtimes, not synthetic
        // integers) must produce identical bits at any thread count.
        let params =
            crate::ModelParams::raid5_3plus1(1e-3, availsim_hra::Hep::new(0.01).unwrap()).unwrap();
        for engine in [McEngine::JumpChain, McEngine::EventQueue] {
            let mc = ConventionalMc::new(params).unwrap().with_engine(engine);
            let run = |threads| {
                mc.run(&McConfig {
                    iterations: 700, // not a multiple of the block size
                    horizon_hours: 20_000.0,
                    seed: 99,
                    confidence: 0.95,
                    threads,
                })
                .unwrap()
            };
            let one = run(1);
            let four = run(4);
            assert_eq!(
                one.overall_availability.to_bits(),
                four.overall_availability.to_bits()
            );
            assert_eq!(
                one.availability.mean.to_bits(),
                four.availability.mean.to_bits()
            );
            assert_eq!(
                one.availability.half_width.to_bits(),
                four.availability.half_width.to_bits()
            );
            assert_eq!(
                one.mean_downtime_hours.to_bits(),
                four.mean_downtime_hours.to_bits()
            );
            assert_eq!(
                one.du_downtime_share.to_bits(),
                four.du_downtime_share.to_bits()
            );
            assert_eq!(one.du_events, four.du_events);
            assert_eq!(one.dl_events, four.dl_events);
            // Sanity: the run actually simulated something.
            assert!(one.mean_downtime_hours > 0.0);
        }
    }

    #[test]
    fn auto_threads_matches_explicit_available_parallelism() {
        // threads = 0 must behave exactly like the clamped explicit count —
        // same bits, since chunking is thread-count independent anyway.
        let sim = |i: u64| IterationOutcome {
            downtime_hours: (i as f64).sin().abs(),
            du_downtime_hours: 0.0,
            dl_downtime_hours: 0.0,
            du_events: 0,
            dl_events: 0,
        };
        let mk = |threads| McConfig {
            iterations: 300,
            horizon_hours: 10.0,
            seed: 1,
            confidence: 0.95,
            threads,
        };
        let auto = run_iterations(&mk(0), sim).unwrap();
        let explicit = run_iterations(&mk(mk(0).effective_threads()), sim).unwrap();
        assert_eq!(
            auto.overall_availability.to_bits(),
            explicit.overall_availability.to_bits()
        );
        assert_eq!(
            auto.availability.half_width.to_bits(),
            explicit.availability.half_width.to_bits()
        );
    }

    #[test]
    fn precision_pilot_is_clamped_to_a_nondegenerate_batch() {
        // Regression: `McConfig::validate` accepts `iterations >= 2`, and a
        // 2-mission pilot whose two samples happen to coincide has zero
        // sample variance — the old loop declared the (impossibly tight)
        // target met after 2 missions. The pilot must be clamped up.
        let sim = |i: u64| IterationOutcome {
            // Identical for the first two missions, varying afterwards.
            downtime_hours: if i < 2 { 1.0 } else { (i % 5) as f64 },
            ..IterationOutcome::default()
        };
        let cfg = McConfig {
            iterations: 2,
            horizon_hours: 100.0,
            seed: 1,
            confidence: 0.95,
            threads: 1,
        };
        let est =
            run_to_precision_with(&cfg, 1e-9, MIN_PILOT_ITERATIONS, || (), |_, i| sim(i)).unwrap();
        assert!(
            est.iterations >= MIN_PILOT_ITERATIONS,
            "pilot ran only {} iterations",
            est.iterations
        );
        // The degenerate 2-sample CI would have claimed half-width 0.
        assert!(est.availability.half_width > 0.0);

        // The floor never overrides the caller's hard budget.
        let capped = run_to_precision_with(&cfg, 1e-9, 8, || (), |_, i| sim(i)).unwrap();
        assert_eq!(capped.iterations, 8);
    }

    #[test]
    fn estimator_arithmetic() {
        let sim = |_i: u64| IterationOutcome {
            downtime_hours: 1.0,
            du_downtime_hours: 1.0,
            dl_downtime_hours: 0.0,
            du_events: 1,
            dl_events: 0,
        };
        let cfg = McConfig {
            iterations: 100,
            horizon_hours: 100.0,
            seed: 0,
            confidence: 0.95,
            threads: 2,
        };
        let est = run_iterations(&cfg, sim).unwrap();
        assert!((est.overall_availability - 0.99).abs() < 1e-12);
        assert!((est.mean_downtime_hours - 1.0).abs() < 1e-12);
        assert!((est.du_downtime_share - 1.0).abs() < 1e-12);
        assert_eq!(est.du_events, 100);
        assert!((est.nines() - 2.0).abs() < 1e-9);
        assert!(est.is_consistent_with(0.99));
    }
}
