//! Monte-Carlo availability models (the paper's reference models).
//!
//! Both simulators replay the semantics of the Markov chains as
//! discrete-event simulations:
//!
//! * [`ConventionalMc`] — conventional replacement with *per-disk* failure
//!   clocks, so non-exponential (Weibull) lifetimes are supported; this is
//!   the model behind the paper's Fig. 1, Fig. 4, and Fig. 5.
//! * [`FailOverMc`] — automatic fail-over; an event-driven replay of the
//!   Fig. 3 chain used to cross-validate it.
//! * [`FleetMc`] — a whole fleet of conventional arrays per mission on
//!   one shared event queue, reporting fleet-level availability and the
//!   distribution of simultaneously degraded arrays (the paper's
//!   datacenter intro arithmetic as a simulated scenario); optional
//!   shared-resource couplings — repair crews, operator dependence,
//!   failure domains, and a bounded Fig. 3 DR site with plain vs
//!   DR-credited availability books.
//!
//! The availability estimator follows the paper: total uptime over total
//! simulated time, with a Student-t confidence interval over per-iteration
//! availabilities ("the error of MC simulations is inversely proportional to
//! the root square of the number of iterations and the t-student coefficient
//! for a target confidence level").

mod conventional;
mod failover;
mod fleet;

pub use conventional::ConventionalMc;
pub use failover::FailOverMc;
pub use fleet::{
    DomainFailures, FleetCoupling, FleetEstimate, FleetMc, FleetOutcome, DEGRADED_BINS,
};

use crate::error::{CoreError, Result};
use crate::nines;
use availsim_sim::indexed_queue::QueueStats;
use availsim_sim::parallel::{ordered_parallel_map_cancellable, CancelToken};
use availsim_sim::stats::{t_interval, wilson_interval, ConfidenceInterval, RunningStats};
use availsim_sim::telemetry::{Counter, CounterSnapshot, Telemetry};
use availsim_storage::{DowntimeLog, EventTrace};

/// Which per-mission engine a Monte-Carlo model runs.
///
/// # Fast-path selection rule
///
/// Under [`McEngine::Auto`] (the default) a model takes the **jump-chain
/// fast path** exactly when every transition in it is exponential, because
/// then the mission is a replay of a small continuous-time Markov chain:
/// in `OP` the next failure is `Exp(n·λ)` (minimum of `n` memoryless disk
/// clocks), and in the degraded and down states the competing services and
/// failures are a race of exponentials, so the simulator can sample one
/// sojourn time from the total exit rate and pick the winning transition
/// with a single extra uniform — no event queue, no per-disk clocks.
///
/// * [`ConventionalMc`]: exponential [`availsim_storage::FailureModel`] →
///   fast path; Weibull (or any other non-memoryless lifetime) → the
///   general event-queue engine with per-disk failure clocks.
/// * [`FailOverMc`]: all Fig. 3 transitions are exponential races, so
///   `Auto` always resolves to the fast path.
///
/// Both engines honour the [`McConfig::threads`] determinism contract and
/// draw every mission from the same per-iteration RNG substream, but they
/// consume that stream differently, so their estimates differ by Monte-
/// Carlo noise (they are distribution-identical, which the statistical
/// equivalence suite checks against the Fig. 2 chain).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum McEngine {
    /// Resolve automatically (see the fast-path selection rule above).
    #[default]
    Auto,
    /// Always run the general discrete-event engine, even when the model is
    /// fully exponential — the cross-validation reference for the fast
    /// path, and the only engine that can record an [`EventTrace`].
    EventQueue,
    /// Require the jump-chain fast path. Running a model whose failure
    /// distribution is not exponential fails with
    /// [`CoreError::InvalidParameter`].
    JumpChain,
}

/// Variance-reduction scheme of a Monte-Carlo run — how the missions are
/// sampled, not what they estimate. Every scheme returns an **unbiased**
/// [`AvailabilityEstimate`]; the rare-event schemes reach a target relative
/// precision with orders of magnitude fewer missions when outages are rare
/// (paper-grade λ, where naive MC needs ~`1/U` missions per digit).
///
/// * [`McVariance::Naive`] — every mission is drawn from the nominal model
///   with weight 1. The default, and the right choice whenever outages are
///   common enough that a few thousand missions observe many of them.
/// * [`McVariance::FailureBiasing`] — importance sampling on the jump-chain
///   fast path: the first failure is *forced* into the mission window
///   (truncated-exponential sojourn) and, in states with competing exits,
///   *balanced failure biasing* gives the failure / human-error transitions
///   a total probability `bias` (split equally among them) instead of their
///   tiny nominal share. Each mission carries the likelihood ratio of its
///   path; the estimator weights missions by it, so the result is unbiased,
///   and [`AvailabilityEstimate::effective_sample_size`] /
///   [`AvailabilityEstimate::max_weight`] report how well-behaved the
///   weights were. Requires the jump chain (exponential failures).
/// * [`McVariance::Splitting`] — fixed-effort multilevel splitting on the
///   general event-queue engine (the only option for Weibull lifetimes,
///   where no likelihood ratio is tractable): each iteration becomes one
///   *replication* that runs `effort` trials per degraded-state depth level
///   (OP → degraded → down), restarts trials from the entry states of the
///   previous level, and multiplies the per-level hit fractions into an
///   unbiased downtime estimate.
///
/// # Examples
///
/// ```
/// use availsim_core::mc::{ConventionalMc, McConfig, McVariance};
/// use availsim_core::ModelParams;
/// use availsim_hra::Hep;
///
/// # fn main() -> availsim_core::Result<()> {
/// // λ so small that 2000 naive ten-year missions would usually see no
/// // outage at all; failure biasing resolves the unavailability anyway.
/// let params = ModelParams::raid5_3plus1(1e-8, Hep::new(0.01)?)?;
/// let est = ConventionalMc::new(params)?.run(&McConfig {
///     iterations: 2_000,
///     variance: McVariance::FailureBiasing { bias: 0.5 },
///     ..McConfig::default()
/// })?;
/// assert!(est.unavailability() > 0.0);
/// assert!(est.max_weight.is_finite());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum McVariance {
    /// Plain Monte-Carlo: nominal-model missions, unit weights.
    #[default]
    Naive,
    /// Importance sampling via failure forcing + balanced failure biasing
    /// on the jump-chain fast path.
    FailureBiasing {
        /// Total proposal probability of the biased (failure / human-error)
        /// exit set in states with competing exits, in `[0, 1)`; `0`
        /// degenerates exactly to [`McVariance::Naive`]. `0.5` is the
        /// standard balanced choice.
        bias: f64,
    },
    /// Fixed-effort multilevel splitting on the event-queue engine.
    Splitting {
        /// Number of splitting stages over the degraded-state depth
        /// (clamped to the model's depth; `1` degenerates exactly to a
        /// naive event-queue run).
        levels: u32,
        /// Trials per stage within one replication (one configured
        /// iteration = one replication of `levels × effort` partial
        /// missions).
        effort: u64,
    },
}

impl McVariance {
    /// Default `bias` of [`Self::failure_biasing`] — the single source the
    /// CLI and campaign-spec defaults flow from.
    pub const DEFAULT_BIAS: f64 = 0.5;
    /// Default `levels` of [`Self::splitting`].
    pub const DEFAULT_LEVELS: u32 = 2;
    /// Default `effort` of [`Self::splitting`].
    pub const DEFAULT_EFFORT: u64 = 64;

    /// The standard balanced-failure-biasing configuration
    /// (`bias = `[`Self::DEFAULT_BIAS`]).
    pub fn failure_biasing() -> Self {
        McVariance::FailureBiasing {
            bias: Self::DEFAULT_BIAS,
        }
    }

    /// The default splitting configuration ([`Self::DEFAULT_LEVELS`]
    /// levels, [`Self::DEFAULT_EFFORT`] trials each).
    pub fn splitting() -> Self {
        McVariance::Splitting {
            levels: Self::DEFAULT_LEVELS,
            effort: Self::DEFAULT_EFFORT,
        }
    }

    /// Validates the scheme's parameters.
    ///
    /// # Errors
    /// Returns [`CoreError::InvalidParameter`] for a bias outside `[0, 1)`
    /// or a degenerate splitting configuration.
    pub fn validate(&self) -> Result<()> {
        match *self {
            McVariance::Naive => Ok(()),
            McVariance::FailureBiasing { bias } => {
                if bias.is_finite() && (0.0..1.0).contains(&bias) {
                    Ok(())
                } else {
                    Err(CoreError::InvalidParameter(format!(
                        "failure-biasing bias must be in [0, 1), got {bias} \
                         (bias = 1 would starve the repair exits, whose paths \
                         have positive nominal probability)"
                    )))
                }
            }
            McVariance::Splitting { levels, effort } => {
                if levels < 1 {
                    return Err(CoreError::InvalidParameter(
                        "splitting needs at least one level".into(),
                    ));
                }
                if effort < 2 {
                    return Err(CoreError::InvalidParameter(format!(
                        "splitting effort must be at least 2, got {effort}"
                    )));
                }
                Ok(())
            }
        }
    }
}

impl std::fmt::Display for McVariance {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            McVariance::Naive => f.write_str("naive"),
            McVariance::FailureBiasing { bias } => {
                write!(f, "failure-biasing(bias={bias:?})")
            }
            McVariance::Splitting { levels, effort } => {
                write!(f, "splitting(levels={levels}, effort={effort})")
            }
        }
    }
}

/// Reusable per-worker simulation scratch: every buffer a mission needs,
/// allocated once and recycled, so the per-mission loop performs **zero
/// heap allocations after warm-up**.
///
/// [`ConventionalMc::run`] and [`FailOverMc::run`] build one workspace per
/// worker thread (via
/// [`ordered_parallel_map_with`](availsim_sim::parallel::ordered_parallel_map_with))
/// and reuse it for every mission that worker claims. Each mission fully
/// resets the parts of the workspace it reads before touching them, so
/// results never depend on what a previous mission left behind — the
/// bit-identity-across-thread-counts contract of [`McConfig::threads`]
/// holds even though workspaces are shared across missions.
///
/// For single-mission use, pair a workspace with
/// [`ConventionalMc::simulate_once_with`] /
/// [`FailOverMc::simulate_once_with`]:
///
/// ```
/// use availsim_core::mc::{ConventionalMc, SimWorkspace};
/// use availsim_core::ModelParams;
/// use availsim_hra::Hep;
/// use availsim_sim::rng::SimRng;
///
/// # fn main() -> availsim_core::Result<()> {
/// let params = ModelParams::raid5_3plus1(1e-3, Hep::new(0.01)?)?;
/// let mc = ConventionalMc::new(params)?;
/// let mut ws = SimWorkspace::new();
/// let mut total = 0.0;
/// for i in 0..100 {
///     let mut rng = SimRng::substream(7, i);
///     total += mc.simulate_once_with(10_000.0, &mut rng, &mut ws).downtime_hours;
/// }
/// assert!(total >= 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct SimWorkspace {
    /// Event queue + per-slot failure-clock generations for
    /// [`ConventionalMc`]'s general engine.
    pub(crate) conventional: conventional::ConvScratch,
    /// Event queue for [`FailOverMc`]'s general engine.
    pub(crate) failover: failover::FoScratch,
    /// Shared queue + per-array state tables for [`FleetMc`].
    pub(crate) fleet: fleet::FleetScratch,
    /// Downtime accounting, shared by every engine.
    pub(crate) log: DowntimeLog,
    /// Reusable Fig. 1-style trace buffer (see [`Self::trace_mut`]).
    pub(crate) trace: EventTrace,
    /// Mask-gated telemetry registry every engine hook reports into
    /// (disabled — branch-free no-ops — unless built via
    /// [`Self::with_telemetry`]).
    pub(crate) telemetry: Telemetry,
    /// Queue-traffic totals already drained into a snapshot; the next
    /// [`TelemetrySource::drain_counters`] reports deltas against this.
    queue_baseline: QueueStats,
}

impl SimWorkspace {
    /// Creates an empty workspace. Buffers grow on first use and are then
    /// recycled by every subsequent mission. Telemetry is disabled (every
    /// counter update is a branch-free no-op).
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a workspace whose telemetry registry is enabled or disabled
    /// for its whole lifetime (see [`McConfig::telemetry`]).
    pub fn with_telemetry(enabled: bool) -> Self {
        SimWorkspace {
            telemetry: Telemetry::new(enabled),
            ..Self::default()
        }
    }

    /// Cumulative traffic totals over the workspace's event queues: flow
    /// counters sum, the depth high-water mark is the maximum (each engine
    /// drives one queue, so the max is the per-mission peak).
    fn queue_stats_total(&self) -> QueueStats {
        let mut total = QueueStats::default();
        for s in [
            self.conventional.queue_stats(),
            self.failover.queue_stats(),
            self.fleet.queue_stats(),
        ] {
            total.scheduled += s.scheduled;
            total.fired += s.fired;
            total.cancelled += s.cancelled;
            total.expired += s.expired;
            total.heap_crossings += s.heap_crossings;
            total.depth_high_water = total.depth_high_water.max(s.depth_high_water);
        }
        total
    }

    /// Resets every buffer to its just-constructed state while retaining
    /// allocated capacity.
    ///
    /// Calling this between missions is *not* required — each simulation
    /// entry point resets the buffers it uses — but it is the cheap way to
    /// scrub a workspace whose previous mission panicked or that is being
    /// handed to a different model.
    pub fn reset(&mut self) {
        self.conventional.reset(0);
        self.failover.reset();
        self.fleet.reset(0, 0);
        self.log.clear();
        self.trace.clear();
        let _ = self.telemetry.take();
        self.queue_baseline = self.queue_stats_total();
    }

    /// The reusable trace buffer, for callers that record per-mission
    /// event timelines without reallocating:
    /// `mc.simulate_once(h, &mut rng, Some(ws.trace_mut()))` after a
    /// [`availsim_storage::EventTrace::clear`].
    pub fn trace_mut(&mut self) -> &mut EventTrace {
        &mut self.trace
    }

    /// Read access to the trace buffer filled via [`Self::trace_mut`].
    pub fn trace(&self) -> &EventTrace {
        &self.trace
    }
}

/// Per-block counter drain, implemented by every workspace type the
/// iteration runner accepts. The runner drains once per scheduling block
/// and merges snapshots in block order, so the aggregate is deterministic
/// at any worker count.
pub(crate) trait TelemetrySource {
    /// Takes everything recorded since the previous drain.
    fn drain_counters(&mut self) -> CounterSnapshot;
}

impl TelemetrySource for () {
    fn drain_counters(&mut self) -> CounterSnapshot {
        CounterSnapshot::default()
    }
}

impl TelemetrySource for SimWorkspace {
    fn drain_counters(&mut self) -> CounterSnapshot {
        if !self.telemetry.enabled() {
            return CounterSnapshot::default();
        }
        let mut snap = self.telemetry.take();
        // Queue traffic is tracked inside the queues (always-on, cumulative
        // across missions); report the delta since the previous drain. The
        // high-water mark has no meaningful delta — the cumulative maximum
        // is reported and max-merged, which yields the run-wide maximum
        // regardless of how blocks were assigned to workers.
        let totals = self.queue_stats_total();
        let base = self.queue_baseline;
        snap.add(Counter::QueueScheduled, totals.scheduled - base.scheduled);
        snap.add(Counter::QueueFired, totals.fired - base.fired);
        snap.add(Counter::QueueCancelled, totals.cancelled - base.cancelled);
        snap.add(Counter::QueueExpired, totals.expired - base.expired);
        snap.add(
            Counter::QueueHeapCrossings,
            totals.heap_crossings - base.heap_crossings,
        );
        snap.record_max(Counter::QueueDepthHighWater, totals.depth_high_water);
        self.queue_baseline = totals;
        snap
    }
}

/// Configuration of a Monte-Carlo run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct McConfig {
    /// Number of independent iterations (missions).
    pub iterations: u64,
    /// Mission time per iteration, hours.
    pub horizon_hours: f64,
    /// Base seed; iteration `i` always uses substream `i`, so results do not
    /// depend on the number of worker threads.
    pub seed: u64,
    /// Confidence level for the availability interval (e.g. `0.99`).
    pub confidence: f64,
    /// Worker threads; `0` (auto) means clamp to the machine's
    /// [`std::thread::available_parallelism`].
    ///
    /// # Determinism contract
    ///
    /// The thread count never changes any result bit. Iterations are
    /// scheduled in fixed-size blocks whose boundaries depend only on
    /// `iterations` (never on `threads`), each iteration draws from its own
    /// seed substream, and block partials are merged in block order — so
    /// `threads = 1` and `threads = N` produce identical estimates down to
    /// the last floating-point bit. Only wall-clock time varies.
    ///
    /// The contract extends to every [`McVariance`] scheme: per-mission
    /// likelihood-ratio weights (and splitting replication estimates) are
    /// accumulated per scheduling block and merged in index order.
    pub threads: usize,
    /// Variance-reduction scheme (see [`McVariance`]); defaults to
    /// [`McVariance::Naive`].
    pub variance: McVariance,
    /// Whether engine telemetry is recorded
    /// ([`AvailabilityEstimate::counters`] /
    /// [`FleetEstimate::counters`]). Telemetry only counts — it never
    /// draws from the RNG or reorders events — so enabling it preserves
    /// bit-identical estimates; disabled (the default), every counter
    /// update is a branch-free masked no-op with no measurable cost.
    pub telemetry: bool,
}

impl Default for McConfig {
    fn default() -> Self {
        McConfig {
            iterations: 10_000,
            horizon_hours: 87_600.0, // ten years
            seed: 0x5EED_DA7A,
            confidence: 0.99,
            threads: 0,
            variance: McVariance::Naive,
            telemetry: false,
        }
    }
}

impl McConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    /// Returns [`CoreError::InvalidParameter`] for zero iterations, a
    /// non-positive horizon, or a confidence outside `(0, 1)`.
    pub fn validate(&self) -> Result<()> {
        if self.iterations < 2 {
            return Err(CoreError::InvalidParameter(
                "at least two iterations are needed for a confidence interval".into(),
            ));
        }
        if !(self.horizon_hours.is_finite() && self.horizon_hours > 0.0) {
            return Err(CoreError::InvalidParameter(format!(
                "horizon must be positive, got {}",
                self.horizon_hours
            )));
        }
        if !(self.confidence > 0.0 && self.confidence < 1.0) {
            return Err(CoreError::InvalidParameter(format!(
                "confidence must be in (0,1), got {}",
                self.confidence
            )));
        }
        self.variance.validate()
    }

    /// Resolves `threads`: an explicit count is used as-is; `0` (auto) is
    /// clamped to the machine's available parallelism (1 if unknown).
    fn effective_threads(&self) -> usize {
        availsim_sim::parallel::resolve_workers(self.threads)
    }
}

/// Outcome of one simulated mission.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IterationOutcome {
    /// Total downtime within the mission, hours.
    pub downtime_hours: f64,
    /// Downtime caused by human errors (DU class), hours.
    pub du_downtime_hours: f64,
    /// Downtime caused by data loss (DL class), hours.
    pub dl_downtime_hours: f64,
    /// Number of data-unavailability events.
    pub du_events: u64,
    /// Number of data-loss events.
    pub dl_events: u64,
    /// Time of the mission's **first** data-loss event, hours —
    /// [`f64::INFINITY`] when the mission never lost data (the loss
    /// *indicator* is `first_loss_hours.is_finite()`). Splitting
    /// replications report `INFINITY`: their partial trials estimate
    /// downtime, not an unweighted per-mission loss indicator, so the
    /// loss metrics are only meaningful under naive sampling and failure
    /// biasing.
    pub first_loss_hours: f64,
    /// Likelihood-ratio weight of the mission: the nominal-model probability
    /// density of the sampled path over the proposal's. Exactly `1.0` for
    /// naive sampling and for splitting replications (which weight
    /// internally); under [`McVariance::FailureBiasing`] the unbiased
    /// estimator averages `weight × downtime`.
    pub weight: f64,
}

impl Default for IterationOutcome {
    fn default() -> Self {
        IterationOutcome {
            downtime_hours: 0.0,
            du_downtime_hours: 0.0,
            dl_downtime_hours: 0.0,
            du_events: 0,
            dl_events: 0,
            first_loss_hours: f64::INFINITY,
            weight: 1.0,
        }
    }
}

/// Aggregate result of a Monte-Carlo availability run.
#[derive(Debug, Clone)]
pub struct AvailabilityEstimate {
    /// Per-iteration availability interval (Student-t).
    pub availability: ConfidenceInterval,
    /// Total uptime over total time — the paper's point estimator.
    pub overall_availability: f64,
    /// Mean downtime per mission, hours.
    pub mean_downtime_hours: f64,
    /// Share of downtime caused by human error (`DU`), in `[0, 1]`.
    pub du_downtime_share: f64,
    /// Total DU events across all **simulated paths**. Under
    /// [`McVariance::Naive`] this is the nominal mission event count; under
    /// failure biasing it counts events on the *proposal* paths (nearly
    /// every forced mission fails, so it vastly exceeds the nominal rate),
    /// and under splitting it tallies every partial trial of every
    /// replication. In the rare-event modes treat it as a
    /// did-the-run-see-anything diagnostic, not an estimate — the weighted
    /// downtime fields carry the unbiased estimates.
    pub du_events: u64,
    /// Total DL events across all simulated paths (same caveat as
    /// [`Self::du_events`]).
    pub dl_events: u64,
    /// Probability that a mission loses data at least once within the
    /// horizon — the fraction of missions whose
    /// [`IterationOutcome::first_loss_hours`] was finite, with a Wilson
    /// score interval at [`McConfig::confidence`]. The count is
    /// **unweighted**: under variance reduction this is a proposal-path
    /// diagnostic, not an unbiased nominal-model estimate (the weighted
    /// downtime fields carry those).
    pub p_data_loss: ConfidenceInterval,
    /// NOMDL: expected data-loss events per mission, normalized by the
    /// array's usable capacity ([`availsim_storage::RaidGeometry::usable_capacity`],
    /// in capacity units ≙ TB) — the journal extension's "normalized
    /// magnitude of data loss" estimator, weighted so it stays unbiased
    /// under failure biasing.
    pub nomdl_per_tb: f64,
    /// Mean time to the *first* data loss over the missions that lost
    /// data, hours; `None` when no mission lost data.
    pub mean_time_to_first_loss_hours: Option<f64>,
    /// Number of missions that lost data at least once (the numerator of
    /// [`Self::p_data_loss`]).
    pub loss_missions: u64,
    /// Number of iterations.
    pub iterations: u64,
    /// Mission time per iteration, hours.
    pub horizon_hours: f64,
    /// Kish's effective sample size `(Σw)² / Σw²` over the per-mission
    /// likelihood-ratio weights. Equals `iterations` for naive sampling; a
    /// value far below the iteration count warns that a few huge weights
    /// dominate an importance-sampled estimate and its CI is optimistic.
    pub effective_sample_size: f64,
    /// Largest per-mission likelihood-ratio weight observed — the
    /// complementary importance-sampling diagnostic (a single weight close
    /// to `Σw` means the estimate hinges on one path).
    pub max_weight: f64,
    /// Deterministic engine counters of the run (all-zero unless
    /// [`McConfig::telemetry`] was enabled). Merged in block order, so the
    /// snapshot is identical at any thread count.
    pub counters: CounterSnapshot,
}

impl AvailabilityEstimate {
    /// Unavailability of the point estimator.
    pub fn unavailability(&self) -> f64 {
        1.0 - self.overall_availability
    }

    /// Divides the NOMDL numerator (loss events per mission) by the
    /// geometry's usable capacity. The iteration runner is
    /// geometry-agnostic, so the engines apply the normalization after
    /// aggregation.
    pub(crate) fn normalize_nomdl(&mut self, usable_capacity_tb: f64) {
        self.nomdl_per_tb /= usable_capacity_tb;
    }

    /// Availability in nines (from the overall estimator).
    pub fn nines(&self) -> f64 {
        nines::nines(self.overall_availability)
    }

    /// Whether an external availability value (e.g. from a Markov model)
    /// is consistent with this run — shorthand for
    /// [`Self::is_consistent_with_unavailability`] on `1 − availability`.
    /// Prefer the unavailability form when the reference is tiny: near-zero
    /// unavailabilities vanish when rounded through availability space
    /// (`1.0 - 1e-18 == 1.0` in `f64`).
    pub fn is_consistent_with(&self, availability: f64) -> bool {
        self.is_consistent_with_unavailability(1.0 - availability)
    }

    /// Whether an external unavailability value (e.g. the exact CTMC
    /// solution) is consistent with this run's confidence interval.
    ///
    /// The comparison is scale-aware: the tolerance is the interval
    /// half-width itself, applied in unavailability space, and a
    /// **degenerate zero-width interval is never consistent with a value it
    /// did not literally estimate**. In particular a run that observed no
    /// failures (every availability sample exactly 1, half-width 0) does
    /// not trivially "validate" an arbitrarily small positive
    /// unavailability — it resolved nothing at that scale.
    pub fn is_consistent_with_unavailability(&self, unavailability: f64) -> bool {
        // Exact for means in [0.5, 1] (Sterbenz), which every availability
        // model here satisfies; keeps tiny unavailabilities comparable.
        let u_est = 1.0 - self.availability.mean;
        let hw = self.availability.half_width;
        if hw <= 0.0 {
            return u_est == unavailability;
        }
        (u_est - unavailability).abs() <= hw
    }
}

/// Minimum pilot batch for [`run_to_precision`]. [`McConfig::validate`]
/// accepts `iterations >= 2`, but a 2-mission pilot has a degenerate
/// variance estimate — with two identical samples the Student-t half-width
/// collapses to zero and the precision loop would declare victory on no
/// statistical evidence. The pilot is therefore clamped up to this floor
/// before the first batch.
const MIN_PILOT_ITERATIONS: u64 = 32;

/// Runs batches of missions until the availability interval's half-width
/// falls below `target_half_width` (absolute, on availability) or
/// `max_iterations` is reached — the sequential version of the paper's
/// "iterations vs error" relationship.
///
/// The iteration indices (and therefore RNG substreams) continue across
/// batches, so the sequential run is exactly a prefix-extension of a fixed
/// run with the same seed. `config.iterations` seeds the pilot batch,
/// clamped up to [`MIN_PILOT_ITERATIONS`] so the first variance estimate
/// is non-degenerate — but never past `max_iterations`, which stays a hard
/// budget.
///
/// Like [`run_iterations_cancellable`], each worker thread builds its
/// scratch via
/// `make_ws` once per batch and reuses it across all missions it claims.
pub(crate) fn run_to_precision_with<W, I, F>(
    config: &McConfig,
    target_half_width: f64,
    max_iterations: u64,
    make_ws: I,
    sim: F,
) -> Result<AvailabilityEstimate>
where
    W: TelemetrySource,
    I: Fn() -> W + Sync,
    F: Fn(&mut W, u64) -> IterationOutcome + Sync,
{
    run_to_precision_cancellable(
        config,
        target_half_width,
        max_iterations,
        None,
        make_ws,
        sim,
    )
}

/// [`run_to_precision_with`] plus an optional cooperative [`CancelToken`],
/// threaded into every growth batch. A tripped token surfaces as
/// [`CoreError::DeadlineExpired`] from the in-flight batch; earlier
/// *completed* batches are not reported (the precision loop restarts from
/// iteration 0 each round, so there is no meaningful partial to salvage).
pub(crate) fn run_to_precision_cancellable<W, I, F>(
    config: &McConfig,
    target_half_width: f64,
    max_iterations: u64,
    cancel: Option<&CancelToken>,
    make_ws: I,
    sim: F,
) -> Result<AvailabilityEstimate>
where
    W: TelemetrySource,
    I: Fn() -> W + Sync,
    F: Fn(&mut W, u64) -> IterationOutcome + Sync,
{
    if target_half_width.is_nan() || target_half_width <= 0.0 {
        return Err(CoreError::InvalidParameter(format!(
            "target half-width must be positive, got {target_half_width}"
        )));
    }
    // The degenerate-variance floor applies only as far as the caller's
    // iteration budget allows (and ≥ 2 keeps the config valid).
    let mut total = config
        .iterations
        .max(MIN_PILOT_ITERATIONS)
        .min(max_iterations)
        .max(2);
    loop {
        let cfg = McConfig {
            iterations: total,
            ..*config
        };
        let est = run_iterations_cancellable(&cfg, cancel, &make_ws, &sim)?;
        // A zero-width interval is *degenerate*, not converged: every
        // sample was identical — typically a rare-event run whose batch
        // observed no failure at all. Declaring victory there would report
        // an impossibly tight CI around an estimate of nothing, so the
        // loop keeps growing the sample (geometrically, having learnt no
        // variance to extrapolate from) until the budget runs out.
        let degenerate = est.availability.half_width <= 0.0;
        if total >= max_iterations
            || (!degenerate && est.availability.half_width <= target_half_width)
        {
            return Ok(est);
        }
        let next = if degenerate {
            total.saturating_mul(4)
        } else {
            // Quadratic growth rule: required n scales with (hw/target)².
            let ratio = (est.availability.half_width / target_half_width).powi(2);
            ((total as f64) * ratio * 1.2).ceil() as u64
        };
        total = next.clamp(total + 1, max_iterations);
    }
}

/// Balanced-failure-biased selection of one exit among a jump-chain state's
/// competing transitions.
///
/// `exits` lists `(nominal rate, in-biased-set)` pairs; the biased set (the
/// failure / human-error transitions) receives total proposal probability
/// `bias`, split **equally** among its positive-rate members ("balanced"),
/// while the remaining `1 − bias` is distributed over the other exits
/// proportionally to their nominal rates. Returns the chosen exit's index
/// and the likelihood-ratio factor `p_nominal / p_proposal` for the weight.
///
/// Draws exactly one uniform. Falls back to plain rate-proportional
/// selection (factor 1) when the biased set is empty, the unbiased set has
/// no positive rate to carry the remaining mass, or `bias <= 0` — the same
/// zero-rate fencing as the naive jump chains (a disabled exit never wins).
pub(crate) fn biased_pick(
    rng: &mut availsim_sim::rng::SimRng,
    exits: &[(f64, bool)],
    total_rate: f64,
    bias: f64,
) -> (usize, f64) {
    let biased_count = exits.iter().filter(|&&(r, b)| b && r > 0.0).count();
    let unbiased_rate: f64 = exits
        .iter()
        .filter(|&&(r, b)| !b && r > 0.0)
        .map(|&(r, _)| r)
        .sum();
    if bias <= 0.0 || biased_count == 0 || unbiased_rate <= 0.0 {
        // Nominal proportional selection; the final positive-rate exit wins
        // when fl(u·total) rounds up past the last bucket edge.
        let mut u = rng.next_f64() * total_rate;
        let mut idx = 0;
        for (k, &(rate, _)) in exits.iter().enumerate() {
            if rate <= 0.0 {
                continue;
            }
            idx = k;
            if u < rate {
                break;
            }
            u -= rate;
        }
        return (idx, 1.0);
    }
    let u = rng.next_f64();
    if u < bias {
        // Equal split among the biased positive-rate exits; `u / bias` is
        // uniform in [0, 1), so the sub-index reuses the same draw.
        let pick = (((u / bias) * biased_count as f64) as usize).min(biased_count - 1);
        let (idx, rate) = exits
            .iter()
            .enumerate()
            .filter(|&(_, &(r, b))| b && r > 0.0)
            .map(|(k, &(r, _))| (k, r))
            .nth(pick)
            .expect("pick < biased_count");
        (idx, rate * biased_count as f64 / (total_rate * bias))
    } else {
        // Proportional among the unbiased exits with the remaining mass.
        // p_nom/p_prop = unbiased_rate / ((1 − bias)·total) for every
        // member, so the factor needs no per-exit bookkeeping.
        let mut target = (u - bias) / (1.0 - bias) * unbiased_rate;
        let mut idx = 0;
        for (k, &(rate, b)) in exits.iter().enumerate() {
            if b || rate <= 0.0 {
                continue;
            }
            idx = k;
            if target < rate {
                break;
            }
            target -= rate;
        }
        (idx, unbiased_rate / ((1.0 - bias) * total_rate))
    }
}

/// Iterations per scheduling block (minimum). Block boundaries depend only
/// on the iteration count, never on the thread count — the cornerstone of
/// the [`McConfig::threads`] determinism contract.
const BLOCK_ITERATIONS: u64 = 256;

/// Cap on the number of scheduling blocks, so the per-block partials kept
/// for the ordered merge stay a few hundred kilobytes even for billion-
/// iteration runs (blocks grow past [`BLOCK_ITERATIONS`] instead).
const MAX_BLOCKS: u64 = 4096;

/// Runs `config.iterations` missions of `sim` in parallel and aggregates —
/// the workspace-free convenience wrapper over
/// [`run_iterations_cancellable`], kept for runner-level tests that need no
/// scratch state.
#[cfg(test)]
pub(crate) fn run_iterations<F>(config: &McConfig, sim: F) -> Result<AvailabilityEstimate>
where
    F: Fn(u64) -> IterationOutcome + Sync,
{
    run_iterations_cancellable(config, None, || (), |_, i| sim(i))
}

/// Runs `config.iterations` missions of `sim` in parallel and aggregates.
///
/// `sim` is called with a worker-scoped scratch value and the iteration
/// index, and must be deterministic given the index alone (each iteration
/// derives its own RNG substream from it, and must fully reset whatever
/// scratch state it reads). `make_ws` runs once per worker thread, so the
/// scratch — typically a [`SimWorkspace`] — is built a handful of times per
/// run and reused for every mission, keeping the per-mission loop
/// allocation-free.
///
/// Threads claim fixed-size blocks of iterations from a shared cursor, so
/// load balances dynamically; block partials are reassembled and merged in
/// block order, so the aggregate is bit-identical at any thread count.
///
/// `cancel`, when present, is a cooperative [`CancelToken`] (deadline
/// and/or explicit cancellation); pass `None` for the plain
/// run-to-completion behaviour every engine had before deadlines existed.
/// The token is polled once per claimed scheduling block (≥
/// [`BLOCK_ITERATIONS`] missions), so cancellation latency is bounded by
/// one block's runtime and the per-mission hot path is untouched. When the
/// token trips before every block completes the partial work is
/// **discarded** and [`CoreError::DeadlineExpired`] is returned: a partial
/// aggregate would depend on wall-clock timing, and the estimator's
/// bit-identity contract (same config + seed → same bytes) must also hold
/// for what a caller may cache.
pub(crate) fn run_iterations_cancellable<W, I, F>(
    config: &McConfig,
    cancel: Option<&CancelToken>,
    make_ws: I,
    sim: F,
) -> Result<AvailabilityEstimate>
where
    W: TelemetrySource,
    I: Fn() -> W + Sync,
    F: Fn(&mut W, u64) -> IterationOutcome + Sync,
{
    config.validate()?;
    let iterations = config.iterations;
    let block_size = BLOCK_ITERATIONS.max(iterations.div_ceil(MAX_BLOCKS));
    let blocks = iterations.div_ceil(block_size);
    let threads = config.effective_threads();

    #[derive(Clone, Copy)]
    struct Partial {
        stats: RunningStats,
        downtime: f64,
        du_downtime: f64,
        du_events: u64,
        dl_events: u64,
        loss_missions: u64,
        first_loss_sum: f64,
        loss_magnitude: f64,
        weight_sum: f64,
        weight_sq_sum: f64,
        weight_max: f64,
        counters: CounterSnapshot,
    }

    let partials = ordered_parallel_map_cancellable(
        blocks,
        threads,
        make_ws,
        |ws, block| {
            let lo = block * block_size;
            let hi = (lo + block_size).min(iterations);
            let mut p = Partial {
                stats: RunningStats::new(),
                downtime: 0.0,
                du_downtime: 0.0,
                du_events: 0,
                dl_events: 0,
                loss_missions: 0,
                first_loss_sum: 0.0,
                loss_magnitude: 0.0,
                weight_sum: 0.0,
                weight_sq_sum: 0.0,
                weight_max: 0.0,
                counters: CounterSnapshot::default(),
            };
            for i in lo..hi {
                let out = sim(ws, i);
                // `weight` is exactly 1.0 for naive sampling, and `1.0 * x`
                // is a bit-exact identity — the naive estimator is
                // unchanged down to the last bit.
                p.stats
                    .push(1.0 - out.weight * out.downtime_hours / config.horizon_hours);
                p.downtime += out.weight * out.downtime_hours;
                p.du_downtime += out.weight * out.du_downtime_hours;
                p.du_events += out.du_events;
                p.dl_events += out.dl_events;
                if out.first_loss_hours.is_finite() {
                    p.loss_missions += 1;
                    p.first_loss_sum += out.first_loss_hours;
                }
                p.loss_magnitude += out.weight * out.dl_events as f64;
                p.weight_sum += out.weight;
                p.weight_sq_sum += out.weight * out.weight;
                p.weight_max = p.weight_max.max(out.weight);
            }
            p.counters = ws.drain_counters();
            if config.telemetry {
                p.counters.add(Counter::Missions, hi - lo);
            }
            p
        },
        |_| false,
        cancel,
    );

    if (partials.len() as u64) < blocks {
        // Cancelled runs report the completed prefix (block claims are
        // sequential, so the claimed set is exactly blocks 0..len) and
        // discard the partial aggregate — see the doc comment above.
        let completed = partials
            .iter()
            .map(|(b, _)| (b * block_size + block_size).min(iterations) - b * block_size)
            .sum();
        return Err(CoreError::DeadlineExpired {
            completed,
            requested: iterations,
        });
    }

    let mut stats = RunningStats::new();
    let (mut downtime, mut du_dt, mut du_ev, mut dl_ev) = (0.0, 0.0, 0u64, 0u64);
    let (mut loss_missions, mut first_loss_sum, mut loss_magnitude) = (0u64, 0.0, 0.0);
    let (mut w_sum, mut w_sq, mut w_max) = (0.0, 0.0, 0.0f64);
    let mut counters = CounterSnapshot::default();
    for (_, p) in partials {
        stats.merge(&p.stats);
        downtime += p.downtime;
        du_dt += p.du_downtime;
        du_ev += p.du_events;
        dl_ev += p.dl_events;
        loss_missions += p.loss_missions;
        first_loss_sum += p.first_loss_sum;
        loss_magnitude += p.loss_magnitude;
        w_sum += p.weight_sum;
        w_sq += p.weight_sq_sum;
        w_max = w_max.max(p.weight_max);
        counters.merge(&p.counters);
    }

    let availability = t_interval(&stats, config.confidence).map_err(CoreError::from)?;
    let p_data_loss =
        wilson_interval(loss_missions, iterations, config.confidence).map_err(CoreError::from)?;
    let total_time = config.horizon_hours * iterations as f64;
    Ok(AvailabilityEstimate {
        availability,
        overall_availability: 1.0 - downtime / total_time,
        mean_downtime_hours: downtime / iterations as f64,
        du_downtime_share: if downtime > 0.0 {
            du_dt / downtime
        } else {
            0.0
        },
        du_events: du_ev,
        dl_events: dl_ev,
        p_data_loss,
        // Per-capacity normalization is the engine's job (the runner never
        // sees the geometry): see `AvailabilityEstimate::normalize_nomdl`.
        nomdl_per_tb: loss_magnitude / iterations as f64,
        mean_time_to_first_loss_hours: if loss_missions > 0 {
            Some(first_loss_sum / loss_missions as f64)
        } else {
            None
        },
        loss_missions,
        iterations,
        horizon_hours: config.horizon_hours,
        effective_sample_size: if w_sq > 0.0 {
            w_sum * w_sum / w_sq
        } else {
            0.0
        },
        max_weight: w_max,
        counters,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_validation() {
        let mut c = McConfig::default();
        assert!(c.validate().is_ok());
        c.iterations = 1;
        assert!(c.validate().is_err());
        c = McConfig {
            horizon_hours: 0.0,
            ..McConfig::default()
        };
        assert!(c.validate().is_err());
        c = McConfig {
            confidence: 1.0,
            ..McConfig::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn variance_validation() {
        let with = |variance| McConfig {
            variance,
            ..McConfig::default()
        };
        assert!(with(McVariance::Naive).validate().is_ok());
        assert!(with(McVariance::failure_biasing()).validate().is_ok());
        assert!(with(McVariance::FailureBiasing { bias: 0.0 })
            .validate()
            .is_ok());
        assert!(with(McVariance::FailureBiasing { bias: 1.0 })
            .validate()
            .is_err());
        assert!(with(McVariance::FailureBiasing { bias: -0.1 })
            .validate()
            .is_err());
        assert!(with(McVariance::FailureBiasing { bias: f64::NAN })
            .validate()
            .is_err());
        assert!(with(McVariance::splitting()).validate().is_ok());
        assert!(with(McVariance::Splitting {
            levels: 0,
            effort: 8
        })
        .validate()
        .is_err());
        assert!(with(McVariance::Splitting {
            levels: 2,
            effort: 1
        })
        .validate()
        .is_err());
    }

    #[test]
    fn variance_display_is_stable() {
        assert_eq!(McVariance::Naive.to_string(), "naive");
        assert_eq!(
            McVariance::failure_biasing().to_string(),
            "failure-biasing(bias=0.5)"
        );
        assert_eq!(
            McVariance::splitting().to_string(),
            "splitting(levels=2, effort=64)"
        );
    }

    #[test]
    fn runner_aggregates_deterministically_across_thread_counts() {
        let sim = |i: u64| IterationOutcome {
            downtime_hours: (i % 10) as f64,
            du_downtime_hours: (i % 10) as f64 / 2.0,
            dl_downtime_hours: (i % 10) as f64 / 2.0,
            du_events: i % 3,
            dl_events: i % 2,
            first_loss_hours: if i % 2 == 1 { 50.0 } else { f64::INFINITY },
            weight: 1.0,
        };
        let mk = |threads| McConfig {
            iterations: 1000,
            horizon_hours: 100.0,
            seed: 1,
            confidence: 0.95,
            threads,
            ..McConfig::default()
        };
        let one = run_iterations(&mk(1), sim).unwrap();
        let many = run_iterations(&mk(4), sim).unwrap();
        assert_eq!(
            one.overall_availability.to_bits(),
            many.overall_availability.to_bits()
        );
        assert_eq!(one.du_events, many.du_events);
        assert!((one.availability.mean - many.availability.mean).abs() < 1e-12);
        // Loss metrics obey the same block-order merge contract.
        assert_eq!(one.loss_missions, many.loss_missions);
        assert_eq!(
            one.p_data_loss.mean.to_bits(),
            many.p_data_loss.mean.to_bits()
        );
        assert_eq!(one.nomdl_per_tb.to_bits(), many.nomdl_per_tb.to_bits());
        assert_eq!(
            one.mean_time_to_first_loss_hours.unwrap().to_bits(),
            many.mean_time_to_first_loss_hours.unwrap().to_bits()
        );
    }

    #[test]
    fn real_model_is_bit_identical_at_1_and_4_threads() {
        // Regression for the determinism contract on McConfig::threads: the
        // full ConventionalMc (real floating-point downtimes, not synthetic
        // integers) must produce identical bits at any thread count.
        let params =
            crate::ModelParams::raid5_3plus1(1e-3, availsim_hra::Hep::new(0.01).unwrap()).unwrap();
        for engine in [McEngine::JumpChain, McEngine::EventQueue] {
            let mc = ConventionalMc::new(params).unwrap().with_engine(engine);
            let run = |threads| {
                mc.run(&McConfig {
                    iterations: 700, // not a multiple of the block size
                    horizon_hours: 20_000.0,
                    seed: 99,
                    confidence: 0.95,
                    threads,
                    ..McConfig::default()
                })
                .unwrap()
            };
            let one = run(1);
            let four = run(4);
            assert_eq!(
                one.overall_availability.to_bits(),
                four.overall_availability.to_bits()
            );
            assert_eq!(
                one.availability.mean.to_bits(),
                four.availability.mean.to_bits()
            );
            assert_eq!(
                one.availability.half_width.to_bits(),
                four.availability.half_width.to_bits()
            );
            assert_eq!(
                one.mean_downtime_hours.to_bits(),
                four.mean_downtime_hours.to_bits()
            );
            assert_eq!(
                one.du_downtime_share.to_bits(),
                four.du_downtime_share.to_bits()
            );
            assert_eq!(one.du_events, four.du_events);
            assert_eq!(one.dl_events, four.dl_events);
            // Sanity: the run actually simulated something.
            assert!(one.mean_downtime_hours > 0.0);
        }
    }

    #[test]
    fn auto_threads_matches_explicit_available_parallelism() {
        // threads = 0 must behave exactly like the clamped explicit count —
        // same bits, since chunking is thread-count independent anyway.
        let sim = |i: u64| IterationOutcome {
            downtime_hours: (i as f64).sin().abs(),
            ..IterationOutcome::default()
        };
        let mk = |threads| McConfig {
            iterations: 300,
            horizon_hours: 10.0,
            seed: 1,
            confidence: 0.95,
            threads,
            ..McConfig::default()
        };
        let auto = run_iterations(&mk(0), sim).unwrap();
        let explicit = run_iterations(&mk(mk(0).effective_threads()), sim).unwrap();
        assert_eq!(
            auto.overall_availability.to_bits(),
            explicit.overall_availability.to_bits()
        );
        assert_eq!(
            auto.availability.half_width.to_bits(),
            explicit.availability.half_width.to_bits()
        );
    }

    #[test]
    fn precision_pilot_is_clamped_to_a_nondegenerate_batch() {
        // Regression: `McConfig::validate` accepts `iterations >= 2`, and a
        // 2-mission pilot whose two samples happen to coincide has zero
        // sample variance — the old loop declared the (impossibly tight)
        // target met after 2 missions. The pilot must be clamped up.
        let sim = |i: u64| IterationOutcome {
            // Identical for the first two missions, varying afterwards.
            downtime_hours: if i < 2 { 1.0 } else { (i % 5) as f64 },
            ..IterationOutcome::default()
        };
        let cfg = McConfig {
            iterations: 2,
            horizon_hours: 100.0,
            seed: 1,
            confidence: 0.95,
            threads: 1,
            ..McConfig::default()
        };
        let est =
            run_to_precision_with(&cfg, 1e-9, MIN_PILOT_ITERATIONS, || (), |_, i| sim(i)).unwrap();
        assert!(
            est.iterations >= MIN_PILOT_ITERATIONS,
            "pilot ran only {} iterations",
            est.iterations
        );
        // The degenerate 2-sample CI would have claimed half-width 0.
        assert!(est.availability.half_width > 0.0);

        // The floor never overrides the caller's hard budget.
        let capped = run_to_precision_with(&cfg, 1e-9, 8, || (), |_, i| sim(i)).unwrap();
        assert_eq!(capped.iterations, 8);
    }

    #[test]
    fn estimator_arithmetic() {
        let sim = |_i: u64| IterationOutcome {
            downtime_hours: 1.0,
            du_downtime_hours: 1.0,
            dl_downtime_hours: 0.0,
            du_events: 1,
            dl_events: 0,
            first_loss_hours: f64::INFINITY,
            weight: 1.0,
        };
        let cfg = McConfig {
            iterations: 100,
            horizon_hours: 100.0,
            seed: 0,
            confidence: 0.95,
            threads: 2,
            ..McConfig::default()
        };
        let est = run_iterations(&cfg, sim).unwrap();
        assert!((est.overall_availability - 0.99).abs() < 1e-12);
        assert!((est.mean_downtime_hours - 1.0).abs() < 1e-12);
        assert!((est.du_downtime_share - 1.0).abs() < 1e-12);
        assert_eq!(est.du_events, 100);
        assert!((est.nines() - 2.0).abs() < 1e-9);
        assert!(est.is_consistent_with(0.99));
        // Naive weights: ESS equals the sample size, max weight is one.
        assert!((est.effective_sample_size - 100.0).abs() < 1e-9);
        assert_eq!(est.max_weight, 1.0);
        // No mission lost data: the Wilson center shrinks toward z²/2/(n+z²)
        // rather than 0, but the interval must cover 0.
        assert_eq!(est.loss_missions, 0);
        assert!(est.p_data_loss.mean <= est.p_data_loss.half_width);
        assert_eq!(est.nomdl_per_tb, 0.0);
        assert!(est.mean_time_to_first_loss_hours.is_none());
    }

    #[test]
    fn loss_estimators_aggregate_indicator_time_and_magnitude() {
        // Every 4th mission loses data at t = 10 h with 2 loss events.
        let sim = |i: u64| {
            if i.is_multiple_of(4) {
                IterationOutcome {
                    downtime_hours: 5.0,
                    dl_downtime_hours: 5.0,
                    dl_events: 2,
                    first_loss_hours: 10.0,
                    ..IterationOutcome::default()
                }
            } else {
                IterationOutcome::default()
            }
        };
        let cfg = McConfig {
            iterations: 400,
            horizon_hours: 100.0,
            seed: 0,
            confidence: 0.95,
            threads: 2,
            ..McConfig::default()
        };
        let est = run_iterations(&cfg, sim).unwrap();
        assert_eq!(est.loss_missions, 100);
        assert!((est.p_data_loss.mean - 0.25).abs() < 0.01); // Wilson shrinks slightly
        assert!(est.p_data_loss.half_width > 0.0);
        // Wilson interval covers the empirical fraction.
        assert!((0.25f64 - est.p_data_loss.mean).abs() <= est.p_data_loss.half_width);
        // 2 events × 100 missions / 400 iterations, per capacity unit.
        assert!((est.nomdl_per_tb - 0.5).abs() < 1e-12);
        assert_eq!(est.mean_time_to_first_loss_hours, Some(10.0));
        // Engine-side capacity normalization divides the magnitude.
        let mut e2 = est.clone();
        e2.normalize_nomdl(4.0);
        assert!((e2.nomdl_per_tb - 0.125).abs() < 1e-12);
    }

    #[test]
    fn weighted_outcomes_produce_unbiased_aggregate_and_diagnostics() {
        // Synthetic importance-sampled stream: every mission observes
        // downtime 10 h with weight 0.1 — the weighted mean downtime is
        // 1 h, and the skew shows up in the ESS.
        let sim = |i: u64| IterationOutcome {
            downtime_hours: 10.0,
            du_downtime_hours: 10.0,
            weight: if i.is_multiple_of(2) { 0.1 } else { 0.19 },
            ..IterationOutcome::default()
        };
        let cfg = McConfig {
            iterations: 100,
            horizon_hours: 100.0,
            seed: 0,
            confidence: 0.95,
            threads: 2,
            ..McConfig::default()
        };
        let est = run_iterations(&cfg, sim).unwrap();
        let mean_weighted_downtime = (0.1 + 0.19) / 2.0 * 10.0;
        assert!((est.mean_downtime_hours - mean_weighted_downtime).abs() < 1e-12);
        assert!((est.overall_availability - (1.0 - mean_weighted_downtime / 100.0)).abs() < 1e-12);
        assert_eq!(est.max_weight, 0.19);
        let (w_sum, w_sq) = (50.0 * (0.1 + 0.19), 50.0 * (0.01 + 0.0361));
        assert!((est.effective_sample_size - w_sum * w_sum / w_sq).abs() < 1e-9);
    }

    #[test]
    fn degenerate_interval_is_not_consistent_with_near_zero_unavailability() {
        // Regression for the scale-aware consistency check: a run whose
        // every sample was exactly 1.0 (no failures observed) has a
        // zero-width interval and must NOT claim agreement with a tiny but
        // positive exact unavailability.
        let cfg = McConfig {
            iterations: 64,
            horizon_hours: 100.0,
            seed: 0,
            confidence: 0.99,
            threads: 1,
            ..McConfig::default()
        };
        let est = run_iterations(&cfg, |_| IterationOutcome::default()).unwrap();
        assert_eq!(est.availability.half_width, 0.0);
        assert!(est.is_consistent_with_unavailability(0.0));
        assert!(!est.is_consistent_with_unavailability(1e-12));
        assert!(!est.is_consistent_with_unavailability(1e-18));
        // A non-degenerate interval keeps CI-half-width tolerance.
        let est = run_iterations(&cfg, |i| IterationOutcome {
            downtime_hours: (i % 2) as f64,
            ..IterationOutcome::default()
        })
        .unwrap();
        assert!(est.availability.half_width > 0.0);
        let u = 1.0 - est.availability.mean;
        assert!(est.is_consistent_with_unavailability(u + est.availability.half_width / 2.0));
        assert!(!est.is_consistent_with_unavailability(u + est.availability.half_width * 2.0));
    }

    #[test]
    fn precision_loop_does_not_converge_on_a_degenerate_zero_event_pilot() {
        // Regression: a rare-event pilot whose missions all observe zero
        // downtime yields a zero-width CI; the old loop declared the target
        // met on no evidence. It must now keep growing to the budget.
        let sim = |i: u64| IterationOutcome {
            // The first event appears only at iteration 500.
            downtime_hours: if i >= 500 { 1.0 } else { 0.0 },
            ..IterationOutcome::default()
        };
        let cfg = McConfig {
            iterations: 32,
            horizon_hours: 100.0,
            seed: 1,
            confidence: 0.95,
            threads: 1,
            ..McConfig::default()
        };
        let est = run_to_precision_with(&cfg, 1e-3, 4096, || (), |_, i| sim(i)).unwrap();
        assert!(
            est.iterations > 500,
            "stopped at {} iterations with a degenerate CI",
            est.iterations
        );
        assert!(est.availability.half_width > 0.0);
    }
}
