//! Monte-Carlo model of a single-fault-tolerant array under conventional
//! replacement — the simulation behind the paper's Fig. 1, Fig. 4, Fig. 5.
//!
//! Failures use **per-disk clocks** drawn from any [`FailureModel`]
//! (exponential or the paper's Weibull field fits), so the simulator covers
//! the non-Markovian regime the analytical model cannot. Service processes
//! (replacement, human-error recovery, tape restore) are exponential with
//! the paper's rates; disks are treated as renewed after every service
//! action (regenerative assumption, standard for repair simulations).
//!
//! With exponential failures the simulator is distribution-equivalent to the
//! Fig. 2 CTMC, which the Fig. 4 validation exercises — and in that regime
//! the model collapses to a four-state jump chain that
//! [`McEngine::Auto`](super::McEngine) replays directly (Gillespie-style),
//! with no event queue and no per-disk clocks.

use super::{AvailabilityEstimate, IterationOutcome, McConfig, McEngine, SimWorkspace};
use crate::error::{CoreError, Result};
use crate::markov::WrongReplacementTiming;
use crate::params::ModelParams;
use availsim_sim::engine::EventQueue;
use availsim_sim::rng::SimRng;
use availsim_storage::{DowntimeLog, EventTrace, FailureModel, OutageCause, TraceKind};

/// Operating mode of the simulated array (mirrors the Fig. 2 states).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// All disks operational.
    Op,
    /// One failed disk, service in progress.
    Exp,
    /// Down: wrong replacement pulled a live disk.
    Du,
    /// Down: data lost, restoring from backup.
    Dl,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ev {
    /// Failure of a disk slot; `gen` guards against stale clocks.
    Fail { slot: usize, gen: u64 },
    /// A service transition; `epoch` guards against stale service events.
    Service { kind: Service, epoch: u64 },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Service {
    /// EXP → OP at (1−hep)·μ_DF.
    RepairOk,
    /// EXP → DU at hep·μ_s (or hep·μ_DF under the as-labeled reading).
    WrongPull,
    /// DU → OP at (1−hep)·μ_he.
    RecoveryOk,
    /// DU → DL at λ_crash.
    RemovedCrash,
    /// DL → OP at μ_DDF.
    Restore,
}

/// Reusable scratch of the general event-queue engine: the event queue and
/// the per-slot failure-clock generation counters. Cleared (capacity
/// retained) at the start of every mission.
#[derive(Debug, Default)]
pub(crate) struct ConvScratch {
    queue: EventQueue<Ev>,
    slot_gen: Vec<u64>,
}

impl ConvScratch {
    /// Empties the queue and re-zeroes the generation counters for an
    /// `n`-disk mission, retaining all allocated capacity.
    pub(crate) fn reset(&mut self, n: usize) {
        self.queue.clear();
        self.slot_gen.clear();
        self.slot_gen.resize(n, 0);
    }
}

/// The conventional-replacement Monte-Carlo model.
#[derive(Debug)]
pub struct ConventionalMc {
    params: ModelParams,
    failures: FailureModel,
    timing: WrongReplacementTiming,
    engine: McEngine,
}

impl ConventionalMc {
    /// Creates the model with exponential failures at the params' rate.
    ///
    /// # Errors
    /// Propagates parameter validation errors.
    pub fn new(params: ModelParams) -> Result<Self> {
        params.validate()?;
        let failures = FailureModel::exponential(params.disk_failure_rate)?;
        Ok(ConventionalMc {
            params,
            failures,
            timing: WrongReplacementTiming::default(),
            engine: McEngine::Auto,
        })
    }

    /// Creates the model with an explicit failure distribution (e.g. a
    /// Weibull field fit); the params' `disk_failure_rate` is ignored for
    /// sampling.
    ///
    /// # Errors
    /// Propagates parameter validation errors.
    pub fn with_failure_model(params: ModelParams, failures: FailureModel) -> Result<Self> {
        params.validate()?;
        Ok(ConventionalMc {
            params,
            failures,
            timing: WrongReplacementTiming::default(),
            engine: McEngine::Auto,
        })
    }

    /// Selects the wrong-replacement timing reading (must match the Markov
    /// model being validated against).
    pub fn with_timing(mut self, timing: WrongReplacementTiming) -> Self {
        self.timing = timing;
        self
    }

    /// Selects the per-mission engine (see [`McEngine`] for the `Auto`
    /// fast-path selection rule).
    pub fn with_engine(mut self, engine: McEngine) -> Self {
        self.engine = engine;
        self
    }

    /// The model parameters.
    pub fn params(&self) -> &ModelParams {
        &self.params
    }

    /// Whether the jump-chain fast path is applicable: it replays the
    /// Fig. 2 CTMC, which is only distribution-equivalent to the per-disk
    /// simulation when disk lifetimes are memoryless.
    fn jump_chain_applicable(&self) -> bool {
        matches!(self.failures, FailureModel::Exponential(_))
    }

    /// Resolves the configured engine to "use the fast path?".
    ///
    /// # Errors
    /// [`CoreError::InvalidParameter`] when [`McEngine::JumpChain`] is
    /// forced on a non-exponential failure model.
    fn resolve_fast_path(&self) -> Result<bool> {
        match self.engine {
            McEngine::Auto => Ok(self.jump_chain_applicable()),
            McEngine::EventQueue => Ok(false),
            McEngine::JumpChain => {
                if self.jump_chain_applicable() {
                    Ok(true)
                } else {
                    Err(CoreError::InvalidParameter(
                        "the jump-chain engine requires exponential failures; \
                         use McEngine::Auto or McEngine::EventQueue for Weibull models"
                            .into(),
                    ))
                }
            }
        }
    }

    fn wrong_pull_rate(&self) -> f64 {
        let base = match self.timing {
            WrongReplacementTiming::ChangeAction => self.params.disk_change_rate,
            WrongReplacementTiming::RepairCompletion => self.params.disk_repair_rate,
        };
        self.params.hep.value() * base
    }

    /// Runs the full Monte-Carlo estimation.
    ///
    /// Each worker thread allocates one [`SimWorkspace`] and reuses it for
    /// every mission it claims, so the mission loop is allocation-free in
    /// steady state on both engines.
    ///
    /// # Errors
    /// Propagates configuration errors, and rejects a forced
    /// [`McEngine::JumpChain`] on non-exponential failures.
    pub fn run(&self, config: &McConfig) -> Result<AvailabilityEstimate> {
        let fast = self.resolve_fast_path()?;
        super::run_iterations_with(config, SimWorkspace::new, |ws, i| {
            let mut rng = SimRng::substream(config.seed, i);
            self.dispatch(config.horizon_hours, &mut rng, ws, fast)
        })
    }

    /// Runs batches of missions, growing the sample until the availability
    /// confidence interval's half-width drops below `target_half_width`
    /// (or `max_iterations` missions have been spent). `config.iterations`
    /// seeds the pilot batch size (clamped to a non-degenerate minimum).
    ///
    /// # Errors
    /// Propagates configuration errors; the target must be positive.
    pub fn run_to_precision(
        &self,
        config: &McConfig,
        target_half_width: f64,
        max_iterations: u64,
    ) -> Result<AvailabilityEstimate> {
        let fast = self.resolve_fast_path()?;
        super::run_to_precision_with(
            config,
            target_half_width,
            max_iterations,
            SimWorkspace::new,
            |ws, i| {
                let mut rng = SimRng::substream(config.seed, i);
                self.dispatch(config.horizon_hours, &mut rng, ws, fast)
            },
        )
    }

    fn dispatch(
        &self,
        horizon: f64,
        rng: &mut SimRng,
        ws: &mut SimWorkspace,
        fast: bool,
    ) -> IterationOutcome {
        if fast {
            self.simulate_jump_chain(horizon, rng, &mut ws.log)
        } else {
            self.simulate_event_queue(horizon, rng, ws, None)
        }
    }

    /// Simulates a single mission, optionally recording a Fig. 1-style
    /// event trace (used by the `mc_trace` example).
    ///
    /// Allocates a fresh scratch workspace per call; hot loops should use
    /// [`Self::simulate_once_with`] instead. Engine selection follows
    /// [`Self::with_engine`], except that a requested trace always runs the
    /// general engine — the fast path replays aggregate state transitions
    /// and has no per-disk events to record.
    pub fn simulate_once(
        &self,
        horizon: f64,
        rng: &mut SimRng,
        trace: Option<&mut EventTrace>,
    ) -> IterationOutcome {
        let mut ws = SimWorkspace::new();
        if trace.is_none() && self.resolve_fast_path().unwrap_or(false) {
            self.simulate_jump_chain(horizon, rng, &mut ws.log)
        } else {
            self.simulate_event_queue(horizon, rng, &mut ws, trace)
        }
    }

    /// Simulates a single mission on a reusable [`SimWorkspace`] —
    /// allocation-free once the workspace buffers have grown.
    ///
    /// The mission fully resets the workspace state it reads, so the same
    /// workspace can be reused across missions (and models) without
    /// leaking state between iterations. Engine selection follows
    /// [`Self::with_engine`]; a forced-but-inapplicable
    /// [`McEngine::JumpChain`] falls back to the general engine here (the
    /// batch entry points reject it instead).
    pub fn simulate_once_with(
        &self,
        horizon: f64,
        rng: &mut SimRng,
        ws: &mut SimWorkspace,
    ) -> IterationOutcome {
        if self.resolve_fast_path().unwrap_or(false) {
            self.simulate_jump_chain(horizon, rng, &mut ws.log)
        } else {
            self.simulate_event_queue(horizon, rng, ws, None)
        }
    }

    /// The jump-chain fast path: with exponential failures the mission is a
    /// replay of the four-state Fig. 2 CTMC, so each transition costs one
    /// exponential sojourn draw plus (in states with competing exits) one
    /// uniform to pick the winner — no event queue, no per-disk clocks.
    fn simulate_jump_chain(
        &self,
        horizon: f64,
        rng: &mut SimRng,
        log: &mut DowntimeLog,
    ) -> IterationOutcome {
        log.clear();
        let p = &self.params;
        let n = f64::from(p.disks());
        let lam = match &self.failures {
            FailureModel::Exponential(d) => d.rate(),
            FailureModel::Weibull(_) => unreachable!("fast path requires exponential failures"),
        };
        let hep = p.hep.value();

        // Exit rates of the four states. In OP the next failure is the
        // minimum of n memoryless clocks: Exp(n·λ). In EXP the n−1
        // survivors race the two service outcomes; disk renewal on every
        // return to OP matches the general engine's regenerative resampling
        // because the exponential is memoryless.
        let op_fail = n * lam;
        let exp_fail = (n - 1.0) * lam;
        let exp_repair = (1.0 - hep) * p.disk_repair_rate;
        let exp_wrong = self.wrong_pull_rate();
        let du_recover = (1.0 - hep) * p.human_recovery_rate;
        let du_crash = p.removed_crash_rate;
        let dl_restore = p.ddf_recovery_rate;

        let mut mode = Mode::Op;
        let mut t = 0.0;
        let (mut du_events, mut dl_events) = (0u64, 0u64);

        loop {
            let total = match mode {
                Mode::Op => op_fail,
                Mode::Exp => exp_fail + exp_repair + exp_wrong,
                Mode::Du => du_recover + du_crash,
                Mode::Dl => dl_restore,
            };
            let Some(dt) = rng.sample_exp(total) else {
                break; // absorbing state: no enabled exits
            };
            t += dt;
            if t > horizon {
                break;
            }
            // Winner ∝ rate. `u < total` holds in exact arithmetic (the
            // uniform is < 1), but fl(u·total) can round up to exactly
            // `total`, so each selection explicitly fences off disabled
            // (zero-rate) final exits — a rate-0 transition must never win
            // (e.g. no DU event may ever fire when hep = 0).
            match mode {
                Mode::Op => mode = Mode::Exp,
                Mode::Exp => {
                    let u = rng.next_f64() * total;
                    if u < exp_fail {
                        // Second failure during service: data loss.
                        mode = Mode::Dl;
                        dl_events += 1;
                        log.begin(t, OutageCause::DataLoss);
                    } else if exp_wrong <= 0.0 || u < exp_fail + exp_repair {
                        mode = Mode::Op;
                    } else {
                        mode = Mode::Du;
                        du_events += 1;
                        log.begin(t, OutageCause::HumanError);
                    }
                }
                Mode::Du => {
                    let u = rng.next_f64() * total;
                    if du_crash <= 0.0 || u < du_recover {
                        mode = Mode::Op;
                        log.end(t);
                    } else {
                        // The wrongly removed disk crashed: the outage
                        // continues, re-attributed to data loss.
                        mode = Mode::Dl;
                        dl_events += 1;
                        log.end(t);
                        log.begin(t, OutageCause::DataLoss);
                    }
                }
                Mode::Dl => {
                    mode = Mode::Op;
                    log.end(t);
                }
            }
        }

        log.finalize(horizon);
        IterationOutcome {
            downtime_hours: log.total_downtime(),
            du_downtime_hours: log.downtime_by_cause(OutageCause::HumanError),
            dl_downtime_hours: log.downtime_by_cause(OutageCause::DataLoss),
            du_events,
            dl_events,
        }
    }

    /// The general discrete-event engine with per-disk failure clocks —
    /// the only engine that supports non-exponential lifetimes and event
    /// traces. Runs on the reusable workspace scratch; every buffer is
    /// cleared (capacity retained) before use.
    fn simulate_event_queue(
        &self,
        horizon: f64,
        rng: &mut SimRng,
        ws: &mut SimWorkspace,
        mut trace: Option<&mut EventTrace>,
    ) -> IterationOutcome {
        let n = self.params.disks() as usize;
        let p = &self.params;
        let hep = p.hep.value();

        ws.conventional.reset(n);
        ws.log.clear();
        let ConvScratch { queue, slot_gen } = &mut ws.conventional;
        let log = &mut ws.log;
        let mut mode = Mode::Op;
        let mut epoch: u64 = 0;
        let mut failed_slot: Option<usize> = None;
        let (mut du_events, mut dl_events) = (0u64, 0u64);

        // Seed all disk clocks.
        for slot in 0..n {
            let t = self.failures.sample_ttf(rng);
            let _ = queue.schedule(t, Ev::Fail { slot, gen: 0 });
        }

        macro_rules! schedule_service {
            ($rng:expr, $q:expr, $ep:expr, $kind:expr, $rate:expr) => {
                if let Some(dt) = $rng.sample_exp($rate) {
                    let _ = $q.schedule(
                        dt,
                        Ev::Service {
                            kind: $kind,
                            epoch: $ep,
                        },
                    );
                }
            };
        }

        while let Some(t) = {
            let next = queue.peek_time();
            match next {
                Some(t) if t <= horizon => Some(t),
                _ => None,
            }
        } {
            let (_, ev) = queue.pop().expect("peeked event exists");
            match ev {
                Ev::Fail { slot, gen } => {
                    if gen != slot_gen[slot] {
                        continue; // stale clock
                    }
                    slot_gen[slot] += 1; // the slot is no longer ticking
                    match mode {
                        Mode::Op => {
                            mode = Mode::Exp;
                            failed_slot = Some(slot);
                            epoch += 1;
                            if let Some(tr) = trace.as_deref_mut() {
                                tr.record(t, TraceKind::DiskFailure { disk: slot as u32 });
                            }
                            schedule_service!(
                                rng,
                                queue,
                                epoch,
                                Service::RepairOk,
                                (1.0 - hep) * p.disk_repair_rate
                            );
                            schedule_service!(
                                rng,
                                queue,
                                epoch,
                                Service::WrongPull,
                                self.wrong_pull_rate()
                            );
                        }
                        Mode::Exp => {
                            // Second failure: data loss.
                            mode = Mode::Dl;
                            dl_events += 1;
                            epoch += 1;
                            log.begin(t, OutageCause::DataLoss);
                            if let Some(tr) = trace.as_deref_mut() {
                                tr.record(t, TraceKind::DiskFailure { disk: slot as u32 });
                                tr.record(t, TraceKind::DataLoss);
                            }
                            schedule_service!(
                                rng,
                                queue,
                                epoch,
                                Service::Restore,
                                p.ddf_recovery_rate
                            );
                        }
                        // Quiesced while down; the slot is resampled on
                        // the next return to OP.
                        Mode::Du | Mode::Dl => {}
                    }
                }
                Ev::Service {
                    kind,
                    epoch: ev_epoch,
                } => {
                    if ev_epoch != epoch {
                        continue; // stale service event
                    }
                    match (mode, kind) {
                        (Mode::Exp, Service::RepairOk) => {
                            // Replacement + rebuild done: back to OP.
                            mode = Mode::Op;
                            epoch += 1;
                            let slot = failed_slot.take().expect("exp implies a failed slot");
                            slot_gen[slot] += 1;
                            let tt = self.failures.sample_ttf(rng);
                            let _ = queue.schedule(
                                tt,
                                Ev::Fail {
                                    slot,
                                    gen: slot_gen[slot],
                                },
                            );
                            if let Some(tr) = trace.as_deref_mut() {
                                tr.record(t, TraceKind::RepairComplete { disk: slot as u32 });
                            }
                        }
                        (Mode::Exp, Service::WrongPull) => {
                            mode = Mode::Du;
                            du_events += 1;
                            epoch += 1;
                            log.begin(t, OutageCause::HumanError);
                            if let Some(tr) = trace.as_deref_mut() {
                                tr.record(t, TraceKind::WrongReplacement { removed_disk: 0 });
                                tr.record(t, TraceKind::DataUnavailable);
                            }
                            schedule_service!(
                                rng,
                                queue,
                                epoch,
                                Service::RecoveryOk,
                                (1.0 - hep) * p.human_recovery_rate
                            );
                            schedule_service!(
                                rng,
                                queue,
                                epoch,
                                Service::RemovedCrash,
                                p.removed_crash_rate
                            );
                        }
                        (Mode::Du, Service::RecoveryOk) => {
                            // Error undone and repair completed (Fig. 2's
                            // DU → OP edge): full return to OP.
                            mode = Mode::Op;
                            epoch += 1;
                            failed_slot = None;
                            log.end(t);
                            if let Some(tr) = trace.as_deref_mut() {
                                tr.record(t, TraceKind::WrongReplacementUndone);
                            }
                            for (slot, gen) in slot_gen.iter_mut().enumerate() {
                                *gen += 1;
                                let tt = self.failures.sample_ttf(rng);
                                let _ = queue.schedule(tt, Ev::Fail { slot, gen: *gen });
                            }
                        }
                        (Mode::Du, Service::RemovedCrash) => {
                            mode = Mode::Dl;
                            dl_events += 1;
                            epoch += 1;
                            // Re-attribute the remaining outage to data loss.
                            log.end(t);
                            log.begin(t, OutageCause::DataLoss);
                            if let Some(tr) = trace.as_deref_mut() {
                                tr.record(t, TraceKind::RemovedDiskCrashed);
                                tr.record(t, TraceKind::DataLoss);
                            }
                            schedule_service!(
                                rng,
                                queue,
                                epoch,
                                Service::Restore,
                                p.ddf_recovery_rate
                            );
                        }
                        (Mode::Dl, Service::Restore) => {
                            mode = Mode::Op;
                            epoch += 1;
                            failed_slot = None;
                            log.end(t);
                            if let Some(tr) = trace.as_deref_mut() {
                                tr.record(t, TraceKind::BackupRestoreComplete);
                            }
                            for (slot, gen) in slot_gen.iter_mut().enumerate() {
                                *gen += 1;
                                let tt = self.failures.sample_ttf(rng);
                                let _ = queue.schedule(tt, Ev::Fail { slot, gen: *gen });
                            }
                        }
                        // Any other combination is a stale/impossible pair.
                        _ => {}
                    }
                }
            }
        }

        log.finalize(horizon);
        IterationOutcome {
            downtime_hours: log.total_downtime(),
            du_downtime_hours: log.downtime_by_cause(OutageCause::HumanError),
            dl_downtime_hours: log.downtime_by_cause(OutageCause::DataLoss),
            du_events,
            dl_events,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use availsim_hra::Hep;

    fn params(lambda: f64, hep: f64) -> ModelParams {
        ModelParams::raid5_3plus1(lambda, Hep::new(hep).unwrap()).unwrap()
    }

    fn quick_config(iterations: u64) -> McConfig {
        McConfig {
            iterations,
            horizon_hours: 10_000.0,
            seed: 7,
            confidence: 0.99,
            threads: 2,
        }
    }

    #[test]
    fn no_failures_means_full_availability() {
        // Absurdly small λ: no events within the horizon — on both engines.
        for engine in [McEngine::JumpChain, McEngine::EventQueue] {
            let mc = ConventionalMc::new(params(1e-15, 0.01))
                .unwrap()
                .with_engine(engine);
            let est = mc.run(&quick_config(10)).unwrap();
            assert_eq!(est.overall_availability, 1.0);
            assert_eq!(est.du_events + est.dl_events, 0);
        }
    }

    #[test]
    fn hep_zero_produces_no_du_events() {
        for engine in [McEngine::JumpChain, McEngine::EventQueue] {
            let mc = ConventionalMc::new(params(1e-3, 0.0))
                .unwrap()
                .with_engine(engine);
            let est = mc.run(&quick_config(200)).unwrap();
            assert_eq!(est.du_events, 0);
            assert!(est.dl_events > 0, "with λ=1e-3 double failures must occur");
            assert!(est.overall_availability < 1.0);
        }
    }

    #[test]
    fn zero_crash_rate_is_supported_by_both_engines() {
        // removed_crash_rate is validated as *non-negative*: with it at 0
        // the DU → DL edge is disabled and must never win the jump-chain
        // race (zero-rate exits are fenced off explicitly).
        let mut p = params(1e-3, 0.05);
        p.removed_crash_rate = 0.0;
        for engine in [McEngine::JumpChain, McEngine::EventQueue] {
            let mc = ConventionalMc::new(p).unwrap().with_engine(engine);
            let est = mc.run(&quick_config(300)).unwrap();
            assert!(est.du_events > 0, "{engine:?}");
        }
    }

    #[test]
    fn human_errors_add_du_outages() {
        let mc = ConventionalMc::new(params(1e-3, 0.05)).unwrap();
        let est = mc.run(&quick_config(200)).unwrap();
        assert!(est.du_events > 0);
        assert!(est.du_downtime_share > 0.0);
    }

    #[test]
    fn availability_decreases_with_hep() {
        let lo = ConventionalMc::new(params(5e-4, 0.0)).unwrap();
        let hi = ConventionalMc::new(params(5e-4, 0.05)).unwrap();
        let cfg = quick_config(400);
        let a_lo = lo.run(&cfg).unwrap().overall_availability;
        let a_hi = hi.run(&cfg).unwrap().overall_availability;
        assert!(a_hi < a_lo, "{a_hi} !< {a_lo}");
    }

    #[test]
    fn matches_markov_at_high_rates() {
        // λ large enough that 600 × 10kh missions resolve the unavailability
        // to a few percent — the fast path and the general engine must both
        // contain the Fig. 2 answer in their confidence intervals.
        use crate::markov::Raid5Conventional;
        let p = params(1e-3, 0.01);
        let markov = Raid5Conventional::new(p).unwrap().solve().unwrap();
        for engine in [McEngine::JumpChain, McEngine::EventQueue] {
            let mc = ConventionalMc::new(p).unwrap().with_engine(engine);
            let est = mc.run(&quick_config(600)).unwrap();
            assert!(
                est.is_consistent_with(markov.availability()),
                "{engine:?}: markov {} outside CI {}",
                markov.availability(),
                est.availability
            );
        }
    }

    #[test]
    fn auto_resolves_to_jump_chain_for_exponential_models() {
        let mc = ConventionalMc::new(params(1e-3, 0.01)).unwrap();
        assert!(mc.resolve_fast_path().unwrap());
        let cfg = quick_config(100);
        let auto = mc.run(&cfg).unwrap();
        let forced = ConventionalMc::new(params(1e-3, 0.01))
            .unwrap()
            .with_engine(McEngine::JumpChain)
            .run(&cfg)
            .unwrap();
        assert_eq!(
            auto.overall_availability.to_bits(),
            forced.overall_availability.to_bits()
        );
    }

    #[test]
    fn jump_chain_rejects_weibull_models() {
        let p = params(1e-4, 0.01);
        let weibull = FailureModel::weibull(1e-3, 1.48).unwrap();
        let mc = ConventionalMc::with_failure_model(p, weibull)
            .unwrap()
            .with_engine(McEngine::JumpChain);
        assert!(mc.run(&quick_config(10)).is_err());
        // Auto on a Weibull model resolves to the general engine instead.
        let weibull = FailureModel::weibull(1e-3, 1.48).unwrap();
        let mc = ConventionalMc::with_failure_model(p, weibull).unwrap();
        assert!(!mc.resolve_fast_path().unwrap());
    }

    #[test]
    fn weibull_failures_are_supported() {
        let p = params(1e-4, 0.01);
        let weibull = FailureModel::weibull(1e-3, 1.48).unwrap();
        let mc = ConventionalMc::with_failure_model(p, weibull).unwrap();
        let est = mc.run(&quick_config(100)).unwrap();
        assert!(est.overall_availability < 1.0);
        assert!(est.overall_availability > 0.5);
    }

    #[test]
    fn trace_records_the_story() {
        let p = params(2e-3, 0.2);
        let mc = ConventionalMc::new(p).unwrap();
        let mut rng = SimRng::seed_from(123);
        let mut trace = EventTrace::new();
        let _ = mc.simulate_once(50_000.0, &mut rng, Some(&mut trace));
        assert!(!trace.is_empty());
        let failures = trace.count_where(|k| matches!(k, TraceKind::DiskFailure { .. }));
        assert!(failures > 0);
    }

    #[test]
    fn precision_run_tightens_the_interval() {
        let mc = ConventionalMc::new(params(1e-3, 0.01)).unwrap();
        let cfg = McConfig {
            iterations: 50,
            ..quick_config(50)
        };
        let pilot = mc.run(&cfg).unwrap();
        let target = pilot.availability.half_width / 3.0;
        let refined = mc.run_to_precision(&cfg, target, 200_000).unwrap();
        assert!(
            refined.availability.half_width <= target,
            "refined hw {} vs target {target}",
            refined.availability.half_width
        );
        assert!(refined.iterations > pilot.iterations);
    }

    #[test]
    fn precision_run_respects_iteration_cap() {
        let mc = ConventionalMc::new(params(1e-3, 0.01)).unwrap();
        let cfg = quick_config(50);
        // Impossible target, tiny cap: must stop at the cap.
        let est = mc.run_to_precision(&cfg, 1e-15, 200).unwrap();
        assert!(est.iterations <= 200);
        assert!(mc.run_to_precision(&cfg, 0.0, 100).is_err());
    }

    #[test]
    fn deterministic_across_thread_counts() {
        // Both engines must be bit-identical at any thread count.
        for engine in [McEngine::JumpChain, McEngine::EventQueue] {
            let p = params(1e-3, 0.01);
            let mc = ConventionalMc::new(p).unwrap().with_engine(engine);
            let mut cfg = quick_config(100);
            cfg.threads = 1;
            let a = mc.run(&cfg).unwrap();
            cfg.threads = 4;
            let b = mc.run(&cfg).unwrap();
            assert_eq!(
                a.overall_availability.to_bits(),
                b.overall_availability.to_bits(),
                "{engine:?}"
            );
            assert_eq!(
                a.mean_downtime_hours.to_bits(),
                b.mean_downtime_hours.to_bits(),
                "{engine:?}"
            );
        }
    }

    #[test]
    fn workspace_reuse_matches_fresh_workspaces_bitwise() {
        // A workspace that has already simulated missions (including a
        // deliberately poisoned one) must produce the same bits as a fresh
        // workspace for the same seed, on both engines.
        let p = params(2e-3, 0.05);
        for engine in [McEngine::JumpChain, McEngine::EventQueue] {
            let mc = ConventionalMc::new(p).unwrap().with_engine(engine);
            let mut reused = SimWorkspace::new();
            // Dirty the workspace: several missions with unrelated seeds,
            // then poison the log/trace with an open outage mid-state.
            for s in 1000..1004 {
                let mut rng = SimRng::seed_from(s);
                let _ = mc.simulate_once_with(30_000.0, &mut rng, &mut reused);
            }
            reused.log.begin(1.0, OutageCause::HumanError);
            reused.trace.record(2.0, TraceKind::DataLoss);

            let mut fresh = SimWorkspace::new();
            let mut rng_a = SimRng::seed_from(42);
            let mut rng_b = SimRng::seed_from(42);
            let a = mc.simulate_once_with(30_000.0, &mut rng_a, &mut reused);
            let b = mc.simulate_once_with(30_000.0, &mut rng_b, &mut fresh);
            assert_eq!(
                a.downtime_hours.to_bits(),
                b.downtime_hours.to_bits(),
                "{engine:?}"
            );
            assert_eq!(
                a.du_downtime_hours.to_bits(),
                b.du_downtime_hours.to_bits(),
                "{engine:?}"
            );
            assert_eq!(a.du_events, b.du_events, "{engine:?}");
            assert_eq!(a.dl_events, b.dl_events, "{engine:?}");
        }
    }

    #[test]
    fn workspace_reset_scrubs_poisoned_state() {
        let mut ws = SimWorkspace::new();
        ws.log.begin(5.0, OutageCause::DataLoss);
        ws.trace.record(1.0, TraceKind::DataLoss);
        ws.conventional.slot_gen.resize(8, 3);
        ws.reset();
        assert!(!ws.log.is_down());
        assert!(ws.log.outages().is_empty());
        assert!(ws.trace().is_empty());
        assert!(ws.conventional.slot_gen.is_empty());
    }
}
