//! Monte-Carlo model of a single-fault-tolerant array under conventional
//! replacement — the simulation behind the paper's Fig. 1, Fig. 4, Fig. 5.
//!
//! Failures use **per-disk clocks** drawn from any [`FailureModel`]
//! (exponential or the paper's Weibull field fits), so the simulator covers
//! the non-Markovian regime the analytical model cannot. Service processes
//! (replacement, human-error recovery, tape restore) are exponential with
//! the paper's rates; disks are treated as renewed after every service
//! action (regenerative assumption, standard for repair simulations).
//!
//! With exponential failures the simulator is distribution-equivalent to the
//! Fig. 2 CTMC, which the Fig. 4 validation exercises.

use super::{AvailabilityEstimate, IterationOutcome, McConfig};
use crate::error::Result;
use crate::markov::WrongReplacementTiming;
use crate::params::ModelParams;
use availsim_sim::engine::EventQueue;
use availsim_sim::rng::SimRng;
use availsim_storage::{DowntimeLog, EventTrace, FailureModel, OutageCause, TraceKind};

/// Operating mode of the simulated array (mirrors the Fig. 2 states).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// All disks operational.
    Op,
    /// One failed disk, service in progress.
    Exp,
    /// Down: wrong replacement pulled a live disk.
    Du,
    /// Down: data lost, restoring from backup.
    Dl,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ev {
    /// Failure of a disk slot; `gen` guards against stale clocks.
    Fail { slot: usize, gen: u64 },
    /// A service transition; `epoch` guards against stale service events.
    Service { kind: Service, epoch: u64 },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Service {
    /// EXP → OP at (1−hep)·μ_DF.
    RepairOk,
    /// EXP → DU at hep·μ_s (or hep·μ_DF under the as-labeled reading).
    WrongPull,
    /// DU → OP at (1−hep)·μ_he.
    RecoveryOk,
    /// DU → DL at λ_crash.
    RemovedCrash,
    /// DL → OP at μ_DDF.
    Restore,
}

/// The conventional-replacement Monte-Carlo model.
#[derive(Debug)]
pub struct ConventionalMc {
    params: ModelParams,
    failures: FailureModel,
    timing: WrongReplacementTiming,
}

impl ConventionalMc {
    /// Creates the model with exponential failures at the params' rate.
    ///
    /// # Errors
    /// Propagates parameter validation errors.
    pub fn new(params: ModelParams) -> Result<Self> {
        params.validate()?;
        let failures = FailureModel::exponential(params.disk_failure_rate)?;
        Ok(ConventionalMc {
            params,
            failures,
            timing: WrongReplacementTiming::default(),
        })
    }

    /// Creates the model with an explicit failure distribution (e.g. a
    /// Weibull field fit); the params' `disk_failure_rate` is ignored for
    /// sampling.
    ///
    /// # Errors
    /// Propagates parameter validation errors.
    pub fn with_failure_model(params: ModelParams, failures: FailureModel) -> Result<Self> {
        params.validate()?;
        Ok(ConventionalMc {
            params,
            failures,
            timing: WrongReplacementTiming::default(),
        })
    }

    /// Selects the wrong-replacement timing reading (must match the Markov
    /// model being validated against).
    pub fn with_timing(mut self, timing: WrongReplacementTiming) -> Self {
        self.timing = timing;
        self
    }

    /// The model parameters.
    pub fn params(&self) -> &ModelParams {
        &self.params
    }

    fn wrong_pull_rate(&self) -> f64 {
        let base = match self.timing {
            WrongReplacementTiming::ChangeAction => self.params.disk_change_rate,
            WrongReplacementTiming::RepairCompletion => self.params.disk_repair_rate,
        };
        self.params.hep.value() * base
    }

    /// Runs the full Monte-Carlo estimation.
    ///
    /// # Errors
    /// Propagates configuration errors.
    pub fn run(&self, config: &McConfig) -> Result<AvailabilityEstimate> {
        super::run_iterations(config, |i| {
            let mut rng = SimRng::substream(config.seed, i);
            self.simulate_once(config.horizon_hours, &mut rng, None)
        })
    }

    /// Runs batches of missions, growing the sample until the availability
    /// confidence interval's half-width drops below `target_half_width`
    /// (or `max_iterations` missions have been spent). `config.iterations`
    /// seeds the pilot batch size.
    ///
    /// # Errors
    /// Propagates configuration errors; the target must be positive.
    pub fn run_to_precision(
        &self,
        config: &McConfig,
        target_half_width: f64,
        max_iterations: u64,
    ) -> Result<AvailabilityEstimate> {
        super::run_to_precision(config, target_half_width, max_iterations, |i| {
            let mut rng = SimRng::substream(config.seed, i);
            self.simulate_once(config.horizon_hours, &mut rng, None)
        })
    }

    /// Simulates a single mission, optionally recording a Fig. 1-style
    /// event trace (used by the `mc_trace` example).
    pub fn simulate_once(
        &self,
        horizon: f64,
        rng: &mut SimRng,
        mut trace: Option<&mut EventTrace>,
    ) -> IterationOutcome {
        let n = self.params.disks() as usize;
        let p = &self.params;
        let hep = p.hep.value();

        let mut queue: EventQueue<Ev> = EventQueue::new();
        let mut log = DowntimeLog::new();
        let mut mode = Mode::Op;
        let mut epoch: u64 = 0;
        let mut slot_gen = vec![0u64; n];
        let mut failed_slot: Option<usize> = None;
        let (mut du_events, mut dl_events) = (0u64, 0u64);

        let exp_sample = |rng: &mut SimRng, rate: f64| -> Option<f64> {
            (rate > 0.0).then(|| -rng.next_open_f64().ln() / rate)
        };

        // Seed all disk clocks.
        for slot in 0..n {
            let t = self.failures.sample_ttf(rng);
            let _ = queue.schedule(t, Ev::Fail { slot, gen: 0 });
        }

        macro_rules! schedule_service {
            ($rng:expr, $q:expr, $ep:expr, $kind:expr, $rate:expr) => {
                if let Some(dt) = exp_sample($rng, $rate) {
                    let _ = $q.schedule(
                        dt,
                        Ev::Service {
                            kind: $kind,
                            epoch: $ep,
                        },
                    );
                }
            };
        }

        while let Some(t) = {
            let next = queue.peek_time();
            match next {
                Some(t) if t <= horizon => Some(t),
                _ => None,
            }
        } {
            let (_, ev) = queue.pop().expect("peeked event exists");
            match ev {
                Ev::Fail { slot, gen } => {
                    if gen != slot_gen[slot] {
                        continue; // stale clock
                    }
                    slot_gen[slot] += 1; // the slot is no longer ticking
                    match mode {
                        Mode::Op => {
                            mode = Mode::Exp;
                            failed_slot = Some(slot);
                            epoch += 1;
                            if let Some(tr) = trace.as_deref_mut() {
                                tr.record(t, TraceKind::DiskFailure { disk: slot as u32 });
                            }
                            schedule_service!(
                                rng,
                                queue,
                                epoch,
                                Service::RepairOk,
                                (1.0 - hep) * p.disk_repair_rate
                            );
                            schedule_service!(
                                rng,
                                queue,
                                epoch,
                                Service::WrongPull,
                                self.wrong_pull_rate()
                            );
                        }
                        Mode::Exp => {
                            // Second failure: data loss.
                            mode = Mode::Dl;
                            dl_events += 1;
                            epoch += 1;
                            log.begin(t, OutageCause::DataLoss);
                            if let Some(tr) = trace.as_deref_mut() {
                                tr.record(t, TraceKind::DiskFailure { disk: slot as u32 });
                                tr.record(t, TraceKind::DataLoss);
                            }
                            schedule_service!(
                                rng,
                                queue,
                                epoch,
                                Service::Restore,
                                p.ddf_recovery_rate
                            );
                        }
                        // Quiesced while down; the slot is resampled on
                        // the next return to OP.
                        Mode::Du | Mode::Dl => {}
                    }
                }
                Ev::Service {
                    kind,
                    epoch: ev_epoch,
                } => {
                    if ev_epoch != epoch {
                        continue; // stale service event
                    }
                    match (mode, kind) {
                        (Mode::Exp, Service::RepairOk) => {
                            // Replacement + rebuild done: back to OP.
                            mode = Mode::Op;
                            epoch += 1;
                            let slot = failed_slot.take().expect("exp implies a failed slot");
                            slot_gen[slot] += 1;
                            let tt = self.failures.sample_ttf(rng);
                            let _ = queue.schedule(
                                tt,
                                Ev::Fail {
                                    slot,
                                    gen: slot_gen[slot],
                                },
                            );
                            if let Some(tr) = trace.as_deref_mut() {
                                tr.record(t, TraceKind::RepairComplete { disk: slot as u32 });
                            }
                        }
                        (Mode::Exp, Service::WrongPull) => {
                            mode = Mode::Du;
                            du_events += 1;
                            epoch += 1;
                            log.begin(t, OutageCause::HumanError);
                            if let Some(tr) = trace.as_deref_mut() {
                                tr.record(t, TraceKind::WrongReplacement { removed_disk: 0 });
                                tr.record(t, TraceKind::DataUnavailable);
                            }
                            schedule_service!(
                                rng,
                                queue,
                                epoch,
                                Service::RecoveryOk,
                                (1.0 - hep) * p.human_recovery_rate
                            );
                            schedule_service!(
                                rng,
                                queue,
                                epoch,
                                Service::RemovedCrash,
                                p.removed_crash_rate
                            );
                        }
                        (Mode::Du, Service::RecoveryOk) => {
                            // Error undone and repair completed (Fig. 2's
                            // DU → OP edge): full return to OP.
                            mode = Mode::Op;
                            epoch += 1;
                            failed_slot = None;
                            log.end(t);
                            if let Some(tr) = trace.as_deref_mut() {
                                tr.record(t, TraceKind::WrongReplacementUndone);
                            }
                            for (slot, gen) in slot_gen.iter_mut().enumerate() {
                                *gen += 1;
                                let tt = self.failures.sample_ttf(rng);
                                let _ = queue.schedule(tt, Ev::Fail { slot, gen: *gen });
                            }
                        }
                        (Mode::Du, Service::RemovedCrash) => {
                            mode = Mode::Dl;
                            dl_events += 1;
                            epoch += 1;
                            // Re-attribute the remaining outage to data loss.
                            log.end(t);
                            log.begin(t, OutageCause::DataLoss);
                            if let Some(tr) = trace.as_deref_mut() {
                                tr.record(t, TraceKind::RemovedDiskCrashed);
                                tr.record(t, TraceKind::DataLoss);
                            }
                            schedule_service!(
                                rng,
                                queue,
                                epoch,
                                Service::Restore,
                                p.ddf_recovery_rate
                            );
                        }
                        (Mode::Dl, Service::Restore) => {
                            mode = Mode::Op;
                            epoch += 1;
                            failed_slot = None;
                            log.end(t);
                            if let Some(tr) = trace.as_deref_mut() {
                                tr.record(t, TraceKind::BackupRestoreComplete);
                            }
                            for (slot, gen) in slot_gen.iter_mut().enumerate() {
                                *gen += 1;
                                let tt = self.failures.sample_ttf(rng);
                                let _ = queue.schedule(tt, Ev::Fail { slot, gen: *gen });
                            }
                        }
                        // Any other combination is a stale/impossible pair.
                        _ => {}
                    }
                }
            }
        }

        log.finalize(horizon);
        IterationOutcome {
            downtime_hours: log.total_downtime(),
            du_downtime_hours: log.downtime_by_cause(OutageCause::HumanError),
            dl_downtime_hours: log.downtime_by_cause(OutageCause::DataLoss),
            du_events,
            dl_events,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use availsim_hra::Hep;

    fn params(lambda: f64, hep: f64) -> ModelParams {
        ModelParams::raid5_3plus1(lambda, Hep::new(hep).unwrap()).unwrap()
    }

    fn quick_config(iterations: u64) -> McConfig {
        McConfig {
            iterations,
            horizon_hours: 10_000.0,
            seed: 7,
            confidence: 0.99,
            threads: 2,
        }
    }

    #[test]
    fn no_failures_means_full_availability() {
        // Absurdly small λ: no events within the horizon.
        let mc = ConventionalMc::new(params(1e-15, 0.01)).unwrap();
        let est = mc.run(&quick_config(10)).unwrap();
        assert_eq!(est.overall_availability, 1.0);
        assert_eq!(est.du_events + est.dl_events, 0);
    }

    #[test]
    fn hep_zero_produces_no_du_events() {
        let mc = ConventionalMc::new(params(1e-3, 0.0)).unwrap();
        let est = mc.run(&quick_config(200)).unwrap();
        assert_eq!(est.du_events, 0);
        assert!(est.dl_events > 0, "with λ=1e-3 double failures must occur");
        assert!(est.overall_availability < 1.0);
    }

    #[test]
    fn human_errors_add_du_outages() {
        let mc = ConventionalMc::new(params(1e-3, 0.05)).unwrap();
        let est = mc.run(&quick_config(200)).unwrap();
        assert!(est.du_events > 0);
        assert!(est.du_downtime_share > 0.0);
    }

    #[test]
    fn availability_decreases_with_hep() {
        let lo = ConventionalMc::new(params(5e-4, 0.0)).unwrap();
        let hi = ConventionalMc::new(params(5e-4, 0.05)).unwrap();
        let cfg = quick_config(400);
        let a_lo = lo.run(&cfg).unwrap().overall_availability;
        let a_hi = hi.run(&cfg).unwrap().overall_availability;
        assert!(a_hi < a_lo, "{a_hi} !< {a_lo}");
    }

    #[test]
    fn matches_markov_at_high_rates() {
        // λ large enough that 400 × 10kh missions resolve the unavailability
        // to a few percent.
        use crate::markov::Raid5Conventional;
        let p = params(1e-3, 0.01);
        let mc = ConventionalMc::new(p).unwrap();
        let est = mc.run(&quick_config(600)).unwrap();
        let markov = Raid5Conventional::new(p).unwrap().solve().unwrap();
        assert!(
            est.is_consistent_with(markov.availability()),
            "markov {} outside CI {}",
            markov.availability(),
            est.availability
        );
    }

    #[test]
    fn weibull_failures_are_supported() {
        let p = params(1e-4, 0.01);
        let weibull = FailureModel::weibull(1e-3, 1.48).unwrap();
        let mc = ConventionalMc::with_failure_model(p, weibull).unwrap();
        let est = mc.run(&quick_config(100)).unwrap();
        assert!(est.overall_availability < 1.0);
        assert!(est.overall_availability > 0.5);
    }

    #[test]
    fn trace_records_the_story() {
        let p = params(2e-3, 0.2);
        let mc = ConventionalMc::new(p).unwrap();
        let mut rng = SimRng::seed_from(123);
        let mut trace = EventTrace::new();
        let _ = mc.simulate_once(50_000.0, &mut rng, Some(&mut trace));
        assert!(!trace.is_empty());
        let failures = trace.count_where(|k| matches!(k, TraceKind::DiskFailure { .. }));
        assert!(failures > 0);
    }

    #[test]
    fn precision_run_tightens_the_interval() {
        let mc = ConventionalMc::new(params(1e-3, 0.01)).unwrap();
        let cfg = McConfig {
            iterations: 50,
            ..quick_config(50)
        };
        let pilot = mc.run(&cfg).unwrap();
        let target = pilot.availability.half_width / 3.0;
        let refined = mc.run_to_precision(&cfg, target, 200_000).unwrap();
        assert!(
            refined.availability.half_width <= target,
            "refined hw {} vs target {target}",
            refined.availability.half_width
        );
        assert!(refined.iterations > pilot.iterations);
    }

    #[test]
    fn precision_run_respects_iteration_cap() {
        let mc = ConventionalMc::new(params(1e-3, 0.01)).unwrap();
        let cfg = quick_config(50);
        // Impossible target, tiny cap: must stop at the cap.
        let est = mc.run_to_precision(&cfg, 1e-15, 200).unwrap();
        assert!(est.iterations <= 200);
        assert!(mc.run_to_precision(&cfg, 0.0, 100).is_err());
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let p = params(1e-3, 0.01);
        let mc = ConventionalMc::new(p).unwrap();
        let mut cfg = quick_config(100);
        cfg.threads = 1;
        let a = mc.run(&cfg).unwrap();
        cfg.threads = 4;
        let b = mc.run(&cfg).unwrap();
        assert_eq!(
            a.overall_availability.to_bits(),
            b.overall_availability.to_bits()
        );
    }
}
