//! Monte-Carlo model of a single-fault-tolerant array under conventional
//! replacement — the simulation behind the paper's Fig. 1, Fig. 4, Fig. 5.
//!
//! Failures use **per-disk clocks** drawn from any [`FailureModel`]
//! (exponential or the paper's Weibull field fits), so the simulator covers
//! the non-Markovian regime the analytical model cannot. Service processes
//! (replacement, human-error recovery, tape restore) are exponential with
//! the paper's rates; disks are treated as renewed after every service
//! action (regenerative assumption, standard for repair simulations).
//!
//! With exponential failures the simulator is distribution-equivalent to the
//! Fig. 2 CTMC, which the Fig. 4 validation exercises — and in that regime
//! the model collapses to a four-state jump chain that
//! [`McEngine::Auto`](super::McEngine) replays directly (Gillespie-style),
//! with no event queue and no per-disk clocks.

use super::{
    biased_pick, AvailabilityEstimate, IterationOutcome, McConfig, McEngine, McVariance,
    SimWorkspace,
};
use crate::error::{CoreError, Result};
use crate::markov::WrongReplacementTiming;
use crate::params::ModelParams;
use availsim_sim::indexed_queue::{IndexedEventQueue, QueueStats};
use availsim_sim::rng::SimRng;
use availsim_sim::telemetry::{Counter, Telemetry};
use availsim_storage::{DowntimeLog, EventTrace, FailureModel, OutageCause, TraceKind};

/// Operating mode of the simulated array (mirrors the Fig. 2 states).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// All disks operational.
    Op,
    /// One failed disk, service in progress.
    Exp,
    /// Down: wrong replacement pulled a live disk.
    Du,
    /// Down: data lost, restoring from backup.
    Dl,
}

/// Event payload, deliberately 8 bytes so a queue entry stays compact:
/// `slot` fits a `u16` and the per-mission `gen`/`epoch` guards never
/// approach `u32::MAX` within one mission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ev {
    /// Failure of a disk slot; `gen` guards against stale clocks.
    Fail { slot: u16, gen: u32 },
    /// A service transition; `epoch` guards against stale service events.
    Service { kind: Service, epoch: u32 },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Service {
    /// EXP → OP at (1−hep)·μ_DF.
    RepairOk,
    /// EXP → DU at hep·μ_s (or hep·μ_DF under the as-labeled reading).
    WrongPull,
    /// DU → OP at (1−hep)·μ_he.
    RecoveryOk,
    /// DU → DL at λ_crash.
    RemovedCrash,
    /// DL → OP at μ_DDF.
    Restore,
}

/// Reusable scratch of the general event-queue engine: the event queue and
/// the per-slot failure-clock generation counters. Cleared (capacity
/// retained) at the start of every mission.
#[derive(Debug, Default)]
pub(crate) struct ConvScratch {
    queue: IndexedEventQueue<Ev>,
    slot_gen: Vec<u32>,
}

/// How a mission actually runs once engine *and* variance scheme are
/// resolved against the failure model.
#[derive(Debug, Clone, Copy)]
enum RunMode {
    /// Plain sampling; `fast` selects the jump chain vs the event queue.
    Naive { fast: bool },
    /// Importance sampling on the jump chain (forcing + failure biasing).
    Biased { bias: f64 },
    /// Fixed-effort multilevel splitting on the event-queue engine.
    Split { effort: u64 },
}

/// Splitting checkpoint: first entry into the degraded state (one failed
/// disk), with the surviving slots' pending absolute failure times — the
/// full restartable state of the event-queue engine at that instant.
#[derive(Debug, Clone)]
struct ExpEntry {
    t: f64,
    failed_slot: usize,
    pending: Vec<(usize, f64)>,
}

/// Splitting checkpoint: first entry into a down state.
#[derive(Debug, Clone, Copy)]
struct DownEntry {
    t: f64,
    data_loss: bool,
}

/// Where an event-queue mission starts (splitting restarts mid-mission).
enum EqStart<'a> {
    /// Mission start: all disks fresh at `t = 0`.
    Fresh,
    /// Restart at a degraded-state entry checkpoint.
    Exp(&'a ExpEntry),
    /// Restart at a down-state entry checkpoint.
    Down(DownEntry),
}

/// Monomorphized trace sink of the event-queue engine: the hot path runs
/// with [`NoTrace`] (every `record` compiles to nothing), while traced
/// missions pass the real [`EventTrace`] — no per-event `Option` branches
/// either way.
trait Tracer {
    fn record(&mut self, t: f64, kind: TraceKind);
}

/// The no-op sink of untraced missions.
struct NoTrace;

impl Tracer for NoTrace {
    #[inline(always)]
    fn record(&mut self, _t: f64, _kind: TraceKind) {}
}

impl Tracer for EventTrace {
    #[inline]
    fn record(&mut self, t: f64, kind: TraceKind) {
        EventTrace::record(self, t, kind);
    }
}

impl ConvScratch {
    /// Empties the queue and re-zeroes the generation counters for an
    /// `n`-disk mission, retaining all allocated capacity.
    pub(crate) fn reset(&mut self, n: usize) {
        self.queue.clear();
        self.slot_gen.clear();
        self.slot_gen.resize(n, 0);
    }

    /// Cumulative traffic counters of the mission event queue.
    pub(crate) fn queue_stats(&self) -> QueueStats {
        self.queue.stats()
    }
}

/// Flushes a mission's locally accumulated jump-chain tallies into the
/// registry — one batched store per mission keeps the hot loop at plain
/// register increments, and the whole flush sits behind a single
/// well-predicted branch when telemetry is disabled.
#[inline]
fn flush_jump_counters(
    tele: &mut Telemetry,
    edges: &[u64; 7],
    lse_hits: u64,
    exp_draws: u64,
    uniform_draws: u64,
) {
    if !tele.enabled() {
        return;
    }
    tele.add(Counter::RngExpDraws, exp_draws);
    tele.add(Counter::RngUniformDraws, uniform_draws);
    tele.add(Counter::JumpOpToExp, edges[0]);
    tele.add(Counter::JumpExpToOp, edges[1]);
    tele.add(Counter::JumpExpToDu, edges[2]);
    tele.add(Counter::JumpExpToDl, edges[3]);
    tele.add(Counter::JumpDuToOp, edges[4]);
    tele.add(Counter::JumpDuToDl, edges[5]);
    tele.add(Counter::JumpDlToOp, edges[6]);
    tele.add(Counter::JumpTransitions, edges.iter().sum());
    // LSE-failed rebuilds are EXP → DL edges too (tagged separately);
    // every DL entry of the chain is an exp→dl or du→dl edge.
    tele.add(Counter::RebuildLseHits, lse_hits);
    tele.add(Counter::DataLossEvents, edges[3] + edges[5]);
}

/// The conventional-replacement Monte-Carlo model.
#[derive(Debug)]
pub struct ConventionalMc {
    params: ModelParams,
    failures: FailureModel,
    timing: WrongReplacementTiming,
    engine: McEngine,
}

impl ConventionalMc {
    /// Largest supported array: the event-queue engine stores disk slots
    /// as `u16` in its 8-byte event payloads.
    pub const MAX_DISKS: u32 = 1 << 16;

    /// Creates the model with exponential failures at the params' rate.
    ///
    /// # Errors
    /// Propagates parameter validation errors; the geometry may have at
    /// most [`Self::MAX_DISKS`] disks.
    pub fn new(params: ModelParams) -> Result<Self> {
        let failures = FailureModel::exponential(params.disk_failure_rate)?;
        ConventionalMc::with_failure_model(params, failures)
    }

    /// Creates the model with an explicit failure distribution (e.g. a
    /// Weibull field fit); the params' `disk_failure_rate` is ignored for
    /// sampling.
    ///
    /// # Errors
    /// Propagates parameter validation errors; the geometry may have at
    /// most [`Self::MAX_DISKS`] disks.
    pub fn with_failure_model(params: ModelParams, failures: FailureModel) -> Result<Self> {
        params.validate()?;
        if params.geometry.total_disks() > Self::MAX_DISKS {
            return Err(CoreError::InvalidParameter(format!(
                "the Monte-Carlo engines support at most {} disks per array, got {}",
                Self::MAX_DISKS,
                params.geometry.total_disks()
            )));
        }
        Ok(ConventionalMc {
            params,
            failures,
            timing: WrongReplacementTiming::default(),
            engine: McEngine::Auto,
        })
    }

    /// Selects the wrong-replacement timing reading (must match the Markov
    /// model being validated against).
    pub fn with_timing(mut self, timing: WrongReplacementTiming) -> Self {
        self.timing = timing;
        self
    }

    /// Selects the per-mission engine (see [`McEngine`] for the `Auto`
    /// fast-path selection rule).
    pub fn with_engine(mut self, engine: McEngine) -> Self {
        self.engine = engine;
        self
    }

    /// The model parameters.
    pub fn params(&self) -> &ModelParams {
        &self.params
    }

    /// Whether the jump-chain fast path is applicable: it replays the
    /// Fig. 2 CTMC, which is only distribution-equivalent to the per-disk
    /// simulation when disk lifetimes are memoryless.
    fn jump_chain_applicable(&self) -> bool {
        matches!(self.failures, FailureModel::Exponential(_))
    }

    /// Resolves the configured engine to "use the fast path?".
    ///
    /// # Errors
    /// [`CoreError::InvalidParameter`] when [`McEngine::JumpChain`] is
    /// forced on a non-exponential failure model.
    fn resolve_fast_path(&self) -> Result<bool> {
        match self.engine {
            McEngine::Auto => Ok(self.jump_chain_applicable()),
            McEngine::EventQueue => Ok(false),
            McEngine::JumpChain => {
                if self.jump_chain_applicable() {
                    Ok(true)
                } else {
                    Err(CoreError::InvalidParameter(
                        "the jump-chain engine requires exponential failures; \
                         use McEngine::Auto or McEngine::EventQueue for Weibull models"
                            .into(),
                    ))
                }
            }
        }
    }

    fn wrong_pull_rate(&self) -> f64 {
        let base = match self.timing {
            WrongReplacementTiming::ChangeAction => self.params.disk_change_rate,
            WrongReplacementTiming::RepairCompletion => self.params.disk_repair_rate,
        };
        self.params.hep.value() * base
    }

    /// Resolves the configured engine and variance scheme to a concrete
    /// per-mission run mode.
    ///
    /// * `FailureBiasing` needs the jump chain (a tractable path density),
    ///   so it rejects Weibull models and a forced [`McEngine::EventQueue`];
    ///   `bias = 0` degenerates exactly to the naive run.
    /// * `Splitting` is defined on the general event-queue engine (it is
    ///   the rare-event scheme for models with *no* tractable density), so
    ///   it rejects a forced [`McEngine::JumpChain`]; a single level
    ///   degenerates exactly to the naive event-queue run.
    ///
    /// # Errors
    /// [`CoreError::InvalidParameter`] for the incompatible combinations
    /// above (and invalid scheme parameters via [`McVariance::validate`]).
    fn resolve_run_mode(&self, variance: McVariance) -> Result<RunMode> {
        variance.validate()?;
        match variance {
            McVariance::Naive => Ok(RunMode::Naive {
                fast: self.resolve_fast_path()?,
            }),
            McVariance::FailureBiasing { bias } => {
                if matches!(self.engine, McEngine::EventQueue) {
                    return Err(CoreError::InvalidParameter(
                        "failure biasing runs on the jump-chain fast path; \
                         do not force McEngine::EventQueue with it"
                            .into(),
                    ));
                }
                if !self.jump_chain_applicable() {
                    return Err(CoreError::InvalidParameter(
                        "failure biasing requires exponential failures (the jump \
                         chain carries the likelihood ratio); use \
                         McVariance::Splitting for Weibull models"
                            .into(),
                    ));
                }
                if bias <= 0.0 {
                    // Exactly the naive estimator, by construction.
                    Ok(RunMode::Naive { fast: true })
                } else {
                    Ok(RunMode::Biased { bias })
                }
            }
            McVariance::Splitting { levels, effort } => {
                if matches!(self.engine, McEngine::JumpChain) {
                    return Err(CoreError::InvalidParameter(
                        "splitting runs on the general event-queue engine; \
                         do not force McEngine::JumpChain with it"
                            .into(),
                    ));
                }
                if levels <= 1 {
                    // One level = no intermediate threshold: a plain
                    // event-queue run, bit-for-bit.
                    Ok(RunMode::Naive { fast: false })
                } else {
                    // The conventional model's degraded-state depth is 2
                    // (OP → one-failed → down); deeper level ladders clamp.
                    Ok(RunMode::Split { effort })
                }
            }
        }
    }

    /// Runs the full Monte-Carlo estimation.
    ///
    /// Each worker thread allocates one [`SimWorkspace`] and reuses it for
    /// every mission it claims, so the mission loop is allocation-free in
    /// steady state on both engines (splitting replications allocate their
    /// checkpoint lists; they are not the nanosecond path).
    ///
    /// # Errors
    /// Propagates configuration errors, rejects a forced
    /// [`McEngine::JumpChain`] on non-exponential failures, and rejects
    /// engine/variance combinations that cannot work (see
    /// [`McVariance`]).
    pub fn run(&self, config: &McConfig) -> Result<AvailabilityEstimate> {
        self.run_with_cancel(config, None)
    }

    /// [`run`](Self::run) plus an optional cooperative
    /// [`CancelToken`](availsim_sim::parallel::CancelToken): a tripped
    /// deadline or explicit cancel stops the block scheduler and returns
    /// [`CoreError::DeadlineExpired`] instead of an estimate. Uncancelled
    /// runs are bit-identical to [`run`](Self::run).
    ///
    /// # Errors
    /// As [`run`](Self::run), plus `DeadlineExpired` on cancellation.
    pub fn run_with_cancel(
        &self,
        config: &McConfig,
        cancel: Option<&availsim_sim::parallel::CancelToken>,
    ) -> Result<AvailabilityEstimate> {
        let mode = self.resolve_run_mode(config.variance)?;
        let mut est = super::run_iterations_cancellable(
            config,
            cancel,
            || SimWorkspace::with_telemetry(config.telemetry),
            |ws, i| {
                let mut rng = SimRng::substream(config.seed, i);
                self.dispatch(config.horizon_hours, &mut rng, ws, mode)
            },
        )?;
        est.normalize_nomdl(f64::from(self.params.geometry.usable_capacity()));
        Ok(est)
    }

    /// Runs batches of missions, growing the sample until the availability
    /// confidence interval's half-width drops below `target_half_width`
    /// (or `max_iterations` missions have been spent). `config.iterations`
    /// seeds the pilot batch size (clamped to a non-degenerate minimum).
    ///
    /// # Errors
    /// Propagates configuration errors; the target must be positive.
    pub fn run_to_precision(
        &self,
        config: &McConfig,
        target_half_width: f64,
        max_iterations: u64,
    ) -> Result<AvailabilityEstimate> {
        let mode = self.resolve_run_mode(config.variance)?;
        let mut est = super::run_to_precision_with(
            config,
            target_half_width,
            max_iterations,
            || SimWorkspace::with_telemetry(config.telemetry),
            |ws, i| {
                let mut rng = SimRng::substream(config.seed, i);
                self.dispatch(config.horizon_hours, &mut rng, ws, mode)
            },
        )?;
        est.normalize_nomdl(f64::from(self.params.geometry.usable_capacity()));
        Ok(est)
    }

    fn dispatch(
        &self,
        horizon: f64,
        rng: &mut SimRng,
        ws: &mut SimWorkspace,
        mode: RunMode,
    ) -> IterationOutcome {
        match mode {
            RunMode::Naive { fast: true } => {
                self.simulate_jump_chain(horizon, rng, &mut ws.log, &mut ws.telemetry)
            }
            RunMode::Naive { fast: false } => self.simulate_event_queue(horizon, rng, ws, None),
            RunMode::Biased { bias } => {
                self.simulate_jump_chain_biased(horizon, bias, rng, &mut ws.log, &mut ws.telemetry)
            }
            RunMode::Split { effort } => self.simulate_split_replication(horizon, effort, rng, ws),
        }
    }

    /// Simulates a single mission, optionally recording a Fig. 1-style
    /// event trace (used by the `mc_trace` example).
    ///
    /// Allocates a fresh scratch workspace per call; hot loops should use
    /// [`Self::simulate_once_with`] instead. Engine selection follows
    /// [`Self::with_engine`], except that a requested trace always runs the
    /// general engine — the fast path replays aggregate state transitions
    /// and has no per-disk events to record.
    pub fn simulate_once(
        &self,
        horizon: f64,
        rng: &mut SimRng,
        trace: Option<&mut EventTrace>,
    ) -> IterationOutcome {
        let mut ws = SimWorkspace::new();
        if trace.is_none() && self.resolve_fast_path().unwrap_or(false) {
            self.simulate_jump_chain(horizon, rng, &mut ws.log, &mut ws.telemetry)
        } else {
            self.simulate_event_queue(horizon, rng, &mut ws, trace)
        }
    }

    /// Simulates a single mission on a reusable [`SimWorkspace`] —
    /// allocation-free once the workspace buffers have grown.
    ///
    /// The mission fully resets the workspace state it reads, so the same
    /// workspace can be reused across missions (and models) without
    /// leaking state between iterations. Engine selection follows
    /// [`Self::with_engine`]; a forced-but-inapplicable
    /// [`McEngine::JumpChain`] falls back to the general engine here (the
    /// batch entry points reject it instead).
    pub fn simulate_once_with(
        &self,
        horizon: f64,
        rng: &mut SimRng,
        ws: &mut SimWorkspace,
    ) -> IterationOutcome {
        if self.resolve_fast_path().unwrap_or(false) {
            self.simulate_jump_chain(horizon, rng, &mut ws.log, &mut ws.telemetry)
        } else {
            self.simulate_event_queue(horizon, rng, ws, None)
        }
    }

    /// The jump-chain fast path: with exponential failures the mission is a
    /// replay of the four-state Fig. 2 CTMC, so each transition costs one
    /// exponential sojourn draw plus (in states with competing exits) one
    /// uniform to pick the winner — no event queue, no per-disk clocks.
    fn simulate_jump_chain(
        &self,
        horizon: f64,
        rng: &mut SimRng,
        log: &mut DowntimeLog,
        tele: &mut Telemetry,
    ) -> IterationOutcome {
        log.clear();
        let p = &self.params;
        let n = f64::from(p.disks());
        let lam = match &self.failures {
            FailureModel::Exponential(d) => d.rate(),
            FailureModel::Weibull(_) => unreachable!("fast path requires exponential failures"),
        };
        let hep = p.hep.value();

        // Exit rates of the four states. In OP the next failure is the
        // minimum of n memoryless clocks: Exp(n·λ). In EXP the n−1
        // survivors race the two service outcomes; disk renewal on every
        // return to OP matches the general engine's regenerative resampling
        // because the exponential is memoryless.
        //
        // With an LSE model attached, a rebuild completion splits by the
        // per-rebuild LSE-hit probability `ue`: rate (1−hep)·(1−ue)·μ_DF
        // returns to OP, rate (1−hep)·ue·μ_DF lost data during the rebuild
        // reads (exactly the split the generic exact chain applies through
        // `with_rebuild_failure_probability`). At ue = 0 the arithmetic is
        // bit-exact with the unsplit rates — `(1−hep)·1.0` and `x + 0.0`
        // are identities — and the zero-rate LSE exit is fenced off below,
        // so an LSE-free run consumes the identical RNG stream and returns
        // identical bits.
        let ue = p.rebuild_lse_probability();
        let op_fail = n * lam;
        let exp_fail = (n - 1.0) * lam;
        let exp_repair = (1.0 - hep) * (1.0 - ue) * p.disk_repair_rate;
        let exp_lse = (1.0 - hep) * ue * p.disk_repair_rate;
        let exp_wrong = self.wrong_pull_rate();
        let du_recover = (1.0 - hep) * p.human_recovery_rate;
        let du_crash = p.removed_crash_rate;
        let dl_restore = p.ddf_recovery_rate;

        let mut mode = Mode::Op;
        let mut t = 0.0;
        let (mut du_events, mut dl_events) = (0u64, 0u64);
        let mut first_loss = f64::INFINITY;
        // Edge tallies (op→exp, exp→op, exp→du, exp→dl, du→op, du→dl,
        // dl→op) and draw counts, kept in registers and flushed once per
        // mission so telemetry never touches the transition loop.
        let mut edges = [0u64; 7];
        let mut lse_hits = 0u64;
        let (mut exp_draws, mut uniform_draws) = (0u64, 0u64);

        loop {
            let total = match mode {
                Mode::Op => op_fail,
                Mode::Exp => exp_fail + exp_repair + exp_wrong + exp_lse,
                Mode::Du => du_recover + du_crash,
                Mode::Dl => dl_restore,
            };
            let Some(dt) = rng.sample_exp(total) else {
                break; // absorbing state: no enabled exits
            };
            exp_draws += 1;
            t += dt;
            if t > horizon {
                break;
            }
            // Winner ∝ rate. `u < total` holds in exact arithmetic (the
            // uniform is < 1), but fl(u·total) can round up to exactly
            // `total`, so each selection explicitly fences off disabled
            // (zero-rate) final exits — a rate-0 transition must never win
            // (e.g. no DU event may ever fire when hep = 0).
            match mode {
                Mode::Op => {
                    mode = Mode::Exp;
                    edges[0] += 1;
                }
                Mode::Exp => {
                    let u = rng.next_f64() * total;
                    uniform_draws += 1;
                    if u < exp_fail {
                        // Second failure during service: data loss.
                        mode = Mode::Dl;
                        dl_events += 1;
                        edges[3] += 1;
                        first_loss = first_loss.min(t);
                        log.begin(t, OutageCause::DataLoss);
                    } else if (exp_wrong <= 0.0 && exp_lse <= 0.0) || u < exp_fail + exp_repair {
                        mode = Mode::Op;
                        edges[1] += 1;
                    } else if exp_lse <= 0.0
                        || (exp_wrong > 0.0 && u < exp_fail + exp_repair + exp_wrong)
                    {
                        mode = Mode::Du;
                        du_events += 1;
                        edges[2] += 1;
                        log.begin(t, OutageCause::HumanError);
                    } else {
                        // Rebuild completed but a read of a surviving disk
                        // hit a latent sector error: data loss.
                        mode = Mode::Dl;
                        dl_events += 1;
                        edges[3] += 1;
                        lse_hits += 1;
                        first_loss = first_loss.min(t);
                        log.begin(t, OutageCause::DataLoss);
                    }
                }
                Mode::Du => {
                    let u = rng.next_f64() * total;
                    uniform_draws += 1;
                    if du_crash <= 0.0 || u < du_recover {
                        mode = Mode::Op;
                        edges[4] += 1;
                        log.end(t);
                    } else {
                        // The wrongly removed disk crashed: the outage
                        // continues, re-attributed to data loss.
                        mode = Mode::Dl;
                        dl_events += 1;
                        edges[5] += 1;
                        first_loss = first_loss.min(t);
                        log.end(t);
                        log.begin(t, OutageCause::DataLoss);
                    }
                }
                Mode::Dl => {
                    mode = Mode::Op;
                    edges[6] += 1;
                    log.end(t);
                }
            }
        }

        log.finalize(horizon);
        flush_jump_counters(tele, &edges, lse_hits, exp_draws, uniform_draws);
        IterationOutcome {
            downtime_hours: log.total_downtime(),
            du_downtime_hours: log.downtime_by_cause(OutageCause::HumanError),
            dl_downtime_hours: log.downtime_by_cause(OutageCause::DataLoss),
            du_events,
            dl_events,
            first_loss_hours: first_loss,
            weight: 1.0,
        }
    }

    /// Simulates one importance-sampled mission on a reusable workspace:
    /// the jump chain with failure forcing and balanced failure biasing at
    /// the given `bias` (see [`McVariance::FailureBiasing`]). The returned
    /// outcome's `weight` carries the path's likelihood ratio; averaging
    /// `weight × downtime` over missions is unbiased for the nominal
    /// expected downtime.
    ///
    /// `bias <= 0` (or a non-exponential failure model, where the fast path
    /// does not apply) falls back to the naive engine selection of
    /// [`Self::simulate_once_with`], with weight 1 — mirroring how the
    /// batch entry points degenerate.
    pub fn simulate_once_biased_with(
        &self,
        horizon: f64,
        bias: f64,
        rng: &mut SimRng,
        ws: &mut SimWorkspace,
    ) -> IterationOutcome {
        if bias > 0.0 && self.jump_chain_applicable() {
            self.simulate_jump_chain_biased(horizon, bias, rng, &mut ws.log, &mut ws.telemetry)
        } else {
            self.simulate_once_with(horizon, rng, ws)
        }
    }

    /// The importance-sampled jump chain: identical state machine to
    /// [`Self::simulate_jump_chain`], but
    ///
    /// * the **first** OP sojourn is *forced* into the mission window (a
    ///   truncated-exponential draw), multiplying `P(T ≤ horizon)` into the
    ///   weight — a mission with zero failures contributes zero downtime,
    ///   so restricting the proposal to failing missions loses nothing and
    ///   removes the `1/P(any failure)` waste of naive sampling; later OP
    ///   sojourns stay nominal (their paths carry accrued downtime, so the
    ///   proposal must keep them reachable);
    /// * in states with competing exits the winner is drawn with
    ///   [`biased_pick`] — the failure / human-error exits share proposal
    ///   mass `bias` — and the likelihood-ratio factor multiplies into the
    ///   weight.
    ///
    /// Two RNG draws per transition, exactly like the naive fast path.
    fn simulate_jump_chain_biased(
        &self,
        horizon: f64,
        bias: f64,
        rng: &mut SimRng,
        log: &mut DowntimeLog,
        tele: &mut Telemetry,
    ) -> IterationOutcome {
        log.clear();
        let p = &self.params;
        let n = f64::from(p.disks());
        let lam = match &self.failures {
            FailureModel::Exponential(d) => d.rate(),
            FailureModel::Weibull(_) => unreachable!("fast path requires exponential failures"),
        };
        let hep = p.hep.value();

        // Same LSE rebuild split (and ue = 0 bit-identity argument) as the
        // naive jump chain.
        let ue = p.rebuild_lse_probability();
        let op_fail = n * lam;
        let exp_fail = (n - 1.0) * lam;
        let exp_repair = (1.0 - hep) * (1.0 - ue) * p.disk_repair_rate;
        let exp_lse = (1.0 - hep) * ue * p.disk_repair_rate;
        let exp_wrong = self.wrong_pull_rate();
        let du_recover = (1.0 - hep) * p.human_recovery_rate;
        let du_crash = p.removed_crash_rate;
        let dl_restore = p.ddf_recovery_rate;

        let mut mode = Mode::Op;
        let mut t = 0.0;
        let mut weight = 1.0f64;
        let mut force_next_failure = true;
        let (mut du_events, mut dl_events) = (0u64, 0u64);
        let mut first_loss = f64::INFINITY;
        let mut edges = [0u64; 7];
        let mut lse_hits = 0u64;
        let (mut exp_draws, mut uniform_draws) = (0u64, 0u64);

        loop {
            let total = match mode {
                Mode::Op => op_fail,
                Mode::Exp => exp_fail + exp_repair + exp_wrong + exp_lse,
                Mode::Du => du_recover + du_crash,
                Mode::Dl => dl_restore,
            };
            let dt = if mode == Mode::Op && force_next_failure {
                force_next_failure = false;
                match rng.sample_exp_within(total, horizon - t) {
                    Some((dt, p_hit)) => {
                        exp_draws += 1;
                        weight *= p_hit;
                        dt
                    }
                    None => break,
                }
            } else {
                match rng.sample_exp(total) {
                    Some(dt) => {
                        exp_draws += 1;
                        dt
                    }
                    None => break, // absorbing state: no enabled exits
                }
            };
            t += dt;
            if t > horizon {
                break;
            }
            match mode {
                Mode::Op => {
                    mode = Mode::Exp;
                    edges[0] += 1;
                }
                Mode::Exp => {
                    // Biased set: the second failure, the wrong pull, and
                    // the LSE-failed rebuild — the exits toward the down
                    // states. `biased_pick` ignores zero-rate members, so
                    // the appended LSE exit changes nothing at ue = 0.
                    let exits = [
                        (exp_fail, true),
                        (exp_wrong, true),
                        (exp_repair, false),
                        (exp_lse, true),
                    ];
                    let (idx, ratio) = biased_pick(rng, &exits, total, bias);
                    uniform_draws += 1;
                    weight *= ratio;
                    match idx {
                        0 => {
                            mode = Mode::Dl;
                            dl_events += 1;
                            edges[3] += 1;
                            first_loss = first_loss.min(t);
                            log.begin(t, OutageCause::DataLoss);
                        }
                        1 => {
                            mode = Mode::Du;
                            du_events += 1;
                            edges[2] += 1;
                            log.begin(t, OutageCause::HumanError);
                        }
                        3 => {
                            mode = Mode::Dl;
                            dl_events += 1;
                            edges[3] += 1;
                            lse_hits += 1;
                            first_loss = first_loss.min(t);
                            log.begin(t, OutageCause::DataLoss);
                        }
                        _ => {
                            mode = Mode::Op;
                            edges[1] += 1;
                        }
                    }
                }
                Mode::Du => {
                    // Biased set: the removed-disk crash (DU → DL).
                    let exits = [(du_crash, true), (du_recover, false)];
                    let (idx, ratio) = biased_pick(rng, &exits, total, bias);
                    uniform_draws += 1;
                    weight *= ratio;
                    if idx == 0 {
                        mode = Mode::Dl;
                        dl_events += 1;
                        edges[5] += 1;
                        first_loss = first_loss.min(t);
                        log.end(t);
                        log.begin(t, OutageCause::DataLoss);
                    } else {
                        mode = Mode::Op;
                        edges[4] += 1;
                        log.end(t);
                    }
                }
                Mode::Dl => {
                    mode = Mode::Op;
                    edges[6] += 1;
                    log.end(t);
                }
            }
        }

        log.finalize(horizon);
        flush_jump_counters(tele, &edges, lse_hits, exp_draws, uniform_draws);
        IterationOutcome {
            downtime_hours: log.total_downtime(),
            du_downtime_hours: log.downtime_by_cause(OutageCause::HumanError),
            dl_downtime_hours: log.downtime_by_cause(OutageCause::DataLoss),
            du_events,
            dl_events,
            first_loss_hours: first_loss,
            weight,
        }
    }

    /// The general discrete-event engine with per-disk failure clocks —
    /// the only engine that supports non-exponential lifetimes and event
    /// traces. Runs on the reusable workspace scratch; every buffer is
    /// cleared (capacity retained) before use.
    fn simulate_event_queue(
        &self,
        horizon: f64,
        rng: &mut SimRng,
        ws: &mut SimWorkspace,
        trace: Option<&mut EventTrace>,
    ) -> IterationOutcome {
        match trace {
            Some(tr) => {
                self.run_event_queue(horizon, rng, ws, tr, EqStart::Fresh, false)
                    .0
            }
            None => {
                self.run_event_queue(horizon, rng, ws, &mut NoTrace, EqStart::Fresh, false)
                    .0
            }
        }
    }

    /// The event-queue engine core, restartable from a splitting checkpoint
    /// and stoppable at the first entry into a down state.
    ///
    /// With [`EqStart::Fresh`] and `stop_at_down = false` this is exactly
    /// the historical mission loop — same RNG consumption, same live-event
    /// pop order, same bits. The other start points reconstruct the full
    /// engine state at a checkpoint (pending failure clocks via
    /// absolute-time scheduling, fresh service draws at the entry epoch) so
    /// a splitting continuation is distribution-identical to a mission that
    /// reached that state on its own.
    ///
    /// Service events that lose their race are **cancelled in place** the
    /// moment the winner fires (the indexed queue makes that O(log n) with
    /// no tombstones), so the loop never pays a pop for a dead event; the
    /// epoch guard stays as a defensive invariant. The tracer is a
    /// monomorphized sink ([`NoTrace`] for the hot path), so untraced
    /// missions carry no per-event trace branches.
    ///
    /// `FleetMc` replays these exact per-array semantics with
    /// array-indexed state; a semantic change here must be mirrored in
    /// `fleet.rs` (the fleet oracle suite cross-checks the two).
    fn run_event_queue<T: Tracer>(
        &self,
        horizon: f64,
        rng: &mut SimRng,
        ws: &mut SimWorkspace,
        trace: &mut T,
        start: EqStart<'_>,
        stop_at_down: bool,
    ) -> (IterationOutcome, Option<DownEntry>) {
        let n = self.params.disks() as usize;
        let p = &self.params;
        let hep = p.hep.value();
        // Reciprocal service rates, cached once per mission so the armed
        // draws multiply instead of divide (a disabled rate becomes ∞,
        // which `sample_exp_inv` treats as "draw nothing", exactly like
        // `sample_exp(0)`).
        let repair_inv = ((1.0 - hep) * p.disk_repair_rate).recip();
        let wrong_inv = self.wrong_pull_rate().recip();
        let recover_inv = ((1.0 - hep) * p.human_recovery_rate).recip();
        let crash_inv = p.removed_crash_rate.recip();
        let restore_inv = p.ddf_recovery_rate.recip();
        // Per-rebuild LSE-hit probability. Strictly zero (and drawing no
        // randomness) when no scrubbing model is attached, so LSE-free
        // missions consume the identical RNG stream as before the feature
        // existed.
        let p_lse = p.rebuild_lse_probability();

        ws.conventional.reset(n);
        ws.log.clear();
        let ConvScratch { queue, slot_gen } = &mut ws.conventional;
        let log = &mut ws.log;
        let tele = &mut ws.telemetry;
        // Draw tallies, accumulated locally and flushed once per run (the
        // queue's own traffic counters live inside `IndexedEventQueue`).
        let (mut exp_draws, mut ttf_draws, mut uniform_draws) = (0u64, 0u64, 0u64);
        let mut mode = Mode::Op;
        let mut epoch: u32 = 0;
        let mut failed_slot: Option<usize> = None;
        let (mut du_events, mut dl_events) = (0u64, 0u64);
        let mut lse_hits = 0u64;
        let mut first_loss = f64::INFINITY;
        let mut down_entry: Option<DownEntry> = None;
        // Pending service events of the current state, by race lane
        // (0 = the recovery-flavoured exit, 1 = the failure-flavoured one);
        // whichever fires first invalidates the sibling via `cancel`.
        let mut svc: [Option<availsim_sim::indexed_queue::IndexedEventHandle>; 2] = [None, None];

        macro_rules! arm_service {
            ($lane:expr, $kind:expr, $inv_rate:expr) => {
                svc[$lane] = match rng.sample_exp_inv($inv_rate) {
                    Some(dt) => {
                        exp_draws += 1;
                        enqueue_due!(queue, queue.now() + dt, Ev::Service { kind: $kind, epoch })
                    }
                    None => None,
                };
            };
        }
        macro_rules! cancel_service {
            ($lane:expr) => {
                if let Some(h) = svc[$lane].take() {
                    queue.cancel(h);
                }
            };
        }

        // An event due after the horizon can never pop (`pop_due` filters
        // it), so it never enters the queue at all — the sampled delay is
        // still drawn (the RNG stream is part of the engine's contract),
        // but the queue only ever holds the handful of events that can
        // actually fire. Bit-identical to enqueueing everything.
        macro_rules! enqueue_due {
            ($queue:expr, $time:expr, $ev:expr) => {{
                let t = $time;
                if t <= horizon {
                    $queue.schedule_at(t, $ev).ok()
                } else {
                    $queue.note_expired();
                    None
                }
            }};
        }

        match start {
            EqStart::Fresh => {
                // Seed all disk clocks.
                for slot in 0..n {
                    let t = self.failures.sample_ttf(rng);
                    ttf_draws += 1;
                    let _ = enqueue_due!(
                        queue,
                        t,
                        Ev::Fail {
                            slot: slot as u16,
                            gen: 0,
                        }
                    );
                }
            }
            EqStart::Exp(entry) => {
                // Degraded-state entry: one slot just failed at `entry.t`,
                // the survivors keep their pending absolute failure times,
                // and the service race is armed at the entry instant.
                mode = Mode::Exp;
                epoch = 1;
                failed_slot = Some(entry.failed_slot);
                slot_gen[entry.failed_slot] = 1; // its clock has fired
                for &(slot, time) in &entry.pending {
                    let _ = enqueue_due!(
                        queue,
                        time,
                        Ev::Fail {
                            slot: slot as u16,
                            gen: 0,
                        }
                    );
                }
                for (lane, kind, inv) in [
                    (0, Service::RepairOk, repair_inv),
                    (1, Service::WrongPull, wrong_inv),
                ] {
                    svc[lane] = match rng.sample_exp_inv(inv) {
                        Some(dt) => {
                            exp_draws += 1;
                            enqueue_due!(queue, entry.t + dt, Ev::Service { kind, epoch })
                        }
                        None => None,
                    };
                }
            }
            EqStart::Down(entry) => {
                // Down-state entry: every failure clock is quiesced (all
                // slots are renewed on the way back to OP), so the state is
                // just the mode, the entry time, and the armed recovery
                // race.
                epoch = 1;
                let services: &[(usize, Service, f64)] = if entry.data_loss {
                    mode = Mode::Dl;
                    first_loss = first_loss.min(entry.t);
                    log.begin(entry.t, OutageCause::DataLoss);
                    &[(0, Service::Restore, restore_inv)]
                } else {
                    mode = Mode::Du;
                    log.begin(entry.t, OutageCause::HumanError);
                    &[
                        (0, Service::RecoveryOk, recover_inv),
                        (1, Service::RemovedCrash, crash_inv),
                    ]
                };
                for &(lane, kind, inv) in services {
                    svc[lane] = match rng.sample_exp_inv(inv) {
                        Some(dt) => {
                            exp_draws += 1;
                            enqueue_due!(queue, entry.t + dt, Ev::Service { kind, epoch })
                        }
                        None => None,
                    };
                }
            }
        }

        while let Some((t, ev)) = queue.pop_due(horizon) {
            match ev {
                Ev::Fail { slot, gen } => {
                    let slot = slot as usize;
                    if gen != slot_gen[slot] {
                        continue; // stale clock
                    }
                    slot_gen[slot] += 1; // the slot is no longer ticking
                    match mode {
                        Mode::Op => {
                            mode = Mode::Exp;
                            failed_slot = Some(slot);
                            epoch += 1;
                            trace.record(t, TraceKind::DiskFailure { disk: slot as u32 });
                            arm_service!(0, Service::RepairOk, repair_inv);
                            arm_service!(1, Service::WrongPull, wrong_inv);
                        }
                        Mode::Exp => {
                            // Second failure: data loss. The pending
                            // service race is void.
                            mode = Mode::Dl;
                            dl_events += 1;
                            first_loss = first_loss.min(t);
                            epoch += 1;
                            cancel_service!(0);
                            cancel_service!(1);
                            log.begin(t, OutageCause::DataLoss);
                            trace.record(t, TraceKind::DiskFailure { disk: slot as u32 });
                            trace.record(t, TraceKind::DataLoss);
                            if stop_at_down {
                                down_entry = Some(DownEntry { t, data_loss: true });
                                break;
                            }
                            arm_service!(0, Service::Restore, restore_inv);
                        }
                        // Quiesced while down; the slot is resampled on
                        // the next return to OP.
                        Mode::Du | Mode::Dl => {}
                    }
                }
                Ev::Service {
                    kind,
                    epoch: ev_epoch,
                } => {
                    if ev_epoch != epoch {
                        continue; // stale service event (defensive)
                    }
                    match (mode, kind) {
                        (Mode::Exp, Service::RepairOk) => {
                            epoch += 1;
                            svc[0] = None;
                            cancel_service!(1);
                            // With an LSE model attached, one Bernoulli
                            // decides whether the rebuild's reads of the
                            // surviving disks hit a latent error (data
                            // loss) or the array returns to OP. No model →
                            // no draw.
                            let lse_hit = p_lse > 0.0 && {
                                uniform_draws += 1;
                                rng.next_f64() < p_lse
                            };
                            if lse_hit {
                                mode = Mode::Dl;
                                dl_events += 1;
                                lse_hits += 1;
                                first_loss = first_loss.min(t);
                                log.begin(t, OutageCause::DataLoss);
                                trace.record(t, TraceKind::RebuildLse);
                                trace.record(t, TraceKind::DataLoss);
                                if stop_at_down {
                                    down_entry = Some(DownEntry { t, data_loss: true });
                                    break;
                                }
                                // `failed_slot` stays set; the restore
                                // handler renews every slot on the way
                                // back to OP.
                                arm_service!(0, Service::Restore, restore_inv);
                            } else {
                                // Replacement + rebuild done: back to OP.
                                mode = Mode::Op;
                                let slot = failed_slot.take().expect("exp implies a failed slot");
                                slot_gen[slot] += 1;
                                let tt = self.failures.sample_ttf(rng);
                                ttf_draws += 1;
                                let _ = enqueue_due!(
                                    queue,
                                    queue.now() + tt,
                                    Ev::Fail {
                                        slot: slot as u16,
                                        gen: slot_gen[slot],
                                    }
                                );
                                trace.record(t, TraceKind::RepairComplete { disk: slot as u32 });
                            }
                        }
                        (Mode::Exp, Service::WrongPull) => {
                            mode = Mode::Du;
                            du_events += 1;
                            epoch += 1;
                            svc[1] = None;
                            cancel_service!(0);
                            log.begin(t, OutageCause::HumanError);
                            trace.record(t, TraceKind::WrongReplacement { removed_disk: 0 });
                            trace.record(t, TraceKind::DataUnavailable);
                            if stop_at_down {
                                down_entry = Some(DownEntry {
                                    t,
                                    data_loss: false,
                                });
                                break;
                            }
                            arm_service!(0, Service::RecoveryOk, recover_inv);
                            arm_service!(1, Service::RemovedCrash, crash_inv);
                        }
                        (Mode::Du, Service::RecoveryOk) => {
                            // Error undone and repair completed (Fig. 2's
                            // DU → OP edge): full return to OP.
                            mode = Mode::Op;
                            epoch += 1;
                            svc[0] = None;
                            cancel_service!(1);
                            failed_slot = None;
                            log.end(t);
                            trace.record(t, TraceKind::WrongReplacementUndone);
                            for (slot, gen) in slot_gen.iter_mut().enumerate() {
                                *gen += 1;
                                let tt = self.failures.sample_ttf(rng);
                                ttf_draws += 1;
                                let _ = enqueue_due!(
                                    queue,
                                    queue.now() + tt,
                                    Ev::Fail {
                                        slot: slot as u16,
                                        gen: *gen,
                                    }
                                );
                            }
                        }
                        (Mode::Du, Service::RemovedCrash) => {
                            mode = Mode::Dl;
                            dl_events += 1;
                            first_loss = first_loss.min(t);
                            epoch += 1;
                            svc[1] = None;
                            cancel_service!(0);
                            // Re-attribute the remaining outage to data loss.
                            log.end(t);
                            log.begin(t, OutageCause::DataLoss);
                            trace.record(t, TraceKind::RemovedDiskCrashed);
                            trace.record(t, TraceKind::DataLoss);
                            arm_service!(0, Service::Restore, restore_inv);
                        }
                        (Mode::Dl, Service::Restore) => {
                            mode = Mode::Op;
                            epoch += 1;
                            svc[0] = None;
                            failed_slot = None;
                            log.end(t);
                            trace.record(t, TraceKind::BackupRestoreComplete);
                            for (slot, gen) in slot_gen.iter_mut().enumerate() {
                                *gen += 1;
                                let tt = self.failures.sample_ttf(rng);
                                ttf_draws += 1;
                                let _ = enqueue_due!(
                                    queue,
                                    queue.now() + tt,
                                    Ev::Fail {
                                        slot: slot as u16,
                                        gen: *gen,
                                    }
                                );
                            }
                        }
                        // Any other combination is a stale/impossible pair.
                        _ => {}
                    }
                }
            }
        }

        log.finalize(horizon);
        if tele.enabled() {
            tele.add(Counter::RngExpDraws, exp_draws);
            tele.add(Counter::RngLifetimeDraws, ttf_draws);
            tele.add(Counter::RngUniformDraws, uniform_draws);
            tele.add(Counter::RebuildLseHits, lse_hits);
            tele.add(Counter::DataLossEvents, dl_events);
        }
        (
            IterationOutcome {
                downtime_hours: log.total_downtime(),
                du_downtime_hours: log.downtime_by_cause(OutageCause::HumanError),
                dl_downtime_hours: log.downtime_by_cause(OutageCause::DataLoss),
                du_events,
                dl_events,
                first_loss_hours: first_loss,
                weight: 1.0,
            },
            down_entry,
        )
    }

    /// Stage-1 splitting trial: sample every slot's lifetime and take the
    /// earliest — the mission's first entry into the degraded state, with
    /// the survivors' pending clocks, or `None` if no disk fails within the
    /// horizon. (Before the first failure nothing else can happen, so no
    /// event queue is needed.)
    fn sample_first_failure(&self, horizon: f64, rng: &mut SimRng) -> Option<ExpEntry> {
        let n = self.params.disks() as usize;
        let mut times = Vec::with_capacity(n);
        let (mut first_slot, mut first_t) = (0usize, f64::INFINITY);
        for slot in 0..n {
            let t = self.failures.sample_ttf(rng);
            times.push(t);
            if t < first_t {
                first_t = t;
                first_slot = slot;
            }
        }
        if first_t > horizon {
            return None;
        }
        let pending = times
            .into_iter()
            .enumerate()
            .filter(|&(slot, _)| slot != first_slot)
            .collect();
        Some(ExpEntry {
            t: first_t,
            failed_slot: first_slot,
            pending,
        })
    }

    /// One fixed-effort multilevel-splitting replication on the event-queue
    /// engine, splitting on degraded-state depth (OP → one-failed → down).
    ///
    /// Stage 1 runs `effort` trials to the first disk failure; stage 2 runs
    /// `effort` continuations — each from a uniformly drawn stage-1 entry
    /// state — to the first down-state entry; stage 3 runs `effort`
    /// continuations from uniformly drawn down entries to the horizon,
    /// measuring the full remaining downtime (including any later outages).
    /// The replication's estimate is `p̂₁ · p̂₂ · mean(downtime)`, which is
    /// unbiased for the expected mission downtime: every mission's downtime
    /// occurs after its first down entry, each stage's empirical mean is
    /// conditionally unbiased given the previous stage's entry set, and the
    /// tower property telescopes the product.
    ///
    /// The event counts are raw tallies over all trials (diagnostics, not
    /// estimates); the downtime fields are the weighted estimates with
    /// `weight = 1` (the weighting already happened internally).
    fn simulate_split_replication(
        &self,
        horizon: f64,
        effort: u64,
        rng: &mut SimRng,
        ws: &mut SimWorkspace,
    ) -> IterationOutcome {
        let mut entries: Vec<ExpEntry> = Vec::new();
        for _ in 0..effort {
            if let Some(e) = self.sample_first_failure(horizon, rng) {
                entries.push(e);
            }
        }
        let p1 = entries.len() as f64 / effort as f64;
        if ws.telemetry.enabled() {
            // Every stage-1 trial samples all n disk lifetimes.
            let n = u64::from(self.params.disks());
            ws.telemetry.add(Counter::RngLifetimeDraws, effort * n);
            ws.telemetry
                .add(Counter::SplitStage1Survivors, entries.len() as u64);
        }
        if entries.is_empty() {
            return IterationOutcome::default();
        }

        let (mut du_events, mut dl_events) = (0u64, 0u64);
        let mut downs: Vec<DownEntry> = Vec::new();
        for _ in 0..effort {
            let e = &entries[rng.next_bounded(entries.len() as u64) as usize];
            let (out, down) =
                self.run_event_queue(horizon, rng, ws, &mut NoTrace, EqStart::Exp(e), true);
            du_events += out.du_events;
            dl_events += out.dl_events;
            if let Some(d) = down {
                downs.push(d);
            }
        }
        let p2 = downs.len() as f64 / effort as f64;
        if ws.telemetry.enabled() {
            // One uniform per stage-2 continuation picks the entry state.
            ws.telemetry.add(Counter::RngUniformDraws, effort);
            ws.telemetry
                .add(Counter::SplitStage2Survivors, downs.len() as u64);
        }
        if downs.is_empty() {
            return IterationOutcome {
                du_events,
                dl_events,
                ..IterationOutcome::default()
            };
        }

        let (mut sum_dt, mut sum_du, mut sum_dl) = (0.0, 0.0, 0.0);
        for _ in 0..effort {
            let d = downs[rng.next_bounded(downs.len() as u64) as usize];
            let (out, _) =
                self.run_event_queue(horizon, rng, ws, &mut NoTrace, EqStart::Down(d), false);
            du_events += out.du_events;
            dl_events += out.dl_events;
            sum_dt += out.downtime_hours;
            sum_du += out.du_downtime_hours;
            sum_dl += out.dl_downtime_hours;
        }
        let scale = p1 * p2 / effort as f64;
        if ws.telemetry.enabled() {
            // One uniform per stage-3 continuation picks the down entry.
            ws.telemetry.add(Counter::RngUniformDraws, effort);
        }
        IterationOutcome {
            downtime_hours: scale * sum_dt,
            du_downtime_hours: scale * sum_du,
            dl_downtime_hours: scale * sum_dl,
            du_events,
            dl_events,
            // A splitting replication estimates downtime from conditioned
            // partial trials; it has no unweighted per-mission loss
            // indicator, so it reports "no loss observed" by contract
            // (see `IterationOutcome::first_loss_hours`).
            first_loss_hours: f64::INFINITY,
            weight: 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use availsim_hra::Hep;

    fn params(lambda: f64, hep: f64) -> ModelParams {
        ModelParams::raid5_3plus1(lambda, Hep::new(hep).unwrap()).unwrap()
    }

    fn quick_config(iterations: u64) -> McConfig {
        McConfig {
            iterations,
            horizon_hours: 10_000.0,
            seed: 7,
            confidence: 0.99,
            threads: 2,
            ..McConfig::default()
        }
    }

    #[test]
    fn arrays_wider_than_the_slot_id_space_are_rejected() {
        // Regression: disk slots travel as u16 in the event payload; a
        // wider geometry must be refused instead of silently aliasing
        // slot ids (slot 0 vs slot 65536).
        let geom = availsim_storage::RaidGeometry::raid5(70_000).unwrap();
        let p = ModelParams::paper_defaults(geom, 1e-6, Hep::new(0.01).unwrap()).unwrap();
        let err = ConventionalMc::new(p).unwrap_err();
        assert!(err.to_string().contains("at most"), "{err}");
        // The widest supported geometry still constructs.
        let geom = availsim_storage::RaidGeometry::raid5(ConventionalMc::MAX_DISKS - 1).unwrap();
        let p = ModelParams::paper_defaults(geom, 1e-6, Hep::new(0.01).unwrap()).unwrap();
        assert!(ConventionalMc::new(p).is_ok());
    }

    #[test]
    fn no_failures_means_full_availability() {
        // Absurdly small λ: no events within the horizon — on both engines.
        for engine in [McEngine::JumpChain, McEngine::EventQueue] {
            let mc = ConventionalMc::new(params(1e-15, 0.01))
                .unwrap()
                .with_engine(engine);
            let est = mc.run(&quick_config(10)).unwrap();
            assert_eq!(est.overall_availability, 1.0);
            assert_eq!(est.du_events + est.dl_events, 0);
        }
    }

    #[test]
    fn hep_zero_produces_no_du_events() {
        for engine in [McEngine::JumpChain, McEngine::EventQueue] {
            let mc = ConventionalMc::new(params(1e-3, 0.0))
                .unwrap()
                .with_engine(engine);
            let est = mc.run(&quick_config(200)).unwrap();
            assert_eq!(est.du_events, 0);
            assert!(est.dl_events > 0, "with λ=1e-3 double failures must occur");
            assert!(est.overall_availability < 1.0);
        }
    }

    #[test]
    fn zero_crash_rate_is_supported_by_both_engines() {
        // removed_crash_rate is validated as *non-negative*: with it at 0
        // the DU → DL edge is disabled and must never win the jump-chain
        // race (zero-rate exits are fenced off explicitly).
        let mut p = params(1e-3, 0.05);
        p.removed_crash_rate = 0.0;
        for engine in [McEngine::JumpChain, McEngine::EventQueue] {
            let mc = ConventionalMc::new(p).unwrap().with_engine(engine);
            let est = mc.run(&quick_config(300)).unwrap();
            assert!(est.du_events > 0, "{engine:?}");
        }
    }

    #[test]
    fn human_errors_add_du_outages() {
        let mc = ConventionalMc::new(params(1e-3, 0.05)).unwrap();
        let est = mc.run(&quick_config(200)).unwrap();
        assert!(est.du_events > 0);
        assert!(est.du_downtime_share > 0.0);
    }

    #[test]
    fn availability_decreases_with_hep() {
        let lo = ConventionalMc::new(params(5e-4, 0.0)).unwrap();
        let hi = ConventionalMc::new(params(5e-4, 0.05)).unwrap();
        let cfg = quick_config(400);
        let a_lo = lo.run(&cfg).unwrap().overall_availability;
        let a_hi = hi.run(&cfg).unwrap().overall_availability;
        assert!(a_hi < a_lo, "{a_hi} !< {a_lo}");
    }

    #[test]
    fn matches_markov_at_high_rates() {
        // λ large enough that 600 × 10kh missions resolve the unavailability
        // to a few percent — the fast path and the general engine must both
        // contain the Fig. 2 answer in their confidence intervals.
        use crate::markov::Raid5Conventional;
        let p = params(1e-3, 0.01);
        let markov = Raid5Conventional::new(p).unwrap().solve().unwrap();
        for engine in [McEngine::JumpChain, McEngine::EventQueue] {
            let mc = ConventionalMc::new(p).unwrap().with_engine(engine);
            let est = mc.run(&quick_config(600)).unwrap();
            assert!(
                est.is_consistent_with(markov.availability()),
                "{engine:?}: markov {} outside CI {}",
                markov.availability(),
                est.availability
            );
        }
    }

    #[test]
    fn auto_resolves_to_jump_chain_for_exponential_models() {
        let mc = ConventionalMc::new(params(1e-3, 0.01)).unwrap();
        assert!(mc.resolve_fast_path().unwrap());
        let cfg = quick_config(100);
        let auto = mc.run(&cfg).unwrap();
        let forced = ConventionalMc::new(params(1e-3, 0.01))
            .unwrap()
            .with_engine(McEngine::JumpChain)
            .run(&cfg)
            .unwrap();
        assert_eq!(
            auto.overall_availability.to_bits(),
            forced.overall_availability.to_bits()
        );
    }

    #[test]
    fn jump_chain_rejects_weibull_models() {
        let p = params(1e-4, 0.01);
        let weibull = FailureModel::weibull(1e-3, 1.48).unwrap();
        let mc = ConventionalMc::with_failure_model(p, weibull)
            .unwrap()
            .with_engine(McEngine::JumpChain);
        assert!(mc.run(&quick_config(10)).is_err());
        // Auto on a Weibull model resolves to the general engine instead.
        let weibull = FailureModel::weibull(1e-3, 1.48).unwrap();
        let mc = ConventionalMc::with_failure_model(p, weibull).unwrap();
        assert!(!mc.resolve_fast_path().unwrap());
    }

    #[test]
    fn weibull_failures_are_supported() {
        let p = params(1e-4, 0.01);
        let weibull = FailureModel::weibull(1e-3, 1.48).unwrap();
        let mc = ConventionalMc::with_failure_model(p, weibull).unwrap();
        let est = mc.run(&quick_config(100)).unwrap();
        assert!(est.overall_availability < 1.0);
        assert!(est.overall_availability > 0.5);
    }

    #[test]
    fn trace_records_the_story() {
        let p = params(2e-3, 0.2);
        let mc = ConventionalMc::new(p).unwrap();
        let mut rng = SimRng::seed_from(123);
        let mut trace = EventTrace::new();
        let _ = mc.simulate_once(50_000.0, &mut rng, Some(&mut trace));
        assert!(!trace.is_empty());
        let failures = trace.count_where(|k| matches!(k, TraceKind::DiskFailure { .. }));
        assert!(failures > 0);
    }

    #[test]
    fn precision_run_tightens_the_interval() {
        let mc = ConventionalMc::new(params(1e-3, 0.01)).unwrap();
        let cfg = McConfig {
            iterations: 50,
            ..quick_config(50)
        };
        let pilot = mc.run(&cfg).unwrap();
        let target = pilot.availability.half_width / 3.0;
        let refined = mc.run_to_precision(&cfg, target, 200_000).unwrap();
        assert!(
            refined.availability.half_width <= target,
            "refined hw {} vs target {target}",
            refined.availability.half_width
        );
        assert!(refined.iterations > pilot.iterations);
    }

    #[test]
    fn precision_run_respects_iteration_cap() {
        let mc = ConventionalMc::new(params(1e-3, 0.01)).unwrap();
        let cfg = quick_config(50);
        // Impossible target, tiny cap: must stop at the cap.
        let est = mc.run_to_precision(&cfg, 1e-15, 200).unwrap();
        assert!(est.iterations <= 200);
        assert!(mc.run_to_precision(&cfg, 0.0, 100).is_err());
    }

    #[test]
    fn deterministic_across_thread_counts() {
        // Both engines must be bit-identical at any thread count.
        for engine in [McEngine::JumpChain, McEngine::EventQueue] {
            let p = params(1e-3, 0.01);
            let mc = ConventionalMc::new(p).unwrap().with_engine(engine);
            let mut cfg = quick_config(100);
            cfg.threads = 1;
            let a = mc.run(&cfg).unwrap();
            cfg.threads = 4;
            let b = mc.run(&cfg).unwrap();
            assert_eq!(
                a.overall_availability.to_bits(),
                b.overall_availability.to_bits(),
                "{engine:?}"
            );
            assert_eq!(
                a.mean_downtime_hours.to_bits(),
                b.mean_downtime_hours.to_bits(),
                "{engine:?}"
            );
        }
    }

    #[test]
    fn workspace_reuse_matches_fresh_workspaces_bitwise() {
        // A workspace that has already simulated missions (including a
        // deliberately poisoned one) must produce the same bits as a fresh
        // workspace for the same seed, on both engines.
        let p = params(2e-3, 0.05);
        for engine in [McEngine::JumpChain, McEngine::EventQueue] {
            let mc = ConventionalMc::new(p).unwrap().with_engine(engine);
            let mut reused = SimWorkspace::new();
            // Dirty the workspace: several missions with unrelated seeds,
            // then poison the log/trace with an open outage mid-state.
            for s in 1000..1004 {
                let mut rng = SimRng::seed_from(s);
                let _ = mc.simulate_once_with(30_000.0, &mut rng, &mut reused);
            }
            reused.log.begin(1.0, OutageCause::HumanError);
            reused.trace.record(2.0, TraceKind::DataLoss);

            let mut fresh = SimWorkspace::new();
            let mut rng_a = SimRng::seed_from(42);
            let mut rng_b = SimRng::seed_from(42);
            let a = mc.simulate_once_with(30_000.0, &mut rng_a, &mut reused);
            let b = mc.simulate_once_with(30_000.0, &mut rng_b, &mut fresh);
            assert_eq!(
                a.downtime_hours.to_bits(),
                b.downtime_hours.to_bits(),
                "{engine:?}"
            );
            assert_eq!(
                a.du_downtime_hours.to_bits(),
                b.du_downtime_hours.to_bits(),
                "{engine:?}"
            );
            assert_eq!(a.du_events, b.du_events, "{engine:?}");
            assert_eq!(a.dl_events, b.dl_events, "{engine:?}");
        }
    }

    #[test]
    fn failure_biasing_covers_markov_where_naive_sees_nothing() {
        // λ so small that 400 × 10kh missions essentially never fail a
        // disk: naive MC returns a degenerate full-availability estimate,
        // while the biased estimator still brackets the exact chain.
        let p = params(1e-8, 0.01);
        let exact = crate::markov::Raid5Conventional::new(p)
            .unwrap()
            .solve()
            .unwrap()
            .unavailability();
        let cfg = McConfig {
            variance: McVariance::failure_biasing(),
            ..quick_config(400)
        };
        let est = ConventionalMc::new(p).unwrap().run(&cfg).unwrap();
        assert!(est.unavailability() > 0.0);
        assert!(
            est.is_consistent_with_unavailability(exact),
            "exact {exact:.3e} outside CI {} (U_est {:.3e})",
            est.availability,
            est.unavailability()
        );
        assert!(est.max_weight.is_finite() && est.max_weight > 0.0);
        assert!(est.effective_sample_size > 0.0);

        let naive = ConventionalMc::new(p)
            .unwrap()
            .run(&quick_config(400))
            .unwrap();
        assert_eq!(naive.du_events + naive.dl_events, 0);
        assert!(!naive.is_consistent_with_unavailability(exact));
    }

    #[test]
    fn zero_bias_degenerates_to_the_naive_estimator_bitwise() {
        let p = params(1e-3, 0.01);
        let mc = ConventionalMc::new(p).unwrap();
        let naive = mc.run(&quick_config(300)).unwrap();
        let biased = mc
            .run(&McConfig {
                variance: McVariance::FailureBiasing { bias: 0.0 },
                ..quick_config(300)
            })
            .unwrap();
        assert_eq!(
            naive.overall_availability.to_bits(),
            biased.overall_availability.to_bits()
        );
        assert_eq!(
            naive.availability.half_width.to_bits(),
            biased.availability.half_width.to_bits()
        );
        assert_eq!(naive.du_events, biased.du_events);
        assert_eq!(naive.max_weight.to_bits(), biased.max_weight.to_bits());
    }

    #[test]
    fn failure_biasing_rejects_weibull_and_forced_event_queue() {
        let cfg = McConfig {
            variance: McVariance::failure_biasing(),
            ..quick_config(10)
        };
        let weibull = FailureModel::weibull(1e-3, 1.48).unwrap();
        let mc = ConventionalMc::with_failure_model(params(1e-4, 0.01), weibull).unwrap();
        assert!(mc.run(&cfg).is_err());
        let mc = ConventionalMc::new(params(1e-4, 0.01))
            .unwrap()
            .with_engine(McEngine::EventQueue);
        assert!(mc.run(&cfg).is_err());
    }

    #[test]
    fn splitting_single_level_is_bitwise_the_event_queue_run() {
        let weibull = FailureModel::weibull(1e-3, 1.48).unwrap();
        let mc = ConventionalMc::with_failure_model(params(1e-4, 0.01), weibull).unwrap();
        let naive = mc
            .run(&McConfig {
                variance: McVariance::Naive,
                ..quick_config(100)
            })
            .unwrap();
        let split = mc
            .run(&McConfig {
                variance: McVariance::Splitting {
                    levels: 1,
                    effort: 32,
                },
                ..quick_config(100)
            })
            .unwrap();
        assert_eq!(
            naive.overall_availability.to_bits(),
            split.overall_availability.to_bits()
        );
        assert_eq!(
            naive.availability.half_width.to_bits(),
            split.availability.half_width.to_bits()
        );
        assert_eq!(naive.du_events, split.du_events);
        assert_eq!(naive.dl_events, split.dl_events);
    }

    #[test]
    fn splitting_rejects_a_forced_jump_chain() {
        let mc = ConventionalMc::new(params(1e-4, 0.01))
            .unwrap()
            .with_engine(McEngine::JumpChain);
        let cfg = McConfig {
            variance: McVariance::splitting(),
            ..quick_config(10)
        };
        assert!(mc.run(&cfg).is_err());
    }

    #[test]
    fn splitting_estimates_track_the_naive_estimate_at_moderate_rates() {
        // Where naive MC converges fine, splitting must land in the same
        // place (CIs overlap) — exponential model so the chain's general
        // engine is exercised end to end.
        let p = params(1e-3, 0.02);
        let mc = ConventionalMc::new(p)
            .unwrap()
            .with_engine(McEngine::EventQueue);
        let naive = mc.run(&quick_config(600)).unwrap();
        let split = ConventionalMc::new(p)
            .unwrap()
            .run(&McConfig {
                variance: McVariance::Splitting {
                    levels: 2,
                    effort: 32,
                },
                ..quick_config(200)
            })
            .unwrap();
        assert!(split.unavailability() > 0.0);
        let gap = (naive.availability.mean - split.availability.mean).abs();
        assert!(
            gap <= naive.availability.half_width + split.availability.half_width,
            "naive {} vs split {}",
            naive.availability,
            split.availability
        );
    }

    #[test]
    fn zero_lse_rate_is_bitwise_identical_to_no_scrubbing_model() {
        // An attached scrubbing model with lse_rate = 0 must not perturb a
        // single RNG draw or result bit on any engine or variance scheme —
        // the "disabled features draw nothing" contract.
        let base = params(1e-3, 0.02);
        let with_zero =
            base.with_scrubbing(availsim_storage::ScrubbingModel::new(0.0, 336.0).unwrap());
        for engine in [McEngine::JumpChain, McEngine::EventQueue] {
            let a = ConventionalMc::new(base)
                .unwrap()
                .with_engine(engine)
                .run(&quick_config(300))
                .unwrap();
            let b = ConventionalMc::new(with_zero)
                .unwrap()
                .with_engine(engine)
                .run(&quick_config(300))
                .unwrap();
            assert_eq!(
                a.overall_availability.to_bits(),
                b.overall_availability.to_bits(),
                "{engine:?}"
            );
            assert_eq!(
                a.availability.half_width.to_bits(),
                b.availability.half_width.to_bits(),
                "{engine:?}"
            );
            assert_eq!(a.dl_events, b.dl_events, "{engine:?}");
            assert_eq!(a.loss_missions, b.loss_missions, "{engine:?}");
            assert_eq!(a.nomdl_per_tb.to_bits(), b.nomdl_per_tb.to_bits());
        }
        // Same for failure biasing (the 4th biased exit is fenced at 0).
        let cfg = McConfig {
            variance: McVariance::failure_biasing(),
            ..quick_config(300)
        };
        let a = ConventionalMc::new(base).unwrap().run(&cfg).unwrap();
        let b = ConventionalMc::new(with_zero).unwrap().run(&cfg).unwrap();
        assert_eq!(
            a.overall_availability.to_bits(),
            b.overall_availability.to_bits()
        );
        assert_eq!(a.max_weight.to_bits(), b.max_weight.to_bits());
    }

    #[test]
    fn lse_exposure_produces_rebuild_losses_on_both_engines() {
        // A deliberately hostile scrub policy: ~39% of rebuilds hit an LSE.
        let scrub = availsim_storage::ScrubbingModel::new(1e-3, 1_000.0).unwrap();
        let p = params(1e-3, 0.0).with_scrubbing(scrub);
        assert!(p.rebuild_lse_probability() > 0.3);
        let mut cfg = quick_config(400);
        cfg.telemetry = true;
        for engine in [McEngine::JumpChain, McEngine::EventQueue] {
            let est = ConventionalMc::new(p)
                .unwrap()
                .with_engine(engine)
                .run(&cfg)
                .unwrap();
            assert!(est.loss_missions > 0, "{engine:?}");
            assert!(est.p_data_loss.mean > 0.0, "{engine:?}");
            assert!(est.nomdl_per_tb > 0.0, "{engine:?}");
            let mttfl = est.mean_time_to_first_loss_hours.expect("losses occurred");
            assert!(mttfl > 0.0 && mttfl < cfg.horizon_hours, "{engine:?}");
            use availsim_sim::telemetry::Counter;
            let hits = est.counters.get(Counter::RebuildLseHits);
            let dl = est.counters.get(Counter::DataLossEvents);
            assert!(hits > 0, "{engine:?}");
            assert_eq!(dl, est.dl_events, "{engine:?}");
            assert!(hits <= dl, "{engine:?}");
            // More loss than the LSE-free model: every hit is extra DL.
            let base = ConventionalMc::new(params(1e-3, 0.0))
                .unwrap()
                .with_engine(engine)
                .run(&cfg)
                .unwrap();
            assert!(est.dl_events > base.dl_events, "{engine:?}");
            assert_eq!(base.counters.get(Counter::RebuildLseHits), 0);
        }
    }

    #[test]
    fn lse_first_loss_time_is_the_earliest_dl_entry() {
        // Single traced mission with heavy LSE exposure: the outcome's
        // first-loss time must match the first DATA LOSS outage start.
        let scrub = availsim_storage::ScrubbingModel::new(1e-2, 1_000.0).unwrap();
        let p = params(2e-3, 0.0).with_scrubbing(scrub);
        let mc = ConventionalMc::new(p).unwrap();
        let mut ws = SimWorkspace::new();
        let mut found = false;
        for seed in 0..50u64 {
            let mut rng = SimRng::seed_from(seed);
            let out = mc.simulate_once_with(50_000.0, &mut rng, &mut ws);
            if out.first_loss_hours.is_finite() {
                found = true;
                let first_dl = ws
                    .log
                    .outages()
                    .iter()
                    .filter(|o| o.cause == OutageCause::DataLoss)
                    .map(|o| o.start)
                    .fold(f64::INFINITY, f64::min);
                assert_eq!(out.first_loss_hours.to_bits(), first_dl.to_bits());
                assert!(out.dl_events > 0);
            } else {
                assert_eq!(
                    ws.log.count_by_cause(OutageCause::DataLoss),
                    0,
                    "seed {seed}"
                );
            }
        }
        assert!(found, "no mission lost data despite heavy LSE exposure");
    }

    #[test]
    fn workspace_reset_scrubs_poisoned_state() {
        let mut ws = SimWorkspace::new();
        ws.log.begin(5.0, OutageCause::DataLoss);
        ws.trace.record(1.0, TraceKind::DataLoss);
        ws.conventional.slot_gen.resize(8, 3);
        ws.reset();
        assert!(!ws.log.is_down());
        assert!(ws.log.outages().is_empty());
        assert!(ws.trace().is_empty());
        assert!(ws.conventional.slot_gen.is_empty());
    }
}
