//! Fleet-scale Monte-Carlo: one mission simulates a whole datacenter row
//! of independent RAID arrays on a single event queue.
//!
//! The paper motivates everything with an exabyte datacenter — "at least a
//! disk failure per hour" and multiple human errors a day — but its models
//! (and [`ConventionalMc`](super::ConventionalMc)) describe a *single*
//! array. [`FleetMc`] turns the intro arithmetic into a first-class
//! simulated scenario: a mission advances `A` independent conventional
//! arrays (Fig. 2 semantics each, per-disk failure clocks, any
//! [`FailureModel`]) through one shared
//! [`IndexedEventQueue`](availsim_sim::indexed_queue::IndexedEventQueue)
//! and one shared workspace, reporting
//!
//! * the per-array availability (which matches the single-array model —
//!   the arrays are independent),
//! * the *fleet* availability (no array down) and its expected annual
//!   any-array-down hours — the number a datacenter operator actually
//!   plans maintenance staffing around, and
//! * the time-weighted distribution of **simultaneously degraded arrays**
//!   (arrays not fully operational), the paper's failure-per-hour claim
//!   made measurable.
//!
//! The engine is the general event-queue engine throughout — a fleet
//! mission is exactly the workload the indexed queue's heap regime exists
//! for (thousands of concurrent disk clocks).
//!
//! # Shared resources and correlated human error
//!
//! Real fleets are *not* independent: one maintenance team serves many
//! arrays, and a stressed operator errs more. Three optional couplings
//! model this, each reducing exactly to the independent fleet when
//! disabled (bit for bit — the RNG draw sequence is untouched):
//!
//! * **Finite repair crews** ([`FleetSpec::with_repairmen`]): at most `c`
//!   arrays are in service concurrently; further degraded arrays wait in
//!   FIFO order with no service clocks running (the machine-repairman
//!   model, validated against its exact closed form in
//!   `crates/core/tests/fleet.rs`). A waiting array is still exposed to
//!   further disk failures and to domain knockouts.
//! * **Operator dependence** ([`FleetCoupling::dependence`]): the hep of
//!   a service action beginning while `d` *other* arrays are degraded is
//!   escalated by `d` THERP conditional steps
//!   ([`availsim_hra::escalated`]) — concurrent incidents share the
//!   operator's attention.
//! * **Domain failures** ([`DomainFailures`]): the fleet is partitioned
//!   into consecutive shelves of `domain_arrays` arrays; each shelf has
//!   its own Poisson clock that knocks every member array into the DL
//!   (restore-from-backup) state at once.
//! * **Shared DR site** ([`FleetSpec::with_failover`]): the paper's
//!   Fig. 3 fail-over target at fleet scale. An array leaving OP requests
//!   one of `capacity` DR slots; admitted arrays serve degraded from DR
//!   (their down time is *credited* — see
//!   [`FleetEstimate::credited_availability`]) and, back in OP, run the
//!   Fig. 3 switch-back race — successful fail-back at `(1−hep)·φ`
//!   against a botched, DU-causing switch-back at `hep·φ` — holding the
//!   slot until the fail-back completes. Arrays beyond capacity queue
//!   FIFO (or are rejected under the Erlang-loss
//!   [`FailoverPolicy::Loss`]) and accrue full downtime, which is
//!   exactly how a domain strike flooring a whole shelf saturates the DR
//!   site and degrades the fleet gracefully instead of cliff-dropping.
//!   An unbounded capacity is the ideal-DR limit: every episode is
//!   absorbed with an instantaneous, error-free switch-back, drawing
//!   nothing from the RNG — bit-identical to the no-failover engine.

use super::failover::failback_race_inv;
use super::{McConfig, McVariance, SimWorkspace, TelemetrySource, BLOCK_ITERATIONS, MAX_BLOCKS};
use crate::error::{CoreError, Result};
use crate::markov::WrongReplacementTiming;
use crate::params::ModelParams;
use availsim_hra::{escalated, DependenceLevel};
use availsim_sim::indexed_queue::{IndexedEventHandle, IndexedEventQueue, QueueStats};
use availsim_sim::parallel::ordered_parallel_map_cancellable;
use availsim_sim::rng::SimRng;
use availsim_sim::stats::{t_interval, wilson_interval, ConfidenceInterval, RunningStats};
use availsim_sim::telemetry::{Counter, CounterSnapshot};
use availsim_storage::{FailoverPolicy, FailureModel, FleetSpec, HOURS_PER_YEAR};
use std::collections::VecDeque;

/// Operating mode of one member array (the Fig. 2 states).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
enum Mode {
    /// All disks operational.
    #[default]
    Op,
    /// One failed disk, service in progress (degraded but serving).
    Exp,
    /// Down: wrong replacement pulled a live disk.
    Du,
    /// Down: data lost, restoring from backup.
    Dl,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Service {
    /// EXP → OP at (1−hep)·μ_DF.
    RepairOk,
    /// EXP → DU at hep·μ_s.
    WrongPull,
    /// DU → OP at (1−hep)·μ_he.
    RecoveryOk,
    /// DU → DL at λ_crash.
    RemovedCrash,
    /// DL → OP at μ_DDF.
    Restore,
    /// DR switch-back succeeds at (1−hep)·φ: the slot is released.
    FailbackOk,
    /// DR switch-back botched at hep·φ (the Fig. 3 DR-side human
    /// error): the array goes DU while still holding its slot.
    FailbackSlip,
}

/// Relationship of one array to the shared DR site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
enum DrState {
    /// No slot held, not in line.
    #[default]
    None,
    /// Waiting FIFO for a slot (full downtime accrues meanwhile).
    Queued,
    /// Holding a slot: serving degraded from DR while non-OP, failing
    /// back (switch-back race armed) while OP.
    Serving,
}

/// Event payload. `slot` fits a `u8` (per-array disk counts are bounded
/// by [`FleetSpec::MAX_DISKS_PER_ARRAY`]); `gen`/`epoch` are per-slot /
/// per-array counters that reset every mission — `u32` so that even an
/// absurd `λ·horizon` cannot wrap them within one mission (2^32 events on
/// one slot is beyond any simulable mission).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FleetEv {
    /// Failure of one disk slot of one array.
    Fail { array: u32, slot: u8, gen: u32 },
    /// A service transition of one array.
    Service {
        array: u32,
        kind: Service,
        epoch: u32,
    },
    /// A whole-shelf knockout (the shelf's Poisson clock fired). Always
    /// live: the clock is re-armed only when it fires, so no generation
    /// guard is needed.
    Domain { domain: u32 },
}

/// Per-array simulation state, 8 bytes so a 64k-array fleet's state table
/// stays cache-friendly.
#[derive(Debug, Clone, Copy, Default)]
struct ArrayState {
    mode: Mode,
    epoch: u32,
    failed_slot: u8,
    /// Degraded but queued for a repair crew (no service clocks armed).
    /// Every non-OP array either waits or holds exactly one crew.
    waiting: bool,
    /// Standing with the shared DR site (always `None` without one).
    dr: DrState,
}

/// Reusable scratch of the fleet engine: the shared event queue, the
/// per-array state table, and the flattened per-slot failure-clock
/// generations. Cleared (capacity retained) at the start of every mission.
#[derive(Debug, Default)]
pub(crate) struct FleetScratch {
    queue: IndexedEventQueue<FleetEv>,
    arrays: Vec<ArrayState>,
    slot_gen: Vec<u32>,
    /// Pending service handles per array, by race lane (0 = the
    /// recovery-flavoured exit, 1 = the failure-flavoured one): when one
    /// fires, the sibling is cancelled in place instead of surfacing
    /// later as a stale pop in the shared heap.
    svc: Vec<[Option<IndexedEventHandle>; 2]>,
    /// Arrays waiting for a repair crew, FIFO. An array appears at most
    /// once per degraded episode (it can only return to OP through a
    /// service, which requires the crew it is waiting for).
    fifo: VecDeque<u32>,
    /// Arrays waiting for a DR slot, FIFO, as `(array, token)` pairs.
    /// Unlike the crew queue an array *can* leave this line early (by
    /// repairing to OP while still queued), so entries carry the
    /// admission token current at enqueue time and stale entries are
    /// skipped on pop.
    dr_fifo: VecDeque<(u32, u32)>,
    /// Per-array DR admission token, bumped whenever the array's queue
    /// membership is invalidated.
    dr_token: Vec<u32>,
}

impl FleetScratch {
    /// Re-zeroes the state tables for an `arrays × disks` mission,
    /// retaining all allocated capacity.
    pub(crate) fn reset(&mut self, arrays: usize, disks: usize) {
        self.queue.clear();
        self.arrays.clear();
        self.arrays.resize(arrays, ArrayState::default());
        self.slot_gen.clear();
        self.slot_gen.resize(arrays * disks, 0);
        self.svc.clear();
        self.svc.resize(arrays, [None, None]);
        self.fifo.clear();
        self.dr_fifo.clear();
        self.dr_token.clear();
        self.dr_token.resize(arrays, 0);
    }

    /// Cumulative traffic counters of the shared fleet event queue.
    pub(crate) fn queue_stats(&self) -> QueueStats {
        self.queue.stats()
    }
}

/// One shelf-failure process: the fleet is partitioned into consecutive
/// shelves of `domain_arrays` arrays (the last shelf may be short), and
/// each shelf's own Poisson clock at `rate` knocks every member array
/// into the DL (restore-from-backup) state at once — a rack power feed or
/// backplane failure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DomainFailures {
    /// Arrays per shelf, at least 1 and at most the fleet size.
    pub domain_arrays: u32,
    /// Shelf knockouts per hour per shelf, positive and finite.
    pub rate: f64,
}

/// Correlated-failure configuration of a fleet mission. The default
/// (`Zero` dependence, no domains) is the independent fleet; together
/// with an unlimited crew pool it reproduces the uncoupled engine bit
/// for bit.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FleetCoupling {
    /// THERP dependence between service actions of concurrently degraded
    /// arrays: the hep of an incident beginning while `d` other arrays
    /// are degraded is escalated by `d` conditional steps.
    pub dependence: DependenceLevel,
    /// Optional whole-shelf knockout process.
    pub domains: Option<DomainFailures>,
}

/// Number of bins of the simultaneous-degraded-arrays distribution: exact
/// counts `0..=31`, with the final bin absorbing `>= 32` (a fleet sick
/// enough to exceed it is far outside the paper's operating regime).
pub const DEGRADED_BINS: usize = 33;

/// Outcome of one fleet mission.
#[derive(Debug, Clone, Copy)]
pub struct FleetOutcome {
    /// Human-error (DU) downtime summed over all member arrays, hours.
    pub du_downtime_hours: f64,
    /// Data-loss (DL) downtime summed over all member arrays, hours.
    pub dl_downtime_hours: f64,
    /// Mission time during which **at least one** array was down, hours.
    pub any_down_hours: f64,
    /// Data-unavailability events across the fleet.
    pub du_events: u64,
    /// Data-loss events across the fleet. A domain strike contributes one
    /// event per member array it takes down.
    pub dl_events: u64,
    /// Mission time of the first DL entry of **any** member array, hours
    /// ([`f64::INFINITY`] when no array ever lost data).
    pub first_loss_hours: f64,
    /// Peak number of simultaneously degraded (not fully operational)
    /// arrays observed during the mission.
    pub max_degraded: u32,
    /// Time spent with exactly `k` arrays degraded, hours
    /// (`degraded_hours[DEGRADED_BINS - 1]` absorbs `k >= 32`); sums to
    /// the mission horizon.
    pub degraded_hours: [f64; DEGRADED_BINS],
    /// Array-downtime hours **not** served from the DR site — what the
    /// DR coupling cannot credit. Accrued directly (not derived by
    /// subtraction) so the ideal-DR limit reports an exact zero; equals
    /// `du + dl` downtime without a DR site.
    pub uncovered_down_hours: f64,
    /// Mission time during which at least one array was down **and not
    /// DR-served**; equals `any_down_hours` without a DR site.
    pub uncovered_any_down_hours: f64,
    /// Time spent with exactly `k` DR slots occupied, hours (last bin
    /// absorbs `k >= 32`); all-zero without a DR site, otherwise sums to
    /// the mission horizon.
    pub dr_occupancy_hours: [f64; DEGRADED_BINS],
    /// Array-hours spent waiting in the DR admission queue.
    pub dr_queue_wait_hours: f64,
    /// DR admissions (immediate or from the queue).
    pub failovers: u64,
    /// Completed switch-backs from DR to primary.
    pub failbacks: u64,
    /// Arrays that found the site full and joined the FIFO queue.
    pub dr_queue_waits: u64,
    /// Arrays rejected by a full site under [`FailoverPolicy::Loss`].
    pub dr_rejections: u64,
}

impl FleetOutcome {
    /// Total array-downtime of the mission (DU + DL, summed over arrays),
    /// hours.
    pub fn array_downtime_hours(&self) -> f64 {
        self.du_downtime_hours + self.dl_downtime_hours
    }

    /// Array-downtime hours after crediting DR-served time — what the
    /// fleet's users actually lost.
    pub fn credited_array_downtime_hours(&self) -> f64 {
        self.uncovered_down_hours
    }
}

/// Aggregate result of a fleet Monte-Carlo run.
#[derive(Debug, Clone)]
pub struct FleetEstimate {
    /// Student-t interval over per-mission *per-array* availability (each
    /// mission contributes `1 − downtime/(A·horizon)`).
    pub availability: ConfidenceInterval,
    /// Overall per-array availability: total array-uptime over total
    /// array-time — directly comparable to the single-array models.
    pub overall_array_availability: f64,
    /// Fleet availability under the all-arrays-serving definition:
    /// fraction of time **no** array was down.
    pub fleet_availability: f64,
    /// Mean downtime per array per mission, hours.
    pub mean_array_downtime_hours: f64,
    /// Expected annual downtime of one array, hours — the per-array
    /// unavailability scaled by [`HOURS_PER_YEAR`].
    pub annual_array_downtime_hours: f64,
    /// Expected hours per year with at least one array down — the fleet
    /// operator's maintenance-exposure number.
    pub annual_any_down_hours: f64,
    /// Share of array-downtime caused by human error (DU), in `[0, 1]`.
    pub du_downtime_share: f64,
    /// Total DU events across all missions.
    pub du_events: u64,
    /// Total DL events across all missions.
    pub dl_events: u64,
    /// Wilson interval over the per-mission data-loss indicator: the
    /// probability that at least one member array enters DL during a
    /// mission (second disk failure, removed-disk crash, domain strike,
    /// or an LSE-failed rebuild).
    pub p_data_loss: ConfidenceInterval,
    /// NOMDL: expected data-loss events per mission, normalized by the
    /// fleet's usable capacity ([`FleetSpec::usable_capacity`], in disk
    /// units).
    pub nomdl_per_tb: f64,
    /// Mean mission time of the first fleet-wide DL entry, hours, over
    /// the missions that lost data (`None` when none did).
    pub mean_time_to_first_loss_hours: Option<f64>,
    /// Missions in which at least one array entered DL.
    pub loss_missions: u64,
    /// Time-share distribution of simultaneously degraded arrays: entry
    /// `k` is the fraction of simulated time with exactly `k` arrays not
    /// fully operational (last entry: `>= 32`). Sums to 1.
    pub degraded_time_share: [f64; DEGRADED_BINS],
    /// Peak simultaneously-degraded count across all missions.
    pub max_degraded: u32,
    /// Student-t interval over per-mission per-array availability **with
    /// DR credit**: downtime served degraded from the DR site does not
    /// count against it. Matches [`Self::availability`] (to accumulation
    /// rounding) without a DR site, and is exactly 1 in the ideal-DR
    /// limit, where every down hour is covered.
    pub credited_availability: ConfidenceInterval,
    /// Overall per-array availability with DR credit (total array-uptime
    /// plus DR-served time, over total array-time).
    pub overall_credited_array_availability: f64,
    /// Fleet availability with DR credit: fraction of time no array was
    /// down-and-uncovered. Equals [`Self::fleet_availability`] without a
    /// DR site.
    pub credited_fleet_availability: f64,
    /// Time-share distribution of occupied DR slots: entry `k` is the
    /// fraction of simulated time with exactly `k` slots busy (last
    /// entry: `>= 32`). All-zero without a DR site, otherwise sums to 1.
    pub dr_occupancy_share: [f64; DEGRADED_BINS],
    /// Total array-hours spent waiting in the DR admission queue, across
    /// all missions.
    pub dr_queue_wait_hours: f64,
    /// Total DR admissions across all missions.
    pub failovers: u64,
    /// Total completed switch-backs across all missions.
    pub failbacks: u64,
    /// Total DR queue joins across all missions.
    pub dr_queue_waits: u64,
    /// Total Erlang-loss rejections across all missions.
    pub dr_rejections: u64,
    /// Number of missions.
    pub iterations: u64,
    /// Mission time per iteration, hours.
    pub horizon_hours: f64,
    /// Member arrays per mission.
    pub arrays: u32,
    /// Engine telemetry counters, merged in block order (all-zero unless
    /// [`McConfig::telemetry`] is enabled).
    pub counters: CounterSnapshot,
}

impl FleetEstimate {
    /// Per-array unavailability of the overall estimator.
    pub fn array_unavailability(&self) -> f64 {
        1.0 - self.overall_array_availability
    }

    /// Expected simultaneously-degraded arrays (mean of the time-share
    /// distribution; the overflow bin counts as its lower edge, a
    /// negligible underestimate in any realistic regime).
    pub fn mean_degraded(&self) -> f64 {
        self.degraded_time_share
            .iter()
            .enumerate()
            .map(|(k, share)| k as f64 * share)
            .sum()
    }

    /// Per-array unavailability with DR credit.
    pub fn credited_array_unavailability(&self) -> f64 {
        1.0 - self.overall_credited_array_availability
    }

    /// Expected occupied DR slots (mean of the occupancy distribution;
    /// same overflow-bin caveat as [`Self::mean_degraded`]).
    pub fn mean_dr_occupancy(&self) -> f64 {
        self.dr_occupancy_share
            .iter()
            .enumerate()
            .map(|(k, share)| k as f64 * share)
            .sum()
    }

    /// Mean time an array that joined the DR queue spent waiting, hours
    /// (0 when nothing ever queued).
    pub fn mean_dr_queue_wait_hours(&self) -> f64 {
        if self.dr_queue_waits == 0 {
            0.0
        } else {
            self.dr_queue_wait_hours / self.dr_queue_waits as f64
        }
    }
}

/// The fleet-scale Monte-Carlo engine (see the module docs).
#[derive(Debug)]
pub struct FleetMc {
    spec: FleetSpec,
    params: ModelParams,
    failures: FailureModel,
    timing: WrongReplacementTiming,
    coupling: FleetCoupling,
}

impl FleetMc {
    /// Creates the engine with exponential failures at the params' rate.
    ///
    /// # Errors
    /// Propagates parameter validation errors; the params' geometry must
    /// be the fleet's geometry.
    pub fn new(spec: FleetSpec, params: ModelParams) -> Result<Self> {
        let failures = FailureModel::exponential(params.disk_failure_rate)?;
        FleetMc::with_failure_model(spec, params, failures)
    }

    /// Creates the engine with an explicit failure distribution (e.g. a
    /// Weibull field fit); the params' `disk_failure_rate` is ignored for
    /// sampling.
    ///
    /// # Errors
    /// Propagates parameter validation errors; the params' geometry must
    /// be the fleet's geometry.
    pub fn with_failure_model(
        spec: FleetSpec,
        params: ModelParams,
        failures: FailureModel,
    ) -> Result<Self> {
        params.validate()?;
        if params.geometry != spec.geometry() {
            return Err(CoreError::InvalidParameter(format!(
                "fleet geometry {} does not match model geometry {}",
                spec.geometry().label(),
                params.geometry.label()
            )));
        }
        Ok(FleetMc {
            spec,
            params,
            failures,
            timing: WrongReplacementTiming::default(),
            coupling: FleetCoupling::default(),
        })
    }

    /// Selects the wrong-replacement timing reading.
    pub fn with_timing(mut self, timing: WrongReplacementTiming) -> Self {
        self.timing = timing;
        self
    }

    /// Enables correlated-failure couplings (operator dependence and/or
    /// domain knockouts). The repair-crew pool lives on the
    /// [`FleetSpec`] ([`FleetSpec::with_repairmen`]).
    ///
    /// # Errors
    /// Returns [`CoreError::InvalidParameter`] for a domain shelf of zero
    /// arrays, wider than the fleet, or a non-positive knockout rate.
    pub fn with_coupling(mut self, coupling: FleetCoupling) -> Result<Self> {
        if let Some(d) = coupling.domains {
            if d.domain_arrays == 0 {
                return Err(CoreError::InvalidParameter(
                    "failure domain needs at least one array per shelf".into(),
                ));
            }
            if d.domain_arrays > self.spec.arrays() {
                return Err(CoreError::InvalidParameter(format!(
                    "failure domain of {} arrays exceeds the fleet of {}",
                    d.domain_arrays,
                    self.spec.arrays()
                )));
            }
            if !(d.rate.is_finite() && d.rate > 0.0) {
                return Err(CoreError::InvalidParameter(format!(
                    "domain failure rate must be positive and finite, got {}",
                    d.rate
                )));
            }
        }
        self.coupling = coupling;
        Ok(self)
    }

    /// The correlated-failure configuration.
    pub fn coupling(&self) -> FleetCoupling {
        self.coupling
    }

    /// The fleet specification.
    pub fn spec(&self) -> FleetSpec {
        self.spec
    }

    /// The per-array model parameters.
    pub fn params(&self) -> &ModelParams {
        &self.params
    }

    /// Runs the full fleet Monte-Carlo estimation.
    ///
    /// Iterations are scheduled in the same fixed blocks as the
    /// single-array models, and per-block partials (including the degraded
    /// histogram) are merged in block order, so the
    /// [`McConfig::threads`] determinism contract holds: `threads = 1` and
    /// `threads = N` produce byte-identical estimates.
    ///
    /// # Errors
    /// Propagates configuration errors. Rare-event schemes are rejected:
    /// fleet missions aggregate many arrays, so outages are *common* at
    /// fleet scale and [`McVariance::Naive`] is the meaningful sampler.
    pub fn run(&self, config: &McConfig) -> Result<FleetEstimate> {
        self.run_with_cancel(config, None)
    }

    /// [`run`](Self::run) plus an optional cooperative
    /// [`CancelToken`](availsim_sim::parallel::CancelToken): a tripped
    /// deadline or explicit cancel stops the block scheduler and returns
    /// [`CoreError::DeadlineExpired`](crate::CoreError::DeadlineExpired)
    /// instead of an estimate (partial fleet aggregates would be
    /// timing-dependent). Uncancelled runs are bit-identical to
    /// [`run`](Self::run).
    ///
    /// # Errors
    /// As [`run`](Self::run), plus `DeadlineExpired` on cancellation.
    pub fn run_with_cancel(
        &self,
        config: &McConfig,
        cancel: Option<&availsim_sim::parallel::CancelToken>,
    ) -> Result<FleetEstimate> {
        config.validate()?;
        if config.variance != McVariance::Naive {
            return Err(CoreError::InvalidParameter(format!(
                "fleet simulation supports only naive sampling \
                 (fleet-level outages are not rare events), got {}",
                config.variance
            )));
        }
        let iterations = config.iterations;
        let block_size = BLOCK_ITERATIONS.max(iterations.div_ceil(MAX_BLOCKS));
        let blocks = iterations.div_ceil(block_size);
        let threads = availsim_sim::parallel::resolve_workers(config.threads);
        let arrays = f64::from(self.spec.arrays());
        let horizon = config.horizon_hours;

        #[derive(Clone, Copy)]
        struct Partial {
            stats: RunningStats,
            credited_stats: RunningStats,
            du_dt: f64,
            dl_dt: f64,
            any_down: f64,
            uncovered: f64,
            uncovered_any: f64,
            dr_queue_wait: f64,
            du_events: u64,
            dl_events: u64,
            loss_missions: u64,
            first_loss_sum: f64,
            failovers: u64,
            failbacks: u64,
            dr_queue_waits: u64,
            dr_rejections: u64,
            max_degraded: u32,
            hist: [f64; DEGRADED_BINS],
            dr_hist: [f64; DEGRADED_BINS],
            counters: CounterSnapshot,
        }

        let partials = ordered_parallel_map_cancellable(
            blocks,
            threads,
            || SimWorkspace::with_telemetry(config.telemetry),
            |ws, block| {
                let lo = block * block_size;
                let hi = (lo + block_size).min(iterations);
                let mut p = Partial {
                    stats: RunningStats::new(),
                    credited_stats: RunningStats::new(),
                    du_dt: 0.0,
                    dl_dt: 0.0,
                    any_down: 0.0,
                    uncovered: 0.0,
                    uncovered_any: 0.0,
                    dr_queue_wait: 0.0,
                    du_events: 0,
                    dl_events: 0,
                    loss_missions: 0,
                    first_loss_sum: 0.0,
                    failovers: 0,
                    failbacks: 0,
                    dr_queue_waits: 0,
                    dr_rejections: 0,
                    max_degraded: 0,
                    hist: [0.0; DEGRADED_BINS],
                    dr_hist: [0.0; DEGRADED_BINS],
                    counters: CounterSnapshot::default(),
                };
                for i in lo..hi {
                    let mut rng = SimRng::substream(config.seed, i);
                    let out = self.simulate_once_with(horizon, &mut rng, ws);
                    p.stats
                        .push(1.0 - out.array_downtime_hours() / (arrays * horizon));
                    // Uncovered downtime is accrued directly, so the
                    // ideal-DR limit (everything covered) pushes an
                    // exact 1.0 here every mission.
                    p.credited_stats
                        .push(1.0 - out.credited_array_downtime_hours() / (arrays * horizon));
                    p.du_dt += out.du_downtime_hours;
                    p.dl_dt += out.dl_downtime_hours;
                    p.any_down += out.any_down_hours;
                    p.uncovered += out.uncovered_down_hours;
                    p.uncovered_any += out.uncovered_any_down_hours;
                    p.dr_queue_wait += out.dr_queue_wait_hours;
                    p.du_events += out.du_events;
                    p.dl_events += out.dl_events;
                    if out.first_loss_hours.is_finite() {
                        p.loss_missions += 1;
                        p.first_loss_sum += out.first_loss_hours;
                    }
                    p.failovers += out.failovers;
                    p.failbacks += out.failbacks;
                    p.dr_queue_waits += out.dr_queue_waits;
                    p.dr_rejections += out.dr_rejections;
                    p.max_degraded = p.max_degraded.max(out.max_degraded);
                    for (acc, h) in p.hist.iter_mut().zip(&out.degraded_hours) {
                        *acc += h;
                    }
                    for (acc, h) in p.dr_hist.iter_mut().zip(&out.dr_occupancy_hours) {
                        *acc += h;
                    }
                }
                p.counters = ws.drain_counters();
                if config.telemetry {
                    p.counters.add(Counter::Missions, hi - lo);
                }
                p
            },
            |_| false,
            cancel,
        );

        if (partials.len() as u64) < blocks {
            // Claims are sequential, so the claimed set is exactly blocks
            // 0..len; the partial aggregate is discarded (see the doc).
            let completed = partials
                .iter()
                .map(|(b, _)| (b * block_size + block_size).min(iterations) - b * block_size)
                .sum();
            return Err(CoreError::DeadlineExpired {
                completed,
                requested: iterations,
            });
        }

        let mut stats = RunningStats::new();
        let mut credited_stats = RunningStats::new();
        let (mut du_dt, mut dl_dt, mut any_down) = (0.0, 0.0, 0.0);
        let (mut uncovered, mut uncovered_any, mut dr_queue_wait) = (0.0, 0.0, 0.0);
        let (mut du_ev, mut dl_ev) = (0u64, 0u64);
        let (mut loss_missions, mut first_loss_sum) = (0u64, 0.0f64);
        let (mut failovers, mut failbacks) = (0u64, 0u64);
        let (mut dr_queue_waits, mut dr_rejections) = (0u64, 0u64);
        let mut max_degraded = 0u32;
        let mut hist = [0.0; DEGRADED_BINS];
        let mut dr_hist = [0.0; DEGRADED_BINS];
        let mut counters = CounterSnapshot::default();
        for (_, p) in partials {
            stats.merge(&p.stats);
            credited_stats.merge(&p.credited_stats);
            du_dt += p.du_dt;
            dl_dt += p.dl_dt;
            any_down += p.any_down;
            uncovered += p.uncovered;
            uncovered_any += p.uncovered_any;
            dr_queue_wait += p.dr_queue_wait;
            du_ev += p.du_events;
            dl_ev += p.dl_events;
            loss_missions += p.loss_missions;
            first_loss_sum += p.first_loss_sum;
            failovers += p.failovers;
            failbacks += p.failbacks;
            dr_queue_waits += p.dr_queue_waits;
            dr_rejections += p.dr_rejections;
            max_degraded = max_degraded.max(p.max_degraded);
            for (acc, h) in hist.iter_mut().zip(&p.hist) {
                *acc += h;
            }
            for (acc, h) in dr_hist.iter_mut().zip(&p.dr_hist) {
                *acc += h;
            }
            counters.merge(&p.counters);
        }

        let availability = t_interval(&stats, config.confidence).map_err(CoreError::from)?;
        let credited_availability =
            t_interval(&credited_stats, config.confidence).map_err(CoreError::from)?;
        let p_data_loss = wilson_interval(loss_missions, iterations, config.confidence)
            .map_err(CoreError::from)?;
        let total_time = horizon * iterations as f64;
        let downtime = du_dt + dl_dt;
        let array_u = downtime / (arrays * total_time);
        let credited_u = uncovered / (arrays * total_time);
        let any_down_u = any_down / total_time;
        let uncovered_any_u = uncovered_any / total_time;
        let mut degraded_time_share = hist;
        for share in &mut degraded_time_share {
            *share /= total_time;
        }
        let mut dr_occupancy_share = dr_hist;
        for share in &mut dr_occupancy_share {
            *share /= total_time;
        }
        Ok(FleetEstimate {
            availability,
            overall_array_availability: 1.0 - array_u,
            fleet_availability: 1.0 - any_down_u,
            mean_array_downtime_hours: downtime / (arrays * iterations as f64),
            annual_array_downtime_hours: array_u * HOURS_PER_YEAR,
            annual_any_down_hours: any_down_u * HOURS_PER_YEAR,
            du_downtime_share: if downtime > 0.0 {
                du_dt / downtime
            } else {
                0.0
            },
            du_events: du_ev,
            dl_events: dl_ev,
            p_data_loss,
            nomdl_per_tb: dl_ev as f64 / iterations as f64 / self.spec.usable_capacity() as f64,
            mean_time_to_first_loss_hours: if loss_missions > 0 {
                Some(first_loss_sum / loss_missions as f64)
            } else {
                None
            },
            loss_missions,
            degraded_time_share,
            max_degraded,
            credited_availability,
            overall_credited_array_availability: 1.0 - credited_u,
            credited_fleet_availability: 1.0 - uncovered_any_u,
            dr_occupancy_share,
            dr_queue_wait_hours: dr_queue_wait,
            failovers,
            failbacks,
            dr_queue_waits,
            dr_rejections,
            iterations,
            horizon_hours: horizon,
            arrays: self.spec.arrays(),
            counters,
        })
    }

    /// Simulates one fleet mission on a reusable [`SimWorkspace`] —
    /// allocation-free once the workspace buffers have grown. The mission
    /// fully resets the fleet scratch it uses, so workspaces can be shared
    /// across missions and models.
    ///
    /// The per-array transition semantics deliberately mirror
    /// `ConventionalMc::run_event_queue` (Fig. 2: per-disk clocks,
    /// gen/epoch staleness guards, service races with loser cancellation,
    /// full renewal on every return to OP) with array-indexed state — a
    /// semantic change there must be mirrored here, and
    /// `crates/core/tests/fleet.rs` holds the two engines to each other
    /// (A = 1 vs the Fig. 2 chain, per-array CI overlap at A = 16).
    pub fn simulate_once_with(
        &self,
        horizon: f64,
        rng: &mut SimRng,
        ws: &mut SimWorkspace,
    ) -> FleetOutcome {
        let a = self.spec.arrays() as usize;
        let n = self.spec.geometry().total_disks() as usize;
        let p = &self.params;
        let hep = p.hep.value();
        let wrong_base = match self.timing {
            WrongReplacementTiming::ChangeAction => p.disk_change_rate,
            WrongReplacementTiming::RepairCompletion => p.disk_repair_rate,
        };
        // Reciprocal service rates: the armed draws multiply by a cached
        // 1/rate (∞ = disabled, drawing nothing, like `sample_exp(0)`).
        let repair_ok_inv = ((1.0 - hep) * p.disk_repair_rate).recip();
        let wrong_inv = (hep * wrong_base).recip();
        let recover_inv = ((1.0 - hep) * p.human_recovery_rate).recip();
        let crash_inv = p.removed_crash_rate.recip();
        let restore_inv = p.ddf_recovery_rate.recip();
        // Shared-resource couplings. An unlimited crew pool is the `busy`
        // counter never reaching the cap: the serve-immediately branch is
        // the exact uncoupled code path (no extra draws, FIFO untouched).
        let crew_cap = self.spec.repairmen().unwrap_or(u32::MAX);
        let mut busy = 0u32;
        let level = self.coupling.dependence;
        let domain_inv = match self.coupling.domains {
            Some(d) => d.rate.recip(),
            None => f64::INFINITY,
        };
        // Shared DR site (Fig. 3 fail-over). The ideal limit (`capacity:
        // None`) admits everything and fails back instantly without a
        // switch-back race — no draws, so its stream is bit-identical to
        // the no-DR engine; only the downtime credit differs.
        let dr = self.spec.failover();
        let dr_on = dr.is_some();
        let dr_ideal = matches!(dr, Some(f) if f.capacity.is_none());
        let dr_cap = match dr {
            Some(f) => f.capacity.unwrap_or(u32::MAX),
            None => 0,
        };
        let dr_policy = dr.map(|f| f.policy).unwrap_or_default();
        let (fb_ok_inv, fb_slip_inv) = match dr {
            Some(f) if !dr_ideal => failback_race_inv(hep, f.failback_rate),
            _ => (f64::INFINITY, f64::INFINITY),
        };
        let mut dr_busy = 0u32; // slots held (serving or failing back)
        let mut dr_queued = 0u32; // arrays in the DR FIFO
        let mut covered = 0u32; // down arrays served from DR
        let (mut failovers, mut failbacks) = (0u64, 0u64);
        let (mut dr_queue_waits, mut dr_rejections) = (0u64, 0u64);

        ws.fleet.reset(a, n);
        let tele = &mut ws.telemetry;
        let FleetScratch {
            queue,
            arrays,
            slot_gen,
            svc,
            fifo,
            dr_fifo,
            dr_token,
        } = &mut ws.fleet;
        // Draw and coupling tallies, accumulated locally and flushed once
        // per mission (queue traffic is counted inside the queue itself).
        let (mut ttf_draws, mut exp_draws) = (0u64, 0u64);
        let (mut crew_waits, mut domain_strikes) = (0u64, 0u64);
        // Rebuild-LSE exposure: a completed rebuild loses data with this
        // probability. Zero keeps the mission draw-free on that branch
        // (the Bernoulli uniform is only drawn when the rate is live).
        let p_lse = p.rebuild_lse_probability();
        let (mut uniform_draws, mut lse_hits) = (0u64, 0u64);

        let mut out = FleetOutcome {
            du_downtime_hours: 0.0,
            dl_downtime_hours: 0.0,
            any_down_hours: 0.0,
            du_events: 0,
            dl_events: 0,
            first_loss_hours: f64::INFINITY,
            max_degraded: 0,
            degraded_hours: [0.0; DEGRADED_BINS],
            uncovered_down_hours: 0.0,
            uncovered_any_down_hours: 0.0,
            dr_occupancy_hours: [0.0; DEGRADED_BINS],
            dr_queue_wait_hours: 0.0,
            failovers: 0,
            failbacks: 0,
            dr_queue_waits: 0,
            dr_rejections: 0,
        };
        // Fleet-wide occupancy counters, updated on every transition; the
        // interval between consecutive events is accrued against them.
        let mut not_op = 0u32; // arrays degraded or down
        let mut in_du = 0u32; // arrays in DU
        let mut in_dl = 0u32; // arrays in DL
        let mut t_prev = 0.0f64;

        // Seed every disk clock of every array. Draws happen for all
        // clocks (the stream is the contract); only sub-horizon events
        // enter the queue — with realistic λ·horizon that is a small
        // fraction, which keeps the heap shallow.
        for array in 0..a {
            for slot in 0..n {
                let t = self.failures.sample_ttf(rng);
                ttf_draws += 1;
                if t <= horizon {
                    let _ = queue.schedule_at(
                        t,
                        FleetEv::Fail {
                            array: array as u32,
                            slot: slot as u8,
                            gen: 0,
                        },
                    );
                } else {
                    queue.note_expired();
                }
            }
        }
        // Seed the shelf clocks after the disk clocks (drawing nothing
        // when domains are off — the independent limit's stream contract).
        if let Some(d) = self.coupling.domains {
            let shelves = a.div_ceil(d.domain_arrays as usize);
            for domain in 0..shelves {
                if let Some(t) = rng.sample_exp_inv(domain_inv) {
                    exp_draws += 1;
                    if t <= horizon {
                        let _ = queue.schedule_at(
                            t,
                            FleetEv::Domain {
                                domain: domain as u32,
                            },
                        );
                    } else {
                        queue.note_expired();
                    }
                }
            }
        }

        macro_rules! accrue {
            ($t:expr) => {{
                let dt = $t - t_prev;
                if dt > 0.0 {
                    let bin = (not_op as usize).min(DEGRADED_BINS - 1);
                    out.degraded_hours[bin] += dt;
                    if in_du > 0 {
                        out.du_downtime_hours += f64::from(in_du) * dt;
                    }
                    if in_dl > 0 {
                        out.dl_downtime_hours += f64::from(in_dl) * dt;
                    }
                    if in_du + in_dl > 0 {
                        out.any_down_hours += dt;
                    }
                    if in_du + in_dl > covered {
                        out.uncovered_down_hours += f64::from(in_du + in_dl - covered) * dt;
                        out.uncovered_any_down_hours += dt;
                    }
                    if dr_on {
                        let bin = (dr_busy as usize).min(DEGRADED_BINS - 1);
                        out.dr_occupancy_hours[bin] += dt;
                        if dr_queued > 0 {
                            out.dr_queue_wait_hours += f64::from(dr_queued) * dt;
                        }
                    }
                    t_prev = $t;
                }
            }};
        }
        macro_rules! arm {
            ($array:expr, $epoch:expr, $lane:expr, $kind:expr, $inv_rate:expr) => {
                svc[$array as usize][$lane] = match rng.sample_exp_inv($inv_rate) {
                    Some(dt) => {
                        exp_draws += 1;
                        if queue.now() + dt <= horizon {
                            queue
                                .schedule(
                                    dt,
                                    FleetEv::Service {
                                        array: $array,
                                        kind: $kind,
                                        epoch: $epoch,
                                    },
                                )
                                .ok()
                        } else {
                            queue.note_expired();
                            None
                        }
                    }
                    None => None,
                };
            };
        }
        macro_rules! cancel_svc {
            ($array:expr, $lane:expr) => {
                if let Some(h) = svc[$array as usize][$lane].take() {
                    queue.cancel(h);
                }
            };
        }
        macro_rules! reseed_slot {
            ($array:expr, $slot:expr) => {{
                let idx = $array as usize * n + $slot as usize;
                slot_gen[idx] += 1;
                let tt = self.failures.sample_ttf(rng);
                ttf_draws += 1;
                if queue.now() + tt <= horizon {
                    let _ = queue.schedule(
                        tt,
                        FleetEv::Fail {
                            array: $array,
                            slot: $slot,
                            gen: slot_gen[idx],
                        },
                    );
                } else {
                    queue.note_expired();
                }
            }};
        }
        // Per-incident service rates under THERP operator dependence:
        // `$others` concurrently degraded arrays escalate the hep by as
        // many conditional steps. Zero dependence (or no concurrency)
        // short-circuits to the precomputed reciprocals — the formulas
        // below are identical, so the shortcut is bit-exact.
        macro_rules! svc_rates {
            ($others:expr) => {{
                let others: u32 = $others;
                if level == DependenceLevel::Zero || others == 0 {
                    (repair_ok_inv, wrong_inv, recover_inv)
                } else {
                    let h = escalated(p.hep, level, others).value();
                    (
                        ((1.0 - h) * p.disk_repair_rate).recip(),
                        (h * wrong_base).recip(),
                        ((1.0 - h) * p.human_recovery_rate).recip(),
                    )
                }
            }};
        }
        // Arms the crew-bound service race for `$array`'s current mode —
        // used both when a crew is free at degradation time and when a
        // released crew reaches a waiting array.
        macro_rules! start_service {
            ($array:expr, $epoch:expr, $mode:expr) => {{
                match $mode {
                    Mode::Exp => {
                        let (ri, wi, _) = svc_rates!(not_op - 1);
                        arm!($array, $epoch, 0, Service::RepairOk, ri);
                        arm!($array, $epoch, 1, Service::WrongPull, wi);
                    }
                    Mode::Dl => {
                        arm!($array, $epoch, 0, Service::Restore, restore_inv);
                    }
                    // Reachable only through the DR fail-back slip, which
                    // can leave a DU array waiting for a crew.
                    Mode::Du => {
                        let (_, _, rec) = svc_rates!(not_op - 1);
                        arm!($array, $epoch, 0, Service::RecoveryOk, rec);
                        arm!($array, $epoch, 1, Service::RemovedCrash, crash_inv);
                    }
                    // A crew is never dispatched to a healthy array.
                    Mode::Op => {}
                }
            }};
        }
        // Returns one crew to the pool: hand it to the first waiting
        // array (FIFO), or free it. In the unlimited-pool limit the queue
        // is always empty and this is a bare counter decrement — no
        // draws, no stream perturbation.
        macro_rules! release_crew {
            () => {{
                let mut handed_over = false;
                while let Some(next) = fifo.pop_front() {
                    let ns = &mut arrays[next as usize];
                    if !ns.waiting {
                        continue; // defensive: episodes enqueue once
                    }
                    ns.waiting = false;
                    let (mode, epoch) = (ns.mode, ns.epoch);
                    start_service!(next, epoch, mode);
                    handed_over = true;
                    break;
                }
                if !handed_over {
                    busy -= 1;
                }
            }};
        }
        // An array leaving OP asks the DR site for a slot: admitted if one
        // is free, queued FIFO or rejected (loss policy) otherwise. An
        // array re-struck mid fail-back already holds a slot — the
        // switch-back race is simply voided. Draw-free on every path.
        macro_rules! dr_request {
            ($array:expr, $st:expr) => {
                if dr_on {
                    match $st.dr {
                        DrState::Serving => {
                            cancel_svc!($array, 0);
                            cancel_svc!($array, 1);
                        }
                        DrState::None => {
                            if dr_busy < dr_cap {
                                dr_busy += 1;
                                $st.dr = DrState::Serving;
                                failovers += 1;
                            } else if dr_policy == FailoverPolicy::Queue {
                                $st.dr = DrState::Queued;
                                dr_token[$array as usize] += 1;
                                dr_fifo.push_back(($array, dr_token[$array as usize]));
                                dr_queued += 1;
                                dr_queue_waits += 1;
                            } else {
                                dr_rejections += 1;
                            }
                        }
                        // Queued arrays are non-OP, and every request
                        // site fires on an array leaving OP.
                        DrState::Queued => {}
                    }
                }
            };
        }
        // Frees one DR slot: hand it to the first still-queued array
        // (token-guarded — arrays leave the queue early by repairing to
        // OP), or release it.
        macro_rules! dr_release {
            () => {{
                let mut handed_over = false;
                while let Some((next, tok)) = dr_fifo.pop_front() {
                    let ni = next as usize;
                    if dr_token[ni] != tok {
                        continue; // left the queue on an earlier return to OP
                    }
                    let ns = &mut arrays[ni];
                    ns.dr = DrState::Serving;
                    dr_queued -= 1;
                    failovers += 1;
                    if matches!(ns.mode, Mode::Du | Mode::Dl) {
                        covered += 1;
                    }
                    handed_over = true;
                    break;
                }
                if !handed_over {
                    dr_busy -= 1;
                }
            }};
        }
        // An array returning to OP settles with the DR site: a serving
        // array starts the Fig. 3 switch-back race (or, in the ideal
        // limit, fails back instantly and draw-free); a queued array
        // abandons its place.
        macro_rules! dr_return {
            ($array:expr, $epoch:expr) => {
                if dr_on {
                    let ai = $array as usize;
                    match arrays[ai].dr {
                        DrState::Serving => {
                            if dr_ideal {
                                arrays[ai].dr = DrState::None;
                                failbacks += 1;
                                dr_busy -= 1;
                            } else {
                                arm!($array, $epoch, 0, Service::FailbackOk, fb_ok_inv);
                                arm!($array, $epoch, 1, Service::FailbackSlip, fb_slip_inv);
                            }
                        }
                        DrState::Queued => {
                            arrays[ai].dr = DrState::None;
                            dr_token[ai] += 1;
                            dr_queued -= 1;
                        }
                        DrState::None => {}
                    }
                }
            };
        }

        while let Some((t, ev)) = queue.pop_due(horizon) {
            match ev {
                FleetEv::Fail { array, slot, gen } => {
                    let idx = array as usize * n + slot as usize;
                    if gen != slot_gen[idx] {
                        continue; // stale clock
                    }
                    slot_gen[idx] += 1; // no longer ticking
                    let st = &mut arrays[array as usize];
                    match st.mode {
                        Mode::Op => {
                            accrue!(t);
                            st.mode = Mode::Exp;
                            st.epoch += 1;
                            st.failed_slot = slot;
                            not_op += 1;
                            out.max_degraded = out.max_degraded.max(not_op);
                            dr_request!(array, st);
                            let epoch = st.epoch;
                            if busy < crew_cap {
                                busy += 1;
                                start_service!(array, epoch, Mode::Exp);
                            } else {
                                st.waiting = true;
                                fifo.push_back(array);
                                crew_waits += 1;
                            }
                        }
                        Mode::Exp => {
                            // Second failure: data loss.
                            accrue!(t);
                            st.mode = Mode::Dl;
                            st.epoch += 1;
                            out.dl_events += 1;
                            out.first_loss_hours = out.first_loss_hours.min(t);
                            in_dl += 1;
                            if st.dr == DrState::Serving {
                                covered += 1;
                            }
                            // The pending service race is void.
                            cancel_svc!(array, 0);
                            cancel_svc!(array, 1);
                            if !st.waiting {
                                // In service: the crew switches to the
                                // restore. A waiting array keeps its FIFO
                                // place and restores once a crew arrives.
                                let epoch = st.epoch;
                                arm!(array, epoch, 0, Service::Restore, restore_inv);
                            }
                        }
                        // Quiesced while down; resampled on return to OP.
                        Mode::Du | Mode::Dl => {}
                    }
                }
                FleetEv::Service {
                    array,
                    kind,
                    epoch: ev_epoch,
                } => {
                    let st = &mut arrays[array as usize];
                    if ev_epoch != st.epoch {
                        continue; // stale service event
                    }
                    match (st.mode, kind) {
                        (Mode::Exp, Service::RepairOk) => {
                            accrue!(t);
                            st.epoch += 1;
                            svc[array as usize][0] = None;
                            cancel_svc!(array, 1);
                            // A completed rebuild read every surviving
                            // disk; with a scrubbing model attached it hit
                            // a latent sector error with probability
                            // `p_lse` and actually lost data. The uniform
                            // is drawn only when the rate is live, so the
                            // `p_lse = 0` stream is bit-identical.
                            let lse_hit = p_lse > 0.0 && {
                                uniform_draws += 1;
                                rng.next_f64() < p_lse
                            };
                            if lse_hit {
                                st.mode = Mode::Dl;
                                out.dl_events += 1;
                                out.first_loss_hours = out.first_loss_hours.min(t);
                                lse_hits += 1;
                                in_dl += 1;
                                if st.dr == DrState::Serving {
                                    covered += 1;
                                }
                                // RepairOk only fires on an in-service
                                // array, so the crew is on site and
                                // switches to the restore; `not_op` is
                                // unchanged (still degraded).
                                let epoch = st.epoch;
                                arm!(array, epoch, 0, Service::Restore, restore_inv);
                            } else {
                                st.mode = Mode::Op;
                                not_op -= 1;
                                let slot = st.failed_slot;
                                let epoch = st.epoch;
                                reseed_slot!(array, slot);
                                release_crew!();
                                dr_return!(array, epoch);
                            }
                        }
                        (Mode::Exp, Service::WrongPull) => {
                            accrue!(t);
                            st.mode = Mode::Du;
                            st.epoch += 1;
                            out.du_events += 1;
                            in_du += 1;
                            if st.dr == DrState::Serving {
                                covered += 1;
                            }
                            svc[array as usize][1] = None;
                            cancel_svc!(array, 0);
                            let epoch = st.epoch;
                            // The crew stays on the array; its recovery
                            // attempt runs at the escalated-hep rate.
                            let (_, _, rec) = svc_rates!(not_op - 1);
                            arm!(array, epoch, 0, Service::RecoveryOk, rec);
                            arm!(array, epoch, 1, Service::RemovedCrash, crash_inv);
                        }
                        (Mode::Du, Service::RecoveryOk) => {
                            accrue!(t);
                            st.mode = Mode::Op;
                            st.epoch += 1;
                            in_du -= 1;
                            not_op -= 1;
                            if st.dr == DrState::Serving {
                                covered -= 1;
                            }
                            svc[array as usize][0] = None;
                            cancel_svc!(array, 1);
                            let epoch = st.epoch;
                            for slot in 0..n {
                                reseed_slot!(array, slot as u8);
                            }
                            release_crew!();
                            dr_return!(array, epoch);
                        }
                        (Mode::Du, Service::RemovedCrash) => {
                            accrue!(t);
                            st.mode = Mode::Dl;
                            st.epoch += 1;
                            out.dl_events += 1;
                            out.first_loss_hours = out.first_loss_hours.min(t);
                            in_du -= 1;
                            in_dl += 1;
                            svc[array as usize][1] = None;
                            cancel_svc!(array, 0);
                            let epoch = st.epoch;
                            arm!(array, epoch, 0, Service::Restore, restore_inv);
                        }
                        (Mode::Dl, Service::Restore) => {
                            accrue!(t);
                            st.mode = Mode::Op;
                            st.epoch += 1;
                            in_dl -= 1;
                            not_op -= 1;
                            if st.dr == DrState::Serving {
                                covered -= 1;
                            }
                            svc[array as usize][0] = None;
                            let epoch = st.epoch;
                            for slot in 0..n {
                                reseed_slot!(array, slot as u8);
                            }
                            release_crew!();
                            dr_return!(array, epoch);
                        }
                        (Mode::Op, Service::FailbackOk) => {
                            // Clean switch-back: the array drops its DR
                            // slot, which goes to the next queued array.
                            accrue!(t);
                            st.epoch += 1;
                            st.dr = DrState::None;
                            svc[array as usize][0] = None;
                            cancel_svc!(array, 1);
                            failbacks += 1;
                            dr_release!();
                        }
                        (Mode::Op, Service::FailbackSlip) => {
                            // Botched switch-back (Fig. 3 DR-side human
                            // error): the primary goes DU; the array keeps
                            // its slot and keeps serving from DR while a
                            // crew recovers the primary.
                            accrue!(t);
                            st.mode = Mode::Du;
                            st.epoch += 1;
                            out.du_events += 1;
                            in_du += 1;
                            not_op += 1;
                            out.max_degraded = out.max_degraded.max(not_op);
                            covered += 1; // still Serving by construction
                            svc[array as usize][1] = None;
                            cancel_svc!(array, 0);
                            let epoch = st.epoch;
                            if busy < crew_cap {
                                busy += 1;
                                start_service!(array, epoch, Mode::Du);
                            } else {
                                st.waiting = true;
                                fifo.push_back(array);
                                crew_waits += 1;
                            }
                        }
                        // Stale/impossible pair.
                        _ => {}
                    }
                }
                FleetEv::Domain { domain } => {
                    let d = self
                        .coupling
                        .domains
                        .expect("domain events only exist when domains are on");
                    accrue!(t);
                    domain_strikes += 1;
                    let lo = domain as usize * d.domain_arrays as usize;
                    let hi = (lo + d.domain_arrays as usize).min(a);
                    for (hit, st) in arrays.iter_mut().enumerate().take(hi).skip(lo) {
                        let array = hit as u32;
                        match st.mode {
                            // Already lost; the strike adds nothing.
                            Mode::Dl => {}
                            Mode::Op => {
                                st.mode = Mode::Dl;
                                st.epoch += 1;
                                not_op += 1;
                                out.max_degraded = out.max_degraded.max(not_op);
                                in_dl += 1;
                                out.dl_events += 1;
                                out.first_loss_hours = out.first_loss_hours.min(t);
                                dr_request!(array, st);
                                if st.dr == DrState::Serving {
                                    covered += 1;
                                }
                                let epoch = st.epoch;
                                if busy < crew_cap {
                                    busy += 1;
                                    start_service!(array, epoch, Mode::Dl);
                                } else {
                                    st.waiting = true;
                                    fifo.push_back(array);
                                    crew_waits += 1;
                                }
                            }
                            Mode::Exp => {
                                st.mode = Mode::Dl;
                                st.epoch += 1;
                                in_dl += 1;
                                out.dl_events += 1;
                                out.first_loss_hours = out.first_loss_hours.min(t);
                                if st.dr == DrState::Serving {
                                    covered += 1;
                                }
                                cancel_svc!(array, 0);
                                cancel_svc!(array, 1);
                                if !st.waiting {
                                    // The crew already on site switches
                                    // to the restore.
                                    let epoch = st.epoch;
                                    arm!(array, epoch, 0, Service::Restore, restore_inv);
                                }
                            }
                            Mode::Du => {
                                st.mode = Mode::Dl;
                                st.epoch += 1;
                                in_du -= 1;
                                in_dl += 1;
                                out.dl_events += 1;
                                out.first_loss_hours = out.first_loss_hours.min(t);
                                cancel_svc!(array, 0);
                                cancel_svc!(array, 1);
                                if !st.waiting {
                                    // In service (a fail-back slip can
                                    // leave DU arrays waiting): the crew
                                    // on site switches to the restore.
                                    let epoch = st.epoch;
                                    arm!(array, epoch, 0, Service::Restore, restore_inv);
                                }
                            }
                        }
                    }
                    // Re-arm the shelf clock.
                    if let Some(dt) = rng.sample_exp_inv(domain_inv) {
                        exp_draws += 1;
                        if queue.now() + dt <= horizon {
                            let _ = queue.schedule(dt, FleetEv::Domain { domain });
                        } else {
                            queue.note_expired();
                        }
                    }
                }
            }
        }
        accrue!(horizon);
        let _ = t_prev; // final accrual's cursor write is intentionally dead
        out.failovers = failovers;
        out.failbacks = failbacks;
        out.dr_queue_waits = dr_queue_waits;
        out.dr_rejections = dr_rejections;
        if tele.enabled() {
            tele.add(Counter::RngLifetimeDraws, ttf_draws);
            tele.add(Counter::RngExpDraws, exp_draws);
            tele.add(Counter::RngUniformDraws, uniform_draws);
            tele.add(Counter::RebuildLseHits, lse_hits);
            tele.add(Counter::DataLossEvents, out.dl_events);
            tele.add(Counter::FleetCrewWaits, crew_waits);
            tele.add(Counter::FleetDomainStrikes, domain_strikes);
            tele.add(Counter::FleetFailovers, failovers);
            tele.add(Counter::FleetDrQueueWaits, dr_queue_waits);
            tele.add(Counter::FleetDrRejections, dr_rejections);
            tele.add(Counter::FleetFailbacks, failbacks);
        }
        out
    }
}
