//! # availsim-core
//!
//! Availability models for data storage systems under disk failures *and*
//! human errors — a full reproduction of Kishani, Eftekhari & Asadi,
//! "Evaluating Impact of Human Errors on the Availability of Data Storage
//! Systems" (DATE 2017).
//!
//! ## Models
//!
//! * [`markov::Raid5Conventional`] — the paper's Fig. 2 CTMC (conventional
//!   disk replacement; also RAID1 with `n = 2`), solved with
//!   cancellation-free GTH elimination.
//! * [`markov::Raid5FailOver`] — the paper's Fig. 3 twelve-state CTMC
//!   (automatic fail-over with hot spares).
//! * [`markov::GenericKofN`] — a `(failed, wrongly-removed)` chain
//!   generator that reduces exactly to Fig. 2 at `m = 1` and extends the
//!   paper to RAID6.
//! * [`mc::ConventionalMc`] / [`mc::FailOverMc`] — the Monte-Carlo
//!   reference models (per-disk Weibull clocks for the conventional policy).
//!
//! ## Analyses
//!
//! * [`analysis`] — downtime-underestimation factors (the paper's "up to
//!   263X") and the conventional-vs-fail-over comparison (Fig. 7).
//! * [`volume`] — equivalent-usable-capacity RAID comparison (Fig. 6).
//! * [`validate`] — MC-vs-Markov cross validation (Fig. 4).
//! * [`sensitivity`] — parameter elasticities of the unavailability.
//! * [`nines`] — availability ↔ nines ↔ downtime conversions.
//!
//! # Examples
//!
//! The headline effect — ignoring human error underestimates downtime by
//! orders of magnitude:
//!
//! ```
//! use availsim_core::analysis::underestimation;
//! use availsim_core::ModelParams;
//! use availsim_hra::Hep;
//!
//! # fn main() -> Result<(), availsim_core::CoreError> {
//! let params = ModelParams::raid5_3plus1(5e-7, Hep::new(0.01)?)?;
//! let u = underestimation(params)?;
//! assert!(u.factor() > 100.0); // the paper reports "up to 263X"
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
mod error;
pub mod markov;
pub mod mc;
pub mod nines;
mod params;
pub mod reliability;
pub mod report;
pub mod sensitivity;
pub mod transient;
pub mod validate;
pub mod volume;

pub use error::{CoreError, Result};
pub use params::ModelParams;
