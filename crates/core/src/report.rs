//! Plain-text reporting: aligned tables and `(x, y)` series used by the
//! benchmark harness to print the paper's figures as data.

use std::fmt::Write as _;

/// A simple column-aligned table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(ToString::to_string).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringified cells).
    pub fn push_row(&mut self, cells: &[String]) -> &mut Self {
        self.rows.push(cells.to_vec());
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with aligned columns, suitable for terminal output.
    pub fn render(&self) -> String {
        let cols = self
            .headers
            .len()
            .max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut widths = vec![0usize; cols];
        for (i, h) in self.headers.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            let _ = writeln!(out, "## {}", self.title);
        }
        let line = |cells: &[String], widths: &[usize]| {
            let mut s = String::new();
            for (i, c) in cells.iter().enumerate() {
                let _ = write!(s, "{:<width$}  ", c, width = widths[i]);
            }
            s.trim_end().to_string()
        };
        let _ = writeln!(out, "{}", line(&self.headers, &widths));
        let rule: usize = widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1);
        let _ = writeln!(out, "{}", "-".repeat(rule));
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }

    /// Renders as CSV (headers first).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let _ = writeln!(
            out,
            "{}",
            self.headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }
}

/// A named `(x, y)` series, the data behind one plotted curve.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Curve label, e.g. `"Markov, hep=0.01"`.
    pub label: String,
    /// The data points.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates an empty series.
    pub fn new(label: impl Into<String>) -> Self {
        Series {
            label: label.into(),
            points: Vec::new(),
        }
    }

    /// Appends one point.
    pub fn push(&mut self, x: f64, y: f64) -> &mut Self {
        self.points.push((x, y));
        self
    }

    /// Renders as `label: (x, y) ...` lines with scientific x values.
    pub fn render(&self) -> String {
        let mut out = format!("series: {}\n", self.label);
        for (x, y) in &self.points {
            let _ = writeln!(out, "  {x:>12.4e}  {y:>10.4}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("Demo", &["lambda", "nines"]);
        t.push_row(&["1e-6".into(), "8.40".into()]);
        t.push_row(&["5.5e-6".into(), "6.91".into()]);
        let s = t.render();
        assert!(s.contains("## Demo"));
        assert!(s.contains("lambda"));
        assert!(s.lines().count() >= 5);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn csv_escapes_commas() {
        let mut t = Table::new("", &["a", "b"]);
        t.push_row(&["x,y".into(), "plain".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.starts_with("a,b"));
    }

    #[test]
    fn series_renders_points() {
        let mut s = Series::new("MC hep=0.01");
        s.push(1e-6, 7.5).push(2e-6, 7.1);
        let r = s.render();
        assert!(r.contains("MC hep=0.01"));
        assert!(r.contains("7.5"));
    }
}
