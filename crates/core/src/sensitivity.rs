//! Finite-difference sensitivity analysis of the availability models.
//!
//! For each model parameter θ, reports the elasticity of the unavailability:
//! `(ΔU/U) / (Δθ/θ)` — how many percent U moves per percent change in θ.
//! Positive elasticity means increasing the parameter hurts availability.

use crate::error::Result;
use crate::markov::{Raid5Conventional, Raid5FailOver};
use crate::params::ModelParams;
use availsim_hra::Hep;

/// Elasticity of unavailability with respect to one parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct Sensitivity {
    /// Parameter name (paper notation).
    pub parameter: &'static str,
    /// Base value of the parameter.
    pub base_value: f64,
    /// Elasticity `(ΔU/U)/(Δθ/θ)` at the operating point.
    pub elasticity: f64,
}

/// Which model to differentiate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyModel {
    /// The Fig. 2 conventional-replacement chain.
    Conventional,
    /// The Fig. 3 automatic-fail-over chain.
    FailOver,
}

fn unavailability(model: PolicyModel, params: ModelParams) -> Result<f64> {
    Ok(match model {
        PolicyModel::Conventional => Raid5Conventional::new(params)?.solve()?.unavailability(),
        PolicyModel::FailOver => Raid5FailOver::new(params)?.solve()?.unavailability(),
    })
}

/// Computes elasticities for every continuous parameter of the model using
/// central differences with relative step `rel_step` (e.g. `1e-4`).
///
/// # Errors
/// Propagates model errors; `rel_step` must be in `(0, 0.5)`.
pub fn sensitivities(
    model: PolicyModel,
    params: ModelParams,
    rel_step: f64,
) -> Result<Vec<Sensitivity>> {
    if !(rel_step > 0.0 && rel_step < 0.5) {
        return Err(crate::error::CoreError::InvalidParameter(format!(
            "rel_step must be in (0, 0.5), got {rel_step}"
        )));
    }
    let u0 = unavailability(model, params)?;
    let mut out = Vec::new();

    let mut push = |name: &'static str,
                    base: f64,
                    apply: &dyn Fn(ModelParams, f64) -> Result<ModelParams>|
     -> Result<()> {
        let up = unavailability(model, apply(params, base * (1.0 + rel_step))?)?;
        let down = unavailability(model, apply(params, base * (1.0 - rel_step))?)?;
        let du = (up - down) / u0;
        let dtheta = 2.0 * rel_step;
        out.push(Sensitivity {
            parameter: name,
            base_value: base,
            elasticity: du / dtheta,
        });
        Ok(())
    };

    push("lambda", params.disk_failure_rate, &|mut p, v| {
        p.disk_failure_rate = v;
        Ok(p)
    })?;
    push("mu_DF", params.disk_repair_rate, &|mut p, v| {
        p.disk_repair_rate = v;
        Ok(p)
    })?;
    push("mu_DDF", params.ddf_recovery_rate, &|mut p, v| {
        p.ddf_recovery_rate = v;
        Ok(p)
    })?;
    push("mu_he", params.human_recovery_rate, &|mut p, v| {
        p.human_recovery_rate = v;
        Ok(p)
    })?;
    push("mu_ch", params.disk_change_rate, &|mut p, v| {
        p.disk_change_rate = v;
        Ok(p)
    })?;
    if params.removed_crash_rate > 0.0 {
        push("lambda_crash", params.removed_crash_rate, &|mut p, v| {
            p.removed_crash_rate = v;
            Ok(p)
        })?;
    }
    if params.hep.value() > 0.0 {
        push("hep", params.hep.value(), &|p, v| {
            Ok(p.with_hep(Hep::new(v).map_err(crate::error::CoreError::from)?))
        })?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> ModelParams {
        ModelParams::raid5_3plus1(1e-6, Hep::new(0.01).unwrap()).unwrap()
    }

    fn find(v: &[Sensitivity], name: &str) -> f64 {
        v.iter()
            .find(|s| s.parameter == name)
            .expect("present")
            .elasticity
    }

    #[test]
    fn signs_match_intuition_conventional() {
        let s = sensitivities(PolicyModel::Conventional, base(), 1e-4).unwrap();
        assert!(find(&s, "lambda") > 0.0, "more failures, more downtime");
        assert!(find(&s, "hep") > 0.0, "more human error, more downtime");
        assert!(find(&s, "mu_he") < 0.0, "faster recovery, less downtime");
        assert!(find(&s, "mu_DDF") < 0.0, "faster restore, less downtime");
    }

    #[test]
    fn hep_dominates_at_the_paper_operating_point() {
        // At λ=1e-6, hep=0.01 the DU term dominates: the hep elasticity must
        // be close to 1 (U ∝ hep to first order) and exceed λ_crash's.
        let s = sensitivities(PolicyModel::Conventional, base(), 1e-4).unwrap();
        let hep_e = find(&s, "hep");
        assert!(hep_e > 0.5 && hep_e < 1.2, "hep elasticity {hep_e}");
    }

    #[test]
    fn failover_is_less_sensitive_to_hep() {
        let conv = sensitivities(PolicyModel::Conventional, base(), 1e-4).unwrap();
        let fo = sensitivities(PolicyModel::FailOver, base(), 1e-4).unwrap();
        assert!(find(&fo, "hep") < find(&conv, "hep"));
    }

    #[test]
    fn hep_zero_drops_the_hep_row() {
        let p = base().with_hep(Hep::ZERO);
        let s = sensitivities(PolicyModel::Conventional, p, 1e-4).unwrap();
        assert!(s.iter().all(|r| r.parameter != "hep"));
    }

    #[test]
    fn invalid_step_rejected() {
        assert!(sensitivities(PolicyModel::Conventional, base(), 0.0).is_err());
        assert!(sensitivities(PolicyModel::Conventional, base(), 0.9).is_err());
    }
}
