//! Mission reliability: the probability that **no data is lost** within a
//! mission, as opposed to the availability (fraction of time serving I/O)
//! that the paper reports.
//!
//! The distinction matters: a backed-up system recovers availability after
//! a data loss, but the loss event still happened — restore windows, SLA
//! penalties, tape handling. Greenan, Plank & Wylie ("Mean time to
//! meaningless", HotStorage 2010 — cited by the paper) argue MTTDL alone
//! misleads; the full survival curve `R(t)` over a concrete mission is the
//! honest metric, and it falls out of the same chains by making the
//! data-loss states absorbing.

use crate::error::Result;
use crate::markov::{Raid5Conventional, Raid5FailOver};
use crate::params::ModelParams;
use crate::sensitivity::PolicyModel;
use availsim_ctmc::{Ctmc, StateId};

/// Mission-reliability analysis of one policy model.
#[derive(Debug)]
pub struct MissionReliability {
    chain: Ctmc,
    data_loss: Vec<StateId>,
    initial: Vec<f64>,
}

impl MissionReliability {
    /// Builds the analysis for the given policy, starting fresh (`OP`).
    ///
    /// # Errors
    /// Propagates model construction errors.
    pub fn new(model: PolicyModel, params: ModelParams) -> Result<Self> {
        let (chain, dl_labels): (Ctmc, Vec<&str>) = match model {
            PolicyModel::Conventional => {
                (Raid5Conventional::new(params)?.build_chain()?, vec!["DL"])
            }
            PolicyModel::FailOver => (
                Raid5FailOver::new(params)?.build_chain()?,
                vec!["DL", "DLns"],
            ),
        };
        let data_loss: Vec<StateId> = dl_labels
            .iter()
            .filter_map(|l| chain.find_state(l))
            .collect();
        let mut initial = vec![0.0; chain.num_states()];
        initial[chain.find_state("OP").expect("OP exists").index()] = 1.0;
        Ok(MissionReliability {
            chain,
            data_loss,
            initial,
        })
    }

    /// `R(t)`: probability no data-loss event has occurred by hour `t`.
    ///
    /// # Errors
    /// Propagates transient-solver errors.
    pub fn survival(&self, t: f64) -> Result<f64> {
        Ok(self
            .chain
            .survival_probability(&self.initial, &self.data_loss, t, 1e-12)?)
    }

    /// Probability of at least one data loss within the mission.
    ///
    /// # Errors
    /// Propagates transient-solver errors.
    pub fn loss_probability(&self, t: f64) -> Result<f64> {
        Ok(1.0 - self.survival(t)?)
    }

    /// Mean time to data loss (hours) — the scalar the survival curve
    /// compresses into, kept for comparison with the literature.
    ///
    /// # Errors
    /// Propagates absorbing-analysis errors.
    pub fn mttdl_hours(&self) -> Result<f64> {
        Ok(self
            .chain
            .absorption(&self.initial, &self.data_loss)?
            .mean_time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use availsim_hra::Hep;
    use availsim_storage::HOURS_PER_YEAR;

    fn reliability(model: PolicyModel, hep: f64) -> MissionReliability {
        let params = ModelParams::raid5_3plus1(1e-4, Hep::new(hep).unwrap()).unwrap();
        MissionReliability::new(model, params).unwrap()
    }

    #[test]
    fn survival_starts_at_one_and_decreases() {
        let r = reliability(PolicyModel::Conventional, 0.01);
        let mut prev = 1.0;
        assert!((r.survival(0.0).unwrap() - 1.0).abs() < 1e-12);
        for &t in &[10.0, 1_000.0, 100_000.0, 1e6] {
            let s = r.survival(t).unwrap();
            assert!(s <= prev + 1e-12 && s >= 0.0, "t={t}: {s}");
            prev = s;
        }
    }

    #[test]
    fn exponential_tail_matches_mttdl() {
        // For a chain returning to OP quickly, losses are ~Poisson with rate
        // 1/MTTDL, so R(t) ≈ exp(−t/MTTDL) for t well past mixing.
        let r = reliability(PolicyModel::Conventional, 0.001);
        let mttdl = r.mttdl_hours().unwrap();
        let t = mttdl / 2.0;
        let s = r.survival(t).unwrap();
        let expect = (-t / mttdl).exp();
        assert!((s - expect).abs() < 0.02, "R({t}) = {s} vs {expect}");
    }

    #[test]
    fn human_error_lowers_mission_reliability() {
        let clean = reliability(PolicyModel::Conventional, 0.0);
        let dirty = reliability(PolicyModel::Conventional, 0.05);
        let t = 5.0 * HOURS_PER_YEAR;
        assert!(dirty.survival(t).unwrap() < clean.survival(t).unwrap());
    }

    #[test]
    fn failover_survives_longer_than_conventional() {
        let conv = reliability(PolicyModel::Conventional, 0.01);
        let fo = reliability(PolicyModel::FailOver, 0.01);
        let t = 2.0 * HOURS_PER_YEAR;
        assert!(fo.survival(t).unwrap() >= conv.survival(t).unwrap() - 1e-12);
        assert!(fo.mttdl_hours().unwrap() > conv.mttdl_hours().unwrap() * 0.9);
    }

    #[test]
    fn loss_probability_complements_survival() {
        let r = reliability(PolicyModel::FailOver, 0.01);
        let t = HOURS_PER_YEAR;
        let s = r.survival(t).unwrap();
        let l = r.loss_probability(t).unwrap();
        assert!((s + l - 1.0).abs() < 1e-12);
    }
}
