//! Unified error type for the availability models.

use availsim_ctmc::CtmcError;
use availsim_hra::HraError;
use availsim_sim::SimError;
use availsim_storage::StorageError;
use std::error::Error;
use std::fmt;

/// Errors from model construction and evaluation.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// A model parameter was invalid.
    InvalidParameter(String),
    /// The underlying Markov engine failed.
    Ctmc(CtmcError),
    /// The underlying simulator failed.
    Sim(SimError),
    /// The storage substrate rejected an operation.
    Storage(StorageError),
    /// The HRA substrate rejected a quantity.
    Hra(HraError),
    /// A cooperative deadline or cancellation tripped before the run
    /// finished. Carries how far the run got, for diagnostics only — the
    /// partial work is discarded, never reported as an estimate, so a
    /// timed-out query has exactly one observable outcome.
    DeadlineExpired {
        /// Iterations fully completed before the cancellation was observed.
        completed: u64,
        /// Iterations the run was asked for.
        requested: u64,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            CoreError::Ctmc(e) => write!(f, "markov engine: {e}"),
            CoreError::Sim(e) => write!(f, "simulator: {e}"),
            CoreError::Storage(e) => write!(f, "storage model: {e}"),
            CoreError::Hra(e) => write!(f, "hra model: {e}"),
            CoreError::DeadlineExpired {
                completed,
                requested,
            } => write!(
                f,
                "deadline expired: run cancelled after {completed} of {requested} iterations"
            ),
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::InvalidParameter(_) | CoreError::DeadlineExpired { .. } => None,
            CoreError::Ctmc(e) => Some(e),
            CoreError::Sim(e) => Some(e),
            CoreError::Storage(e) => Some(e),
            CoreError::Hra(e) => Some(e),
        }
    }
}

impl From<CtmcError> for CoreError {
    fn from(e: CtmcError) -> Self {
        CoreError::Ctmc(e)
    }
}

impl From<SimError> for CoreError {
    fn from(e: SimError) -> Self {
        CoreError::Sim(e)
    }
}

impl From<StorageError> for CoreError {
    fn from(e: StorageError) -> Self {
        CoreError::Storage(e)
    }
}

impl From<HraError> for CoreError {
    fn from(e: HraError) -> Self {
        CoreError::Hra(e)
    }
}

/// Convenience result alias used across the crate.
pub type Result<T> = std::result::Result<T, CoreError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_sub_errors_with_source() {
        let e: CoreError = CtmcError::EmptyChain.into();
        assert!(e.to_string().contains("markov"));
        assert!(e.source().is_some());

        let e: CoreError = SimError::InvalidProbability(2.0).into();
        assert!(e.to_string().contains("simulator"));

        let e: CoreError = HraError::InvalidProbability(2.0).into();
        assert!(matches!(e, CoreError::Hra(_)));
    }

    #[test]
    fn send_sync() {
        fn check<T: Send + Sync>() {}
        check::<CoreError>();
    }
}
