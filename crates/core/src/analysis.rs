//! Headline analyses: downtime underestimation when human error is ignored,
//! and the conventional-vs-fail-over policy comparison.

use crate::error::Result;
use crate::markov::{Raid5Conventional, Raid5FailOver};
use crate::nines;
use crate::params::ModelParams;
use availsim_hra::Hep;

/// How much the traditional (hep = 0) model underestimates downtime.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Underestimation {
    /// Disk failure rate λ at which the factor was computed.
    pub disk_failure_rate: f64,
    /// Unavailability with human error included.
    pub with_hep: f64,
    /// Unavailability of the traditional model (hep = 0).
    pub without_hep: f64,
}

impl Underestimation {
    /// The underestimation factor `U(hep)/U(0)` — the paper's "up to 263X".
    pub fn factor(&self) -> f64 {
        self.with_hep / self.without_hep
    }
}

/// Computes the underestimation at one operating point.
///
/// # Errors
/// Propagates model errors.
pub fn underestimation(params: ModelParams) -> Result<Underestimation> {
    let with_hep = Raid5Conventional::new(params)?.solve()?.unavailability();
    let without_hep = Raid5Conventional::new(params.with_hep(Hep::ZERO))?
        .solve()?
        .unavailability();
    Ok(Underestimation {
        disk_failure_rate: params.disk_failure_rate,
        with_hep,
        without_hep,
    })
}

/// Sweeps the underestimation factor over failure rates; returns all points
/// plus the maximum factor, reproducing the paper's §I claim.
///
/// # Errors
/// Propagates model errors.
pub fn underestimation_sweep(
    base: ModelParams,
    failure_rates: &[f64],
) -> Result<(Vec<Underestimation>, f64)> {
    let mut rows = Vec::with_capacity(failure_rates.len());
    let mut max = 0.0f64;
    for &lam in failure_rates {
        let row = underestimation(base.with_failure_rate(lam)?)?;
        max = max.max(row.factor());
        rows.push(row);
    }
    Ok((rows, max))
}

/// Conventional vs automatic fail-over at one operating point (Fig. 7).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PolicyComparison {
    /// Human-error probability used.
    pub hep: f64,
    /// Unavailability under conventional replacement.
    pub conventional: f64,
    /// Unavailability under automatic fail-over (delayed replacement).
    pub failover: f64,
}

impl PolicyComparison {
    /// Availability improvement factor `U_conv / U_failover`.
    pub fn improvement(&self) -> f64 {
        self.conventional / self.failover
    }

    /// Nines under the conventional policy.
    pub fn conventional_nines(&self) -> f64 {
        nines::nines_from_unavailability(self.conventional)
    }

    /// Nines under the fail-over policy.
    pub fn failover_nines(&self) -> f64 {
        nines::nines_from_unavailability(self.failover)
    }
}

/// Compares the two policies at one operating point.
///
/// # Errors
/// Propagates model errors.
pub fn compare_policies(params: ModelParams) -> Result<PolicyComparison> {
    let conventional = Raid5Conventional::new(params)?.solve()?.unavailability();
    let failover = Raid5FailOver::new(params)?.solve()?.unavailability();
    Ok(PolicyComparison {
        hep: params.hep.value(),
        conventional,
        failover,
    })
}

/// The Fig. 7 sweep: both policies at `hep ∈ {0, 0.001, 0.01}`.
///
/// # Errors
/// Propagates model errors.
pub fn fig7_policy_sweep(base: ModelParams) -> Result<Vec<PolicyComparison>> {
    [0.0, 0.001, 0.01]
        .iter()
        .map(|&h| compare_policies(base.with_hep(Hep::new(h)?)))
        .collect()
}

/// Expected yearly operating cost of one array under the conventional
/// policy: outage penalties (per down hour) plus service-call costs (per
/// technician dispatch, i.e. each time the array leaves `OP` or a recovery
/// action fires) — a Markov-reward view of the paper's model.
///
/// # Errors
/// Propagates model errors; costs must be nonnegative and finite.
pub fn annual_cost_conventional(
    params: ModelParams,
    cost_per_down_hour: f64,
    cost_per_service_action: f64,
) -> Result<f64> {
    let valid_cost = |c: f64| c.is_finite() && c >= 0.0;
    if !valid_cost(cost_per_down_hour) || !valid_cost(cost_per_service_action) {
        return Err(crate::error::CoreError::InvalidParameter(
            "costs must be nonnegative and finite".into(),
        ));
    }
    use availsim_ctmc::RewardModel;
    let chain = Raid5Conventional::new(params)?.build_chain()?;
    let mut rewards = RewardModel::zero(&chain);
    for label in ["DU", "DL"] {
        let s = chain.find_state(label).expect("state exists");
        rewards
            .rate_reward(s, cost_per_down_hour)
            .map_err(crate::error::CoreError::from)?;
    }
    // Each completed service transition is one technician dispatch.
    let op = chain.find_state("OP").expect("state exists");
    let exp = chain.find_state("EXP").expect("state exists");
    let du = chain.find_state("DU").expect("state exists");
    let dl = chain.find_state("DL").expect("state exists");
    for (from, to) in [(exp, op), (exp, du), (du, op), (dl, op)] {
        // Edges vanish when their rate is zero (e.g. EXP→DU at hep = 0);
        // a missing edge simply contributes no dispatches.
        match rewards.impulse_reward(from, to, cost_per_service_action) {
            Ok(_) => {}
            Err(availsim_ctmc::CtmcError::UnknownState(_)) => {}
            Err(e) => return Err(crate::error::CoreError::from(e)),
        }
    }
    let hourly = chain
        .long_run_reward_rate(&rewards)
        .map_err(crate::error::CoreError::from)?;
    Ok(hourly * availsim_storage::HOURS_PER_YEAR)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base(hep: f64) -> ModelParams {
        ModelParams::raid5_3plus1(1e-6, Hep::new(hep).unwrap()).unwrap()
    }

    #[test]
    fn underestimation_factor_exceeds_one() {
        let u = underestimation(base(0.001)).unwrap();
        assert!(u.factor() > 1.0);
        assert!(u.with_hep > u.without_hep);
    }

    #[test]
    fn sweep_reproduces_the_263x_headline() {
        // Fig. 4's λ grid: 5e-7 .. 5.5e-6. The maximum underestimation at
        // hep = 0.01 lands in the paper's 263X band at the low-λ end.
        let rates: Vec<f64> = (1..=11).map(|i| i as f64 * 5e-7).collect();
        let (rows, max) = underestimation_sweep(base(0.01), &rates).unwrap();
        assert_eq!(rows.len(), 11);
        assert!(max > 200.0 && max < 320.0, "max factor {max}");
        // The factor is monotonically decreasing in λ.
        for w in rows.windows(2) {
            assert!(w[0].factor() >= w[1].factor());
        }
    }

    #[test]
    fn policy_comparison_matches_paper_claims() {
        // §V-D: fail-over recovers about two orders of magnitude at
        // hep = 0.01.
        let rows = fig7_policy_sweep(base(0.0)).unwrap();
        assert_eq!(rows.len(), 3);
        assert!((rows[0].hep - 0.0).abs() < 1e-12);
        // At hep = 0 the two policies are within a small factor.
        assert!(rows[0].improvement() < 5.0);
        // Improvement grows with hep.
        assert!(rows[1].improvement() > rows[0].improvement());
        assert!(rows[2].improvement() > rows[1].improvement());
        // Two orders of magnitude at hep = 0.01.
        assert!(
            rows[2].improvement() > 50.0 && rows[2].improvement() < 500.0,
            "improvement {}",
            rows[2].improvement()
        );
    }

    #[test]
    fn nines_accessors_are_consistent() {
        let c = compare_policies(base(0.01)).unwrap();
        assert!(c.failover_nines() > c.conventional_nines());
    }

    #[test]
    fn annual_cost_combines_downtime_and_dispatches() {
        // Pure outage pricing: cost ≈ U · hours/yr · rate.
        let p = base(0.01);
        let outage_only = annual_cost_conventional(p, 1_000.0, 0.0).unwrap();
        let u = Raid5Conventional::new(p)
            .unwrap()
            .solve()
            .unwrap()
            .unavailability();
        let expect = u * availsim_storage::HOURS_PER_YEAR * 1_000.0;
        assert!((outage_only - expect).abs() / expect < 1e-9);

        // Dispatch pricing: one dispatch per failure (n·λ per hour) plus the
        // extra wrong-pull + recovery dispatches that hep = 0.01 adds (~9%).
        let dispatch_only = annual_cost_conventional(p, 0.0, 500.0).unwrap();
        let per_year = 4.0 * 1e-6 * availsim_storage::HOURS_PER_YEAR;
        let ratio = dispatch_only / (per_year * 500.0);
        assert!(ratio > 1.0 && ratio < 1.2, "dispatch ratio {ratio}");

        // Combined is the sum.
        let both = annual_cost_conventional(p, 1_000.0, 500.0).unwrap();
        assert!((both - outage_only - dispatch_only).abs() < 1e-9);
    }

    #[test]
    fn annual_cost_handles_hep_zero_chain() {
        // At hep = 0 the EXP→DU edge does not exist; costing must not error.
        let cost = annual_cost_conventional(base(0.0), 1_000.0, 500.0).unwrap();
        assert!(cost > 0.0);
    }

    #[test]
    fn annual_cost_validates_inputs() {
        assert!(annual_cost_conventional(base(0.01), -1.0, 0.0).is_err());
        assert!(annual_cost_conventional(base(0.01), 0.0, f64::NAN).is_err());
    }

    #[test]
    fn human_error_raises_the_bill() {
        let clean = annual_cost_conventional(base(0.0), 10_000.0, 200.0).unwrap();
        let dirty = annual_cost_conventional(base(0.01), 10_000.0, 200.0).unwrap();
        assert!(dirty > clean, "{dirty} vs {clean}");
    }
}
