//! Transient (mission-time) availability — an extension beyond the paper's
//! steady-state analysis.
//!
//! Steady-state availability understates early-life risk: a fresh array has
//! probability 1 of being up, decays toward the stationary value over the
//! first service cycles, and the *interval* availability (expected uptime
//! fraction over a finite mission) interpolates the two. Both curves come
//! from uniformization on the same chains the paper solves.

use crate::error::Result;
use crate::markov::{Raid5Conventional, Raid5FailOver};
use crate::params::ModelParams;
use crate::sensitivity::PolicyModel;
use availsim_ctmc::{Ctmc, StateId};

/// Transient availability analysis of one policy model.
#[derive(Debug)]
pub struct TransientAvailability {
    chain: Ctmc,
    down: Vec<StateId>,
    initial: Vec<f64>,
}

impl TransientAvailability {
    /// Builds the analysis for the given policy, starting from the
    /// everything-works state (`OP`).
    ///
    /// # Errors
    /// Propagates model construction errors.
    pub fn new(model: PolicyModel, params: ModelParams) -> Result<Self> {
        let (chain, down_labels): (Ctmc, &[&str]) = match model {
            PolicyModel::Conventional => (
                Raid5Conventional::new(params)?.build_chain()?,
                &["DU", "DL"],
            ),
            PolicyModel::FailOver => (
                Raid5FailOver::new(params)?.build_chain()?,
                &crate::markov::failover_down_states(),
            ),
        };
        let down: Vec<StateId> = down_labels
            .iter()
            .filter_map(|l| chain.find_state(l))
            .collect();
        let mut initial = vec![0.0; chain.num_states()];
        let op = chain.find_state("OP").expect("OP exists in both models");
        initial[op.index()] = 1.0;
        Ok(TransientAvailability {
            chain,
            down,
            initial,
        })
    }

    /// Point availability `A(t)`: probability the array serves I/O at time
    /// `t` (hours) given it started fresh.
    ///
    /// # Errors
    /// Propagates transient-solver errors.
    pub fn point_availability(&self, t: f64) -> Result<f64> {
        let p = self.chain.transient(&self.initial, t, 1e-12)?;
        let down: f64 = self.down.iter().map(|s| p[s.index()]).sum();
        Ok(1.0 - down)
    }

    /// Interval availability over `[0, t]`: expected fraction of the mission
    /// the array spends up.
    ///
    /// # Errors
    /// Propagates transient-solver errors.
    pub fn interval_availability(&self, t: f64) -> Result<f64> {
        if t <= 0.0 {
            return Ok(1.0);
        }
        let occ = self.chain.cumulative_occupancy(&self.initial, t, 1e-12)?;
        let down: f64 = self.down.iter().map(|s| occ[s.index()]).sum();
        Ok(1.0 - down / t)
    }

    /// The stationary availability the curves decay toward.
    ///
    /// # Errors
    /// Propagates steady-state solver errors.
    pub fn steady_state_availability(&self) -> Result<f64> {
        let pi = self.chain.steady_state()?;
        let down: f64 = self.down.iter().map(|s| pi[s.index()]).sum();
        Ok(1.0 - down)
    }

    /// Samples `A(t)` on a logarithmic time grid from `t_min` to `t_max`
    /// with `points` samples — the data for a mission-availability curve.
    ///
    /// # Errors
    /// Propagates solver errors; `points` must be at least 2 and the range
    /// positive and increasing.
    pub fn availability_curve(
        &self,
        t_min: f64,
        t_max: f64,
        points: usize,
    ) -> Result<Vec<(f64, f64)>> {
        if points < 2 || t_min.is_nan() || t_min <= 0.0 || t_max.is_nan() || t_max <= t_min {
            return Err(crate::error::CoreError::InvalidParameter(format!(
                "invalid curve grid: t_min={t_min}, t_max={t_max}, points={points}"
            )));
        }
        let ratio = (t_max / t_min).powf(1.0 / (points - 1) as f64);
        let mut t = t_min;
        let mut out = Vec::with_capacity(points);
        for _ in 0..points {
            out.push((t, self.point_availability(t)?));
            t *= ratio;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use availsim_hra::Hep;

    fn analysis(model: PolicyModel) -> TransientAvailability {
        let params = ModelParams::raid5_3plus1(1e-4, Hep::new(0.01).unwrap()).unwrap();
        TransientAvailability::new(model, params).unwrap()
    }

    #[test]
    fn fresh_array_is_up() {
        let a = analysis(PolicyModel::Conventional);
        assert!((a.point_availability(0.0).unwrap() - 1.0).abs() < 1e-12);
        assert!((a.interval_availability(0.0).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn long_run_matches_steady_state() {
        for model in [PolicyModel::Conventional, PolicyModel::FailOver] {
            let a = analysis(model);
            let steady = a.steady_state_availability().unwrap();
            let late = a.point_availability(5e5).unwrap();
            assert!(
                (late - steady).abs() < 1e-9,
                "{model:?}: A(5e5)={late} vs steady {steady}"
            );
        }
    }

    #[test]
    fn point_availability_decays_monotonically_early() {
        // From a fresh start the availability can only decrease initially
        // (no repair debt exists yet to pay back).
        let a = analysis(PolicyModel::Conventional);
        let mut prev = 1.0;
        for &t in &[1.0, 10.0, 100.0, 1_000.0] {
            let v = a.point_availability(t).unwrap();
            assert!(v <= prev + 1e-12, "A({t}) = {v} > {prev}");
            prev = v;
        }
    }

    #[test]
    fn interval_availability_lags_point_availability() {
        // The interval average includes the pristine early phase, so it
        // stays above the decaying point availability.
        let a = analysis(PolicyModel::Conventional);
        for &t in &[100.0, 1_000.0, 50_000.0] {
            let point = a.point_availability(t).unwrap();
            let interval = a.interval_availability(t).unwrap();
            assert!(
                interval >= point - 1e-12,
                "t={t}: interval {interval} vs point {point}"
            );
        }
    }

    #[test]
    fn failover_curve_dominates_conventional() {
        let conv = analysis(PolicyModel::Conventional);
        let fo = analysis(PolicyModel::FailOver);
        for &t in &[100.0, 10_000.0, 200_000.0] {
            let c = conv.point_availability(t).unwrap();
            let f = fo.point_availability(t).unwrap();
            assert!(f >= c - 1e-12, "t={t}: fo {f} vs conv {c}");
        }
    }

    #[test]
    fn curve_grid_is_logarithmic_and_validated() {
        let a = analysis(PolicyModel::Conventional);
        let curve = a.availability_curve(1.0, 1e4, 5).unwrap();
        assert_eq!(curve.len(), 5);
        assert!((curve[0].0 - 1.0).abs() < 1e-12);
        assert!((curve[4].0 - 1e4).abs() / 1e4 < 1e-9);
        // Log-spaced: constant ratio.
        let r1 = curve[1].0 / curve[0].0;
        let r2 = curve[3].0 / curve[2].0;
        assert!((r1 - r2).abs() < 1e-9);
        assert!(a.availability_curve(0.0, 1.0, 5).is_err());
        assert!(a.availability_curve(1.0, 2.0, 1).is_err());
    }
}
