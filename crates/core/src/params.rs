//! Model parameters, matching the paper's notation (Section V).

use crate::error::{CoreError, Result};
use availsim_hra::Hep;
use availsim_storage::{RaidGeometry, ScrubbingModel, ServiceRates};

/// Parameters of an availability model for one RAID array.
///
/// All rates are per hour, following the paper:
///
/// | field | paper symbol | paper default |
/// |-------|--------------|---------------|
/// | `disk_failure_rate` | λ | swept (1e-7 … 2e-5) |
/// | `disk_repair_rate` | μ_DF | 0.1 |
/// | `ddf_recovery_rate` | μ_DDF | 0.03 |
/// | `human_recovery_rate` | μ_he | 1.0 |
/// | `disk_change_rate` | μ_ch (μ_s) | 1.0 |
/// | `removed_crash_rate` | λ_crash | 0.01 |
/// | `hep` | hep | 0, 0.001, 0.01 |
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelParams {
    /// Array geometry (disk counts and fault tolerance).
    pub geometry: RaidGeometry,
    /// Per-disk failure rate λ.
    pub disk_failure_rate: f64,
    /// Disk repair (replacement + rebuild) rate μ_DF.
    pub disk_repair_rate: f64,
    /// Double-disk-failure (backup restore) recovery rate μ_DDF.
    pub ddf_recovery_rate: f64,
    /// Human-error recovery rate μ_he.
    pub human_recovery_rate: f64,
    /// Physical disk change rate μ_ch (the paper's μ_s), used by the
    /// automatic fail-over model.
    pub disk_change_rate: f64,
    /// Crash rate λ_crash of a wrongly removed disk.
    pub removed_crash_rate: f64,
    /// Human-error probability per service action.
    pub hep: Hep,
    /// Latent-sector-error exposure during rebuilds (`None` disables the
    /// data-loss branch on rebuild completion entirely — engines must not
    /// draw any extra randomness in that case).
    pub scrubbing: Option<ScrubbingModel>,
}

impl ModelParams {
    /// Parameters with the paper's service rates for a given geometry,
    /// failure rate, and hep.
    ///
    /// # Errors
    /// Returns [`CoreError::InvalidParameter`] for a non-positive failure
    /// rate.
    pub fn paper_defaults(
        geometry: RaidGeometry,
        disk_failure_rate: f64,
        hep: Hep,
    ) -> Result<Self> {
        let rates = ServiceRates::paper_defaults();
        let p = ModelParams {
            geometry,
            disk_failure_rate,
            disk_repair_rate: rates.disk_repair,
            ddf_recovery_rate: rates.backup_restore,
            human_recovery_rate: rates.human_error_recovery,
            disk_change_rate: rates.disk_change,
            removed_crash_rate: rates.removed_disk_crash,
            hep,
            scrubbing: None,
        };
        p.validate()?;
        Ok(p)
    }

    /// The paper's baseline array: RAID5 (3+1).
    ///
    /// # Errors
    /// Returns [`CoreError::InvalidParameter`] for a non-positive failure
    /// rate.
    pub fn raid5_3plus1(disk_failure_rate: f64, hep: Hep) -> Result<Self> {
        ModelParams::paper_defaults(
            RaidGeometry::raid5(3).map_err(CoreError::from)?,
            disk_failure_rate,
            hep,
        )
    }

    /// Number of disks `n` in the array.
    pub fn disks(&self) -> u32 {
        self.geometry.total_disks()
    }

    /// Returns a copy with a different hep.
    pub fn with_hep(mut self, hep: Hep) -> Self {
        self.hep = hep;
        self
    }

    /// Returns a copy with an LSE/scrubbing exposure model, enabling the
    /// rebuild-failure data-loss branch in engines that support it.
    pub fn with_scrubbing(mut self, scrubbing: ScrubbingModel) -> Self {
        self.scrubbing = Some(scrubbing);
        self
    }

    /// Probability that a completed rebuild actually lost data to a latent
    /// sector error, given this array's read width (`total_disks − 1`
    /// surviving disks feed a conventional rebuild). Zero when no scrubbing
    /// model is attached or its LSE rate is zero.
    pub fn rebuild_lse_probability(&self) -> f64 {
        match self.scrubbing {
            Some(m) => m.rebuild_failure_probability(self.geometry.total_disks() - 1),
            None => 0.0,
        }
    }

    /// Returns a copy with a different failure rate.
    ///
    /// # Errors
    /// Returns [`CoreError::InvalidParameter`] for a non-positive rate.
    pub fn with_failure_rate(mut self, rate: f64) -> Result<Self> {
        self.disk_failure_rate = rate;
        self.validate()?;
        Ok(self)
    }

    /// Validates all rates.
    ///
    /// # Errors
    /// Returns [`CoreError::InvalidParameter`] naming the offending field.
    pub fn validate(&self) -> Result<()> {
        let fields = [
            ("disk_failure_rate", self.disk_failure_rate),
            ("disk_repair_rate", self.disk_repair_rate),
            ("ddf_recovery_rate", self.ddf_recovery_rate),
            ("human_recovery_rate", self.human_recovery_rate),
            ("disk_change_rate", self.disk_change_rate),
        ];
        for (name, v) in fields {
            if !(v.is_finite() && v > 0.0) {
                return Err(CoreError::InvalidParameter(format!(
                    "`{name}` must be positive and finite, got {v}"
                )));
            }
        }
        if !(self.removed_crash_rate.is_finite() && self.removed_crash_rate >= 0.0) {
            return Err(CoreError::InvalidParameter(format!(
                "`removed_crash_rate` must be nonnegative and finite, got {}",
                self.removed_crash_rate
            )));
        }
        if self.disks() < 2 {
            return Err(CoreError::InvalidParameter(format!(
                "array must have at least 2 disks, got {}",
                self.disks()
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_section_v() {
        let p = ModelParams::raid5_3plus1(1e-6, Hep::new(0.01).unwrap()).unwrap();
        assert_eq!(p.disks(), 4);
        assert_eq!(p.disk_repair_rate, 0.1);
        assert_eq!(p.ddf_recovery_rate, 0.03);
        assert_eq!(p.human_recovery_rate, 1.0);
        assert_eq!(p.disk_change_rate, 1.0);
        assert_eq!(p.removed_crash_rate, 0.01);
    }

    #[test]
    fn validation_rejects_bad_rates() {
        assert!(ModelParams::raid5_3plus1(0.0, Hep::ZERO).is_err());
        assert!(ModelParams::raid5_3plus1(-1e-6, Hep::ZERO).is_err());
        let p = ModelParams::raid5_3plus1(1e-6, Hep::ZERO).unwrap();
        assert!(p.with_failure_rate(f64::NAN).is_err());
    }

    #[test]
    fn with_hep_preserves_other_fields() {
        let p = ModelParams::raid5_3plus1(1e-6, Hep::ZERO).unwrap();
        let q = p.with_hep(Hep::new(0.01).unwrap());
        assert_eq!(q.disk_failure_rate, 1e-6);
        assert!((q.hep.value() - 0.01).abs() < 1e-15);
    }

    #[test]
    fn scrubbing_defaults_off_and_threads_through() {
        let p = ModelParams::raid5_3plus1(1e-6, Hep::ZERO).unwrap();
        assert!(p.scrubbing.is_none());
        assert_eq!(p.rebuild_lse_probability(), 0.0);
        let m = ScrubbingModel::new(1e-6, 336.0).unwrap();
        let q = p.with_scrubbing(m);
        // A 3+1 rebuild reads the 3 surviving disks.
        let expected = m.rebuild_failure_probability(3);
        assert_eq!(q.rebuild_lse_probability(), expected);
        assert!(expected > 0.0);
        // An attached model with zero LSE rate is still "off" numerically.
        let z = p.with_scrubbing(ScrubbingModel::new(0.0, 336.0).unwrap());
        assert_eq!(z.rebuild_lse_probability(), 0.0);
    }

    #[test]
    fn geometry_variants() {
        let r1 =
            ModelParams::paper_defaults(RaidGeometry::raid1_pair(), 1e-5, Hep::new(0.001).unwrap())
                .unwrap();
        assert_eq!(r1.disks(), 2);
        let r5b =
            ModelParams::paper_defaults(RaidGeometry::raid5(7).unwrap(), 1e-5, Hep::ZERO).unwrap();
        assert_eq!(r5b.disks(), 8);
    }
}
