//! Cross-validation of the Markov models against the Monte-Carlo reference
//! (the methodology behind the paper's Fig. 4).

use crate::error::Result;
use crate::markov::{Raid5Conventional, Raid5FailOver};
use crate::mc::{ConventionalMc, FailOverMc, McConfig};
use crate::params::ModelParams;
use crate::sensitivity::PolicyModel;

/// Result of one validation point.
#[derive(Debug, Clone)]
pub struct ValidationPoint {
    /// Disk failure rate λ.
    pub disk_failure_rate: f64,
    /// Human error probability.
    pub hep: f64,
    /// Availability from the Markov model.
    pub markov_availability: f64,
    /// Availability point estimate from the Monte-Carlo run.
    pub mc_availability: f64,
    /// Half-width of the Monte-Carlo confidence interval.
    pub mc_half_width: f64,
    /// Whether the Markov value falls inside the Monte-Carlo interval.
    pub consistent: bool,
}

/// Validates one operating point: runs the Monte-Carlo model and checks the
/// Markov availability against its confidence interval.
///
/// # Errors
/// Propagates model and configuration errors.
pub fn validate_point(
    model: PolicyModel,
    params: ModelParams,
    config: &McConfig,
) -> Result<ValidationPoint> {
    let (markov_availability, estimate) = match model {
        PolicyModel::Conventional => {
            let markov = Raid5Conventional::new(params)?.solve()?;
            let mc = ConventionalMc::new(params)?.run(config)?;
            (markov.availability(), mc)
        }
        PolicyModel::FailOver => {
            let markov = Raid5FailOver::new(params)?.solve()?;
            let mc = FailOverMc::new(params)?.run(config)?;
            (markov.availability(), mc)
        }
    };
    Ok(ValidationPoint {
        disk_failure_rate: params.disk_failure_rate,
        hep: params.hep.value(),
        markov_availability,
        mc_availability: estimate.availability.mean,
        mc_half_width: estimate.availability.half_width,
        consistent: estimate.is_consistent_with(markov_availability),
    })
}

/// Validates a sweep of failure rates (the Fig. 4 grid) for one hep.
///
/// # Errors
/// Propagates model and configuration errors.
pub fn validate_sweep(
    model: PolicyModel,
    base: ModelParams,
    failure_rates: &[f64],
    config: &McConfig,
) -> Result<Vec<ValidationPoint>> {
    failure_rates
        .iter()
        .map(|&lam| validate_point(model, base.with_failure_rate(lam)?, config))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use availsim_hra::Hep;

    fn config() -> McConfig {
        McConfig {
            iterations: 400,
            horizon_hours: 20_000.0,
            seed: 99,
            confidence: 0.99,
            threads: 2,
            ..McConfig::default()
        }
    }

    #[test]
    fn conventional_point_validates() {
        // High rates so the MC resolves the unavailability quickly.
        let params = ModelParams::raid5_3plus1(1e-3, Hep::new(0.01).unwrap()).unwrap();
        let v = validate_point(PolicyModel::Conventional, params, &config()).unwrap();
        assert!(
            v.consistent,
            "markov {} vs mc {} ± {}",
            v.markov_availability, v.mc_availability, v.mc_half_width
        );
    }

    #[test]
    fn failover_point_validates() {
        let params = ModelParams::raid5_3plus1(1e-3, Hep::new(0.01).unwrap()).unwrap();
        let v = validate_point(PolicyModel::FailOver, params, &config()).unwrap();
        assert!(
            v.consistent,
            "markov {} vs mc {} ± {}",
            v.markov_availability, v.mc_availability, v.mc_half_width
        );
    }

    #[test]
    fn sweep_produces_one_point_per_rate() {
        let params = ModelParams::raid5_3plus1(1e-3, Hep::new(0.001).unwrap()).unwrap();
        let rates = [5e-4, 1e-3, 2e-3];
        let points = validate_sweep(PolicyModel::Conventional, params, &rates, &config()).unwrap();
        assert_eq!(points.len(), 3);
        let consistent = points.iter().filter(|p| p.consistent).count();
        assert!(
            consistent >= 2,
            "at 99% confidence at most ~1 in 100 may fail"
        );
    }
}
