//! Equivalent-usable-capacity comparison of RAID organizations (Fig. 6).
//!
//! Each organization is provisioned to the same logical capacity; the
//! volume is a series system of independent arrays, each solved with the
//! Fig. 2 chain. RAID1's higher effective replication factor means more
//! disks, hence more failures and more human-touch opportunities — the
//! mechanism behind the paper's ranking inversion.

use crate::error::Result;
use crate::markov::Raid5Conventional;
use crate::nines;
use crate::params::ModelParams;
use availsim_hra::Hep;
use availsim_storage::{RaidGeometry, Volume};

/// Availability of one volume option at equivalent capacity.
#[derive(Debug, Clone, PartialEq)]
pub struct VolumeAvailability {
    /// Geometry label, e.g. `RAID5(3+1)`.
    pub label: String,
    /// Number of member arrays.
    pub arrays: u64,
    /// Total physical disks.
    pub total_disks: u64,
    /// Effective replication factor of the geometry.
    pub erf: f64,
    /// Unavailability of one member array.
    pub per_array_unavailability: f64,
    /// Unavailability of the whole volume (series system).
    pub volume_unavailability: f64,
}

impl VolumeAvailability {
    /// Volume availability.
    pub fn availability(&self) -> f64 {
        1.0 - self.volume_unavailability
    }

    /// Volume availability in nines.
    pub fn nines(&self) -> f64 {
        nines::nines_from_unavailability(self.volume_unavailability)
    }
}

/// Solves one geometry at the given usable capacity.
///
/// # Errors
/// Propagates capacity-mismatch and model errors.
pub fn volume_availability(
    geometry: RaidGeometry,
    usable_capacity: u64,
    disk_failure_rate: f64,
    hep: Hep,
) -> Result<VolumeAvailability> {
    let volume = Volume::with_usable_capacity(geometry, usable_capacity)?;
    let params = ModelParams::paper_defaults(geometry, disk_failure_rate, hep)?;
    let solved = Raid5Conventional::new(params)?.solve()?;
    let per_array = solved.unavailability();
    Ok(VolumeAvailability {
        label: geometry.label(),
        arrays: volume.arrays(),
        total_disks: volume.total_disks(),
        erf: geometry.effective_replication_factor(),
        per_array_unavailability: per_array,
        volume_unavailability: volume.series_unavailability(per_array),
    })
}

/// The paper's Fig. 6 comparison set: RAID1(1+1), RAID5(3+1), RAID5(7+1) at
/// equivalent usable capacity (21 disk units by default — the least common
/// multiple of the three usable sizes).
///
/// # Errors
/// Propagates model errors.
pub fn compare_equal_capacity(
    usable_capacity: u64,
    disk_failure_rate: f64,
    hep: Hep,
) -> Result<Vec<VolumeAvailability>> {
    let geometries = [
        RaidGeometry::raid1_pair(),
        RaidGeometry::raid5(3)?,
        RaidGeometry::raid5(7)?,
    ];
    geometries
        .iter()
        .map(|&g| volume_availability(g, usable_capacity, disk_failure_rate, hep))
        .collect()
}

/// Default usable capacity for the Fig. 6 comparison.
pub const FIG6_USABLE_CAPACITY: u64 = 21;

#[cfg(test)]
mod tests {
    use super::*;

    fn hep(v: f64) -> Hep {
        Hep::new(v).unwrap()
    }

    #[test]
    fn comparison_has_three_options_with_equal_capacity() {
        let rows = compare_equal_capacity(21, 1e-5, hep(0.0)).unwrap();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].arrays, 21); // RAID1 pairs
        assert_eq!(rows[1].arrays, 7); // RAID5(3+1)
        assert_eq!(rows[2].arrays, 3); // RAID5(7+1)
        assert_eq!(rows[0].total_disks, 42);
        assert_eq!(rows[1].total_disks, 28);
        assert_eq!(rows[2].total_disks, 24);
    }

    #[test]
    fn without_human_error_raid1_wins() {
        // Paper Fig. 6: at hep = 0, RAID1(1+1) has the highest availability.
        let rows = compare_equal_capacity(21, 1e-5, hep(0.0)).unwrap();
        let r1 = rows[0].nines();
        let r5a = rows[1].nines();
        let r5b = rows[2].nines();
        assert!(
            r1 > r5a && r5a > r5b,
            "expected R1 > R5(3+1) > R5(7+1): {r1} {r5a} {r5b}"
        );
    }

    #[test]
    fn with_human_error_the_ranking_inverts() {
        // Paper Fig. 6: at hep = 0.01 the ERF effect dominates and
        // RAID5(7+1) overtakes; RAID1 loses its lead.
        let rows = compare_equal_capacity(21, 1e-5, hep(0.01)).unwrap();
        let r1 = rows[0].nines();
        let r5b = rows[2].nines();
        assert!(
            r5b > r1,
            "RAID5(7+1) should beat RAID1 at hep=0.01: {r5b} vs {r1}"
        );
    }

    #[test]
    fn raid1_lead_shrinks_monotonically_with_hep() {
        let lead = |h: f64| {
            let rows = compare_equal_capacity(21, 1e-5, hep(h)).unwrap();
            rows[0].nines() - rows[2].nines() // RAID1 minus RAID5(7+1)
        };
        let l0 = lead(0.0);
        let l1 = lead(0.001);
        let l2 = lead(0.01);
        assert!(l0 > l1 && l1 > l2, "leads {l0} {l1} {l2}");
    }

    #[test]
    fn erf_explains_disk_counts() {
        let rows = compare_equal_capacity(21, 1e-6, hep(0.001)).unwrap();
        for row in &rows {
            let implied = row.erf * 21.0;
            assert!(
                (implied - row.total_disks as f64).abs() < 1e-9,
                "{}",
                row.label
            );
        }
    }

    #[test]
    fn capacity_mismatch_rejected() {
        assert!(volume_availability(RaidGeometry::raid5(3).unwrap(), 20, 1e-6, hep(0.0)).is_err());
    }
}
