//! A generic `(failed, wrongly-removed)` chain generator for `k+m` arrays.
//!
//! This extends the paper's Fig. 2 beyond single parity: states are pairs
//! `(f, w)` — `f` failed disks (data on them lost until rebuilt), `w`
//! wrongly removed disks (data intact) — plus a collapsed `DL` state for
//! `f > m`. The array is *up* while `f + w <= m`, *unavailable* (DU class)
//! while `f + w > m` with `f <= m`, and in data loss once `f > m`.
//!
//! Transition rules (conventional replacement policy):
//!
//! * up: failures at `(n − f − w)·λ`; repairs at `μ_DF` split
//!   `(1−hep)` success / `hep` wrong removal; recovery of a wrong removal at
//!   `μ_he` split `(1−hep)` success / `hep` a *further* wrong removal
//!   (mirroring `EXPns2 → DUns2` in Fig. 3);
//! * down (DU class): no failures and no repair progress (data unreachable);
//!   recovery at `(1−hep)·μ_he` (failed attempts retry in place);
//! * any `w > 0`: each removed disk crashes at `λ_crash`, converting to a
//!   failure;
//! * `DL`: full restore at `μ_DDF`.
//!
//! With `recovery_completes_repair = true` (default, matching Fig. 2's
//! `DU → OP` edge), a successful recovery also finishes the pending
//! replacement: `(f, w) → (f−1, w−1)` when `f ≥ 1`. For `m = 1` the
//! generated chain is then *exactly* Fig. 2, which the tests verify.

use super::SolvedChain;
use crate::error::{CoreError, Result};
use crate::params::ModelParams;
use availsim_ctmc::{Ctmc, CtmcBuilder, StateId};
use std::collections::HashMap;

/// Generic `k+m` availability model with human errors.
#[derive(Debug, Clone, Copy)]
pub struct GenericKofN {
    params: ModelParams,
    recovery_completes_repair: bool,
    rebuild_failure_probability: f64,
}

impl GenericKofN {
    /// Creates the model for any geometry with `m >= 1`.
    ///
    /// An attached [`ModelParams::with_scrubbing`] model seeds the
    /// rebuild-LSE branch (the exact-chain counterpart of the Monte-Carlo
    /// engines' Bernoulli on rebuild completion);
    /// [`Self::with_rebuild_failure_probability`] overrides it.
    ///
    /// # Errors
    /// Returns [`CoreError::InvalidParameter`] for zero-redundancy
    /// geometries or `hep = 1`.
    pub fn new(params: ModelParams) -> Result<Self> {
        params.validate()?;
        if params.geometry.fault_tolerance() == 0 {
            return Err(CoreError::InvalidParameter(
                "generic model needs at least one redundant disk".into(),
            ));
        }
        if params.hep.value() >= 1.0 {
            return Err(CoreError::InvalidParameter(
                "hep must be below 1 for a repairable model".into(),
            ));
        }
        Ok(GenericKofN {
            params,
            recovery_completes_repair: true,
            rebuild_failure_probability: params.rebuild_lse_probability(),
        })
    }

    /// Chooses whether a successful human-error recovery also completes the
    /// pending repair (the paper's Fig. 2 reading) or merely reinserts the
    /// disk. Exposed for ablation studies.
    pub fn with_recovery_completes_repair(mut self, yes: bool) -> Self {
        self.recovery_completes_repair = yes;
        self
    }

    /// Models latent sector errors (LSEs) discovered during reconstruction:
    /// with probability `p` a completing rebuild hits an unreadable sector
    /// on a surviving disk and the stripe must be restored from backup
    /// instead. The paper cites LSEs (Schroeder et al., TOS 2010) as a main
    /// data-loss source but does not model them; this hook extends the chain
    /// in the classic Elerath–Pecht direction.
    ///
    /// # Panics
    /// Panics if `p` is outside `[0, 1]`.
    pub fn with_rebuild_failure_probability(mut self, p: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p) && p.is_finite(),
            "probability out of range: {p}"
        );
        self.rebuild_failure_probability = p;
        self
    }

    /// The model parameters.
    pub fn params(&self) -> &ModelParams {
        &self.params
    }

    fn label(f: u32, w: u32) -> String {
        format!("F{f}W{w}")
    }

    /// Builds the chain.
    ///
    /// # Errors
    /// Propagates chain-construction errors (none occur for validated
    /// parameters).
    pub fn build_chain(&self) -> Result<Ctmc> {
        let p = &self.params;
        let n = p.disks();
        let m = p.geometry.fault_tolerance();
        let hep = p.hep.value();
        let lam = p.disk_failure_rate;

        let mut b = CtmcBuilder::new();
        let mut ids: HashMap<(u32, u32), StateId> = HashMap::new();
        // Reachable bounds: w grows only in up states (f + w <= m) plus one
        // final erroneous step, so w <= m + 1; f <= m within tracked states.
        for f in 0..=m {
            for w in 0..=(m + 1) {
                if f + w <= n {
                    ids.insert((f, w), b.state(Self::label(f, w))?);
                }
            }
        }
        let dl = b.state("DL")?;

        let is_up = |f: u32, w: u32| f + w <= m;
        for (&(f, w), &from) in &ids {
            let active = n - f - w;
            // Failures only while serving I/O.
            if is_up(f, w) && active > 0 {
                let rate = f64::from(active) * lam;
                let to = if f + 1 > m { dl } else { ids[&(f + 1, w)] };
                b.transition(from, to, rate)?;
            }
            // Repair progress only while serving I/O. A completing rebuild
            // may hit a latent sector error; the LSE only loses data when
            // the array has no redundancy slack left (f == m) — with f < m
            // the remaining parity reconstructs the unreadable sector, which
            // is exactly why double parity defuses the LSE threat.
            if is_up(f, w) && f >= 1 {
                let ue = if f == m {
                    self.rebuild_failure_probability
                } else {
                    0.0
                };
                b.transition(
                    from,
                    ids[&(f - 1, w)],
                    (1.0 - hep) * (1.0 - ue) * p.disk_repair_rate,
                )?;
                if ue > 0.0 {
                    b.transition(from, dl, (1.0 - hep) * ue * p.disk_repair_rate)?;
                }
                if active > 0 && ids.contains_key(&(f, w + 1)) {
                    b.transition(from, ids[&(f, w + 1)], hep * p.disk_repair_rate)?;
                }
            }
            // Wrong-removal recovery.
            if w >= 1 {
                let success_to = if self.recovery_completes_repair && f >= 1 {
                    ids[&(f - 1, w - 1)]
                } else {
                    ids[&(f, w - 1)]
                };
                b.transition(from, success_to, (1.0 - hep) * p.human_recovery_rate)?;
                // A failed recovery in an *up* state pulls yet another disk
                // (Fig. 3's EXPns2 → DUns2); in a down state it is a retry.
                if is_up(f, w) && active > 0 {
                    if let Some(&worse) = ids.get(&(f, w + 1)) {
                        b.transition(from, worse, hep * p.human_recovery_rate)?;
                    }
                }
                // Each removed disk can crash.
                let crash_to = if f + 1 > m { dl } else { ids[&(f + 1, w - 1)] };
                b.transition(from, crash_to, f64::from(w) * p.removed_crash_rate)?;
            }
        }
        b.transition(dl, ids[&(0, 0)], p.ddf_recovery_rate)?;
        Ok(b.build()?)
    }

    /// Solves the chain; down states are `DL` and every `(f, w)` with
    /// `f + w > m`.
    ///
    /// # Errors
    /// Propagates solver errors.
    pub fn solve(&self) -> Result<SolvedChain> {
        let m = self.params.geometry.fault_tolerance();
        let chain = self.build_chain()?;
        let mut down: Vec<String> = vec!["DL".to_string()];
        for (_, label) in chain.states().iter() {
            if let Some((f, w)) = parse_label(label) {
                if f + w > m {
                    down.push(label.to_string());
                }
            }
        }
        let down_refs: Vec<&str> = down.iter().map(String::as_str).collect();
        SolvedChain::solve(chain, &down_refs)
    }

    /// Mean time to data loss from the all-good state.
    ///
    /// # Errors
    /// Propagates absorbing-analysis errors.
    pub fn mttdl_hours(&self) -> Result<f64> {
        let chain = self.build_chain()?;
        let dl = chain.find_state("DL").expect("state exists");
        let start = chain.find_state(&Self::label(0, 0)).expect("state exists");
        let mut p0 = vec![0.0; chain.num_states()];
        p0[start.index()] = 1.0;
        Ok(chain.absorption(&p0, &[dl])?.mean_time)
    }
}

fn parse_label(label: &str) -> Option<(u32, u32)> {
    let rest = label.strip_prefix('F')?;
    let (f, w) = rest.split_once('W')?;
    Some((f.parse().ok()?, w.parse().ok()?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::markov::Raid5Conventional;
    use availsim_hra::Hep;
    use availsim_storage::RaidGeometry;

    fn params(geometry: RaidGeometry, lambda: f64, hep: f64) -> ModelParams {
        ModelParams::paper_defaults(geometry, lambda, Hep::new(hep).unwrap()).unwrap()
    }

    #[test]
    fn reduces_exactly_to_fig2_for_m1() {
        use crate::markov::raid5::WrongReplacementTiming;
        for &(lam, hep) in &[(1e-6, 0.01), (1e-5, 0.001), (5e-7, 0.0)] {
            let p = params(RaidGeometry::raid5(3).unwrap(), lam, hep);
            let generic = GenericKofN::new(p).unwrap().solve().unwrap();
            let fig2 = Raid5Conventional::new(p)
                .unwrap()
                .with_timing(WrongReplacementTiming::RepairCompletion)
                .solve()
                .unwrap();
            let (ug, uf) = (generic.unavailability(), fig2.unavailability());
            let rel = if uf == 0.0 { ug } else { (ug - uf).abs() / uf };
            assert!(
                rel < 1e-9,
                "lam={lam} hep={hep}: generic {ug:.6e} fig2 {uf:.6e}"
            );
        }
    }

    #[test]
    fn fig2_state_correspondence() {
        use crate::markov::raid5::WrongReplacementTiming;
        // The m=1 generic chain must map F0W0→OP, F1W0→EXP, F1W1→DU.
        let p = params(RaidGeometry::raid5(3).unwrap(), 1e-6, 0.01);
        let generic = GenericKofN::new(p).unwrap().solve().unwrap();
        let fig2 = Raid5Conventional::new(p)
            .unwrap()
            .with_timing(WrongReplacementTiming::RepairCompletion)
            .solve()
            .unwrap();
        for (g, f) in [
            ("F0W0", "OP"),
            ("F1W0", "EXP"),
            ("F1W1", "DU"),
            ("DL", "DL"),
        ] {
            let pg = generic.probability(g).unwrap();
            let pf = fig2.probability(f).unwrap();
            let rel = if pf == 0.0 { pg } else { (pg - pf).abs() / pf };
            assert!(rel < 1e-9, "{g} vs {f}: {pg:.6e} vs {pf:.6e}");
        }
    }

    #[test]
    fn raid6_tolerates_failure_plus_wrong_removal() {
        // In RAID6 the F1W1 state is up, so the availability at equal λ and
        // hep is far better than RAID5's.
        let p5 = params(RaidGeometry::raid5(6).unwrap(), 1e-5, 0.01);
        let p6 = params(RaidGeometry::raid6(6).unwrap(), 1e-5, 0.01);
        let u5 = GenericKofN::new(p5)
            .unwrap()
            .solve()
            .unwrap()
            .unavailability();
        let u6 = GenericKofN::new(p6)
            .unwrap()
            .solve()
            .unwrap()
            .unavailability();
        assert!(u6 < u5 / 10.0, "u6={u6:.3e} u5={u5:.3e}");
    }

    #[test]
    fn raid6_mttdl_exceeds_raid5() {
        let p5 = params(RaidGeometry::raid5(6).unwrap(), 1e-5, 0.001);
        let p6 = params(RaidGeometry::raid6(6).unwrap(), 1e-5, 0.001);
        let m5 = GenericKofN::new(p5).unwrap().mttdl_hours().unwrap();
        let m6 = GenericKofN::new(p6).unwrap().mttdl_hours().unwrap();
        assert!(m6 > 10.0 * m5, "m6={m6:.3e} m5={m5:.3e}");
    }

    #[test]
    fn raid6_with_human_error_still_beats_raid5_without() {
        // A single wrong removal leaves RAID6 serving I/O, so even at
        // hep = 0.01 its absolute unavailability stays far below RAID5's
        // hep = 0 baseline. (The *relative* blow-up can be larger for RAID6
        // simply because its baseline is orders of magnitude smaller.)
        let u5_clean = GenericKofN::new(params(RaidGeometry::raid5(6).unwrap(), 1e-5, 0.0))
            .unwrap()
            .solve()
            .unwrap()
            .unavailability();
        let u6_hep = GenericKofN::new(params(RaidGeometry::raid6(6).unwrap(), 1e-5, 0.01))
            .unwrap()
            .solve()
            .unwrap()
            .unavailability();
        let u6_clean = GenericKofN::new(params(RaidGeometry::raid6(6).unwrap(), 1e-5, 0.0))
            .unwrap()
            .solve()
            .unwrap()
            .unavailability();
        assert!(
            u6_hep < u5_clean / 10.0,
            "u6(hep)={u6_hep:.3e} u5(0)={u5_clean:.3e}"
        );
        // Human error still hurts RAID6 — the effect does not vanish.
        assert!(u6_hep > u6_clean, "{u6_hep:.3e} vs {u6_clean:.3e}");
    }

    #[test]
    fn ablation_recovery_semantics() {
        // Not completing the repair during recovery keeps the array exposed
        // longer; unavailability cannot decrease.
        let p = params(RaidGeometry::raid5(3).unwrap(), 1e-5, 0.01);
        let complete = GenericKofN::new(p)
            .unwrap()
            .solve()
            .unwrap()
            .unavailability();
        let reinsert_only = GenericKofN::new(p)
            .unwrap()
            .with_recovery_completes_repair(false)
            .solve()
            .unwrap()
            .unavailability();
        assert!(
            reinsert_only >= complete,
            "{reinsert_only:.3e} vs {complete:.3e}"
        );
    }

    #[test]
    fn raid0_rejected() {
        let p = params(RaidGeometry::raid0(4).unwrap(), 1e-6, 0.0);
        assert!(GenericKofN::new(p).is_err());
    }

    #[test]
    fn label_parser() {
        assert_eq!(parse_label("F1W2"), Some((1, 2)));
        assert_eq!(parse_label("F10W0"), Some((10, 0)));
        assert_eq!(parse_label("DL"), None);
    }

    #[test]
    fn scrubbing_params_seed_the_lse_branch() {
        use availsim_storage::ScrubbingModel;
        let m = ScrubbingModel::new(1e-4, 336.0).unwrap();
        let p = params(RaidGeometry::raid5(3).unwrap(), 1e-6, 0.01).with_scrubbing(m);
        let seeded = GenericKofN::new(p).unwrap();
        let explicit = GenericKofN::new(params(RaidGeometry::raid5(3).unwrap(), 1e-6, 0.01))
            .unwrap()
            .with_rebuild_failure_probability(p.rebuild_lse_probability());
        assert_eq!(
            seeded.solve().unwrap().unavailability().to_bits(),
            explicit.solve().unwrap().unavailability().to_bits()
        );
    }

    #[test]
    fn lse_free_model_is_unchanged() {
        let p = params(RaidGeometry::raid5(3).unwrap(), 1e-6, 0.01);
        let plain = GenericKofN::new(p)
            .unwrap()
            .solve()
            .unwrap()
            .unavailability();
        let zero_lse = GenericKofN::new(p)
            .unwrap()
            .with_rebuild_failure_probability(0.0)
            .solve()
            .unwrap()
            .unavailability();
        assert_eq!(plain.to_bits(), zero_lse.to_bits());
    }

    #[test]
    fn lse_increases_unavailability_and_cuts_mttdl() {
        let p = params(RaidGeometry::raid5(7).unwrap(), 1e-6, 0.001);
        let base = GenericKofN::new(p).unwrap();
        let with_lse = GenericKofN::new(p)
            .unwrap()
            .with_rebuild_failure_probability(0.05);
        assert!(
            with_lse.solve().unwrap().unavailability() > base.solve().unwrap().unavailability()
        );
        assert!(with_lse.mttdl_hours().unwrap() < base.mttdl_hours().unwrap() / 10.0);
    }

    #[test]
    fn raid6_mitigates_lse_exposure() {
        // The classic argument for double parity: a RAID5 rebuild with an
        // LSE loses data immediately (it runs at zero redundancy slack),
        // while a RAID6 rebuild after a single failure still has a parity to
        // cover the unreadable sector — only the already-rare double-failure
        // rebuild is exposed. The comparison is absolute: RAID6 with LSEs
        // must stay far below even a *clean* RAID5.
        let u = |geom: RaidGeometry, lse: f64| {
            let p = params(geom, 1e-5, 0.001);
            GenericKofN::new(p)
                .unwrap()
                .with_rebuild_failure_probability(lse)
                .solve()
                .unwrap()
                .unavailability()
        };
        let r5_clean = u(RaidGeometry::raid5(6).unwrap(), 0.0);
        let r5_lse = u(RaidGeometry::raid5(6).unwrap(), 0.02);
        let r6_lse = u(RaidGeometry::raid6(6).unwrap(), 0.02);
        assert!(
            r6_lse < r5_lse / 100.0,
            "r6 {r6_lse:.3e} vs r5 {r5_lse:.3e}"
        );
        assert!(
            r6_lse < r5_clean,
            "r6+LSE {r6_lse:.3e} vs clean r5 {r5_clean:.3e}"
        );
    }

    #[test]
    #[should_panic(expected = "probability out of range")]
    fn lse_probability_validated() {
        let p = params(RaidGeometry::raid5(3).unwrap(), 1e-6, 0.0);
        let _ = GenericKofN::new(p)
            .unwrap()
            .with_rebuild_failure_probability(1.5);
    }

    #[test]
    fn probabilities_sum_to_one_for_raid6() {
        let p = params(RaidGeometry::raid6(8).unwrap(), 1e-5, 0.005);
        let s = GenericKofN::new(p).unwrap().solve().unwrap();
        let total: f64 = s.probabilities().iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
    }
}
