//! The paper's Fig. 2 Markov model: RAID5 availability under conventional
//! disk replacement, with human errors.
//!
//! States:
//!
//! * `OP` — all disks operational (up);
//! * `EXP` — one disk failed, replacement/rebuild in progress (up, exposed);
//! * `DU` — data unavailable: a wrong disk replacement pulled an operating
//!   disk while the array was exposed (down, no data lost);
//! * `DL` — data loss: double disk failure, restore from backup (down).
//!
//! Transitions (rates per hour):
//!
//! ```text
//! OP  --n·λ-->              EXP
//! EXP --(n−1)·λ-->          DL
//! EXP --(1−hep)·μ_DF-->     OP     (successful replacement + rebuild)
//! EXP --hep·μ_DF-->         DU     (wrong disk replacement)
//! DU  --(1−hep)·μ_he-->     OP     (error undone; repair completed)
//! DU  --λ_crash-->          DL     (wrongly removed disk crashes)
//! DL  --μ_DDF-->            OP     (restore from backup)
//! ```
//!
//! With an attached [`availsim_storage::ScrubbingModel`] the rebuild
//! completion is split by the per-rebuild LSE-hit probability `ue`: the
//! `EXP → OP` rate thins to `(1−hep)·(1−ue)·μ_DF` and the lost mass
//! `(1−hep)·ue·μ_DF` joins the `EXP → DL` rate — a rebuild that reads an
//! unreadable sector loses data instead of completing. At `ue = 0` the
//! chain is bit-exact with the unsplit one.
//!
//! The figure's `hep·μ_he` self-loop on `DU` (a failed recovery retry) is a
//! CTMC no-op; it appears here as the thinning of the recovery rate to
//! `(1−hep)·μ_he`, exactly as the paper's residual terms imply.
//!
//! The same structure with `n = 2` is the paper's RAID1(1+1) model: the
//! mirror tolerates one missing disk, a second failure loses data, and a
//! wrong replacement of the surviving mirror makes data unavailable.

use super::SolvedChain;
use crate::error::{CoreError, Result};
use crate::params::ModelParams;
use availsim_ctmc::{Ctmc, CtmcBuilder};

/// Labels of the four states.
pub const STATE_OP: &str = "OP";
/// Exposed state label (one failed disk).
pub const STATE_EXP: &str = "EXP";
/// Data-unavailable state label (human error).
pub const STATE_DU: &str = "DU";
/// Data-loss state label (double disk failure).
pub const STATE_DL: &str = "DL";

/// Which service rate the wrong replacement scales with.
///
/// The paper's Fig. 2 labels the `EXP → DU` edge `hep·μ_DF`, but its
/// parameter list quotes `μ_s = 1` (the replacement-action rate) and its
/// headline numbers — the up-to-263× downtime underestimation and the
/// two-orders-of-magnitude fail-over gain — only reproduce when the wrong
/// pull occurs at the replacement-action timescale, `hep·μ_s`. Physically:
/// the technician pulls a disk within the first hour of service (`μ_s = 1`),
/// while the full replace+rebuild completes at `μ_DF = 0.1`. Both readings
/// are provided; [`WrongReplacementTiming::ChangeAction`] is the default and
/// EXPERIMENTS.md quantifies the difference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WrongReplacementTiming {
    /// `EXP → DU` at `hep·μ_ch` (reproduces the paper's headline numbers).
    #[default]
    ChangeAction,
    /// `EXP → DU` at `hep·μ_DF` (Fig. 2 exactly as labeled).
    RepairCompletion,
}

/// The Fig. 2 model for a single-fault-tolerant array (RAID5 `k+1` or a
/// RAID1 pair).
///
/// # Examples
///
/// ```
/// use availsim_core::markov::Raid5Conventional;
/// use availsim_core::ModelParams;
/// use availsim_hra::Hep;
///
/// # fn main() -> Result<(), availsim_core::CoreError> {
/// let params = ModelParams::raid5_3plus1(1e-6, Hep::new(0.01)?)?;
/// let solved = Raid5Conventional::new(params)?.solve()?;
/// // Ignoring human error (hep = 0) under-reports unavailability:
/// let baseline = Raid5Conventional::new(params.with_hep(Hep::ZERO))?.solve()?;
/// assert!(solved.unavailability() > baseline.unavailability());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Raid5Conventional {
    params: ModelParams,
    timing: WrongReplacementTiming,
}

impl Raid5Conventional {
    /// Creates the model.
    ///
    /// # Errors
    /// Returns [`CoreError::InvalidParameter`] if the geometry is not
    /// single-fault-tolerant, if `hep = 1` (the chain would be degenerate),
    /// or if any rate is invalid.
    pub fn new(params: ModelParams) -> Result<Self> {
        params.validate()?;
        if params.geometry.fault_tolerance() != 1 {
            return Err(CoreError::InvalidParameter(format!(
                "the Fig. 2 model applies to single-fault-tolerant arrays; {} tolerates {}",
                params.geometry.label(),
                params.geometry.fault_tolerance()
            )));
        }
        if params.hep.value() >= 1.0 {
            return Err(CoreError::InvalidParameter(
                "hep must be below 1 for a repairable model".into(),
            ));
        }
        Ok(Raid5Conventional {
            params,
            timing: WrongReplacementTiming::default(),
        })
    }

    /// Selects the wrong-replacement timing reading (ablation hook).
    pub fn with_timing(mut self, timing: WrongReplacementTiming) -> Self {
        self.timing = timing;
        self
    }

    /// The model parameters.
    pub fn params(&self) -> &ModelParams {
        &self.params
    }

    /// The rate at which a wrong replacement takes the exposed array down:
    /// `hep` times the selected service rate.
    pub fn wrong_replacement_rate(&self) -> f64 {
        let base = match self.timing {
            WrongReplacementTiming::ChangeAction => self.params.disk_change_rate,
            WrongReplacementTiming::RepairCompletion => self.params.disk_repair_rate,
        };
        self.params.hep.value() * base
    }

    /// Builds the four-state chain.
    ///
    /// # Errors
    /// Propagates chain-construction errors (none occur for validated
    /// parameters).
    pub fn build_chain(&self) -> Result<Ctmc> {
        let p = &self.params;
        let n = f64::from(p.disks());
        let hep = p.hep.value();
        // An attached scrubbing model splits the rebuild completion by the
        // per-rebuild LSE-hit probability `ue`: the reads of the surviving
        // disks hit a latent sector error with probability `ue`, losing
        // data instead of returning to OP — the exact-chain twin of the
        // Monte-Carlo engines' Bernoulli on rebuild completion. At ue = 0
        // the arithmetic is bit-exact with the unsplit rates (`·1.0` and
        // `+ 0.0` are identities on finite positive rates).
        let ue = p.rebuild_lse_probability();

        let mut b = CtmcBuilder::new();
        let op = b.state(STATE_OP)?;
        let exp = b.state(STATE_EXP)?;
        let du = b.state(STATE_DU)?;
        let dl = b.state(STATE_DL)?;

        b.transition(op, exp, n * p.disk_failure_rate)?;
        b.transition(
            exp,
            dl,
            (n - 1.0) * p.disk_failure_rate + (1.0 - hep) * ue * p.disk_repair_rate,
        )?;
        b.transition(exp, op, (1.0 - hep) * (1.0 - ue) * p.disk_repair_rate)?;
        b.transition(exp, du, self.wrong_replacement_rate())?;
        b.transition(du, op, (1.0 - hep) * p.human_recovery_rate)?;
        b.transition(du, dl, p.removed_crash_rate)?;
        b.transition(dl, op, p.ddf_recovery_rate)?;
        Ok(b.build()?)
    }

    /// Solves for the stationary distribution; `DU` and `DL` are the down
    /// states.
    ///
    /// # Errors
    /// Propagates solver errors.
    pub fn solve(&self) -> Result<SolvedChain> {
        SolvedChain::solve(self.build_chain()?, &[STATE_DU, STATE_DL])
    }

    /// Mean time to data loss (hours): expected time to first hit `DL`
    /// starting from `OP`.
    ///
    /// # Errors
    /// Propagates absorbing-analysis errors.
    pub fn mttdl_hours(&self) -> Result<f64> {
        let chain = self.build_chain()?;
        let dl = chain.find_state(STATE_DL).expect("state exists");
        let mut p0 = vec![0.0; chain.num_states()];
        p0[chain.find_state(STATE_OP).expect("state exists").index()] = 1.0;
        Ok(chain.absorption(&p0, &[dl])?.mean_time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use availsim_hra::Hep;

    fn model(lambda: f64, hep: f64) -> Raid5Conventional {
        let params = ModelParams::raid5_3plus1(lambda, Hep::new(hep).unwrap()).unwrap();
        Raid5Conventional::new(params).unwrap()
    }

    #[test]
    fn chain_shape_matches_fig2() {
        let chain = model(1e-6, 0.01).build_chain().unwrap();
        assert_eq!(chain.num_states(), 4);
        assert_eq!(chain.num_transitions(), 7);
        let op = chain.find_state(STATE_OP).unwrap();
        let exp = chain.find_state(STATE_EXP).unwrap();
        assert!((chain.rate(op, exp) - 4e-6).abs() < 1e-18);
    }

    #[test]
    fn hep_zero_reduces_to_classic_raid5_chain() {
        // With hep = 0 the DU state is unreachable and the unavailability is
        // the classic nλ/μ_DF · (n−1)λ/μ_DDF expression (first order).
        let solved = model(1e-6, 0.0).solve().unwrap();
        assert_eq!(solved.probability(STATE_DU).unwrap(), 0.0);
        let u = solved.unavailability();
        let expect = (4e-6 / 0.1) * (3e-6 / 0.03); // π_EXP·(n−1)λ/µDDF approx
        let rel = (u - expect).abs() / expect;
        assert!(rel < 0.01, "u={u:.3e} expect≈{expect:.3e}");
    }

    #[test]
    fn du_probability_matches_first_order_analysis() {
        // π_DU ≈ π_OP · nλ/exit(EXP) · hep·μ_s / ((1−hep)·μ_he + λ_crash).
        let solved = model(1e-6, 0.01).solve().unwrap();
        let du = solved.probability(STATE_DU).unwrap();
        let exit_exp = 3e-6 + 0.99 * 0.1 + 0.01 * 1.0;
        let expect = (4e-6 / exit_exp) * (0.01 * 1.0) / (0.99 * 1.0 + 0.01);
        let rel = (du - expect).abs() / expect;
        assert!(rel < 0.01, "du={du:.3e} expect≈{expect:.3e}");
    }

    #[test]
    fn timing_readings_differ_by_the_rate_ratio() {
        // The as-labeled reading enters DU at hep·μ_DF = hep·0.1; the
        // change-action reading at hep·μ_s = hep·1.0 — ten times more DU
        // mass, everything else equal.
        let params = ModelParams::raid5_3plus1(1e-6, Hep::new(0.01).unwrap()).unwrap();
        let fast = Raid5Conventional::new(params).unwrap().solve().unwrap();
        let labeled = Raid5Conventional::new(params)
            .unwrap()
            .with_timing(WrongReplacementTiming::RepairCompletion)
            .solve()
            .unwrap();
        let ratio = fast.probability(STATE_DU).unwrap() / labeled.probability(STATE_DU).unwrap();
        assert!((ratio - 10.0).abs() < 1.0, "ratio {ratio}");
    }

    #[test]
    fn unavailability_increases_with_hep() {
        let u0 = model(1e-6, 0.0).solve().unwrap().unavailability();
        let u1 = model(1e-6, 0.001).solve().unwrap().unavailability();
        let u2 = model(1e-6, 0.01).solve().unwrap().unavailability();
        assert!(u0 < u1 && u1 < u2, "{u0:.3e} {u1:.3e} {u2:.3e}");
    }

    #[test]
    fn paper_headline_order_of_magnitude_drop() {
        // §V-B: at hep = 0.001 availability drops one to two orders of
        // magnitude versus hep = 0. The effect strengthens as λ shrinks
        // (the DL baseline scales with λ², the DU term with λ).
        let u0 = model(1e-7, 0.0).solve().unwrap().unavailability();
        let u1 = model(1e-7, 0.001).solve().unwrap().unavailability();
        let ratio = u1 / u0;
        assert!(ratio > 10.0 && ratio < 200.0, "ratio {ratio}");
    }

    #[test]
    fn paper_headline_263x_underestimation() {
        // §I: "up to 263X" downtime underestimation. At the bottom of the
        // Fig. 4 sweep (λ = 5e-7) with hep = 0.01 the exact chain gives a
        // ratio in the 200–300× band; the crash path DU→DL contributes a
        // third of π_DU on top of the direct DU mass.
        let u0 = model(5e-7, 0.0).solve().unwrap().unavailability();
        let u1 = model(5e-7, 0.01).solve().unwrap().unavailability();
        let ratio = u1 / u0;
        assert!(ratio > 200.0 && ratio < 320.0, "ratio {ratio}");
    }

    #[test]
    fn raid1_pair_uses_same_structure() {
        use availsim_storage::RaidGeometry;
        let params =
            ModelParams::paper_defaults(RaidGeometry::raid1_pair(), 1e-5, Hep::new(0.001).unwrap())
                .unwrap();
        let m = Raid5Conventional::new(params).unwrap();
        let chain = m.build_chain().unwrap();
        let op = chain.find_state(STATE_OP).unwrap();
        let exp = chain.find_state(STATE_EXP).unwrap();
        // n = 2: OP -> EXP at 2λ.
        assert!((chain.rate(op, exp) - 2e-5).abs() < 1e-18);
        assert!(m.solve().unwrap().availability() > 0.99);
    }

    #[test]
    fn raid6_rejected_by_fig2_model() {
        use availsim_storage::RaidGeometry;
        let params =
            ModelParams::paper_defaults(RaidGeometry::raid6(6).unwrap(), 1e-6, Hep::ZERO).unwrap();
        assert!(Raid5Conventional::new(params).is_err());
    }

    #[test]
    fn hep_one_rejected() {
        let params = ModelParams::raid5_3plus1(1e-6, Hep::new(1.0).unwrap()).unwrap();
        assert!(Raid5Conventional::new(params).is_err());
    }

    #[test]
    fn live_lse_model_rejected_by_fig3_but_split_into_fig2() {
        use crate::markov::Raid5FailOver;
        use availsim_storage::ScrubbingModel;
        let live = ModelParams::raid5_3plus1(1e-6, Hep::new(0.01).unwrap())
            .unwrap()
            .with_scrubbing(ScrubbingModel::new(1e-4, 336.0).unwrap());
        // Fig. 3 has no rebuild-completion edge to split; it must reject.
        let err = Raid5FailOver::new(live).unwrap_err().to_string();
        assert!(err.contains("LSE-aware rebuilds"), "{err}");
        // Fig. 2 accepts, keeps the four-state shape, and routes the lost
        // rebuild mass to DL: unavailability rises, MTTDL shrinks.
        let lossy = Raid5Conventional::new(live).unwrap();
        assert_eq!(lossy.build_chain().unwrap().num_transitions(), 7);
        let base = Raid5Conventional::new(
            ModelParams::raid5_3plus1(1e-6, Hep::new(0.01).unwrap()).unwrap(),
        )
        .unwrap();
        assert!(lossy.solve().unwrap().unavailability() > base.solve().unwrap().unavailability());
        assert!(lossy.mttdl_hours().unwrap() < base.mttdl_hours().unwrap());
        // A zero-rate model is a bitwise no-op on Fig. 2 and stays accepted
        // on Fig. 3.
        let zero = ModelParams::raid5_3plus1(1e-6, Hep::new(0.01).unwrap())
            .unwrap()
            .with_scrubbing(ScrubbingModel::new(0.0, 336.0).unwrap());
        let zeroed = Raid5Conventional::new(zero).unwrap();
        assert_eq!(
            zeroed.solve().unwrap().unavailability().to_bits(),
            base.solve().unwrap().unavailability().to_bits()
        );
        assert!(Raid5FailOver::new(zero).is_ok());
    }

    #[test]
    fn mttdl_matches_closed_form_without_hep() {
        // Classic 3-state result: MTTDL = (μ + nλ + (n−1)λ)/(n(n−1)λ²).
        let m = model(1e-4, 0.0);
        let mttdl = m.mttdl_hours().unwrap();
        let (n, lam, mu) = (4.0, 1e-4, 0.1);
        let expect = (mu + n * lam + (n - 1.0) * lam) / (n * (n - 1.0) * lam * lam);
        let rel = (mttdl - expect).abs() / expect;
        assert!(rel < 1e-9, "mttdl {mttdl} expect {expect}");
    }

    #[test]
    fn mttdl_shrinks_with_human_error() {
        let without = model(1e-5, 0.0).mttdl_hours().unwrap();
        let with = model(1e-5, 0.01).mttdl_hours().unwrap();
        assert!(with < without);
    }

    #[test]
    fn downtime_minutes_scale() {
        // Sanity: at λ=1e-6, hep=0, unavailability ≈ 4e-9 → ~0.002 min/yr.
        let solved = model(1e-6, 0.0).solve().unwrap();
        let m = solved.downtime_minutes_per_year();
        assert!(m > 1e-4 && m < 1e-1, "minutes {m}");
    }
}
