//! The paper's Fig. 3 Markov model: RAID5 with automatic disk fail-over
//! (delayed replacement) and a hot spare.
//!
//! Twelve states; `ns` marks "no spare available". Up states serve I/O
//! (possibly degraded); `DU*` are human-error outages; `DL*` are data-loss
//! outages.
//!
//! | state | meaning |
//! |-------|---------|
//! | `OP` | all disks fine, spare present |
//! | `EXP1` | one failed disk, automatic rebuild into the spare running |
//! | `OPns` | all disks fine, spare consumed, dead disk awaiting change |
//! | `EXPns1` | one failed disk, no spare |
//! | `EXPns2` | wrong replacement pulled a live disk (no failure), no spare |
//! | `EXP2` | like `EXPns2` with a spare present |
//! | `DU1` | failed + wrongly removed disk, spare present (down) |
//! | `DU2` | two wrongly removed disks, spare present (down) |
//! | `DUns1` | failed + wrongly removed disk, no spare (down) |
//! | `DUns2` | two wrongly removed disks, no spare (down) |
//! | `DL` | double disk failure, spare present (down) |
//! | `DLns` | double disk failure, no spare (down) |
//!
//! The scanned figure in the paper is partially garbled; DESIGN.md §3.2
//! documents the reconstruction. Every transition stated in the paper's
//! prose is present; the two analogy-derived edges (`DU1 → OP` at `μ_DDF`
//! and `DU1 → DU2` at `hep·μ_he`) are marked in DESIGN.md and carry
//! negligible probability mass.

use super::SolvedChain;
use crate::error::{CoreError, Result};
use crate::params::ModelParams;
use availsim_ctmc::{Ctmc, CtmcBuilder};

/// Down-state labels of the fail-over model.
pub const DOWN_STATES: [&str; 6] = ["DU1", "DU2", "DUns1", "DUns2", "DL", "DLns"];

/// The Fig. 3 model.
///
/// # Examples
///
/// ```
/// use availsim_core::markov::{Raid5Conventional, Raid5FailOver};
/// use availsim_core::ModelParams;
/// use availsim_hra::Hep;
///
/// # fn main() -> Result<(), availsim_core::CoreError> {
/// let params = ModelParams::raid5_3plus1(1e-6, Hep::new(0.01)?)?;
/// let conventional = Raid5Conventional::new(params)?.solve()?;
/// let failover = Raid5FailOver::new(params)?.solve()?;
/// // Automatic fail-over shields the exposed window from human error:
/// assert!(failover.unavailability() < conventional.unavailability());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Raid5FailOver {
    params: ModelParams,
}

impl Raid5FailOver {
    /// Creates the model.
    ///
    /// # Errors
    /// Returns [`CoreError::InvalidParameter`] for geometries that are not
    /// single-fault-tolerant, `hep = 1`, or invalid rates.
    pub fn new(params: ModelParams) -> Result<Self> {
        params.validate()?;
        if params.geometry.fault_tolerance() != 1 {
            return Err(CoreError::InvalidParameter(format!(
                "the Fig. 3 model applies to single-fault-tolerant arrays; {} tolerates {}",
                params.geometry.label(),
                params.geometry.fault_tolerance()
            )));
        }
        if params.hep.value() >= 1.0 {
            return Err(CoreError::InvalidParameter(
                "hep must be below 1 for a repairable model".into(),
            ));
        }
        if params.rebuild_lse_probability() > 0.0 {
            return Err(CoreError::InvalidParameter(
                "the Fig. 3 chain does not support LSE-aware rebuilds; \
                 remove the scrubbing model (or set `lse_rate = 0`), or use \
                 the generic k+m chain / the Monte-Carlo engines"
                    .into(),
            ));
        }
        Ok(Raid5FailOver { params })
    }

    /// The model parameters.
    pub fn params(&self) -> &ModelParams {
        &self.params
    }

    /// Builds the twelve-state chain (transition table in DESIGN.md §3.2).
    ///
    /// # Errors
    /// Propagates chain-construction errors (none occur for validated
    /// parameters).
    pub fn build_chain(&self) -> Result<Ctmc> {
        let p = &self.params;
        let n = f64::from(p.disks());
        let hep = p.hep.value();
        let lam = p.disk_failure_rate;
        let mu_df = p.disk_repair_rate;
        let mu_ddf = p.ddf_recovery_rate;
        let mu_he = p.human_recovery_rate;
        let mu_ch = p.disk_change_rate;
        let crash = p.removed_crash_rate;

        let mut b = CtmcBuilder::new();
        let op = b.state("OP")?;
        let exp1 = b.state("EXP1")?;
        let opns = b.state("OPns")?;
        let expns1 = b.state("EXPns1")?;
        let expns2 = b.state("EXPns2")?;
        let exp2 = b.state("EXP2")?;
        let du1 = b.state("DU1")?;
        let du2 = b.state("DU2")?;
        let duns1 = b.state("DUns1")?;
        let duns2 = b.state("DUns2")?;
        let dl = b.state("DL")?;
        let dlns = b.state("DLns")?;

        // OP: failure starts the automatic fail-over.
        b.transition(op, exp1, n * lam)?;
        // EXP1: second failure loses data; rebuild completes hands-free.
        b.transition(exp1, dl, (n - 1.0) * lam)?;
        b.transition(exp1, opns, mu_df)?;
        // OPns: replace the dead disk to restore the spare (human action).
        b.transition(opns, expns1, n * lam)?;
        b.transition(opns, op, (1.0 - hep) * mu_ch)?;
        b.transition(opns, expns2, hep * mu_ch)?;
        // EXPns1: fail-over and replacement race; either can err.
        b.transition(expns1, opns, (1.0 - hep) * mu_df)?;
        b.transition(expns1, exp1, (1.0 - hep) * mu_ch)?;
        b.transition(expns1, duns1, hep * (mu_df + mu_ch))?;
        b.transition(expns1, dlns, (n - 1.0) * lam)?;
        // EXPns2: undo the wrong replacement (completes the swap on success).
        b.transition(expns2, op, (1.0 - hep) * mu_he)?;
        b.transition(expns2, duns2, hep * mu_he)?;
        b.transition(expns2, expns1, crash)?;
        b.transition(expns2, duns1, (n - 1.0) * lam)?;
        // DUns1: four competing recoveries (undo, crash, give-up restore,
        // replacement of the failed disk).
        b.transition(duns1, expns1, (1.0 - hep) * mu_he)?;
        b.transition(duns1, dlns, crash)?;
        b.transition(duns1, opns, mu_ddf)?;
        b.transition(duns1, du1, (1.0 - hep) * mu_ch)?;
        // DUns2: undo one of the two wrong removals, or one crashes.
        b.transition(duns2, expns2, (1.0 - hep) * mu_he)?;
        b.transition(duns2, duns1, 2.0 * crash)?;
        // DLns: restore, or replace a failed disk to regain a spare.
        b.transition(dlns, opns, mu_ddf)?;
        b.transition(dlns, dl, (1.0 - hep) * mu_ch)?;
        // DL: restore from backup with the spare already present.
        b.transition(dl, op, mu_ddf)?;
        // DU1 cluster (spare present) — analogous to DUns1/DUns2/EXPns2.
        b.transition(du1, exp1, (1.0 - hep) * mu_he)?;
        b.transition(du1, dl, crash)?;
        b.transition(du1, op, mu_ddf)?;
        b.transition(du1, du2, hep * mu_he)?;
        b.transition(du2, exp2, (1.0 - hep) * mu_he)?;
        b.transition(du2, du1, 2.0 * crash)?;
        b.transition(exp2, op, (1.0 - hep) * mu_he)?;
        b.transition(exp2, du2, hep * mu_he)?;
        b.transition(exp2, exp1, crash)?;
        b.transition(exp2, du1, (n - 1.0) * lam)?;

        Ok(b.build()?)
    }

    /// Solves for the stationary distribution with the `DU*`/`DL*` states
    /// down.
    ///
    /// # Errors
    /// Propagates solver errors.
    pub fn solve(&self) -> Result<SolvedChain> {
        SolvedChain::solve(self.build_chain()?, &DOWN_STATES)
    }

    /// Mean time to data loss (hours): first passage from `OP` into either
    /// `DL` or `DLns`.
    ///
    /// # Errors
    /// Propagates absorbing-analysis errors.
    pub fn mttdl_hours(&self) -> Result<f64> {
        let chain = self.build_chain()?;
        let dl = chain.find_state("DL").expect("state exists");
        let dlns = chain.find_state("DLns").expect("state exists");
        let mut p0 = vec![0.0; chain.num_states()];
        p0[chain.find_state("OP").expect("state exists").index()] = 1.0;
        Ok(chain.absorption(&p0, &[dl, dlns])?.mean_time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::markov::Raid5Conventional;
    use availsim_hra::Hep;

    fn model(lambda: f64, hep: f64) -> Raid5FailOver {
        let params = ModelParams::raid5_3plus1(lambda, Hep::new(hep).unwrap()).unwrap();
        Raid5FailOver::new(params).unwrap()
    }

    #[test]
    fn chain_has_twelve_states() {
        let chain = model(1e-6, 0.01).build_chain().unwrap();
        assert_eq!(chain.num_states(), 12);
        for label in DOWN_STATES {
            assert!(chain.find_state(label).is_some(), "{label} missing");
        }
    }

    #[test]
    fn probabilities_sum_to_one() {
        let s = model(1e-6, 0.01).solve().unwrap();
        let total: f64 = s.probabilities().iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn hep_zero_leaves_error_states_empty() {
        let s = model(1e-6, 0.0).solve().unwrap();
        for label in ["EXPns2", "EXP2", "DU1", "DU2", "DUns1", "DUns2"] {
            assert_eq!(
                s.probability(label).unwrap(),
                0.0,
                "{label} should be unreachable"
            );
        }
        assert!(s.probability("OPns").unwrap() > 0.0);
    }

    #[test]
    fn failover_beats_conventional_at_high_hep() {
        // §V-D: automatic fail-over moderates the human-error impact.
        for &hep in &[0.001, 0.01] {
            let params = ModelParams::raid5_3plus1(1e-6, Hep::new(hep).unwrap()).unwrap();
            let conv = Raid5Conventional::new(params).unwrap().solve().unwrap();
            let fo = Raid5FailOver::new(params).unwrap().solve().unwrap();
            assert!(
                fo.unavailability() < conv.unavailability(),
                "hep={hep}: fo={:.3e} conv={:.3e}",
                fo.unavailability(),
                conv.unavailability()
            );
        }
    }

    #[test]
    fn failover_gain_grows_with_hep() {
        // The paper: "delayed replacement shows higher availability
        // improvement when hep has greater values".
        let gain = |hep: f64| {
            let params = ModelParams::raid5_3plus1(1e-6, Hep::new(hep).unwrap()).unwrap();
            let conv = Raid5Conventional::new(params).unwrap().solve().unwrap();
            let fo = Raid5FailOver::new(params).unwrap().solve().unwrap();
            conv.unavailability() / fo.unavailability()
        };
        let g_low = gain(0.001);
        let g_high = gain(0.01);
        assert!(g_high > g_low, "gains {g_low} vs {g_high}");
        assert!(
            g_high > 5.0,
            "expected a large gain at hep=0.01, got {g_high}"
        );
    }

    #[test]
    fn du_mass_is_suppressed_versus_conventional() {
        // The whole point of delayed replacement: P(DU-class) collapses.
        let params = ModelParams::raid5_3plus1(1e-6, Hep::new(0.01).unwrap()).unwrap();
        let conv = Raid5Conventional::new(params).unwrap().solve().unwrap();
        let fo = Raid5FailOver::new(params).unwrap().solve().unwrap();
        let conv_du = conv.probability("DU").unwrap();
        let fo_du: f64 = ["DU1", "DU2", "DUns1", "DUns2"]
            .iter()
            .map(|l| fo.probability(l).unwrap())
            .sum();
        assert!(
            fo_du < conv_du / 10.0,
            "fo_du={fo_du:.3e} conv_du={conv_du:.3e}"
        );
    }

    #[test]
    fn mttdl_positive_and_shrinks_with_hep() {
        let m0 = model(1e-5, 0.0).mttdl_hours().unwrap();
        let m1 = model(1e-5, 0.01).mttdl_hours().unwrap();
        assert!(m0 > 0.0 && m1 > 0.0);
        assert!(m1 < m0, "hep should not extend MTTDL: {m1} vs {m0}");
    }

    #[test]
    fn invalid_geometry_and_hep_rejected() {
        use availsim_storage::RaidGeometry;
        let p6 =
            ModelParams::paper_defaults(RaidGeometry::raid6(4).unwrap(), 1e-6, Hep::ZERO).unwrap();
        assert!(Raid5FailOver::new(p6).is_err());
        let p1 = ModelParams::raid5_3plus1(1e-6, Hep::new(1.0).unwrap()).unwrap();
        assert!(Raid5FailOver::new(p1).is_err());
    }

    #[test]
    fn balance_equations_hold() {
        let m = model(2e-6, 0.005);
        let chain = m.build_chain().unwrap();
        let pi = chain.steady_state().unwrap();
        let q = chain.generator();
        let residual = q.vec_mul(&pi).unwrap();
        let max: f64 = residual.iter().fold(0.0f64, |a, b| a.max(b.abs()));
        assert!(max < 1e-12, "residual {max}");
    }
}
