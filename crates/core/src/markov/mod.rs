//! Markov (CTMC) availability models.
//!
//! * [`Raid5Conventional`] — the paper's Fig. 2 four-state chain
//!   (conventional disk replacement; also covers RAID1 with `n = 2`).
//! * [`Raid5FailOver`] — the paper's Fig. 3 twelve-state chain
//!   (automatic fail-over with a hot spare).
//! * [`GenericKofN`] — a `(failed, wrongly-removed)` chain generator for any
//!   `k+m` geometry, which reduces to Fig. 2 at `m = 1` and extends the
//!   paper to RAID6.

mod failover;
mod generic;
mod raid5;

pub use failover::Raid5FailOver;
pub use generic::GenericKofN;
pub use raid5::{Raid5Conventional, WrongReplacementTiming};

/// Labels of the fail-over model's down states (DU and DL classes).
pub fn failover_down_states() -> [&'static str; 6] {
    failover::DOWN_STATES
}

use crate::error::Result;
use crate::nines;
use availsim_ctmc::{Ctmc, StateId};

/// A solved chain: stationary distribution plus an up/down classification.
#[derive(Debug, Clone)]
pub struct SolvedChain {
    chain: Ctmc,
    pi: Vec<f64>,
    down: Vec<bool>,
}

impl SolvedChain {
    /// Solves the chain's steady state (GTH) and classifies the listed
    /// labels as down states.
    ///
    /// # Errors
    /// Propagates solver errors; unknown labels are ignored deliberately so
    /// model variants can share down-label lists.
    pub fn solve(chain: Ctmc, down_labels: &[&str]) -> Result<Self> {
        let pi = chain.steady_state()?;
        let mut down = vec![false; chain.num_states()];
        for label in down_labels {
            if let Some(id) = chain.find_state(label) {
                down[id.index()] = true;
            }
        }
        Ok(SolvedChain { chain, pi, down })
    }

    /// The underlying chain.
    pub fn chain(&self) -> &Ctmc {
        &self.chain
    }

    /// The stationary distribution.
    pub fn probabilities(&self) -> &[f64] {
        &self.pi
    }

    /// Stationary probability of a labeled state.
    pub fn probability(&self, label: &str) -> Option<f64> {
        self.chain.find_state(label).map(|id| self.pi[id.index()])
    }

    /// Steady-state unavailability, computed as the *sum of down-state
    /// probabilities* — each solved to full relative accuracy by GTH, so the
    /// result is meaningful even at the 1e-12 level where `1 − A` would be
    /// pure round-off.
    pub fn unavailability(&self) -> f64 {
        self.pi
            .iter()
            .zip(&self.down)
            .filter(|(_, &d)| d)
            .map(|(p, _)| p)
            .sum()
    }

    /// Steady-state availability.
    pub fn availability(&self) -> f64 {
        1.0 - self.unavailability()
    }

    /// Availability expressed as a number of nines.
    pub fn nines(&self) -> f64 {
        nines::nines_from_unavailability(self.unavailability())
    }

    /// Expected downtime in minutes per year.
    pub fn downtime_minutes_per_year(&self) -> f64 {
        nines::downtime_minutes_per_year(self.unavailability())
    }

    /// The down states of this model.
    pub fn down_states(&self) -> Vec<StateId> {
        (0..self.chain.num_states())
            .filter(|&i| self.down[i])
            .map(|i| self.chain.states().nth(i).expect("index in range"))
            .collect()
    }

    /// A labeled view of the stationary distribution, sorted by state index.
    pub fn labeled_probabilities(&self) -> Vec<(String, f64)> {
        self.chain
            .states()
            .iter()
            .map(|(id, label)| (label.to_string(), self.pi[id.index()]))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use availsim_ctmc::CtmcBuilder;

    fn toy() -> Ctmc {
        let mut b = CtmcBuilder::new();
        let up = b.state("up").unwrap();
        let down = b.state("down").unwrap();
        b.transition(up, down, 0.1).unwrap();
        b.transition(down, up, 0.9).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn solved_chain_basics() {
        let s = SolvedChain::solve(toy(), &["down"]).unwrap();
        assert!((s.unavailability() - 0.1).abs() < 1e-12);
        assert!((s.availability() - 0.9).abs() < 1e-12);
        assert!((s.nines() - 1.0).abs() < 1e-9);
        assert_eq!(s.down_states().len(), 1);
        assert!((s.probability("up").unwrap() - 0.9).abs() < 1e-12);
        assert!(s.probability("nope").is_none());
    }

    #[test]
    fn unknown_down_labels_are_ignored() {
        let s = SolvedChain::solve(toy(), &["down", "DUns1"]).unwrap();
        assert!((s.unavailability() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn labeled_probabilities_sum_to_one() {
        let s = SolvedChain::solve(toy(), &["down"]).unwrap();
        let total: f64 = s.labeled_probabilities().iter().map(|(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }
}
