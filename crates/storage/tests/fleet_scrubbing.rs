//! Direct integration coverage for `storage::datacenter` (fleet-scale
//! arithmetic) and the scrubbing/maintenance models: invariants the
//! in-module unit tests don't exercise, plus interval edge cases.

use availsim_storage::{
    DatacenterModel, ReplacementPolicy, ScrubbingModel, ServiceRates, HOURS_PER_YEAR,
};
use proptest::prelude::*;

/// A ten-year mission, the horizon used throughout the paper's MC runs.
const MISSION_HOURS: f64 = 87_600.0;

// ---------------------------------------------------------------- fleet ----

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Expected failures scale linearly in both fleet size and per-disk
    /// rate, and MTBF is their exact reciprocal.
    #[test]
    fn fleet_failure_arithmetic_is_linear(
        disks in 1u64..5_000_000,
        rate_exp in -8.0f64..-3.0,
        hep in 0.0f64..0.1,
    ) {
        let rate = 10f64.powf(rate_exp);
        let dc = DatacenterModel::new(disks, rate, hep).unwrap();
        let per_hour = dc.expected_failures_per_hour();
        prop_assert!((per_hour - disks as f64 * rate).abs() <= 1e-12 * per_hour.max(1.0));
        prop_assert!((dc.expected_failures_per_day() - 24.0 * per_hour).abs()
            <= 1e-9 * per_hour.max(1.0));
        prop_assert!((dc.mean_time_between_failures_hours() * per_hour - 1.0).abs() < 1e-12);

        // Doubling the fleet doubles the failure flux exactly.
        let double = DatacenterModel::new(disks * 2, rate, hep).unwrap();
        prop_assert!(
            (double.expected_failures_per_hour() - 2.0 * per_hour).abs()
                <= 1e-12 * per_hour.max(1.0)
        );
    }

    /// Human errors are a fixed hep-fraction of service actions: never more
    /// than one per failure, zero at hep = 0, and consistent across the
    /// daily and yearly projections.
    #[test]
    fn human_error_flux_is_a_fraction_of_failures(
        disks in 1u64..5_000_000,
        rate_exp in -8.0f64..-3.0,
        hep in 0.0f64..=1.0,
    ) {
        let rate = 10f64.powf(rate_exp);
        let dc = DatacenterModel::new(disks, rate, hep).unwrap();
        prop_assert!(dc.expected_human_errors_per_day() <= dc.expected_failures_per_day() + 1e-12);
        let daily = dc.expected_human_errors_per_day();
        let yearly = dc.expected_human_errors_per_year();
        prop_assert!((yearly - daily * HOURS_PER_YEAR / 24.0).abs() <= 1e-9 * yearly.max(1.0));
        if hep == 0.0 {
            prop_assert_eq!(daily, 0.0);
        }
    }

    /// Exascale sizing: disk count times capacity always covers one
    /// exabyte, and never overshoots by more than one disk.
    #[test]
    fn exascale_capacity_covers_one_exabyte(disk_tb in 0.5f64..100.0) {
        let dc = DatacenterModel::exascale(disk_tb, 1e-6, 0.01).unwrap();
        let capacity_tb = dc.num_disks() as f64 * disk_tb;
        prop_assert!(capacity_tb >= 1e6 - 1e-6);
        prop_assert!((dc.num_disks() - 1) as f64 * disk_tb < 1e6);
    }
}

#[test]
fn fleet_hep_band_brackets_the_paper_intro_claim() {
    // The paper's introduction: an EB datacenter sees at least a disk
    // failure per hour, hence "multiple human errors a day" at the upper
    // hep band — and the model reproduces both ends of the band.
    let failures_per_day = DatacenterModel::new(1_000_000, 1e-6, 0.1)
        .unwrap()
        .expected_failures_per_day();
    assert!((failures_per_day - 24.0).abs() < 1e-9);
    for (hep, lo, hi) in [(0.001, 0.02, 0.03), (0.1, 2.0, 3.0)] {
        let dc = DatacenterModel::new(1_000_000, 1e-6, hep).unwrap();
        let per_day = dc.expected_human_errors_per_day();
        assert!(per_day > lo && per_day < hi, "hep={hep}: {per_day}");
    }
}

// ------------------------------------------------------------- scrubbing ----

#[test]
fn zero_scrub_interval_is_rejected_not_divided_by() {
    // A zero interval would mean "scrub continuously"; the model rejects it
    // instead of producing a degenerate exposure window.
    let err = ScrubbingModel::new(1e-6, 0.0).unwrap_err();
    assert!(err.to_string().contains("scrub interval"), "{err}");
    assert!(ScrubbingModel::new(1e-6, -10.0).is_err());
    assert!(ScrubbingModel::new(1e-6, f64::NAN).is_err());
}

#[test]
fn scrub_interval_longer_than_the_mission_stays_a_probability() {
    // Pathological configuration: scrubbing rarer than the whole mission.
    // The exposure model must degrade gracefully — still a probability in
    // [0, 1], still monotone in the interval.
    let within = ScrubbingModel::new(1e-6, MISSION_HOURS / 4.0).unwrap();
    let beyond = ScrubbingModel::new(1e-6, MISSION_HOURS * 10.0).unwrap();
    for disks in [1, 3, 7, 23] {
        let p_within = within.rebuild_failure_probability(disks);
        let p_beyond = beyond.rebuild_failure_probability(disks);
        assert!((0.0..=1.0).contains(&p_within));
        assert!((0.0..=1.0).contains(&p_beyond));
        assert!(p_beyond > p_within, "disks={disks}");
    }
    // With a huge interval the rebuild is almost surely poisoned; the
    // expected latent-error count still reports the raw (unbounded) mean.
    let extreme = ScrubbingModel::new(1e-3, MISSION_HOURS * 100.0).unwrap();
    assert!(extreme.rebuild_failure_probability(7) > 0.999);
    assert!(extreme.rebuild_failure_probability(7) <= 1.0);
    assert!(extreme.expected_latent_errors_per_disk() > 1.0);
}

#[test]
fn required_interval_round_trips_even_past_the_mission_length() {
    // Asking for a very lax target can legitimately size the scrub period
    // beyond the mission; the inversion must still round-trip.
    let lse_rate = 1e-9;
    let t = ScrubbingModel::required_scrub_interval(lse_rate, 3, 0.5).unwrap();
    assert!(t > MISSION_HOURS, "t = {t}");
    let m = ScrubbingModel::new(lse_rate, t).unwrap();
    assert!((m.rebuild_failure_probability(3) - 0.5).abs() < 1e-12);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The exposure probability is a probability for any positive interval
    /// (including multi-mission ones) and any read width.
    #[test]
    fn rebuild_failure_probability_is_always_a_probability(
        rate_exp in -12.0f64..-2.0,
        interval in 1.0f64..(MISSION_HOURS * 100.0),
        disks in 1u32..64,
    ) {
        let m = ScrubbingModel::new(10f64.powf(rate_exp), interval).unwrap();
        let p = m.rebuild_failure_probability(disks);
        prop_assert!((0.0..=1.0).contains(&p), "p = {p}");
    }

    /// Sizing an interval for a target then evaluating it reproduces the
    /// target exactly (the closed-form inversion).
    #[test]
    fn interval_sizing_round_trips(
        rate_exp in -9.0f64..-4.0,
        disks in 1u32..32,
        target in 1e-6f64..0.99,
    ) {
        let rate = 10f64.powf(rate_exp);
        let t = ScrubbingModel::required_scrub_interval(rate, disks, target).unwrap();
        prop_assert!(t > 0.0);
        let m = ScrubbingModel::new(rate, t).unwrap();
        prop_assert!((m.rebuild_failure_probability(disks) - target).abs() < 1e-9);
    }
}

// ----------------------------------------------------------- maintenance ----

#[test]
fn service_rates_mean_times_are_reciprocal_rates() {
    let rates = ServiceRates::paper_defaults();
    assert!((rates.mean_disk_repair_hours() * rates.disk_repair - 1.0).abs() < 1e-12);
    assert!((rates.mean_backup_restore_hours() * rates.backup_restore - 1.0).abs() < 1e-12);
    // The paper's exascale scenario: a new disk failure arrives (~1/h)
    // faster than a single repair completes (~10 h), so several repairs —
    // and several chances for human error — are always in flight.
    let dc = DatacenterModel::new(1_000_000, 1e-6, 0.01).unwrap();
    assert!(rates.mean_disk_repair_hours() > dc.mean_time_between_failures_hours());
    assert_eq!(
        ReplacementPolicy::default().to_string(),
        "conventional-disk-replacement"
    );
}
