//! Property-based tests for the disk-array state machine.

use availsim_storage::{ArrayStatus, DiskArray, DowntimeLog, OutageCause, RaidGeometry};
use proptest::prelude::*;

/// Operations the fuzzer may attempt on an array.
#[derive(Debug, Clone, Copy)]
enum Op {
    Fail,
    WrongRemoval,
    Reinsert,
    CrashRemoved,
    Rebuild,
    Restore,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        Just(Op::Fail),
        Just(Op::WrongRemoval),
        Just(Op::Reinsert),
        Just(Op::CrashRemoved),
        Just(Op::Rebuild),
        Just(Op::Restore),
    ]
}

fn arb_geometry() -> impl Strategy<Value = RaidGeometry> {
    prop_oneof![
        Just(RaidGeometry::raid1_pair()),
        (2u32..10).prop_map(|k| RaidGeometry::raid5(k).unwrap()),
        (2u32..10).prop_map(|k| RaidGeometry::raid6(k).unwrap()),
        (1u32..8).prop_map(|k| RaidGeometry::raid0(k).unwrap()),
        (2u32..5).prop_map(|c| RaidGeometry::raid1_mirror(c).unwrap()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// No operation sequence can corrupt the counters: disks never go
    /// negative, never exceed the geometry, and status stays consistent.
    #[test]
    fn array_invariants_under_random_ops(
        geometry in arb_geometry(),
        ops in proptest::collection::vec(arb_op(), 0..60),
    ) {
        let mut a = DiskArray::new(geometry);
        let total = geometry.total_disks();
        for op in ops {
            // Apply; errors are fine (illegal in current state), panics are not.
            let _ = match op {
                Op::Fail => a.fail_disk(),
                Op::WrongRemoval => a.wrong_removal(),
                Op::Reinsert => a.reinsert_wrongly_removed(),
                Op::CrashRemoved => a.crash_wrongly_removed(),
                Op::Rebuild => a.complete_rebuild(),
                Op::Restore => {
                    a.restore_from_backup();
                    Ok(())
                }
            };
            prop_assert!(a.failed() + a.wrongly_removed() <= total);
            prop_assert_eq!(a.active_disks(), total - a.failed() - a.wrongly_removed());
            // Status must agree with the counter rules.
            let tol = geometry.fault_tolerance();
            let expected = if a.failed() > tol {
                ArrayStatus::DataLoss
            } else if a.missing_disks() > tol {
                ArrayStatus::Unavailable
            } else if a.missing_disks() > 0 {
                ArrayStatus::Degraded
            } else {
                ArrayStatus::Optimal
            };
            prop_assert_eq!(a.status(), expected);
        }
    }

    /// Reinserting a wrongly removed disk never loses data: status can only
    /// improve (in the partial order DataLoss < Unavailable < Degraded <=
    /// Optimal) when the reinsert succeeds.
    #[test]
    fn reinsert_never_worsens_status(
        geometry in arb_geometry(),
        fails in 0u32..3,
        removals in 1u32..3,
    ) {
        fn rank(s: ArrayStatus) -> u8 {
            match s {
                ArrayStatus::DataLoss => 0,
                ArrayStatus::Unavailable => 1,
                ArrayStatus::Degraded => 2,
                ArrayStatus::Optimal => 3,
            }
        }
        let mut a = DiskArray::new(geometry);
        for _ in 0..fails {
            let _ = a.fail_disk();
        }
        for _ in 0..removals {
            let _ = a.wrong_removal();
        }
        let before = a.status();
        if a.reinsert_wrongly_removed().is_ok() {
            prop_assert!(rank(a.status()) >= rank(before));
        }
    }

    /// Crash of a removed disk converts DU candidates toward DL, never the
    /// other way: `failed` increases by exactly one.
    #[test]
    fn crash_conserves_missing_disks(geometry in arb_geometry(), removals in 1u32..3) {
        let mut a = DiskArray::new(geometry);
        for _ in 0..removals {
            let _ = a.wrong_removal();
        }
        let missing_before = a.missing_disks();
        let failed_before = a.failed();
        if a.crash_wrongly_removed().is_ok() {
            prop_assert_eq!(a.missing_disks(), missing_before);
            prop_assert_eq!(a.failed(), failed_before + 1);
        }
    }

    /// Volume capacity bookkeeping: arrays × per-array capacity == usable.
    #[test]
    fn volume_capacity_identity(k in 2u32..12, mult in 1u64..20) {
        use availsim_storage::Volume;
        let g = RaidGeometry::raid5(k).unwrap();
        let usable = u64::from(k) * mult;
        let v = Volume::with_usable_capacity(g, usable).unwrap();
        prop_assert_eq!(v.usable_capacity(), usable);
        prop_assert_eq!(v.arrays(), mult);
        prop_assert!(v.total_disks() > usable); // redundancy overhead exists
    }

    /// Downtime log: total downtime equals the sum over causes and never
    /// exceeds the horizon.
    #[test]
    fn downtime_partitions_by_cause(
        outages in proptest::collection::vec((0.0f64..1e4, 0.0f64..100.0, any::<bool>()), 0..20),
    ) {
        let mut log = DowntimeLog::new();
        let mut t = 0.0;
        let mut horizon = 1.0;
        for (gap, dur, human) in outages {
            t += gap;
            let cause = if human { OutageCause::HumanError } else { OutageCause::DataLoss };
            log.begin(t, cause);
            t += dur;
            log.end(t);
            horizon = t.max(horizon);
        }
        let total = log.total_downtime();
        let by_cause = log.downtime_by_cause(OutageCause::HumanError)
            + log.downtime_by_cause(OutageCause::DataLoss);
        prop_assert!((total - by_cause).abs() < 1e-9);
        prop_assert!(total <= horizon + 1e-9);
        let a = log.availability(horizon.max(total) + 1.0);
        prop_assert!((0.0..=1.0).contains(&a));
    }
}
