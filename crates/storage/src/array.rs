//! The disk-array state machine: the semantic core of the Monte-Carlo
//! availability models.
//!
//! The machine tracks how many disks have *failed* (data on them lost until
//! rebuilt) and how many were *wrongly removed* (data intact, disk pulled by
//! mistake — the paper's human error). Availability is a pure function of
//! those counters and the geometry's fault tolerance:
//!
//! * `failed > tolerance` → **data loss** (restore from backup),
//! * `failed + wrongly_removed > tolerance` → **data unavailable** (undo the
//!   wrong replacement to recover),
//! * any missing disk → **degraded** but serving I/O,
//! * otherwise **optimal**.

use crate::error::{Result, StorageError};
use crate::raid::RaidGeometry;
use std::fmt;

/// Availability status of an array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArrayStatus {
    /// All disks present.
    Optimal,
    /// Some redundancy lost, data still served.
    Degraded,
    /// Data unavailable: too many disks missing, but none beyond repair —
    /// recoverable by reinserting wrongly removed disks (paper state `DU`).
    Unavailable,
    /// Data lost: more *failed* disks than the redundancy covers
    /// (paper state `DL`); recoverable only from backup.
    DataLoss,
}

impl ArrayStatus {
    /// Whether the array serves I/O in this status.
    pub fn is_up(self) -> bool {
        matches!(self, ArrayStatus::Optimal | ArrayStatus::Degraded)
    }
}

impl fmt::Display for ArrayStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ArrayStatus::Optimal => "optimal",
            ArrayStatus::Degraded => "degraded",
            ArrayStatus::Unavailable => "unavailable",
            ArrayStatus::DataLoss => "data-loss",
        };
        f.write_str(s)
    }
}

/// A RAID array tracked at the granularity the availability models need.
///
/// # Examples
///
/// ```
/// use availsim_storage::{DiskArray, RaidGeometry, ArrayStatus};
///
/// # fn main() -> Result<(), availsim_storage::StorageError> {
/// let mut array = DiskArray::new(RaidGeometry::raid5(3)?);
/// array.fail_disk()?;
/// assert_eq!(array.status(), ArrayStatus::Degraded);
/// // The operator pulls the wrong disk: data becomes unavailable...
/// array.wrong_removal()?;
/// assert_eq!(array.status(), ArrayStatus::Unavailable);
/// // ...but reinserting it recovers without data loss.
/// array.reinsert_wrongly_removed()?;
/// assert_eq!(array.status(), ArrayStatus::Degraded);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiskArray {
    geometry: RaidGeometry,
    failed: u32,
    wrongly_removed: u32,
    hot_spares: u32,
}

impl DiskArray {
    /// Creates a fully operational array with no hot spares.
    pub fn new(geometry: RaidGeometry) -> Self {
        DiskArray {
            geometry,
            failed: 0,
            wrongly_removed: 0,
            hot_spares: 0,
        }
    }

    /// Creates a fully operational array with `spares` hot spares standing
    /// by.
    pub fn with_hot_spares(geometry: RaidGeometry, spares: u32) -> Self {
        DiskArray {
            geometry,
            failed: 0,
            wrongly_removed: 0,
            hot_spares: spares,
        }
    }

    /// The array geometry.
    pub fn geometry(&self) -> &RaidGeometry {
        &self.geometry
    }

    /// Number of failed disks (data lost until rebuilt).
    pub fn failed(&self) -> u32 {
        self.failed
    }

    /// Number of wrongly removed (but healthy) disks.
    pub fn wrongly_removed(&self) -> u32 {
        self.wrongly_removed
    }

    /// Number of hot spares available.
    pub fn hot_spares(&self) -> u32 {
        self.hot_spares
    }

    /// Disks currently spinning and exposed to failures.
    pub fn active_disks(&self) -> u32 {
        self.geometry.total_disks() - self.failed - self.wrongly_removed
    }

    /// Total disks missing from the array (failed or wrongly removed).
    pub fn missing_disks(&self) -> u32 {
        self.failed + self.wrongly_removed
    }

    /// Current availability status (see module docs for the rules).
    pub fn status(&self) -> ArrayStatus {
        let tol = self.geometry.fault_tolerance();
        if self.failed > tol {
            ArrayStatus::DataLoss
        } else if self.failed + self.wrongly_removed > tol {
            ArrayStatus::Unavailable
        } else if self.failed + self.wrongly_removed > 0 {
            ArrayStatus::Degraded
        } else {
            ArrayStatus::Optimal
        }
    }

    /// Whether the array currently serves I/O.
    pub fn is_up(&self) -> bool {
        self.status().is_up()
    }

    /// One active disk fails.
    ///
    /// # Errors
    /// Returns [`StorageError::IllegalTransition`] if no active disk remains.
    pub fn fail_disk(&mut self) -> Result<()> {
        if self.active_disks() == 0 {
            return Err(StorageError::IllegalTransition {
                operation: "fail_disk",
                reason: "no active disks left".into(),
            });
        }
        self.failed += 1;
        Ok(())
    }

    /// A human error pulls one *operating* disk out of the chassis.
    ///
    /// # Errors
    /// Returns [`StorageError::IllegalTransition`] if no active disk remains.
    pub fn wrong_removal(&mut self) -> Result<()> {
        if self.active_disks() == 0 {
            return Err(StorageError::IllegalTransition {
                operation: "wrong_removal",
                reason: "no active disks left to remove".into(),
            });
        }
        self.wrongly_removed += 1;
        Ok(())
    }

    /// Undo of a wrong replacement: the pulled disk is put back with its data
    /// intact.
    ///
    /// # Errors
    /// Returns [`StorageError::IllegalTransition`] if no disk is wrongly
    /// removed.
    pub fn reinsert_wrongly_removed(&mut self) -> Result<()> {
        if self.wrongly_removed == 0 {
            return Err(StorageError::IllegalTransition {
                operation: "reinsert_wrongly_removed",
                reason: "no wrongly removed disk".into(),
            });
        }
        self.wrongly_removed -= 1;
        Ok(())
    }

    /// A wrongly removed disk crashes outside the chassis: its data is now
    /// really gone, converting the human error into a disk failure.
    ///
    /// # Errors
    /// Returns [`StorageError::IllegalTransition`] if no disk is wrongly
    /// removed.
    pub fn crash_wrongly_removed(&mut self) -> Result<()> {
        if self.wrongly_removed == 0 {
            return Err(StorageError::IllegalTransition {
                operation: "crash_wrongly_removed",
                reason: "no wrongly removed disk".into(),
            });
        }
        self.wrongly_removed -= 1;
        self.failed += 1;
        Ok(())
    }

    /// A rebuild completes: one failed disk's data is reconstructed onto a
    /// replacement (or spare) disk.
    ///
    /// Rebuild requires the array to be up — with the data unavailable or
    /// lost there is nothing to reconstruct from.
    ///
    /// # Errors
    /// Returns [`StorageError::IllegalTransition`] if no disk is failed or
    /// the array is not serving I/O.
    pub fn complete_rebuild(&mut self) -> Result<()> {
        if self.failed == 0 {
            return Err(StorageError::IllegalTransition {
                operation: "complete_rebuild",
                reason: "no failed disk to rebuild".into(),
            });
        }
        if !self.is_up() {
            return Err(StorageError::IllegalTransition {
                operation: "complete_rebuild",
                reason: format!("array is {} — cannot reconstruct", self.status()),
            });
        }
        self.failed -= 1;
        Ok(())
    }

    /// Consumes one hot spare (e.g. as the target of an automatic fail-over).
    ///
    /// # Errors
    /// Returns [`StorageError::IllegalTransition`] if no spare is available.
    pub fn consume_spare(&mut self) -> Result<()> {
        if self.hot_spares == 0 {
            return Err(StorageError::IllegalTransition {
                operation: "consume_spare",
                reason: "no hot spare available".into(),
            });
        }
        self.hot_spares -= 1;
        Ok(())
    }

    /// Adds a hot spare (a fresh disk inserted into the enclosure).
    pub fn add_spare(&mut self) {
        self.hot_spares += 1;
    }

    /// Full restore from backup after data loss (the paper's tape recovery):
    /// all failed and wrongly removed disks are replaced/reset.
    pub fn restore_from_backup(&mut self) {
        self.failed = 0;
        self.wrongly_removed = 0;
    }

    /// Resets to the fully operational state keeping the spare count.
    pub fn reset(&mut self) {
        self.failed = 0;
        self.wrongly_removed = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn raid5() -> DiskArray {
        DiskArray::new(RaidGeometry::raid5(3).unwrap())
    }

    #[test]
    fn fresh_array_is_optimal() {
        let a = raid5();
        assert_eq!(a.status(), ArrayStatus::Optimal);
        assert!(a.is_up());
        assert_eq!(a.active_disks(), 4);
    }

    #[test]
    fn single_failure_degrades() {
        let mut a = raid5();
        a.fail_disk().unwrap();
        assert_eq!(a.status(), ArrayStatus::Degraded);
        assert!(a.is_up());
        assert_eq!(a.active_disks(), 3);
    }

    #[test]
    fn double_failure_is_data_loss() {
        let mut a = raid5();
        a.fail_disk().unwrap();
        a.fail_disk().unwrap();
        assert_eq!(a.status(), ArrayStatus::DataLoss);
        assert!(!a.is_up());
    }

    #[test]
    fn failure_plus_wrong_removal_is_unavailable_not_lost() {
        let mut a = raid5();
        a.fail_disk().unwrap();
        a.wrong_removal().unwrap();
        assert_eq!(a.status(), ArrayStatus::Unavailable);
        // Reinsert: back to degraded; no data was lost.
        a.reinsert_wrongly_removed().unwrap();
        assert_eq!(a.status(), ArrayStatus::Degraded);
    }

    #[test]
    fn crash_of_wrongly_removed_escalates_to_data_loss() {
        let mut a = raid5();
        a.fail_disk().unwrap();
        a.wrong_removal().unwrap();
        a.crash_wrongly_removed().unwrap();
        assert_eq!(a.status(), ArrayStatus::DataLoss);
    }

    #[test]
    fn raid6_survives_failure_plus_wrong_removal() {
        let mut a = DiskArray::new(RaidGeometry::raid6(6).unwrap());
        a.fail_disk().unwrap();
        a.wrong_removal().unwrap();
        // Two missing disks are within RAID6 tolerance.
        assert_eq!(a.status(), ArrayStatus::Degraded);
        a.fail_disk().unwrap();
        assert_eq!(a.status(), ArrayStatus::Unavailable);
    }

    #[test]
    fn raid0_any_failure_is_loss() {
        let mut a = DiskArray::new(RaidGeometry::raid0(4).unwrap());
        a.fail_disk().unwrap();
        assert_eq!(a.status(), ArrayStatus::DataLoss);
    }

    #[test]
    fn rebuild_restores_redundancy() {
        let mut a = raid5();
        a.fail_disk().unwrap();
        a.complete_rebuild().unwrap();
        assert_eq!(a.status(), ArrayStatus::Optimal);
    }

    #[test]
    fn rebuild_requires_served_data() {
        let mut a = raid5();
        a.fail_disk().unwrap();
        a.fail_disk().unwrap();
        let err = a.complete_rebuild().unwrap_err();
        assert!(matches!(err, StorageError::IllegalTransition { .. }));

        let mut b = raid5();
        b.fail_disk().unwrap();
        b.wrong_removal().unwrap();
        assert!(b.complete_rebuild().is_err());
    }

    #[test]
    fn illegal_transitions_are_rejected() {
        let mut a = raid5();
        assert!(a.reinsert_wrongly_removed().is_err());
        assert!(a.crash_wrongly_removed().is_err());
        assert!(a.complete_rebuild().is_err());
        assert!(a.consume_spare().is_err());
    }

    #[test]
    fn cannot_remove_more_disks_than_exist() {
        let mut a = DiskArray::new(RaidGeometry::raid1_pair());
        a.fail_disk().unwrap();
        a.fail_disk().unwrap();
        assert!(a.fail_disk().is_err());
        assert!(a.wrong_removal().is_err());
    }

    #[test]
    fn spares_are_tracked() {
        let mut a = DiskArray::with_hot_spares(RaidGeometry::raid5(3).unwrap(), 1);
        assert_eq!(a.hot_spares(), 1);
        a.consume_spare().unwrap();
        assert_eq!(a.hot_spares(), 0);
        a.add_spare();
        assert_eq!(a.hot_spares(), 1);
    }

    #[test]
    fn backup_restore_clears_everything() {
        let mut a = raid5();
        a.fail_disk().unwrap();
        a.fail_disk().unwrap();
        a.restore_from_backup();
        assert_eq!(a.status(), ArrayStatus::Optimal);
    }

    #[test]
    fn raid1_wrong_removal_alone_is_degraded() {
        // Pulling a healthy mirror from an optimal pair degrades but does not
        // take data down.
        let mut a = DiskArray::new(RaidGeometry::raid1_pair());
        a.wrong_removal().unwrap();
        assert_eq!(a.status(), ArrayStatus::Degraded);
        // Pulling the second one takes the data down but loses nothing.
        a.wrong_removal().unwrap();
        assert_eq!(a.status(), ArrayStatus::Unavailable);
    }
}
