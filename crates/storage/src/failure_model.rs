//! Per-disk failure models, including the field-data Weibull fits the paper
//! evaluates against.
//!
//! Since the real field traces (Schroeder & Gibson, FAST'07) are not
//! redistributable, this module carries the *fitted parameters* that the
//! paper itself uses (Fig. 5 legend): four `(failure rate, Weibull shape)`
//! pairs with the characteristic life taken as the reciprocal of the rate.
//! This is the substitution documented in DESIGN.md §6 — the paper consumes
//! only these fits, never the raw traces.

use crate::error::{Result, StorageError};
use availsim_sim::distributions::{Exponential, Lifetime, Weibull};
use availsim_sim::rng::SimRng;

/// The four `(rate per hour, Weibull shape β)` field fits from the paper's
/// Fig. 5 legend.
pub const SCHROEDER_GIBSON_FITS: [(f64, f64); 4] = [
    (1.25e-6, 1.09),
    (2.17e-6, 1.12),
    (7.96e-6, 1.21),
    (2.00e-5, 1.48),
];

/// A disk time-to-failure model.
#[derive(Debug)]
pub enum FailureModel {
    /// Constant hazard `λ` (Markov-compatible).
    Exponential(Exponential),
    /// Weibull hazard (field-realistic; β > 1 models wear-out).
    Weibull(Weibull),
}

impl FailureModel {
    /// Constant-rate model.
    ///
    /// # Errors
    /// Returns [`StorageError::InvalidConfig`] for a non-positive rate.
    pub fn exponential(rate: f64) -> Result<Self> {
        Exponential::new(rate)
            .map(FailureModel::Exponential)
            .map_err(|e| StorageError::InvalidConfig(e.to_string()))
    }

    /// Weibull model in the paper's `(rate, shape)` parameterization
    /// (`η = 1/rate`).
    ///
    /// # Errors
    /// Returns [`StorageError::InvalidConfig`] for non-positive parameters.
    pub fn weibull(rate: f64, shape: f64) -> Result<Self> {
        Weibull::from_rate_shape(rate, shape)
            .map(FailureModel::Weibull)
            .map_err(|e| StorageError::InvalidConfig(e.to_string()))
    }

    /// The `index`-th Schroeder–Gibson field fit (see
    /// [`SCHROEDER_GIBSON_FITS`]).
    ///
    /// # Errors
    /// Returns [`StorageError::InvalidConfig`] for `index >= 4`.
    pub fn field_fit(index: usize) -> Result<Self> {
        let (rate, shape) = *SCHROEDER_GIBSON_FITS.get(index).ok_or_else(|| {
            StorageError::InvalidConfig(format!(
                "field fit index {index} out of range (0..{})",
                SCHROEDER_GIBSON_FITS.len()
            ))
        })?;
        FailureModel::weibull(rate, shape)
    }

    /// Samples a time to failure (hours).
    pub fn sample_ttf(&self, rng: &mut SimRng) -> f64 {
        match self {
            FailureModel::Exponential(d) => d.sample(rng),
            FailureModel::Weibull(d) => d.sample(rng),
        }
    }

    /// Mean time to failure (hours).
    pub fn mttf_hours(&self) -> f64 {
        match self {
            FailureModel::Exponential(d) => d.mean(),
            FailureModel::Weibull(d) => d.mean(),
        }
    }

    /// A nominal per-hour failure rate: the true rate for exponential, and
    /// `1/η` (the paper's quoted "failure rate") for Weibull.
    pub fn nominal_rate(&self) -> f64 {
        match self {
            FailureModel::Exponential(d) => d.rate(),
            FailureModel::Weibull(d) => 1.0 / d.scale(),
        }
    }

    /// The underlying lifetime distribution.
    pub fn as_lifetime(&self) -> &dyn Lifetime {
        match self {
            FailureModel::Exponential(d) => d,
            FailureModel::Weibull(d) => d,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exponential_model_roundtrip() {
        let m = FailureModel::exponential(1e-6).unwrap();
        assert!((m.nominal_rate() - 1e-6).abs() < 1e-18);
        assert!((m.mttf_hours() - 1e6).abs() < 1e-3);
    }

    #[test]
    fn weibull_model_uses_reciprocal_scale() {
        let m = FailureModel::weibull(2e-5, 1.48).unwrap();
        assert!((m.nominal_rate() - 2e-5).abs() < 1e-12);
        // For β > 1 the mean is below the characteristic life.
        assert!(m.mttf_hours() < 5e4);
    }

    #[test]
    fn all_field_fits_construct() {
        for i in 0..SCHROEDER_GIBSON_FITS.len() {
            let m = FailureModel::field_fit(i).unwrap();
            assert!(m.mttf_hours() > 0.0);
        }
        assert!(FailureModel::field_fit(4).is_err());
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(FailureModel::exponential(0.0).is_err());
        assert!(FailureModel::weibull(-1.0, 1.0).is_err());
        assert!(FailureModel::weibull(1e-6, 0.0).is_err());
    }

    #[test]
    fn samples_are_positive() {
        let m = FailureModel::field_fit(0).unwrap();
        let mut rng = SimRng::seed_from(5);
        for _ in 0..100 {
            assert!(m.sample_ttf(&mut rng) > 0.0);
        }
    }

    #[test]
    fn lifetime_view_matches_model() {
        let m = FailureModel::exponential(0.01).unwrap();
        assert!((m.as_lifetime().mean() - 100.0).abs() < 1e-9);
    }
}
