//! Latent sector errors (LSEs) and scrubbing.
//!
//! An LSE is an unreadable sector that stays invisible until something reads
//! it — which is exactly what a rebuild does to every surviving disk. The
//! paper names LSEs (Schroeder, Damouras & Gill, ACM TOS 2010) among the
//! main data-loss sources but leaves them unmodeled; this module provides
//! the standard exposure model that converts an LSE rate and a scrubbing
//! policy into the *probability that a rebuild encounters an LSE*, the
//! quantity consumed by the generic Markov chain's
//! `with_rebuild_failure_probability` hook.
//!
//! Model: LSEs arrive on a disk as a Poisson process with rate `λ_lse`.
//! Scrubbing sweeps every sector each `T_scrub` hours, clearing latent
//! errors. At a random rebuild instant, the time since a disk's last scrub
//! is uniform on `[0, T_scrub)`, so the expected number of latent errors per
//! disk is `λ_lse · T_scrub / 2`, and a rebuild reading `d` surviving disks
//! encounters at least one LSE with probability
//! `1 − exp(−d · λ_lse · T_scrub / 2)`.

use crate::error::{Result, StorageError};

/// LSE exposure model for a scrubbed array.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScrubbingModel {
    /// LSE arrival rate per disk, per hour.
    pub lse_rate: f64,
    /// Scrub period in hours (every sector verified once per period).
    pub scrub_interval_hours: f64,
}

impl ScrubbingModel {
    /// Creates a validated model.
    ///
    /// # Errors
    /// Returns [`StorageError::InvalidConfig`] for non-positive inputs.
    pub fn new(lse_rate: f64, scrub_interval_hours: f64) -> Result<Self> {
        if !(lse_rate.is_finite() && lse_rate >= 0.0) {
            return Err(StorageError::InvalidConfig(format!(
                "LSE rate must be nonnegative and finite, got {lse_rate}"
            )));
        }
        if !(scrub_interval_hours.is_finite() && scrub_interval_hours > 0.0) {
            return Err(StorageError::InvalidConfig(format!(
                "scrub interval must be positive, got {scrub_interval_hours}"
            )));
        }
        Ok(ScrubbingModel {
            lse_rate,
            scrub_interval_hours,
        })
    }

    /// A field-typical default: one latent error per disk every ~2 years
    /// (Schroeder et al. report ~3.45% of nearline disks developing LSEs per
    /// 32 months), scrubbed every two weeks.
    pub fn field_defaults() -> Self {
        ScrubbingModel {
            lse_rate: 6e-5 / 24.0,
            scrub_interval_hours: 336.0,
        }
    }

    /// Expected latent errors present on one disk at a random instant.
    pub fn expected_latent_errors_per_disk(&self) -> f64 {
        self.lse_rate * self.scrub_interval_hours / 2.0
    }

    /// Probability that a rebuild reading `surviving_disks` disks hits at
    /// least one latent error — the `rebuild_failure_probability` for the
    /// generic availability chain.
    pub fn rebuild_failure_probability(&self, surviving_disks: u32) -> f64 {
        let mean = f64::from(surviving_disks) * self.expected_latent_errors_per_disk();
        -(-mean).exp_m1()
    }

    /// How short the scrub period must be to keep the rebuild failure
    /// probability below `target` for the given read width.
    ///
    /// # Errors
    /// Returns [`StorageError::InvalidConfig`] for a target outside `(0, 1)`,
    /// a zero LSE rate (any interval works — there is nothing to scrub), or
    /// a zero read width (a rebuild that reads no disks cannot hit an LSE,
    /// so no finite interval is "required").
    pub fn required_scrub_interval(
        lse_rate: f64,
        surviving_disks: u32,
        target: f64,
    ) -> Result<f64> {
        if !(0.0 < target && target < 1.0) {
            return Err(StorageError::InvalidConfig(format!(
                "target probability must be in (0,1), got {target}"
            )));
        }
        if !(lse_rate > 0.0 && lse_rate.is_finite()) {
            return Err(StorageError::InvalidConfig(format!(
                "LSE rate must be positive to size a scrub interval, got {lse_rate}"
            )));
        }
        if surviving_disks == 0 {
            return Err(StorageError::InvalidConfig(
                "rebuild read width must be at least one disk to size a \
                 scrub interval, got 0"
                    .into(),
            ));
        }
        // Invert 1 − exp(−d·λ·T/2) = target.
        let mean = -(-target).ln_1p();
        Ok(2.0 * mean / (f64::from(surviving_disks) * lse_rate))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        assert!(ScrubbingModel::new(-1.0, 100.0).is_err());
        assert!(ScrubbingModel::new(1e-6, 0.0).is_err());
        assert!(ScrubbingModel::new(0.0, 100.0).is_ok());
        assert!(ScrubbingModel::new(f64::NAN, 100.0).is_err());
    }

    #[test]
    fn zero_lse_rate_means_safe_rebuilds() {
        let m = ScrubbingModel::new(0.0, 336.0).unwrap();
        assert_eq!(m.rebuild_failure_probability(7), 0.0);
        assert_eq!(m.expected_latent_errors_per_disk(), 0.0);
    }

    #[test]
    fn probability_grows_with_width_and_interval() {
        let tight = ScrubbingModel::new(1e-6, 100.0).unwrap();
        let loose = ScrubbingModel::new(1e-6, 1_000.0).unwrap();
        assert!(loose.rebuild_failure_probability(3) > tight.rebuild_failure_probability(3));
        assert!(tight.rebuild_failure_probability(7) > tight.rebuild_failure_probability(3));
    }

    #[test]
    fn small_mean_is_linear() {
        // For tiny exposure, P ≈ d·λ·T/2.
        let m = ScrubbingModel::new(1e-9, 100.0).unwrap();
        let p = m.rebuild_failure_probability(4);
        let linear = 4.0 * 1e-9 * 100.0 / 2.0;
        assert!((p - linear).abs() / linear < 1e-6);
    }

    #[test]
    fn interval_sizing_inverts_the_probability() {
        let lse_rate = 2e-6;
        let target = 0.001;
        let t = ScrubbingModel::required_scrub_interval(lse_rate, 7, target).unwrap();
        let m = ScrubbingModel::new(lse_rate, t).unwrap();
        assert!((m.rebuild_failure_probability(7) - target).abs() < 1e-12);
        assert!(ScrubbingModel::required_scrub_interval(lse_rate, 7, 0.0).is_err());
        assert!(ScrubbingModel::required_scrub_interval(0.0, 7, 0.5).is_err());
    }

    #[test]
    fn zero_width_interval_sizing_is_rejected() {
        // Regression: `surviving_disks = 0` used to divide by zero and
        // return an infinite "required" interval instead of an error.
        let err = ScrubbingModel::required_scrub_interval(1e-6, 0, 0.01).unwrap_err();
        assert!(err.to_string().contains("at least one disk"), "{err}");
        // The smallest valid width still yields a finite interval.
        let t = ScrubbingModel::required_scrub_interval(1e-6, 1, 0.01).unwrap();
        assert!(t.is_finite() && t > 0.0);
    }

    #[test]
    fn field_defaults_are_plausible() {
        let m = ScrubbingModel::field_defaults();
        let p = m.rebuild_failure_probability(7);
        // A two-week scrub on field LSE rates leaves a small but
        // non-negligible per-rebuild risk.
        assert!(p > 1e-4 && p < 0.05, "p = {p}");
    }
}
