//! Error types for the storage substrate.

use std::error::Error;
use std::fmt;

/// Errors from constructing or mutating disk-subsystem models.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// A RAID geometry was invalid (e.g. zero data disks).
    InvalidGeometry(String),
    /// An array operation was illegal in the current state
    /// (e.g. rebuilding a disk when none has failed).
    IllegalTransition {
        /// The operation attempted.
        operation: &'static str,
        /// Why it is not allowed.
        reason: String,
    },
    /// A capacity request cannot be satisfied by the geometry.
    CapacityMismatch {
        /// Usable units requested.
        requested: u64,
        /// Usable units provided per array.
        per_array: u64,
    },
    /// A configuration parameter was out of range.
    InvalidConfig(String),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::InvalidGeometry(msg) => write!(f, "invalid raid geometry: {msg}"),
            StorageError::IllegalTransition { operation, reason } => {
                write!(f, "illegal array transition `{operation}`: {reason}")
            }
            StorageError::CapacityMismatch {
                requested,
                per_array,
            } => {
                write!(
                    f,
                    "usable capacity {requested} is not a multiple of per-array capacity {per_array}"
                )
            }
            StorageError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl Error for StorageError {}

/// Convenience result alias used across the crate.
pub type Result<T> = std::result::Result<T, StorageError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = StorageError::IllegalTransition {
            operation: "complete_rebuild",
            reason: "no failed disk".into(),
        };
        assert!(e.to_string().contains("complete_rebuild"));
    }

    #[test]
    fn send_sync() {
        fn check<T: Send + Sync>() {}
        check::<StorageError>();
    }
}
