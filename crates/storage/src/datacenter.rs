//! Fleet-scale arithmetic: the paper's introduction motivates the problem
//! with an exabyte datacenter that sees "at least a disk failure per hour"
//! and, given human-error probabilities of 0.001–0.1 per service action,
//! "multiple human errors a day". This module makes that arithmetic a
//! first-class, testable model.

use crate::error::{Result, StorageError};
use crate::raid::RaidGeometry;

/// Hours per (Julian) year, the constant used for downtime conversions.
pub const HOURS_PER_YEAR: f64 = 8766.0;

/// A simulated fleet: `arrays` independent RAID arrays of one geometry —
/// the array-count layer between a single [`RaidGeometry`] and the
/// [`DatacenterModel`] failure arithmetic, and the specification consumed
/// by the fleet-scale Monte-Carlo engine (`availsim_core::mc::FleetMc`).
///
/// # Examples
///
/// ```
/// use availsim_storage::{FleetSpec, RaidGeometry};
///
/// # fn main() -> Result<(), availsim_storage::StorageError> {
/// let fleet = FleetSpec::new(1000, RaidGeometry::raid5(3)?)?;
/// assert_eq!(fleet.total_disks(), 4000);
/// // The paper's intro arithmetic, now per fleet: at λ = 1e-6/h this
/// // fleet sees a disk failure every ~250 hours.
/// let dc = fleet.datacenter(1e-6, 0.01)?;
/// assert!((dc.mean_time_between_failures_hours() - 250.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetSpec {
    arrays: u32,
    geometry: RaidGeometry,
    repairmen: Option<u32>,
    failover: Option<FleetFailover>,
}

/// Admission discipline of the shared DR site when every slot is busy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FailoverPolicy {
    /// Wait FIFO for a slot to free up — the machine-repairman discipline
    /// the repair-crew pool already uses.
    #[default]
    Queue,
    /// Reject outright (the Erlang-loss discipline): the array rides out
    /// the rest of the episode on full downtime.
    Loss,
}

impl FailoverPolicy {
    /// Canonical lowercase spelling, as accepted by specs and the CLI.
    pub fn as_str(&self) -> &'static str {
        match self {
            FailoverPolicy::Queue => "queue",
            FailoverPolicy::Loss => "loss",
        }
    }

    /// Parses the canonical spelling; `None` for anything else.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "queue" => Some(FailoverPolicy::Queue),
            "loss" => Some(FailoverPolicy::Loss),
            _ => None,
        }
    }
}

impl std::fmt::Display for FailoverPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A shared disaster-recovery site: the paper's Fig. 3 fail-over target,
/// sized for a whole fleet. An array leaving OP requests one of
/// `capacity` DR slots; admitted arrays serve degraded from DR and hold
/// the slot through their fail-back, everyone else follows `policy`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetFailover {
    /// Concurrent DR admissions; `None` is the ideal-DR limit — an
    /// unbounded site that absorbs every episode with an instantaneous,
    /// error-free switch-back.
    pub capacity: Option<u32>,
    /// What happens to an array that finds every slot busy.
    pub policy: FailoverPolicy,
    /// Fail-back (switch-back to primary) rate per hour, the Fig. 3
    /// `μ_ch` exit of the network-storage serving state.
    pub failback_rate: f64,
}

impl FleetSpec {
    /// Largest supported fleet. The bound keeps a mission's event-queue
    /// population (`arrays × disks`) comfortably inside `u32` slot ids and
    /// a workspace's memory footprint predictable.
    pub const MAX_ARRAYS: u32 = 65_536;

    /// Largest per-array disk count. Fleet event payloads store the disk
    /// slot in a byte; real arrays are far smaller.
    pub const MAX_DISKS_PER_ARRAY: u32 = 256;

    /// Largest fleet-wide disk population (`arrays × disks per array`).
    ///
    /// The fleet engine flattens per-slot failure clocks to the index
    /// `array · disks + slot` and in the worst case schedules every one of
    /// them on the shared event queue, so the per-axis maxima alone
    /// ([`Self::MAX_ARRAYS`], [`Self::MAX_DISKS_PER_ARRAY`]) would admit
    /// 2^24 concurrent clocks — a multi-hundred-MiB mission state no real
    /// run wants, and within a factor of 256 of exhausting the queue's
    /// `u32` slot-id space. This combined bound (2^22 disks, ~16 MiB of
    /// slot generations) keeps the event population far inside the id
    /// space; either per-axis maximum is still reachable with the other
    /// axis small.
    pub const MAX_FLEET_DISKS: u64 = 1 << 22;

    /// Creates a fleet of `arrays` identical arrays with an unlimited
    /// repair-crew pool (every array is serviced as soon as it degrades).
    ///
    /// # Errors
    /// Returns [`StorageError::InvalidConfig`] for zero arrays, more than
    /// [`Self::MAX_ARRAYS`], a geometry wider than
    /// [`Self::MAX_DISKS_PER_ARRAY`], or a fleet-wide disk population over
    /// [`Self::MAX_FLEET_DISKS`].
    pub fn new(arrays: u32, geometry: RaidGeometry) -> Result<Self> {
        if arrays == 0 {
            return Err(StorageError::InvalidConfig(
                "fleet needs at least one array".into(),
            ));
        }
        if arrays > Self::MAX_ARRAYS {
            return Err(StorageError::InvalidConfig(format!(
                "fleet arrays must be at most {}, got {arrays}",
                Self::MAX_ARRAYS
            )));
        }
        if geometry.total_disks() > Self::MAX_DISKS_PER_ARRAY {
            return Err(StorageError::InvalidConfig(format!(
                "fleet arrays may have at most {} disks, got {}",
                Self::MAX_DISKS_PER_ARRAY,
                geometry.total_disks()
            )));
        }
        let disks = u64::from(arrays) * u64::from(geometry.total_disks());
        if disks > Self::MAX_FLEET_DISKS {
            return Err(StorageError::InvalidConfig(format!(
                "fleet disk population must be at most {} \
                 (arrays × disks per array), got {arrays} × {} = {disks}",
                Self::MAX_FLEET_DISKS,
                geometry.total_disks()
            )));
        }
        Ok(FleetSpec {
            arrays,
            geometry,
            repairmen: None,
            failover: None,
        })
    }

    /// Limits the fleet to a finite pool of `repairmen` repair crews: at
    /// most that many arrays can be in service concurrently, the rest
    /// queue FIFO — the classic machine-repairman coupling.
    ///
    /// # Errors
    /// Returns [`StorageError::InvalidConfig`] for zero crews (a fleet
    /// that can never repair anything; omit the limit for an unlimited
    /// pool instead).
    pub fn with_repairmen(mut self, repairmen: u32) -> Result<Self> {
        if repairmen == 0 {
            return Err(StorageError::InvalidConfig(
                "fleet needs at least one repair crew \
                 (omit the limit for an unlimited pool)"
                    .into(),
            ));
        }
        self.repairmen = Some(repairmen);
        Ok(self)
    }

    /// Couples the fleet to a shared DR site: arrays leaving OP fail over
    /// into one of `failover.capacity` slots (or queue / are rejected per
    /// `failover.policy`) and fail back at `failover.failback_rate`.
    ///
    /// # Errors
    /// Returns [`StorageError::InvalidConfig`] for a zero-slot site (omit
    /// the coupling for no DR site, or use an unbounded capacity for the
    /// ideal-DR limit) or a non-positive/non-finite fail-back rate.
    pub fn with_failover(mut self, failover: FleetFailover) -> Result<Self> {
        if failover.capacity == Some(0) {
            return Err(StorageError::InvalidConfig(
                "DR site needs at least one failover slot \
                 (omit the coupling for no DR site)"
                    .into(),
            ));
        }
        if !(failover.failback_rate.is_finite() && failover.failback_rate > 0.0) {
            return Err(StorageError::InvalidConfig(format!(
                "fail-back rate must be positive and finite, got {}",
                failover.failback_rate
            )));
        }
        self.failover = Some(failover);
        Ok(self)
    }

    /// Size of the repair-crew pool; `None` means unlimited.
    pub fn repairmen(&self) -> Option<u32> {
        self.repairmen
    }

    /// The shared DR site, if the fleet has one.
    pub fn failover(&self) -> Option<FleetFailover> {
        self.failover
    }

    /// Number of member arrays.
    pub fn arrays(&self) -> u32 {
        self.arrays
    }

    /// Geometry of every member array.
    pub fn geometry(&self) -> RaidGeometry {
        self.geometry
    }

    /// Physical disks across the fleet.
    pub fn total_disks(&self) -> u64 {
        u64::from(self.arrays) * u64::from(self.geometry.total_disks())
    }

    /// Usable (data) capacity across the fleet, in disk units.
    pub fn usable_capacity(&self) -> u64 {
        u64::from(self.arrays) * u64::from(self.geometry.data_disks())
    }

    /// The fleet's [`DatacenterModel`] at a per-disk failure rate and hep —
    /// the bridge from the simulated fleet to the paper's intro arithmetic
    /// (failures per hour, human errors per day).
    ///
    /// # Errors
    /// Propagates [`DatacenterModel::new`] validation.
    pub fn datacenter(&self, per_disk_failure_rate: f64, hep: f64) -> Result<DatacenterModel> {
        DatacenterModel::new(self.total_disks(), per_disk_failure_rate, hep)
    }
}

/// A fleet of disks with a common failure rate and maintenance discipline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DatacenterModel {
    num_disks: u64,
    per_disk_failure_rate: f64,
    hep: f64,
}

impl DatacenterModel {
    /// Creates a fleet model.
    ///
    /// # Errors
    /// Returns [`StorageError::InvalidConfig`] for zero disks, a
    /// non-positive failure rate, or `hep` outside `[0, 1]`.
    pub fn new(num_disks: u64, per_disk_failure_rate: f64, hep: f64) -> Result<Self> {
        if num_disks == 0 {
            return Err(StorageError::InvalidConfig(
                "fleet needs at least one disk".into(),
            ));
        }
        if !(per_disk_failure_rate.is_finite() && per_disk_failure_rate > 0.0) {
            return Err(StorageError::InvalidConfig(format!(
                "per-disk failure rate must be positive, got {per_disk_failure_rate}"
            )));
        }
        if !(0.0..=1.0).contains(&hep) || !hep.is_finite() {
            return Err(StorageError::InvalidConfig(format!(
                "human error probability must be in [0,1], got {hep}"
            )));
        }
        Ok(DatacenterModel {
            num_disks,
            per_disk_failure_rate,
            hep,
        })
    }

    /// The paper's intro example: an exabyte datacenter using `disk_tb`-sized
    /// disks ("more than one million disk drives" at EB scale).
    ///
    /// # Errors
    /// Propagates validation errors from [`DatacenterModel::new`].
    pub fn exascale(disk_tb: f64, per_disk_failure_rate: f64, hep: f64) -> Result<Self> {
        if !(disk_tb.is_finite() && disk_tb > 0.0) {
            return Err(StorageError::InvalidConfig(format!(
                "disk capacity must be positive, got {disk_tb}"
            )));
        }
        // 1 EB = 1e6 TB.
        let disks = (1e6 / disk_tb).ceil() as u64;
        DatacenterModel::new(disks.max(1), per_disk_failure_rate, hep)
    }

    /// Number of disks in the fleet.
    pub fn num_disks(&self) -> u64 {
        self.num_disks
    }

    /// Per-disk failure rate (per hour).
    pub fn per_disk_failure_rate(&self) -> f64 {
        self.per_disk_failure_rate
    }

    /// Human-error probability per service action.
    pub fn hep(&self) -> f64 {
        self.hep
    }

    /// Expected disk failures per hour across the fleet.
    pub fn expected_failures_per_hour(&self) -> f64 {
        self.num_disks as f64 * self.per_disk_failure_rate
    }

    /// Expected disk failures per day.
    pub fn expected_failures_per_day(&self) -> f64 {
        self.expected_failures_per_hour() * 24.0
    }

    /// Mean time between fleet-wide failures, in hours.
    pub fn mean_time_between_failures_hours(&self) -> f64 {
        1.0 / self.expected_failures_per_hour()
    }

    /// Expected human errors per day, assuming one human service action per
    /// failure with error probability `hep`.
    pub fn expected_human_errors_per_day(&self) -> f64 {
        self.expected_failures_per_day() * self.hep
    }

    /// Expected human errors per year.
    pub fn expected_human_errors_per_year(&self) -> f64 {
        self.expected_failures_per_hour() * HOURS_PER_YEAR * self.hep
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exascale_fleet_has_a_million_disks_at_1tb() {
        let dc = DatacenterModel::exascale(1.0, 1e-6, 0.01).unwrap();
        assert_eq!(dc.num_disks(), 1_000_000);
    }

    #[test]
    fn paper_intro_failure_per_hour_claim() {
        // 1M disks at λ = 1e-6/h -> 1 failure/hour; the paper says "at least
        // a disk failure per hour" for an EB datacenter.
        let dc = DatacenterModel::new(1_000_000, 1e-6, 0.01).unwrap();
        assert!((dc.expected_failures_per_hour() - 1.0).abs() < 1e-9);
        assert!((dc.mean_time_between_failures_hours() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn paper_intro_multiple_human_errors_per_day_claim() {
        // With hep in [0.001, 0.1] and 24 failures/day, the expected human
        // errors/day range from 0.024 to 2.4 — "multiple" at the upper band.
        let dc = DatacenterModel::new(1_000_000, 1e-6, 0.1).unwrap();
        assert!(dc.expected_human_errors_per_day() > 2.0);
        let dc_low = DatacenterModel::new(1_000_000, 1e-6, 0.001).unwrap();
        assert!(dc_low.expected_human_errors_per_day() < 0.1);
    }

    #[test]
    fn yearly_projection_consistent_with_daily() {
        let dc = DatacenterModel::new(500_000, 2e-6, 0.01).unwrap();
        let per_day = dc.expected_human_errors_per_day();
        let per_year = dc.expected_human_errors_per_year();
        assert!((per_year / per_day - HOURS_PER_YEAR / 24.0).abs() < 1e-9);
    }

    #[test]
    fn validation_rejects_nonsense() {
        assert!(DatacenterModel::new(0, 1e-6, 0.01).is_err());
        assert!(DatacenterModel::new(10, 0.0, 0.01).is_err());
        assert!(DatacenterModel::new(10, 1e-6, 1.5).is_err());
        assert!(DatacenterModel::new(10, 1e-6, -0.1).is_err());
        assert!(DatacenterModel::exascale(0.0, 1e-6, 0.01).is_err());
    }

    #[test]
    fn fleet_spec_validation_and_arithmetic() {
        let geom = RaidGeometry::raid5(3).unwrap();
        assert!(FleetSpec::new(0, geom).is_err());
        assert!(FleetSpec::new(FleetSpec::MAX_ARRAYS + 1, geom).is_err());
        let fleet = FleetSpec::new(FleetSpec::MAX_ARRAYS, geom).unwrap();
        assert_eq!(fleet.total_disks(), u64::from(FleetSpec::MAX_ARRAYS) * 4);

        let fleet = FleetSpec::new(250, geom).unwrap();
        assert_eq!(fleet.arrays(), 250);
        assert_eq!(fleet.geometry(), geom);
        assert_eq!(fleet.total_disks(), 1000);
        assert_eq!(fleet.usable_capacity(), 750);
    }

    #[test]
    fn fleet_spec_bridges_to_datacenter_arithmetic() {
        // The largest supported fleet of RAID5(3+1) arrays is a quarter of
        // the paper's exabyte intro fleet: 65 536 × 4 = 262 144 disks, a
        // disk failure every ~3.8 hours at λ = 1e-6.
        let fleet = FleetSpec::new(FleetSpec::MAX_ARRAYS, RaidGeometry::raid5(3).unwrap()).unwrap();
        let dc = fleet.datacenter(1e-6, 0.1).unwrap();
        assert_eq!(dc.num_disks(), 262_144);
        assert!((dc.expected_failures_per_hour() - 0.262144).abs() < 1e-9);
        assert!(dc.expected_human_errors_per_day() > 0.5);
        // Validation propagates.
        assert!(fleet.datacenter(0.0, 0.1).is_err());
        assert!(fleet.datacenter(1e-6, 1.5).is_err());
    }

    #[test]
    fn fleet_disk_population_is_bounded_at_the_exact_boundary() {
        // MAX_FLEET_DISKS is tighter than MAX_ARRAYS × MAX_DISKS_PER_ARRAY:
        // 65 536 arrays × 64-disk RAID5(63+1) lands exactly on the bound
        // and passes; one disk wider per array must fail cleanly.
        let at_bound = RaidGeometry::raid5(63).unwrap();
        assert_eq!(
            u64::from(FleetSpec::MAX_ARRAYS) * u64::from(at_bound.total_disks()),
            FleetSpec::MAX_FLEET_DISKS
        );
        let fleet = FleetSpec::new(FleetSpec::MAX_ARRAYS, at_bound).unwrap();
        assert_eq!(fleet.total_disks(), FleetSpec::MAX_FLEET_DISKS);

        let over = RaidGeometry::raid5(64).unwrap();
        let err = FleetSpec::new(FleetSpec::MAX_ARRAYS, over).unwrap_err();
        assert!(err.to_string().contains("disk population"), "{err}");
        // Either axis maximum alone is still reachable.
        assert!(FleetSpec::new(FleetSpec::MAX_ARRAYS, RaidGeometry::raid1_pair()).is_ok());
        let widest = RaidGeometry::raid5(FleetSpec::MAX_DISKS_PER_ARRAY - 1).unwrap();
        assert!(FleetSpec::new(4, widest).is_ok());
    }

    #[test]
    fn repairmen_pool_validates_and_defaults_to_unlimited() {
        let geom = RaidGeometry::raid5(3).unwrap();
        let fleet = FleetSpec::new(8, geom).unwrap();
        assert_eq!(fleet.repairmen(), None);
        let limited = fleet.with_repairmen(2).unwrap();
        assert_eq!(limited.repairmen(), Some(2));
        // The crew pool does not change the identity of the fleet shape.
        assert_eq!(limited.arrays(), 8);
        assert_eq!(limited.geometry(), geom);
        let err = fleet.with_repairmen(0).unwrap_err();
        assert!(
            err.to_string().contains("at least one repair crew"),
            "{err}"
        );
    }

    #[test]
    fn failover_site_validates_and_defaults_to_none() {
        let geom = RaidGeometry::raid5(3).unwrap();
        let fleet = FleetSpec::new(8, geom).unwrap();
        assert_eq!(fleet.failover(), None);
        let dr = FleetFailover {
            capacity: Some(2),
            policy: FailoverPolicy::Queue,
            failback_rate: 0.5,
        };
        let coupled = fleet.with_failover(dr).unwrap();
        assert_eq!(coupled.failover(), Some(dr));
        // The DR site does not change the identity of the fleet shape.
        assert_eq!(coupled.arrays(), 8);
        assert_eq!(coupled.repairmen(), None);
        // The ideal-DR limit is an unbounded capacity, not zero slots.
        assert!(fleet
            .with_failover(FleetFailover {
                capacity: None,
                ..dr
            })
            .is_ok());
        let err = fleet
            .with_failover(FleetFailover {
                capacity: Some(0),
                ..dr
            })
            .unwrap_err();
        assert!(
            err.to_string().contains("at least one failover slot"),
            "{err}"
        );
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let err = fleet
                .with_failover(FleetFailover {
                    failback_rate: bad,
                    ..dr
                })
                .unwrap_err();
            assert!(err.to_string().contains("fail-back rate"), "{err}");
        }
    }

    #[test]
    fn failover_policy_round_trips_its_spellings() {
        for policy in [FailoverPolicy::Queue, FailoverPolicy::Loss] {
            assert_eq!(FailoverPolicy::parse(policy.as_str()), Some(policy));
            assert_eq!(policy.to_string(), policy.as_str());
        }
        assert_eq!(FailoverPolicy::parse("drop"), None);
        assert_eq!(FailoverPolicy::default(), FailoverPolicy::Queue);
    }

    #[test]
    fn fleet_spec_rejects_oversized_geometries() {
        // The per-array disk bound: RAID5(299+1) exceeds it.
        let wide = RaidGeometry::raid5(299).unwrap();
        assert!(FleetSpec::new(4, wide).is_err());
        let max_ok = RaidGeometry::raid5(FleetSpec::MAX_DISKS_PER_ARRAY - 1).unwrap();
        assert!(FleetSpec::new(4, max_ok).is_ok());
    }

    #[test]
    fn bigger_disks_mean_fewer_drives() {
        let small = DatacenterModel::exascale(1.0, 1e-6, 0.01).unwrap();
        let big = DatacenterModel::exascale(16.0, 1e-6, 0.01).unwrap();
        assert!(big.num_disks() < small.num_disks());
        assert_eq!(big.num_disks(), 62_500);
    }
}
