//! # availsim-storage
//!
//! Disk-subsystem substrate for availability modeling: RAID geometries, the
//! array state machine with wrong-disk-replacement semantics, maintenance
//! policies, field-calibrated failure models, event traces with downtime
//! accounting, equivalent-capacity volumes, and fleet-scale arithmetic.
//!
//! The semantics follow the DATE'17 paper "Evaluating Impact of Human Errors
//! on the Availability of Data Storage Systems": a *failed* disk loses its
//! data until rebuilt, while a *wrongly removed* disk (the paper's human
//! error) keeps its data and can be reinserted — which is exactly why the
//! two produce different outage classes (`DL` vs `DU`).
//!
//! # Examples
//!
//! ```
//! use availsim_storage::{ArrayStatus, DiskArray, RaidGeometry};
//!
//! # fn main() -> Result<(), availsim_storage::StorageError> {
//! let mut array = DiskArray::new(RaidGeometry::raid5(3)?);
//! array.fail_disk()?;            // first failure: degraded but serving
//! array.wrong_removal()?;        // technician pulls the wrong disk
//! assert_eq!(array.status(), ArrayStatus::Unavailable);
//! array.reinsert_wrongly_removed()?;
//! assert!(array.is_up());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod array;
mod datacenter;
mod disk;
mod error;
mod events;
mod failure_model;
mod lse;
mod maintenance;
mod raid;
mod trace;
mod volume;

pub use array::{ArrayStatus, DiskArray};
pub use datacenter::{DatacenterModel, FailoverPolicy, FleetFailover, FleetSpec, HOURS_PER_YEAR};
pub use disk::{Disk, DiskState};
pub use error::{Result, StorageError};
pub use events::StorageEvent;
pub use failure_model::{FailureModel, SCHROEDER_GIBSON_FITS};
pub use lse::ScrubbingModel;
pub use maintenance::{ReplacementPolicy, ServiceRates};
pub use raid::{RaidGeometry, RaidLevel};
pub use trace::{DowntimeLog, EventTrace, Outage, OutageCause, TraceEvent, TraceKind};
pub use volume::Volume;
