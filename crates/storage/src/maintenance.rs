//! Maintenance policies and service processes.
//!
//! The paper contrasts two disk-replacement disciplines:
//!
//! * **Conventional** — upon a failure the technician replaces the failed
//!   disk right away and starts the rebuild; a human error during this
//!   service window takes the array down.
//! * **Automatic fail-over (delayed replacement)** — a hot spare absorbs the
//!   rebuild with no human involvement; the physical replacement of the dead
//!   disk is deferred until after the on-line rebuild completes, so human
//!   error can no longer coincide with the exposed window.

use crate::error::{Result, StorageError};
use std::fmt;

/// Disk replacement discipline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ReplacementPolicy {
    /// Replace immediately upon failure (paper Fig. 2 model).
    #[default]
    Conventional,
    /// Rebuild into a hot spare first, replace afterwards (paper Fig. 3
    /// model, "delayed disk replacement").
    AutomaticFailOver,
}

impl fmt::Display for ReplacementPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ReplacementPolicy::Conventional => "conventional-disk-replacement",
            ReplacementPolicy::AutomaticFailOver => "automatic-fail-over",
        };
        f.write_str(s)
    }
}

/// Service rates of the maintenance organization, mirroring the paper's
/// parameters (all per hour).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceRates {
    /// `μ_DF` — disk-failure recovery (replacement + rebuild) rate.
    pub disk_repair: f64,
    /// `μ_DDF` — double-disk-failure recovery (restore from backup) rate.
    pub backup_restore: f64,
    /// `μ_he` — human-error recovery (undo wrong replacement) rate.
    pub human_error_recovery: f64,
    /// `μ_ch` — physical disk change rate under automatic fail-over.
    pub disk_change: f64,
    /// `λ_crash` — crash rate of a wrongly removed disk while outside the
    /// chassis.
    pub removed_disk_crash: f64,
}

impl ServiceRates {
    /// The paper's experimental values (§V-B): `μ_DF = 0.1`, `μ_DDF = 0.03`,
    /// `μ_he = 1`, `μ_ch = 1` ("μ_s"), `λ_crash = 0.01`.
    pub fn paper_defaults() -> Self {
        ServiceRates {
            disk_repair: 0.1,
            backup_restore: 0.03,
            human_error_recovery: 1.0,
            disk_change: 1.0,
            removed_disk_crash: 0.01,
        }
    }

    /// Validates that every rate is positive and finite.
    ///
    /// # Errors
    /// Returns [`StorageError::InvalidConfig`] naming the offending field.
    pub fn validate(&self) -> Result<()> {
        let fields = [
            ("disk_repair", self.disk_repair),
            ("backup_restore", self.backup_restore),
            ("human_error_recovery", self.human_error_recovery),
            ("disk_change", self.disk_change),
            ("removed_disk_crash", self.removed_disk_crash),
        ];
        for (name, v) in fields {
            if !(v.is_finite() && v > 0.0) {
                return Err(StorageError::InvalidConfig(format!(
                    "service rate `{name}` must be positive and finite, got {v}"
                )));
            }
        }
        Ok(())
    }

    /// Mean time (hours) to repair a single disk failure.
    pub fn mean_disk_repair_hours(&self) -> f64 {
        1.0 / self.disk_repair
    }

    /// Mean time (hours) to restore from backup after data loss.
    pub fn mean_backup_restore_hours(&self) -> f64 {
        1.0 / self.backup_restore
    }
}

impl Default for ServiceRates {
    fn default() -> Self {
        Self::paper_defaults()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_section_v() {
        let r = ServiceRates::paper_defaults();
        assert_eq!(r.disk_repair, 0.1);
        assert_eq!(r.backup_restore, 0.03);
        assert_eq!(r.human_error_recovery, 1.0);
        assert_eq!(r.disk_change, 1.0);
        assert_eq!(r.removed_disk_crash, 0.01);
        assert!(r.validate().is_ok());
        assert!((r.mean_disk_repair_hours() - 10.0).abs() < 1e-12);
        assert!((r.mean_backup_restore_hours() - 33.333_333).abs() < 1e-3);
    }

    #[test]
    fn validation_names_bad_field() {
        let mut r = ServiceRates::paper_defaults();
        r.backup_restore = 0.0;
        let err = r.validate().unwrap_err();
        assert!(err.to_string().contains("backup_restore"));

        let mut r = ServiceRates::paper_defaults();
        r.disk_change = f64::NAN;
        assert!(r.validate().is_err());
    }

    #[test]
    fn default_policy_is_conventional() {
        assert_eq!(
            ReplacementPolicy::default(),
            ReplacementPolicy::Conventional
        );
        assert_eq!(
            ReplacementPolicy::AutomaticFailOver.to_string(),
            "automatic-fail-over"
        );
    }
}
