//! Event vocabulary shared by the Monte-Carlo availability models.

use std::fmt;

/// Events that drive a disk-subsystem simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StorageEvent {
    /// An active disk fails. The payload is the disk slot index.
    DiskFailure(u32),
    /// Conventional service completes: failed disk replaced and rebuilt.
    RepairComplete,
    /// Automatic fail-over completes: failed disk rebuilt into a hot spare.
    SpareRebuildComplete,
    /// The physical change of the dead disk completes (fail-over policy).
    DiskChangeComplete,
    /// Recovery of a wrong replacement completes (the pulled disk is back).
    HumanErrorRecoveryComplete,
    /// A wrongly removed disk crashes while outside the chassis.
    RemovedDiskCrash,
    /// Restore from backup completes after data loss.
    BackupRestoreComplete,
}

impl fmt::Display for StorageEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageEvent::DiskFailure(d) => write!(f, "disk-failure(disk {d})"),
            StorageEvent::RepairComplete => f.write_str("repair-complete"),
            StorageEvent::SpareRebuildComplete => f.write_str("spare-rebuild-complete"),
            StorageEvent::DiskChangeComplete => f.write_str("disk-change-complete"),
            StorageEvent::HumanErrorRecoveryComplete => {
                f.write_str("human-error-recovery-complete")
            }
            StorageEvent::RemovedDiskCrash => f.write_str("removed-disk-crash"),
            StorageEvent::BackupRestoreComplete => f.write_str("backup-restore-complete"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_readable() {
        assert_eq!(
            StorageEvent::DiskFailure(2).to_string(),
            "disk-failure(disk 2)"
        );
        assert_eq!(StorageEvent::RepairComplete.to_string(), "repair-complete");
    }

    #[test]
    fn events_are_hashable_and_comparable() {
        use std::collections::HashSet;
        let mut s = HashSet::new();
        s.insert(StorageEvent::RemovedDiskCrash);
        s.insert(StorageEvent::RemovedDiskCrash);
        assert_eq!(s.len(), 1);
    }
}
