//! Event traces and downtime accounting.
//!
//! [`EventTrace`] records what happened when (reproducing the paper's Fig. 1
//! timeline), and [`DowntimeLog`] accumulates outage intervals with their
//! causes, from which availability is computed as
//! `uptime / total time`.

use std::fmt;

/// What happened at a traced instant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceKind {
    /// A disk failed.
    DiskFailure {
        /// Slot index of the failed disk.
        disk: u32,
    },
    /// Replacement + rebuild of a failed disk completed successfully.
    RepairComplete {
        /// Slot index of the repaired disk.
        disk: u32,
    },
    /// A wrong disk replacement happened (human error): an operating disk
    /// was pulled instead of the failed one.
    WrongReplacement {
        /// Slot index of the wrongly removed disk.
        removed_disk: u32,
    },
    /// The wrong replacement was detected and undone.
    WrongReplacementUndone,
    /// A wrongly removed disk crashed outside the chassis.
    RemovedDiskCrashed,
    /// Data-loss event (more failures than redundancy).
    DataLoss,
    /// A rebuild read hit a latent sector error on a surviving disk, so
    /// the reconstruction failed and data was lost.
    RebuildLse,
    /// Data-unavailability event (human error made data unreachable).
    DataUnavailable,
    /// Restore from backup completed.
    BackupRestoreComplete,
    /// Rebuild into a hot spare completed (automatic fail-over).
    SpareRebuildComplete,
}

impl fmt::Display for TraceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceKind::DiskFailure { disk } => write!(f, "disk {disk} failed"),
            TraceKind::RepairComplete { disk } => write!(f, "disk {disk} repaired"),
            TraceKind::WrongReplacement { removed_disk } => {
                write!(f, "WRONG replacement: pulled operating disk {removed_disk}")
            }
            TraceKind::WrongReplacementUndone => f.write_str("wrong replacement undone"),
            TraceKind::RemovedDiskCrashed => f.write_str("removed disk crashed"),
            TraceKind::DataLoss => f.write_str("DATA LOSS (redundancy exhausted)"),
            TraceKind::RebuildLse => f.write_str("rebuild hit a latent sector error"),
            TraceKind::DataUnavailable => f.write_str("DATA UNAVAILABLE (human error)"),
            TraceKind::BackupRestoreComplete => f.write_str("backup restore complete"),
            TraceKind::SpareRebuildComplete => f.write_str("spare rebuild complete"),
        }
    }
}

/// One timestamped trace entry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEvent {
    /// Simulation time in hours.
    pub time: f64,
    /// What happened.
    pub kind: TraceKind,
}

/// An append-only record of simulation events.
#[derive(Debug, Clone, Default)]
pub struct EventTrace {
    events: Vec<TraceEvent>,
}

impl EventTrace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an event.
    pub fn record(&mut self, time: f64, kind: TraceKind) {
        self.events.push(TraceEvent { time, kind });
    }

    /// Empties the trace while retaining its allocated capacity, so one
    /// buffer can record many missions without per-mission allocations.
    pub fn clear(&mut self) {
        self.events.clear();
    }

    /// All recorded events in order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events of a particular kind predicate.
    pub fn count_where(&self, pred: impl Fn(&TraceKind) -> bool) -> usize {
        self.events.iter().filter(|e| pred(&e.kind)).count()
    }

    /// Renders a human-readable timeline (one line per event), the textual
    /// analogue of the paper's Fig. 1.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&format!("{:>10.1} h  {}\n", e.time, e.kind));
        }
        out
    }
}

/// Why the subsystem was down.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OutageCause {
    /// Data loss — more concurrent failures than the geometry's redundancy
    /// tolerates, or a rebuild lost data to a latent sector error
    /// (paper `DL`). The count needed is `fault_tolerance() + 1`, not a
    /// literal "double" failure — mirrors and RAID6 survive two.
    DataLoss,
    /// Data unavailability — human error (paper `DU`).
    HumanError,
}

/// A closed outage interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Outage {
    /// Start time (hours).
    pub start: f64,
    /// End time (hours).
    pub end: f64,
    /// Cause of the outage.
    pub cause: OutageCause,
}

impl Outage {
    /// Duration of the outage in hours.
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }
}

/// Accumulates outage intervals over a simulation run.
#[derive(Debug, Clone, Default)]
pub struct DowntimeLog {
    outages: Vec<Outage>,
    open: Option<(f64, OutageCause)>,
}

impl DowntimeLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Resets the log to its just-constructed state — no closed outages, no
    /// open interval — while retaining the outage vector's allocated
    /// capacity. This is the hot-loop reset used by Monte-Carlo simulators
    /// that account downtime for millions of missions on one log.
    pub fn clear(&mut self) {
        self.outages.clear();
        self.open = None;
    }

    /// Marks the system down at `time` for `cause`. If an outage is already
    /// open, the call is ignored (the first cause wins — e.g. a crash during
    /// a human-error outage does not start a second interval).
    pub fn begin(&mut self, time: f64, cause: OutageCause) {
        if self.open.is_none() {
            self.open = Some((time, cause));
        }
    }

    /// Marks the system back up at `time`, closing any open outage.
    pub fn end(&mut self, time: f64) {
        if let Some((start, cause)) = self.open.take() {
            self.outages.push(Outage {
                start,
                end: time.max(start),
                cause,
            });
        }
    }

    /// Whether an outage is currently open.
    pub fn is_down(&self) -> bool {
        self.open.is_some()
    }

    /// Closes any open outage at the simulation horizon.
    pub fn finalize(&mut self, horizon: f64) {
        self.end(horizon);
    }

    /// All closed outages.
    pub fn outages(&self) -> &[Outage] {
        &self.outages
    }

    /// Total downtime in hours (closed outages only).
    pub fn total_downtime(&self) -> f64 {
        self.outages.iter().map(Outage::duration).sum()
    }

    /// Downtime attributable to one cause.
    pub fn downtime_by_cause(&self, cause: OutageCause) -> f64 {
        self.outages
            .iter()
            .filter(|o| o.cause == cause)
            .map(Outage::duration)
            .sum()
    }

    /// Number of outages with the given cause.
    pub fn count_by_cause(&self, cause: OutageCause) -> usize {
        self.outages.iter().filter(|o| o.cause == cause).count()
    }

    /// Availability over a horizon: `1 − downtime/horizon`.
    ///
    /// # Panics
    /// Panics if `horizon` is not positive.
    pub fn availability(&self, horizon: f64) -> f64 {
        assert!(horizon > 0.0, "horizon must be positive");
        (1.0 - self.total_downtime() / horizon).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_records_and_renders() {
        let mut t = EventTrace::new();
        t.record(100.0, TraceKind::DiskFailure { disk: 1 });
        t.record(110.0, TraceKind::RepairComplete { disk: 1 });
        assert_eq!(t.len(), 2);
        let s = t.render();
        assert!(s.contains("disk 1 failed"));
        assert!(s.contains("100.0 h"));
    }

    #[test]
    fn data_loss_label_is_geometry_agnostic() {
        // Regression: the label used to say "(double disk failure)", which
        // is wrong for RAID6 and mirrors where loss needs
        // `fault_tolerance() + 1` concurrent failures — and for LSE-induced
        // rebuild failures, which involve only one whole-disk failure.
        let label = TraceKind::DataLoss.to_string();
        assert!(!label.contains("double"), "{label}");
        assert!(label.contains("DATA LOSS"), "{label}");
        let lse = TraceKind::RebuildLse.to_string();
        assert!(lse.contains("latent sector error"), "{lse}");
    }

    #[test]
    fn count_where_filters() {
        let mut t = EventTrace::new();
        t.record(1.0, TraceKind::DataLoss);
        t.record(2.0, TraceKind::DataUnavailable);
        t.record(3.0, TraceKind::DataLoss);
        assert_eq!(t.count_where(|k| matches!(k, TraceKind::DataLoss)), 2);
    }

    #[test]
    fn downtime_intervals_accumulate() {
        let mut log = DowntimeLog::new();
        log.begin(10.0, OutageCause::HumanError);
        log.end(11.0);
        log.begin(50.0, OutageCause::DataLoss);
        log.end(83.0);
        assert_eq!(log.outages().len(), 2);
        assert!((log.total_downtime() - 34.0).abs() < 1e-12);
        assert!((log.downtime_by_cause(OutageCause::HumanError) - 1.0).abs() < 1e-12);
        assert!((log.downtime_by_cause(OutageCause::DataLoss) - 33.0).abs() < 1e-12);
        assert_eq!(log.count_by_cause(OutageCause::DataLoss), 1);
    }

    #[test]
    fn first_cause_wins_for_nested_outages() {
        let mut log = DowntimeLog::new();
        log.begin(5.0, OutageCause::HumanError);
        log.begin(6.0, OutageCause::DataLoss); // ignored: already down
        log.end(8.0);
        assert_eq!(log.outages().len(), 1);
        assert_eq!(log.outages()[0].cause, OutageCause::HumanError);
        assert!((log.outages()[0].duration() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn finalize_closes_open_outage() {
        let mut log = DowntimeLog::new();
        log.begin(90.0, OutageCause::DataLoss);
        assert!(log.is_down());
        log.finalize(100.0);
        assert!(!log.is_down());
        assert!((log.total_downtime() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn availability_from_downtime() {
        let mut log = DowntimeLog::new();
        log.begin(0.0, OutageCause::DataLoss);
        log.end(1.0);
        assert!((log.availability(100.0) - 0.99).abs() < 1e-12);
        // No downtime -> availability 1.
        let empty = DowntimeLog::new();
        assert_eq!(empty.availability(10.0), 1.0);
    }

    #[test]
    fn clear_resets_trace_and_log_for_reuse() {
        let mut t = EventTrace::new();
        t.record(1.0, TraceKind::DataLoss);
        t.clear();
        assert!(t.is_empty());
        t.record(2.0, TraceKind::DataUnavailable);
        assert_eq!(t.len(), 1);

        let mut log = DowntimeLog::new();
        log.begin(1.0, OutageCause::DataLoss);
        log.end(2.0);
        log.begin(3.0, OutageCause::HumanError); // left open: poisoned state
        assert!(log.is_down());
        log.clear();
        assert!(!log.is_down());
        assert!(log.outages().is_empty());
        assert_eq!(log.total_downtime(), 0.0);
        // A fresh mission on the reused log starts from a clean slate.
        log.begin(5.0, OutageCause::DataLoss);
        log.finalize(7.0);
        assert!((log.total_downtime() - 2.0).abs() < 1e-12);
        assert_eq!(log.count_by_cause(OutageCause::HumanError), 0);
    }

    #[test]
    fn end_before_begin_is_clamped() {
        let mut log = DowntimeLog::new();
        log.begin(10.0, OutageCause::HumanError);
        log.end(9.0); // clock oddity: clamp to zero-length
        assert_eq!(log.total_downtime(), 0.0);
    }
}
