//! Individual disk model.

use std::fmt;

/// The operational state of one physical disk slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DiskState {
    /// Serving I/O.
    Operational,
    /// Failed (media or electronics); its data is lost until rebuilt.
    Failed,
    /// Pulled from the chassis by mistake (the paper's wrong replacement);
    /// its data is intact and comes back if the disk is reinserted.
    WronglyRemoved,
    /// Target of an ongoing rebuild.
    Rebuilding,
    /// Standing by as a hot spare.
    Spare,
}

impl fmt::Display for DiskState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DiskState::Operational => "operational",
            DiskState::Failed => "failed",
            DiskState::WronglyRemoved => "wrongly-removed",
            DiskState::Rebuilding => "rebuilding",
            DiskState::Spare => "spare",
        };
        f.write_str(s)
    }
}

/// A disk with an identity and a state, used by trace rendering and the
/// per-disk Monte-Carlo bookkeeping.
#[derive(Debug, Clone, PartialEq)]
pub struct Disk {
    id: u32,
    state: DiskState,
    /// Accumulated power-on age (hours), relevant for Weibull hazard.
    age_hours: f64,
}

impl Disk {
    /// Creates an operational disk with the given identifier.
    pub fn new(id: u32) -> Self {
        Disk {
            id,
            state: DiskState::Operational,
            age_hours: 0.0,
        }
    }

    /// Creates a hot-spare disk.
    pub fn spare(id: u32) -> Self {
        Disk {
            id,
            state: DiskState::Spare,
            age_hours: 0.0,
        }
    }

    /// Identifier within the array.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// Current state.
    pub fn state(&self) -> DiskState {
        self.state
    }

    /// Sets the state (state legality is enforced at the array level).
    pub fn set_state(&mut self, state: DiskState) {
        self.state = state;
    }

    /// Power-on age in hours.
    pub fn age_hours(&self) -> f64 {
        self.age_hours
    }

    /// Advances the disk's age; only operational and rebuilding disks age.
    pub fn advance_age(&mut self, hours: f64) {
        if matches!(self.state, DiskState::Operational | DiskState::Rebuilding) {
            self.age_hours += hours.max(0.0);
        }
    }

    /// Whether the disk is currently serving I/O.
    pub fn is_operational(&self) -> bool {
        self.state == DiskState::Operational
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_disk_is_operational() {
        let d = Disk::new(3);
        assert_eq!(d.id(), 3);
        assert!(d.is_operational());
        assert_eq!(d.age_hours(), 0.0);
    }

    #[test]
    fn spare_is_not_operational() {
        let d = Disk::spare(9);
        assert_eq!(d.state(), DiskState::Spare);
        assert!(!d.is_operational());
    }

    #[test]
    fn only_active_disks_age() {
        let mut d = Disk::new(0);
        d.advance_age(10.0);
        assert_eq!(d.age_hours(), 10.0);
        d.set_state(DiskState::Failed);
        d.advance_age(10.0);
        assert_eq!(d.age_hours(), 10.0);
        d.set_state(DiskState::Rebuilding);
        d.advance_age(5.0);
        assert_eq!(d.age_hours(), 15.0);
    }

    #[test]
    fn negative_age_advances_are_ignored() {
        let mut d = Disk::new(0);
        d.advance_age(-5.0);
        assert_eq!(d.age_hours(), 0.0);
    }

    #[test]
    fn states_display() {
        assert_eq!(DiskState::WronglyRemoved.to_string(), "wrongly-removed");
        assert_eq!(DiskState::Operational.to_string(), "operational");
    }
}
