//! Multi-array volumes with equivalent usable capacity.
//!
//! The paper's Fig. 6 compares RAID organizations at *equal logical
//! capacity*: a volume made of RAID1(1+1) pairs needs more disks (higher
//! effective replication factor) than one made of RAID5(7+1) arrays. A
//! volume is a series system — it is up only while every member array is up.

use crate::error::Result;
use crate::raid::RaidGeometry;

/// A set of identical, independent arrays jointly providing a usable
/// capacity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Volume {
    geometry: RaidGeometry,
    arrays: u64,
}

impl Volume {
    /// A volume of `arrays` identical arrays.
    pub fn new(geometry: RaidGeometry, arrays: u64) -> Self {
        Volume { geometry, arrays }
    }

    /// Builds the volume that provides `usable` units of logical capacity.
    ///
    /// # Errors
    /// Returns [`crate::StorageError::CapacityMismatch`] when `usable` does
    /// not divide evenly into arrays.
    pub fn with_usable_capacity(geometry: RaidGeometry, usable: u64) -> Result<Self> {
        let arrays = geometry.arrays_for_usable_capacity(usable)?;
        Ok(Volume { geometry, arrays })
    }

    /// The member-array geometry.
    pub fn geometry(&self) -> &RaidGeometry {
        &self.geometry
    }

    /// Number of member arrays.
    pub fn arrays(&self) -> u64 {
        self.arrays
    }

    /// Total physical disks across the volume.
    pub fn total_disks(&self) -> u64 {
        self.arrays * u64::from(self.geometry.total_disks())
    }

    /// Usable capacity in disk units.
    pub fn usable_capacity(&self) -> u64 {
        self.arrays * u64::from(self.geometry.usable_capacity())
    }

    /// Volume availability given a per-array availability, assuming
    /// independent arrays in series: `A_volume = A_array^arrays`.
    pub fn series_availability(&self, per_array_availability: f64) -> f64 {
        per_array_availability.powi(self.arrays as i32)
    }

    /// Volume unavailability given per-array *unavailability*, computed in a
    /// cancellation-free way: `1 − (1−u)^n = −expm1(n·ln1p(−u))`.
    ///
    /// For the 1e-9-scale unavailabilities of availability studies,
    /// the naive `1 − (1−u)^n` would lose all significant digits.
    pub fn series_unavailability(&self, per_array_unavailability: f64) -> f64 {
        let u = per_array_unavailability.clamp(0.0, 1.0);
        if u == 1.0 {
            return 1.0;
        }
        -((self.arrays as f64) * (-u).ln_1p()).exp_m1()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_fig6_volume_shapes() {
        let r1 = Volume::with_usable_capacity(RaidGeometry::raid1_pair(), 21).unwrap();
        let r5a = Volume::with_usable_capacity(RaidGeometry::raid5(3).unwrap(), 21).unwrap();
        let r5b = Volume::with_usable_capacity(RaidGeometry::raid5(7).unwrap(), 21).unwrap();
        assert_eq!(r1.arrays(), 21);
        assert_eq!(r5a.arrays(), 7);
        assert_eq!(r5b.arrays(), 3);
        // ERF ordering drives disk counts: 42 > 28 > 24.
        assert_eq!(r1.total_disks(), 42);
        assert_eq!(r5a.total_disks(), 28);
        assert_eq!(r5b.total_disks(), 24);
        assert_eq!(r1.usable_capacity(), 21);
        assert_eq!(r5a.usable_capacity(), 21);
        assert_eq!(r5b.usable_capacity(), 21);
    }

    #[test]
    fn series_availability_multiplies() {
        let v = Volume::new(RaidGeometry::raid5(3).unwrap(), 3);
        let a = v.series_availability(0.9);
        assert!((a - 0.729).abs() < 1e-12);
    }

    #[test]
    fn series_unavailability_is_stable_for_tiny_u() {
        let v = Volume::new(RaidGeometry::raid5(3).unwrap(), 7);
        let u = 1e-12;
        let total = v.series_unavailability(u);
        // ≈ 7e-12 with relative error << 1%.
        assert!((total - 7e-12).abs() < 1e-14, "got {total}");
    }

    #[test]
    fn series_unavailability_saturates() {
        let v = Volume::new(RaidGeometry::raid1_pair(), 10);
        assert_eq!(v.series_unavailability(1.0), 1.0);
        assert_eq!(v.series_unavailability(0.0), 0.0);
        // Out-of-range inputs are clamped.
        assert_eq!(v.series_unavailability(2.0), 1.0);
    }

    #[test]
    fn consistency_between_availability_and_unavailability() {
        let v = Volume::new(RaidGeometry::raid5(7).unwrap(), 5);
        let u = 1e-4;
        let a = v.series_availability(1.0 - u);
        let uu = v.series_unavailability(u);
        assert!((a + uu - 1.0).abs() < 1e-12);
    }
}
