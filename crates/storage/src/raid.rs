//! RAID geometry: disk counts, fault tolerance, and effective replication
//! factor (ERF).

use crate::error::{Result, StorageError};
use std::fmt;

/// The RAID organization of an array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RaidLevel {
    /// Striping, no redundancy.
    Raid0,
    /// Mirroring.
    Raid1,
    /// Single distributed parity.
    Raid5,
    /// Double distributed parity.
    Raid6,
}

impl fmt::Display for RaidLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RaidLevel::Raid0 => "RAID0",
            RaidLevel::Raid1 => "RAID1",
            RaidLevel::Raid5 => "RAID5",
            RaidLevel::Raid6 => "RAID6",
        };
        f.write_str(s)
    }
}

/// A concrete array geometry: level plus data/redundancy disk counts.
///
/// # Examples
///
/// ```
/// use availsim_storage::RaidGeometry;
///
/// # fn main() -> Result<(), availsim_storage::StorageError> {
/// let g = RaidGeometry::raid5(3)?; // the paper's RAID5 (3+1)
/// assert_eq!(g.total_disks(), 4);
/// assert_eq!(g.fault_tolerance(), 1);
/// assert!((g.effective_replication_factor() - 4.0 / 3.0).abs() < 1e-12);
/// assert_eq!(g.label(), "RAID5(3+1)");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RaidGeometry {
    level: RaidLevel,
    data_disks: u32,
    redundancy_disks: u32,
}

impl RaidGeometry {
    /// RAID0 stripe over `k` disks (no redundancy; any failure is data loss).
    ///
    /// # Errors
    /// Returns [`StorageError::InvalidGeometry`] for `k == 0`.
    pub fn raid0(k: u32) -> Result<Self> {
        if k == 0 {
            return Err(StorageError::InvalidGeometry(
                "raid0 needs at least one disk".into(),
            ));
        }
        Ok(RaidGeometry {
            level: RaidLevel::Raid0,
            data_disks: k,
            redundancy_disks: 0,
        })
    }

    /// A mirrored pair, the paper's `RAID1(1+1)`.
    pub fn raid1_pair() -> Self {
        RaidGeometry {
            level: RaidLevel::Raid1,
            data_disks: 1,
            redundancy_disks: 1,
        }
    }

    /// An `n`-way mirror of a single logical disk (`1+(n−1)` copies).
    ///
    /// # Errors
    /// Returns [`StorageError::InvalidGeometry`] for fewer than two copies.
    pub fn raid1_mirror(copies: u32) -> Result<Self> {
        if copies < 2 {
            return Err(StorageError::InvalidGeometry(
                "raid1 needs at least two copies".into(),
            ));
        }
        Ok(RaidGeometry {
            level: RaidLevel::Raid1,
            data_disks: 1,
            redundancy_disks: copies - 1,
        })
    }

    /// RAID5 with `k` data disks and one parity disk (`k+1`).
    ///
    /// # Errors
    /// Returns [`StorageError::InvalidGeometry`] for `k < 2`.
    pub fn raid5(k: u32) -> Result<Self> {
        if k < 2 {
            return Err(StorageError::InvalidGeometry(
                "raid5 needs at least two data disks".into(),
            ));
        }
        Ok(RaidGeometry {
            level: RaidLevel::Raid5,
            data_disks: k,
            redundancy_disks: 1,
        })
    }

    /// RAID6 with `k` data disks and two parity disks (`k+2`).
    ///
    /// # Errors
    /// Returns [`StorageError::InvalidGeometry`] for `k < 2`.
    pub fn raid6(k: u32) -> Result<Self> {
        if k < 2 {
            return Err(StorageError::InvalidGeometry(
                "raid6 needs at least two data disks".into(),
            ));
        }
        Ok(RaidGeometry {
            level: RaidLevel::Raid6,
            data_disks: k,
            redundancy_disks: 2,
        })
    }

    /// The RAID level.
    pub fn level(&self) -> RaidLevel {
        self.level
    }

    /// Number of disks carrying user data capacity.
    pub fn data_disks(&self) -> u32 {
        self.data_disks
    }

    /// Number of redundancy (parity or mirror) disks.
    pub fn redundancy_disks(&self) -> u32 {
        self.redundancy_disks
    }

    /// Total number of disks in the array.
    pub fn total_disks(&self) -> u32 {
        self.data_disks + self.redundancy_disks
    }

    /// How many *concurrent* disk losses the array tolerates without losing
    /// data.
    pub fn fault_tolerance(&self) -> u32 {
        self.redundancy_disks
    }

    /// Usable (logical) capacity in units of one disk.
    pub fn usable_capacity(&self) -> u32 {
        self.data_disks
    }

    /// Effective replication factor: physical size over logical size
    /// (cf. Muralidhar et al., OSDI'14 — cited by the paper to explain the
    /// RAID ranking inversion).
    pub fn effective_replication_factor(&self) -> f64 {
        f64::from(self.total_disks()) / f64::from(self.data_disks)
    }

    /// How many arrays of this geometry are needed for `usable` units of
    /// logical capacity.
    ///
    /// # Errors
    /// Returns [`StorageError::CapacityMismatch`] when `usable` is not an
    /// exact multiple of the per-array capacity.
    pub fn arrays_for_usable_capacity(&self, usable: u64) -> Result<u64> {
        let per = u64::from(self.usable_capacity());
        if usable == 0 || !usable.is_multiple_of(per) {
            return Err(StorageError::CapacityMismatch {
                requested: usable,
                per_array: per,
            });
        }
        Ok(usable / per)
    }

    /// Human-readable label such as `RAID5(3+1)`.
    pub fn label(&self) -> String {
        format!(
            "{}({}+{})",
            self.level, self.data_disks, self.redundancy_disks
        )
    }
}

impl fmt::Display for RaidGeometry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_geometries() {
        let r1 = RaidGeometry::raid1_pair();
        let r5a = RaidGeometry::raid5(3).unwrap();
        let r5b = RaidGeometry::raid5(7).unwrap();
        assert_eq!(r1.total_disks(), 2);
        assert_eq!(r5a.total_disks(), 4);
        assert_eq!(r5b.total_disks(), 8);
        assert_eq!(r1.label(), "RAID1(1+1)");
        assert_eq!(r5a.label(), "RAID5(3+1)");
        assert_eq!(r5b.label(), "RAID5(7+1)");
    }

    #[test]
    fn erf_matches_paper_values() {
        // Paper §V-C: ERF(RAID1 1+1)=2, ERF(RAID5 3+1)=1.33, ERF(RAID5 7+1)=1.14.
        assert!((RaidGeometry::raid1_pair().effective_replication_factor() - 2.0).abs() < 1e-12);
        assert!(
            (RaidGeometry::raid5(3)
                .unwrap()
                .effective_replication_factor()
                - 4.0 / 3.0)
                .abs()
                < 1e-12
        );
        assert!(
            (RaidGeometry::raid5(7)
                .unwrap()
                .effective_replication_factor()
                - 8.0 / 7.0)
                .abs()
                < 1e-12
        );
    }

    #[test]
    fn fault_tolerance_by_level() {
        assert_eq!(RaidGeometry::raid0(4).unwrap().fault_tolerance(), 0);
        assert_eq!(RaidGeometry::raid1_pair().fault_tolerance(), 1);
        assert_eq!(RaidGeometry::raid5(3).unwrap().fault_tolerance(), 1);
        assert_eq!(RaidGeometry::raid6(6).unwrap().fault_tolerance(), 2);
    }

    #[test]
    fn equivalent_capacity_array_counts() {
        // Paper Fig. 6 setup: usable capacity of 21 disk units.
        assert_eq!(
            RaidGeometry::raid1_pair()
                .arrays_for_usable_capacity(21)
                .unwrap(),
            21
        );
        assert_eq!(
            RaidGeometry::raid5(3)
                .unwrap()
                .arrays_for_usable_capacity(21)
                .unwrap(),
            7
        );
        assert_eq!(
            RaidGeometry::raid5(7)
                .unwrap()
                .arrays_for_usable_capacity(21)
                .unwrap(),
            3
        );
    }

    #[test]
    fn capacity_mismatch_detected() {
        let err = RaidGeometry::raid5(3)
            .unwrap()
            .arrays_for_usable_capacity(20)
            .unwrap_err();
        assert_eq!(
            err,
            StorageError::CapacityMismatch {
                requested: 20,
                per_array: 3
            }
        );
        assert!(RaidGeometry::raid5(3)
            .unwrap()
            .arrays_for_usable_capacity(0)
            .is_err());
    }

    #[test]
    fn invalid_geometries_rejected() {
        assert!(RaidGeometry::raid0(0).is_err());
        assert!(RaidGeometry::raid1_mirror(1).is_err());
        assert!(RaidGeometry::raid5(1).is_err());
        assert!(RaidGeometry::raid6(0).is_err());
    }

    #[test]
    fn raid6_minimum_width() {
        // k = 2 is the smallest RAID6 (2+2); k = 1 would be a mirror in
        // disguise and is rejected like k = 0.
        assert!(RaidGeometry::raid6(1).is_err());
        let g = RaidGeometry::raid6(2).unwrap();
        assert_eq!(g.total_disks(), 4);
        assert_eq!(g.fault_tolerance(), 2);
        assert_eq!(g.usable_capacity(), 2);
        assert_eq!(g.label(), "RAID6(2+2)");
        assert!((g.effective_replication_factor() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn array_counts_reject_rounding_and_survive_u64_extremes() {
        let r6 = RaidGeometry::raid6(4).unwrap();
        // Non-multiples are a hard error, never silently rounded.
        for bad in [1u64, 3, 5, 7, 4 * 1_000 + 1] {
            assert!(r6.arrays_for_usable_capacity(bad).is_err(), "{bad}");
        }
        assert_eq!(r6.arrays_for_usable_capacity(4_000).unwrap(), 1_000);
        // u64 extremes: the widest multiple of 4 representable does not
        // overflow the division, and u64::MAX (≡ 3 mod 4) is a clean
        // mismatch error rather than a wrap.
        let widest = u64::MAX - 3; // largest multiple of 4
        assert_eq!(r6.arrays_for_usable_capacity(widest).unwrap(), widest / 4);
        assert!(r6.arrays_for_usable_capacity(u64::MAX).is_err());
        // A single-unit geometry maps capacity 1:1 even at the extreme.
        let r1 = RaidGeometry::raid1_pair();
        assert_eq!(r1.arrays_for_usable_capacity(u64::MAX).unwrap(), u64::MAX);
    }

    #[test]
    fn erf_is_consistent_across_constructors() {
        // ERF must always equal total/data no matter which constructor
        // built the geometry — including the fixed raid1_pair vs the
        // general mirror, and raid0's degenerate 1.0.
        let geoms = [
            RaidGeometry::raid0(5).unwrap(),
            RaidGeometry::raid1_pair(),
            RaidGeometry::raid1_mirror(2).unwrap(),
            RaidGeometry::raid1_mirror(4).unwrap(),
            RaidGeometry::raid5(2).unwrap(),
            RaidGeometry::raid5(7).unwrap(),
            RaidGeometry::raid6(2).unwrap(),
            RaidGeometry::raid6(10).unwrap(),
        ];
        for g in geoms {
            let expect = f64::from(g.total_disks()) / f64::from(g.data_disks());
            assert_eq!(g.effective_replication_factor(), expect, "{g}");
            assert_eq!(g.usable_capacity(), g.data_disks(), "{g}");
            assert_eq!(g.total_disks() - g.fault_tolerance(), g.data_disks(), "{g}");
        }
        // The two ways of building a plain mirror pair agree exactly.
        assert_eq!(
            RaidGeometry::raid1_pair(),
            RaidGeometry::raid1_mirror(2).unwrap()
        );
    }

    #[test]
    fn three_way_mirror() {
        let m = RaidGeometry::raid1_mirror(3).unwrap();
        assert_eq!(m.total_disks(), 3);
        assert_eq!(m.fault_tolerance(), 2);
        assert!((m.effective_replication_factor() - 3.0).abs() < 1e-12);
    }
}
