//! Shared harness for the figure-regeneration benchmarks.
//!
//! Every bench target first *prints the reproduced figure as data* (series
//! or table), then runs a Criterion timing of the computational kernel
//! behind it. Monte-Carlo volumes are scaled by the `AVAILSIM_BENCH_SCALE`
//! environment variable (default 1.0; the paper's 10⁶-iteration setting is
//! roughly `AVAILSIM_BENCH_SCALE=5`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod snapshot;

use availsim_core::analysis::{fig7_policy_sweep, underestimation_sweep, PolicyComparison};
use availsim_core::markov::{Raid5Conventional, Raid5FailOver, WrongReplacementTiming};
use availsim_core::mc::{ConventionalMc, McConfig};
use availsim_core::report::{Series, Table};
use availsim_core::volume::{compare_equal_capacity, FIG6_USABLE_CAPACITY};
use availsim_core::{nines, ModelParams};
use availsim_hra::Hep;
use availsim_storage::FailureModel;
use snapshot::JsonSnapshot;

/// Multiplier applied to Monte-Carlo iteration counts, from
/// `AVAILSIM_BENCH_SCALE` (default 1.0, minimum 0.01).
pub fn bench_scale() -> f64 {
    std::env::var("AVAILSIM_BENCH_SCALE")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .map(|v| v.max(0.01))
        .unwrap_or(1.0)
}

/// Scales a base iteration count by [`bench_scale`].
pub fn mc_iterations(base: u64) -> u64 {
    ((base as f64) * bench_scale()).round().max(2.0) as u64
}

/// The λ grid of the paper's Fig. 4 x-axis (5e-7 … 5.5e-6).
pub fn fig4_lambda_grid() -> Vec<f64> {
    (1..=11).map(|i| i as f64 * 5e-7).collect()
}

/// Default RAID5(3+1) parameters at the given λ and hep.
///
/// # Panics
/// Panics only on invalid inputs (not reachable from the fixed grids used
/// by the benches).
pub fn raid5_params(lambda: f64, hep: f64) -> ModelParams {
    ModelParams::raid5_3plus1(lambda, Hep::new(hep).expect("valid hep")).expect("valid parameters")
}

/// Fig. 4 — MC vs Markov availability (nines) over the λ grid, for
/// `hep ∈ {0.001, 0.01}`. Returns the four series in the paper's legend
/// order.
pub fn fig4_series(mc_iters: u64) -> Vec<Series> {
    let mut out = Vec::new();
    for &hep in &[0.01, 0.001] {
        let mut mc_series = Series::new(format!("MC Simulation, hep={hep}"));
        let mut markov_series = Series::new(format!("Markov, hep={hep}"));
        for &lam in &fig4_lambda_grid() {
            let params = raid5_params(lam, hep);
            let markov = Raid5Conventional::new(params)
                .expect("valid model")
                .solve()
                .expect("solvable");
            let config = McConfig {
                iterations: mc_iters,
                horizon_hours: 87_600.0,
                seed: (lam * 1e9) as u64 ^ (hep * 1e6) as u64,
                confidence: 0.99,
                threads: 0,
                ..McConfig::default()
            };
            let est = ConventionalMc::new(params)
                .expect("valid model")
                .run(&config)
                .expect("valid config");
            mc_series.push(lam, est.nines());
            markov_series.push(lam, markov.nines());
        }
        out.push(mc_series);
        out.push(markov_series);
    }
    out
}

/// Fig. 5 — availability of RAID5(3+1) vs hep for the four Weibull field
/// fits (Monte-Carlo; the analytical model cannot handle Weibull).
pub fn fig5_table(mc_iters: u64) -> Table {
    let mut table = Table::new(
        "Fig. 5 — RAID5(3+1) availability (nines) under Weibull field fits",
        &["rate", "beta", "hep=0", "hep=0.001", "hep=0.01"],
    );
    for &(rate, beta) in &availsim_storage::SCHROEDER_GIBSON_FITS {
        let mut cells = vec![format!("{rate:.2e}"), format!("{beta}")];
        for &hep in &[0.0, 0.001, 0.01] {
            let params = raid5_params(rate, hep);
            let failures = FailureModel::weibull(rate, beta).expect("valid fit");
            let mc = ConventionalMc::with_failure_model(params, failures).expect("valid model");
            let config = McConfig {
                iterations: mc_iters,
                horizon_hours: 87_600.0,
                seed: (rate * 1e9) as u64 ^ (beta * 100.0) as u64 ^ (hep * 1e6) as u64,
                confidence: 0.99,
                threads: 0,
                ..McConfig::default()
            };
            let est = mc.run(&config).expect("valid config");
            if est.du_events + est.dl_events == 0 {
                // No outage observed: report the resolution limit of the
                // run (one mean-length restore over the simulated time)
                // rather than a meaningless "infinite nines".
                let resolution = (1.0 / 0.03) / (config.horizon_hours * config.iterations as f64);
                cells.push(format!(
                    ">{:.1}",
                    availsim_core::nines::nines_from_unavailability(resolution)
                ));
            } else {
                cells.push(format!("{:.3}", est.nines()));
            }
        }
        table.push_row(&cells);
    }
    table
}

/// Fig. 6 — equivalent-capacity RAID comparison for one λ sub-figure.
pub fn fig6_table(lambda: f64) -> Table {
    let mut table = Table::new(
        format!("Fig. 6 — equal usable capacity, λ={lambda:.0e} (availability in nines)"),
        &[
            "configuration",
            "arrays",
            "disks",
            "ERF",
            "hep=0",
            "hep=0.001",
            "hep=0.01",
        ],
    );
    let heps = [0.0, 0.001, 0.01];
    let base =
        compare_equal_capacity(FIG6_USABLE_CAPACITY, lambda, Hep::ZERO).expect("valid comparison");
    for (idx, row0) in base.iter().enumerate() {
        let mut cells = vec![
            row0.label.clone(),
            row0.arrays.to_string(),
            row0.total_disks.to_string(),
            format!("{:.2}", row0.erf),
        ];
        for &hep in &heps {
            let rows = compare_equal_capacity(
                FIG6_USABLE_CAPACITY,
                lambda,
                Hep::new(hep).expect("valid hep"),
            )
            .expect("valid comparison");
            cells.push(format!("{:.3}", rows[idx].nines()));
        }
        table.push_row(&cells);
    }
    table
}

/// Fig. 7 — conventional vs automatic fail-over at λ = 1e-6.
pub fn fig7_table() -> (Table, Vec<PolicyComparison>) {
    let base = raid5_params(1e-6, 0.0);
    let rows = fig7_policy_sweep(base).expect("valid sweep");
    let mut table = Table::new(
        "Fig. 7 — replacement policy (availability in nines, λ=1e-6)",
        &[
            "hep",
            "conventional",
            "automatic fail-over",
            "improvement (×)",
        ],
    );
    for r in &rows {
        table.push_row(&[
            format!("{}", r.hep),
            format!("{:.3}", r.conventional_nines()),
            format!("{:.3}", r.failover_nines()),
            format!("{:.1}", r.improvement()),
        ]);
    }
    (table, rows)
}

/// Headline table — downtime underestimation `U(hep=0.01)/U(0)` over the
/// Fig. 4 λ grid, both wrong-replacement-timing readings.
pub fn underestimation_table() -> (Table, f64) {
    let grid = fig4_lambda_grid();
    let base = raid5_params(1e-6, 0.01);
    let (rows, max) = underestimation_sweep(base, &grid).expect("valid sweep");
    let mut table = Table::new(
        "Headline — downtime underestimation when hep is ignored (hep=0.01)",
        &[
            "lambda",
            "U(hep)",
            "U(0)",
            "factor",
            "factor (as-labeled reading)",
        ],
    );
    for r in &rows {
        let labeled = Raid5Conventional::new(raid5_params(r.disk_failure_rate, 0.01))
            .expect("valid model")
            .with_timing(WrongReplacementTiming::RepairCompletion)
            .solve()
            .expect("solvable")
            .unavailability()
            / r.without_hep;
        table.push_row(&[
            format!("{:.2e}", r.disk_failure_rate),
            format!("{:.3e}", r.with_hep),
            format!("{:.3e}", r.without_hep),
            format!("{:.1}", r.factor()),
            format!("{labeled:.1}"),
        ]);
    }
    (table, max)
}

/// One measured engine configuration of the Monte-Carlo throughput bench.
#[derive(Debug, Clone)]
pub struct McThroughput {
    /// `model/engine` label, e.g. `"conventional/jump_chain"`.
    pub name: String,
    /// Missions simulated.
    pub missions: u64,
    /// Worker threads used.
    pub threads: usize,
    /// Wall-clock seconds for the whole batch.
    pub elapsed_secs: f64,
}

impl McThroughput {
    /// Missions per second — the throughput currency of the whole system.
    pub fn missions_per_sec(&self) -> f64 {
        self.missions as f64 / self.elapsed_secs.max(1e-12)
    }
}

/// Renders the `BENCH_3.json` throughput snapshot: machine-readable
/// missions/sec plus the config that produced them, through the shared
/// [`snapshot::JsonSnapshot`] writer (stable key order, so diffs of the
/// checked-in file stay meaningful).
pub fn render_mc_throughput_json(
    workload: &str,
    scale: f64,
    engines: &[McThroughput],
    speedups: &[(&str, f64)],
) -> String {
    let mut w = JsonSnapshot::bench("perf_mc_throughput", workload, scale);
    w.begin_array("engines");
    for e in engines {
        push_engine_row(&mut w, e);
    }
    w.end_array();
    w.begin_object("speedup");
    for (name, factor) in speedups {
        w.raw_field(name, &format!("{factor:.2}"));
    }
    w.end_object();
    w.finish()
}

/// One `engines`/`fleet` row shared by the BENCH_3 and BENCH_5 emitters.
fn push_engine_row(w: &mut JsonSnapshot, e: &McThroughput) {
    w.begin_array_object();
    w.str_field("name", &e.name)
        .u64_field("missions", e.missions)
        .u64_field("threads", e.threads as u64)
        .raw_field("elapsed_secs", &format!("{:.6}", e.elapsed_secs))
        .raw_field("missions_per_sec", &format!("{:.1}", e.missions_per_sec()));
    w.end_object();
}

/// One scheme's missions-to-precision measurement in the rare-event bench.
#[derive(Debug, Clone)]
pub struct RareEventRun {
    /// Scheme label (`naive` or the `McVariance` display form).
    pub scheme: String,
    /// Missions the precision loop spent to reach (or give up on) the
    /// target — the budget a user would have to pay.
    pub missions: u64,
    /// Whether the ±10% relative target was actually met within the cap.
    pub converged: bool,
    /// The final unavailability estimate.
    pub estimate: f64,
    /// Wall-clock seconds for the whole precision loop.
    pub elapsed_secs: f64,
}

/// One λ point of the naive-vs-biased missions-to-precision comparison.
#[derive(Debug, Clone)]
pub struct RareEventPoint {
    /// Disk failure rate λ (per hour).
    pub lambda: f64,
    /// Exact Fig. 2 CTMC unavailability at this λ.
    pub exact_unavailability: f64,
    /// Absolute CI half-width target (±10% relative on the exact value).
    pub target_half_width: f64,
    /// The naive run.
    pub naive: RareEventRun,
    /// The failure-biasing run.
    pub biased: RareEventRun,
}

impl RareEventPoint {
    /// How many times more missions the naive run needed (or burnt without
    /// converging) compared to the biased run.
    pub fn mission_ratio(&self) -> f64 {
        self.naive.missions as f64 / (self.biased.missions as f64).max(1.0)
    }
}

/// Renders the `BENCH_4.json` rare-event snapshot: per λ, the missions
/// both schemes needed for a ±10% relative CI on the unavailability, with
/// convergence flags so a capped run cannot masquerade as a converged one.
pub fn render_rare_event_json(workload: &str, scale: f64, points: &[RareEventPoint]) -> String {
    let mut w = JsonSnapshot::bench("perf_mc_rare_event", workload, scale);
    w.str_field("target", "ci half-width <= 10% of exact unavailability");
    w.begin_array("points");
    for p in points {
        w.begin_array_object();
        w.raw_field("lambda", &format!("{:e}", p.lambda))
            .raw_field(
                "exact_unavailability",
                &format!("{:.6e}", p.exact_unavailability),
            )
            .raw_field("target_half_width", &format!("{:.6e}", p.target_half_width));
        for (key, r) in [("naive", &p.naive), ("biased", &p.biased)] {
            w.begin_object(key);
            w.str_field("scheme", &r.scheme)
                .u64_field("missions", r.missions)
                .bool_field("converged", r.converged)
                .raw_field("estimate", &format!("{:.6e}", r.estimate))
                .raw_field("elapsed_secs", &format!("{:.6}", r.elapsed_secs));
            w.end_object();
        }
        w.raw_field("mission_ratio", &format!("{:.1}", p.mission_ratio()));
        w.end_object();
    }
    w.end_array();
    w.finish()
}

/// One fleet-scaling measurement of the BENCH_5 snapshot.
#[derive(Debug, Clone)]
pub struct FleetScalingRow {
    /// Member arrays per mission.
    pub arrays: u32,
    /// Fleet missions simulated.
    pub missions: u64,
    /// Wall-clock seconds for the whole batch (threads = 1).
    pub elapsed_secs: f64,
    /// The run's per-array unavailability (sanity anchor for the row).
    pub array_unavailability: f64,
    /// Expected simultaneously-degraded arrays (time-weighted mean).
    pub mean_degraded: f64,
}

impl FleetScalingRow {
    /// Fleet missions per second.
    pub fn missions_per_sec(&self) -> f64 {
        self.missions as f64 / self.elapsed_secs.max(1e-12)
    }

    /// Array-missions per second (`missions × arrays / s`) — the
    /// scale-invariant throughput currency of the fleet engine.
    pub fn array_missions_per_sec(&self) -> f64 {
        self.missions_per_sec() * f64::from(self.arrays)
    }
}

/// Renders the `BENCH_5.json` snapshot: the indexed-queue engine
/// throughputs against the checked-in BENCH_3 seed baseline, plus the
/// fleet scaling curve over the array-count axis.
pub fn render_fleet_json(
    workload: &str,
    scale: f64,
    baseline_event_queue_missions_per_sec: f64,
    engines: &[McThroughput],
    fleet: &[FleetScalingRow],
) -> String {
    let mut w = JsonSnapshot::bench("perf_mc_fleet", workload, scale);
    w.raw_field(
        "baseline_event_queue_missions_per_sec",
        &format!("{baseline_event_queue_missions_per_sec:.1}"),
    );
    w.begin_array("engines");
    for e in engines {
        push_engine_row(&mut w, e);
    }
    w.end_array();
    w.begin_object("speedup_vs_bench3_baseline");
    for e in engines {
        w.raw_field(
            &e.name,
            &format!(
                "{:.2}",
                e.missions_per_sec() / baseline_event_queue_missions_per_sec
            ),
        );
    }
    w.end_object();
    w.begin_array("fleet");
    for row in fleet {
        w.begin_array_object();
        w.u64_field("arrays", u64::from(row.arrays))
            .u64_field("missions", row.missions)
            .raw_field("elapsed_secs", &format!("{:.6}", row.elapsed_secs))
            .raw_field(
                "missions_per_sec",
                &format!("{:.1}", row.missions_per_sec()),
            )
            .raw_field(
                "array_missions_per_sec",
                &format!("{:.1}", row.array_missions_per_sec()),
            )
            .raw_field(
                "array_unavailability",
                &format!("{:.6e}", row.array_unavailability),
            )
            .raw_field("mean_degraded", &format!("{:.4}", row.mean_degraded));
        w.end_object();
    }
    w.end_array();
    w.finish()
}

/// One repair-crew measurement of the BENCH_6 snapshot: a
/// [`FleetScalingRow`] plus the crew-pool size it ran with.
#[derive(Debug, Clone)]
pub struct FleetRepairRow {
    /// Repair crews (`None` = unlimited pool, the independent limit).
    pub crews: Option<u32>,
    /// The throughput measurement at this pool size.
    pub row: FleetScalingRow,
}

/// Renders the `BENCH_6.json` snapshot: fleet throughput across the
/// crews × arrays grid, with array-mission speedups against the BENCH_3
/// seed baseline (single-array missions per second).
pub fn render_fleet_repair_json(
    workload: &str,
    scale: f64,
    baseline_event_queue_missions_per_sec: f64,
    rows: &[FleetRepairRow],
) -> String {
    let mut w = JsonSnapshot::bench("perf_mc_fleet_repair", workload, scale);
    w.raw_field(
        "baseline_event_queue_missions_per_sec",
        &format!("{baseline_event_queue_missions_per_sec:.1}"),
    );
    w.begin_array("fleet_repair");
    for r in rows {
        let crews = match r.crews {
            Some(c) => c.to_string(),
            None => "\"unlimited\"".to_string(),
        };
        w.begin_array_object();
        w.raw_field("crews", &crews)
            .u64_field("arrays", u64::from(r.row.arrays))
            .u64_field("missions", r.row.missions)
            .raw_field("elapsed_secs", &format!("{:.6}", r.row.elapsed_secs))
            .raw_field(
                "array_missions_per_sec",
                &format!("{:.1}", r.row.array_missions_per_sec()),
            )
            .raw_field(
                "speedup_vs_bench3_baseline",
                &format!(
                    "{:.2}",
                    r.row.array_missions_per_sec() / baseline_event_queue_missions_per_sec
                ),
            )
            .raw_field(
                "array_unavailability",
                &format!("{:.6e}", r.row.array_unavailability),
            )
            .raw_field("mean_degraded", &format!("{:.4}", r.row.mean_degraded));
        w.end_object();
    }
    w.end_array();
    w.finish()
}

/// One DR-failover measurement of the BENCH_8 snapshot: a
/// [`FleetScalingRow`] plus the DR capacity it ran with and the credited
/// (post-failover) unavailability the run reported.
#[derive(Debug, Clone)]
pub struct FleetFailoverRow {
    /// DR failover slots (`None` = unlimited, the ideal-site limit).
    pub capacity: Option<u32>,
    /// The throughput measurement at this capacity.
    pub row: FleetScalingRow,
    /// DR-credited per-array unavailability (downtime the site could not
    /// absorb; exactly 0 in the ideal limit).
    pub credited_unavailability: f64,
    /// Fail-over admissions the run recorded (a live-ness anchor: a "fast"
    /// run that never failed over measures nothing).
    pub failovers: u64,
}

/// Renders the `BENCH_8.json` snapshot: fleet throughput across the
/// DR-capacity × arrays grid, with array-mission speedups against the
/// BENCH_3 seed baseline and each run's credited unavailability.
pub fn render_fleet_failover_json(
    workload: &str,
    scale: f64,
    baseline_event_queue_missions_per_sec: f64,
    rows: &[FleetFailoverRow],
) -> String {
    let mut w = JsonSnapshot::bench("perf_mc_fleet_failover", workload, scale);
    w.raw_field(
        "baseline_event_queue_missions_per_sec",
        &format!("{baseline_event_queue_missions_per_sec:.1}"),
    );
    w.begin_array("fleet_failover");
    for r in rows {
        let capacity = match r.capacity {
            Some(k) => k.to_string(),
            None => "\"unlimited\"".to_string(),
        };
        w.begin_array_object();
        w.raw_field("capacity", &capacity)
            .u64_field("arrays", u64::from(r.row.arrays))
            .u64_field("missions", r.row.missions)
            .raw_field("elapsed_secs", &format!("{:.6}", r.row.elapsed_secs))
            .raw_field(
                "array_missions_per_sec",
                &format!("{:.1}", r.row.array_missions_per_sec()),
            )
            .raw_field(
                "speedup_vs_bench3_baseline",
                &format!(
                    "{:.2}",
                    r.row.array_missions_per_sec() / baseline_event_queue_missions_per_sec
                ),
            )
            .raw_field(
                "array_unavailability",
                &format!("{:.6e}", r.row.array_unavailability),
            )
            .raw_field(
                "credited_unavailability",
                &format!("{:.6e}", r.credited_unavailability),
            )
            .u64_field("failovers", r.failovers);
        w.end_object();
    }
    w.end_array();
    w.finish()
}

/// One telemetry-overhead measurement pair of the BENCH_7 snapshot: the
/// same workload timed with the registry disabled and enabled.
#[derive(Debug, Clone)]
pub struct TelemetryOverheadRow {
    /// Engine label, e.g. `"conventional/jump_chain"`.
    pub name: String,
    /// Missions simulated in each of the two runs.
    pub missions: u64,
    /// Wall-clock seconds with telemetry disabled.
    pub off_secs: f64,
    /// Wall-clock seconds with telemetry enabled.
    pub on_secs: f64,
    /// Total counter increments the enabled run recorded (a live-ness
    /// anchor: an "overhead-free" run that counted nothing proves
    /// nothing).
    pub counted_events: u64,
}

impl TelemetryOverheadRow {
    /// Missions per second with telemetry disabled.
    pub fn off_missions_per_sec(&self) -> f64 {
        self.missions as f64 / self.off_secs.max(1e-12)
    }

    /// Missions per second with telemetry enabled.
    pub fn on_missions_per_sec(&self) -> f64 {
        self.missions as f64 / self.on_secs.max(1e-12)
    }

    /// Enabled throughput over disabled throughput (1.0 = free, lower is
    /// slower with telemetry on).
    pub fn on_over_off(&self) -> f64 {
        self.on_missions_per_sec() / self.off_missions_per_sec().max(1e-12)
    }
}

/// Renders the `BENCH_7.json` snapshot: telemetry-off vs telemetry-on
/// throughput per engine, against the checked-in BENCH_5 jump-chain
/// baseline, with the ISSUE's <2% overhead budget spelled out.
pub fn render_telemetry_overhead_json(
    workload: &str,
    scale: f64,
    baseline_jump_chain_missions_per_sec: f64,
    rows: &[TelemetryOverheadRow],
) -> String {
    let mut w = JsonSnapshot::bench("perf_mc_telemetry_overhead", workload, scale);
    w.str_field(
        "budget",
        "disabled registry within 2% of the pre-telemetry build (interleaved A/B); \
         in-run floors: jump-chain on/off >= 0.95, off >= 85% of the BENCH_5 baseline",
    );
    w.raw_field(
        "baseline_jump_chain_missions_per_sec",
        &format!("{baseline_jump_chain_missions_per_sec:.1}"),
    );
    w.begin_array("engines");
    for r in rows {
        w.begin_array_object();
        w.str_field("name", &r.name)
            .u64_field("missions", r.missions)
            .raw_field("off_secs", &format!("{:.6}", r.off_secs))
            .raw_field("on_secs", &format!("{:.6}", r.on_secs))
            .raw_field(
                "off_missions_per_sec",
                &format!("{:.1}", r.off_missions_per_sec()),
            )
            .raw_field(
                "on_missions_per_sec",
                &format!("{:.1}", r.on_missions_per_sec()),
            )
            .raw_field("on_over_off", &format!("{:.4}", r.on_over_off()))
            .u64_field("counted_events", r.counted_events);
        w.end_object();
    }
    w.end_array();
    w.finish()
}

/// One data-loss-tier measurement pair of the BENCH_9 snapshot: the same
/// workload timed without a scrubbing model and with a live one attached.
#[derive(Debug, Clone)]
pub struct DataLossOverheadRow {
    /// Engine label, e.g. `"conventional/jump_chain"`.
    pub name: String,
    /// Missions simulated in each of the two runs.
    pub missions: u64,
    /// Wall-clock seconds with no scrubbing model (LSE off).
    pub off_secs: f64,
    /// Wall-clock seconds with the live scrubbing model (LSE on).
    pub on_secs: f64,
    /// Rebuilds of the LSE-on run that hit a latent sector error (a
    /// live-ness anchor: an "overhead-free" run that never drew the
    /// rebuild Bernoulli proves nothing).
    pub rebuild_lse_hits: u64,
    /// The LSE-on run's `p_data_loss` midpoint (physical anchor for the
    /// row).
    pub p_data_loss: f64,
}

impl DataLossOverheadRow {
    /// Missions per second with LSE off.
    pub fn off_missions_per_sec(&self) -> f64 {
        self.missions as f64 / self.off_secs.max(1e-12)
    }

    /// Missions per second with LSE on.
    pub fn on_missions_per_sec(&self) -> f64 {
        self.missions as f64 / self.on_secs.max(1e-12)
    }

    /// LSE-on throughput over LSE-off throughput (1.0 = free, lower is
    /// slower with the data-loss tier live).
    pub fn on_over_off(&self) -> f64 {
        self.on_missions_per_sec() / self.off_missions_per_sec().max(1e-12)
    }
}

/// Renders the `BENCH_9.json` snapshot: LSE-off vs LSE-on throughput per
/// engine, against the checked-in BENCH_5 jump-chain baseline, with the
/// zero-rate bit-identity contract spelled out.
pub fn render_data_loss_overhead_json(
    workload: &str,
    scale: f64,
    baseline_jump_chain_missions_per_sec: f64,
    rows: &[DataLossOverheadRow],
) -> String {
    let mut w = JsonSnapshot::bench("perf_mc_data_loss_overhead", workload, scale);
    w.str_field(
        "budget",
        "zero-rate scrubbing is bit-identical to no scrubbing (asserted in-run); \
         live-rate floors: jump-chain on/off >= 0.85 at full scale (0.75 reduced), \
         off >= 85% of the BENCH_5 baseline",
    );
    w.raw_field(
        "baseline_jump_chain_missions_per_sec",
        &format!("{baseline_jump_chain_missions_per_sec:.1}"),
    );
    w.begin_array("engines");
    for r in rows {
        w.begin_array_object();
        w.str_field("name", &r.name)
            .u64_field("missions", r.missions)
            .raw_field("off_secs", &format!("{:.6}", r.off_secs))
            .raw_field("on_secs", &format!("{:.6}", r.on_secs))
            .raw_field(
                "off_missions_per_sec",
                &format!("{:.1}", r.off_missions_per_sec()),
            )
            .raw_field(
                "on_missions_per_sec",
                &format!("{:.1}", r.on_missions_per_sec()),
            )
            .raw_field("on_over_off", &format!("{:.4}", r.on_over_off()))
            .u64_field("rebuild_lse_hits", r.rebuild_lse_hits)
            .raw_field("p_data_loss", &format!("{:.6e}", r.p_data_loss));
        w.end_object();
    }
    w.end_array();
    w.finish()
}

/// Where the machine-readable bench snapshots (`BENCH_*.json`) are written:
/// the workspace root by default, or `$AVAILSIM_BENCH_OUT` when set.
pub fn bench_snapshot_path(file_name: &str) -> std::path::PathBuf {
    snapshot_path_from(
        std::env::var("AVAILSIM_BENCH_OUT").ok().as_deref(),
        file_name,
    )
}

/// [`bench_snapshot_path`] with the `$AVAILSIM_BENCH_OUT` value injected —
/// testable without mutating the process environment (tests run
/// multi-threaded, and concurrent `setenv`/`getenv` is undefined behavior
/// on glibc).
fn snapshot_path_from(dir_override: Option<&str>, file_name: &str) -> std::path::PathBuf {
    let dir = match dir_override {
        Some(d) => std::path::PathBuf::from(d),
        None => std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("..")
            .join(".."),
    };
    dir.join(file_name)
}

/// One-line summary of an availability value for narrow bench output.
pub fn nines_label(unavailability: f64) -> String {
    format!(
        "{:.3} nines",
        nines::nines_from_unavailability(unavailability)
    )
}

/// Builds the Fig. 3 chain once (used by perf benches).
pub fn failover_chain_build_and_solve(lambda: f64, hep: f64) -> f64 {
    Raid5FailOver::new(raid5_params(lambda, hep))
        .expect("valid model")
        .solve()
        .expect("solvable")
        .unavailability()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parses_env_contract() {
        // Default is >= 0.01 regardless of the environment.
        assert!(bench_scale() >= 0.01);
        assert!(mc_iterations(100) >= 2);
    }

    #[test]
    fn fig4_grid_matches_paper_axis() {
        let g = fig4_lambda_grid();
        assert_eq!(g.len(), 11);
        assert!((g[0] - 5e-7).abs() < 1e-18);
        assert!((g[10] - 5.5e-6).abs() < 1e-18);
    }

    #[test]
    fn fig6_table_has_three_rows() {
        let t = fig6_table(1e-5);
        assert_eq!(t.len(), 3);
        assert!(t.render().contains("RAID5(7+1)"));
    }

    #[test]
    fn fig7_table_reports_improvement() {
        let (t, rows) = fig7_table();
        assert_eq!(t.len(), 3);
        assert!(rows[2].improvement() > rows[0].improvement());
    }

    #[test]
    fn underestimation_hits_the_headline_band() {
        let (_, max) = underestimation_table();
        assert!(max > 200.0 && max < 320.0, "max {max}");
    }

    #[test]
    fn fig5_small_run_executes() {
        let t = fig5_table(200);
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn throughput_json_has_stable_machine_readable_shape() {
        let engines = vec![
            McThroughput {
                name: "conventional/jump_chain".into(),
                missions: 1000,
                threads: 1,
                elapsed_secs: 0.5,
            },
            McThroughput {
                name: "conventional/event_queue".into(),
                missions: 1000,
                threads: 1,
                elapsed_secs: 2.0,
            },
        ];
        assert!((engines[0].missions_per_sec() - 2000.0).abs() < 1e-9);
        let json =
            render_mc_throughput_json("raid5_3plus1", 1.0, &engines, &[("conventional", 4.0)]);
        for needle in [
            "\"bench\": \"perf_mc_throughput\"",
            "\"workload\": \"raid5_3plus1\"",
            "\"scale\": 1.0",
            "\"missions_per_sec\": 2000.0",
            "\"speedup\"",
            "\"conventional\": 4.00",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
        // Balanced braces/brackets: cheap well-formedness check.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "{json}"
        );
        assert_eq!(
            json.matches('[').count(),
            json.matches(']').count(),
            "{json}"
        );
    }

    #[test]
    fn rare_event_json_has_stable_machine_readable_shape() {
        let mk = |scheme: &str, missions, converged| RareEventRun {
            scheme: scheme.into(),
            missions,
            converged,
            estimate: 1.05e-7,
            elapsed_secs: 0.25,
        };
        let points = vec![RareEventPoint {
            lambda: 2e-7,
            exact_unavailability: 1e-7,
            target_half_width: 1e-8,
            naive: mk("naive", 2_500_000, true),
            biased: mk("failure-biasing(bias=0.5)", 20_000, true),
        }];
        assert!((points[0].mission_ratio() - 125.0).abs() < 1e-9);
        let json = render_rare_event_json("raid5_3plus1 fig4", 1.0, &points);
        for needle in [
            "\"bench\": \"perf_mc_rare_event\"",
            "\"target\": \"ci half-width <= 10% of exact unavailability\"",
            "\"lambda\": 2e-7",
            "\"mission_ratio\": 125.0",
            "\"converged\": true",
            "\"scheme\": \"failure-biasing(bias=0.5)\"",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn fleet_json_has_stable_machine_readable_shape() {
        let engines = vec![McThroughput {
            name: "conventional/event_queue".into(),
            missions: 300_000,
            threads: 1,
            elapsed_secs: 0.06,
        }];
        let fleet = vec![
            FleetScalingRow {
                arrays: 1,
                missions: 10_000,
                elapsed_secs: 0.5,
                array_unavailability: 1.5e-6,
                mean_degraded: 0.001,
            },
            FleetScalingRow {
                arrays: 1000,
                missions: 100,
                elapsed_secs: 2.0,
                array_unavailability: 1.5e-6,
                mean_degraded: 1.05,
            },
        ];
        assert!((fleet[1].missions_per_sec() - 50.0).abs() < 1e-9);
        assert!((fleet[1].array_missions_per_sec() - 50_000.0).abs() < 1e-9);
        let json = render_fleet_json("raid5_3plus1 fig4", 1.0, 2_255_081.6, &engines, &fleet);
        for needle in [
            "\"bench\": \"perf_mc_fleet\"",
            "\"baseline_event_queue_missions_per_sec\": 2255081.6",
            "\"speedup_vs_bench3_baseline\"",
            "\"conventional/event_queue\": 2.22",
            "\"arrays\": 1000",
            "\"array_missions_per_sec\": 50000.0",
            "\"mean_degraded\": 1.0500",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn fleet_repair_json_has_stable_machine_readable_shape() {
        let rows = vec![
            FleetRepairRow {
                crews: Some(1),
                row: FleetScalingRow {
                    arrays: 100,
                    missions: 2_000,
                    elapsed_secs: 1.0,
                    array_unavailability: 2.5e-6,
                    mean_degraded: 0.11,
                },
            },
            FleetRepairRow {
                crews: None,
                row: FleetScalingRow {
                    arrays: 1000,
                    missions: 200,
                    elapsed_secs: 2.0,
                    array_unavailability: 1.5e-6,
                    mean_degraded: 1.05,
                },
            },
        ];
        let json = render_fleet_repair_json("raid5_3plus1 fig4", 1.0, 1_000_000.0, &rows);
        for needle in [
            "\"bench\": \"perf_mc_fleet_repair\"",
            "\"crews\": 1",
            "\"crews\": \"unlimited\"",
            "\"arrays\": 1000",
            "\"array_missions_per_sec\": 200000.0",
            "\"speedup_vs_bench3_baseline\": 0.20",
            "\"mean_degraded\": 1.0500",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn fleet_failover_json_has_stable_machine_readable_shape() {
        let rows = vec![
            FleetFailoverRow {
                capacity: Some(1),
                row: FleetScalingRow {
                    arrays: 100,
                    missions: 2_000,
                    elapsed_secs: 1.0,
                    array_unavailability: 2.5e-6,
                    mean_degraded: 0.11,
                },
                credited_unavailability: 1.2e-6,
                failovers: 420,
            },
            FleetFailoverRow {
                capacity: None,
                row: FleetScalingRow {
                    arrays: 1000,
                    missions: 200,
                    elapsed_secs: 2.0,
                    array_unavailability: 1.5e-6,
                    mean_degraded: 1.05,
                },
                credited_unavailability: 0.0,
                failovers: 4_200,
            },
        ];
        let json = render_fleet_failover_json("raid5_3plus1 fig4", 1.0, 1_000_000.0, &rows);
        for needle in [
            "\"bench\": \"perf_mc_fleet_failover\"",
            "\"capacity\": 1",
            "\"capacity\": \"unlimited\"",
            "\"arrays\": 1000",
            "\"array_missions_per_sec\": 200000.0",
            "\"speedup_vs_bench3_baseline\": 0.20",
            "\"credited_unavailability\": 0.000000e0",
            "\"failovers\": 4200",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn telemetry_overhead_json_has_stable_machine_readable_shape() {
        let rows = vec![TelemetryOverheadRow {
            name: "conventional/jump_chain".into(),
            missions: 1_000_000,
            off_secs: 0.1,
            on_secs: 0.101,
            counted_events: 12_345_678,
        }];
        assert!((rows[0].off_missions_per_sec() - 1e7).abs() < 1e-3);
        assert!(rows[0].on_over_off() < 1.0 && rows[0].on_over_off() > 0.98);
        let json = render_telemetry_overhead_json("raid5_3plus1 fig4", 1.0, 11_725_215.8, &rows);
        for needle in [
            "\"bench\": \"perf_mc_telemetry_overhead\"",
            "\"budget\": \"disabled registry within 2% of the pre-telemetry build",
            "\"baseline_jump_chain_missions_per_sec\": 11725215.8",
            "\"name\": \"conventional/jump_chain\"",
            "\"off_missions_per_sec\": 10000000.0",
            "\"on_over_off\": 0.9901",
            "\"counted_events\": 12345678",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn data_loss_overhead_json_has_stable_machine_readable_shape() {
        let rows = vec![DataLossOverheadRow {
            name: "conventional/jump_chain".into(),
            missions: 1_000_000,
            off_secs: 0.1,
            on_secs: 0.102,
            rebuild_lse_hits: 420,
            p_data_loss: 4.2e-4,
        }];
        assert!((rows[0].off_missions_per_sec() - 1e7).abs() < 1e-3);
        assert!(rows[0].on_over_off() < 1.0 && rows[0].on_over_off() > 0.97);
        let json = render_data_loss_overhead_json("raid5_3plus1 fig4", 1.0, 11_725_215.8, &rows);
        for needle in [
            "\"bench\": \"perf_mc_data_loss_overhead\"",
            "\"budget\": \"zero-rate scrubbing is bit-identical to no scrubbing",
            "\"baseline_jump_chain_missions_per_sec\": 11725215.8",
            "\"name\": \"conventional/jump_chain\"",
            "\"off_missions_per_sec\": 10000000.0",
            "\"on_over_off\": 0.9804",
            "\"rebuild_lse_hits\": 420",
            "\"p_data_loss\": 4.200000e-4",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn snapshot_path_honours_env_override() {
        // Default (no override): the workspace root, two levels above this
        // crate's manifest.
        let p = snapshot_path_from(None, "BENCH_3.json");
        assert!(p.ends_with("../../BENCH_3.json"), "{}", p.display());
        // An AVAILSIM_BENCH_OUT value redirects the directory.
        let p = snapshot_path_from(Some("/tmp/bench-out"), "BENCH_3.json");
        assert_eq!(p, std::path::PathBuf::from("/tmp/bench-out/BENCH_3.json"));
    }
}
