//! Shared emitter for the machine-readable `BENCH_*.json` snapshots.
//!
//! The workspace is dependency-free, so the snapshots are hand-rolled —
//! but through **one** writer with automatic comma/indent/nesting
//! management and proper string escaping, instead of one ad-hoc
//! `format!` chain per bench. Key order is insertion order, so diffs of
//! checked-in snapshots stay meaningful.

use std::fmt::Write as _;

/// Escapes a string for inclusion in a JSON string literal (quotes not
/// included).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Shortest round-trip decimal form of a finite float — the default
/// number format of the snapshots (`1.0`, `2255081.6`, `9.8005e-8`), all
/// valid JSON numbers.
///
/// # Panics
/// Panics on non-finite values (JSON has no spelling for them; a bench
/// producing one is broken).
pub fn json_f64(v: f64) -> String {
    assert!(v.is_finite(), "JSON cannot represent {v}");
    format!("{v:?}")
}

/// A streaming JSON writer with automatic comma and indentation
/// management. Values are either escaped strings ([`Self::str_field`]) or
/// preformatted raw tokens ([`Self::raw_field`]) for numbers whose
/// precision the caller controls.
#[derive(Debug)]
pub struct JsonSnapshot {
    out: String,
    /// One entry per open scope: `(is_array, has_items)`.
    stack: Vec<(bool, bool)>,
}

impl JsonSnapshot {
    /// Begins the root object of a bench snapshot with the three standard
    /// header fields every `BENCH_*.json` carries.
    pub fn bench(bench: &str, workload: &str, scale: f64) -> Self {
        let mut w = JsonSnapshot::root();
        w.str_field("bench", bench);
        w.str_field("workload", workload);
        w.raw_field("scale", &json_f64(scale));
        w
    }

    /// Begins a bare root object with no bench header — for non-bench
    /// consumers of the writer (e.g. the CLI's `--metrics` snapshot).
    pub fn root() -> Self {
        let mut w = JsonSnapshot {
            out: String::new(),
            stack: Vec::new(),
        };
        w.open('{');
        w
    }

    fn open(&mut self, bracket: char) {
        self.out.push(bracket);
        self.stack.push((bracket == '[', false));
    }

    fn close(&mut self, bracket: char) {
        let (_, has_items) = self.stack.pop().expect("unbalanced close");
        if has_items {
            self.newline_indent();
        }
        self.out.push(bracket);
    }

    fn newline_indent(&mut self) {
        self.out.push('\n');
        for _ in 0..self.stack.len() {
            self.out.push_str("  ");
        }
    }

    /// Starts a new item in the current scope: comma if needed, newline,
    /// indentation.
    fn item(&mut self) {
        let top = self.stack.last_mut().expect("no open scope");
        if top.1 {
            self.out.push(',');
        }
        top.1 = true;
        self.newline_indent();
    }

    fn key(&mut self, key: &str) {
        self.item();
        let _ = write!(self.out, "\"{}\": ", json_escape(key));
    }

    /// Writes `"key": "value"` with the value escaped.
    pub fn str_field(&mut self, key: &str, value: &str) -> &mut Self {
        self.key(key);
        let _ = write!(self.out, "\"{}\"", json_escape(value));
        self
    }

    /// Writes `"key": value` with a preformatted raw token (a number or
    /// boolean the caller already formatted).
    pub fn raw_field(&mut self, key: &str, raw: &str) -> &mut Self {
        self.key(key);
        self.out.push_str(raw);
        self
    }

    /// Writes `"key": value` in the shortest round-trip float form.
    pub fn f64_field(&mut self, key: &str, value: f64) -> &mut Self {
        let raw = json_f64(value);
        self.raw_field(key, &raw)
    }

    /// Writes `"key": value` as an integer.
    pub fn u64_field(&mut self, key: &str, value: u64) -> &mut Self {
        let raw = value.to_string();
        self.raw_field(key, &raw)
    }

    /// Writes `"key": true|false`.
    pub fn bool_field(&mut self, key: &str, value: bool) -> &mut Self {
        self.raw_field(key, if value { "true" } else { "false" })
    }

    /// Opens `"key": [` — close with [`Self::end_array`].
    pub fn begin_array(&mut self, key: &str) -> &mut Self {
        self.key(key);
        self.open('[');
        self
    }

    /// Closes the innermost array.
    pub fn end_array(&mut self) -> &mut Self {
        self.close(']');
        self
    }

    /// Opens `"key": {` — close with [`Self::end_object`].
    pub fn begin_object(&mut self, key: &str) -> &mut Self {
        self.key(key);
        self.open('{');
        self
    }

    /// Opens a `{` item inside the current array.
    pub fn begin_array_object(&mut self) -> &mut Self {
        self.item();
        self.open('{');
        self
    }

    /// Closes the innermost object.
    pub fn end_object(&mut self) -> &mut Self {
        self.close('}');
        self
    }

    /// Closes the root object and returns the rendered document (with a
    /// trailing newline, like every checked-in snapshot).
    ///
    /// # Panics
    /// Panics if arrays/objects opened by the caller are still open —
    /// an unbalanced snapshot is a bench bug, caught at render time.
    pub fn finish(mut self) -> String {
        assert_eq!(
            self.stack.len(),
            1,
            "unbalanced JSON snapshot: {} scopes still open",
            self.stack.len().saturating_sub(1)
        );
        self.close('}');
        self.out.push('\n');
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_covers_quotes_backslashes_and_control_chars() {
        assert_eq!(json_escape("plain"), "plain");
        assert_eq!(json_escape("a \"quoted\" value"), "a \\\"quoted\\\" value");
        assert_eq!(json_escape("back\\slash"), "back\\\\slash");
        assert_eq!(
            json_escape("line\nbreak\ttab\rret"),
            "line\\nbreak\\ttab\\rret"
        );
        assert_eq!(json_escape("bell\u{7}"), "bell\\u0007");
        // Unicode passes through untouched.
        assert_eq!(json_escape("λ=3e-6 → U"), "λ=3e-6 → U");
    }

    #[test]
    fn float_formatting_round_trips_and_is_valid_json() {
        for (v, expect) in [
            (1.0, "1.0"),
            (0.01, "0.01"),
            (2255081.6, "2255081.6"),
            (9.8005e-8, "9.8005e-8"),
            (-3.5, "-3.5"),
            (0.0, "0.0"),
        ] {
            let s = json_f64(v);
            assert_eq!(s, expect);
            assert_eq!(s.parse::<f64>().unwrap(), v, "round-trip of {s}");
        }
    }

    #[test]
    #[should_panic(expected = "JSON cannot represent")]
    fn non_finite_floats_are_rejected() {
        let _ = json_f64(f64::NAN);
    }

    #[test]
    fn writer_produces_balanced_nested_documents() {
        let mut w = JsonSnapshot::bench("demo", "work \"load\"", 0.01);
        w.begin_array("rows");
        for i in 0..2u64 {
            w.begin_array_object();
            w.u64_field("i", i).bool_field("ok", i == 0);
            w.end_object();
        }
        w.end_array();
        w.begin_object("totals");
        w.f64_field("sum", 1.5);
        w.end_object();
        let json = w.finish();
        assert!(json.starts_with("{\n"));
        assert!(json.ends_with("}\n"));
        for needle in [
            "\"bench\": \"demo\"",
            "\"workload\": \"work \\\"load\\\"\"",
            "\"scale\": 0.01",
            "\"i\": 0",
            "\"ok\": true",
            "\"ok\": false",
            "\"sum\": 1.5",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        // Commas separate array items but no trailing commas exist.
        assert!(!json.contains(",\n}") && !json.contains(",\n]"), "{json}");
    }

    #[test]
    #[should_panic(expected = "unbalanced JSON snapshot")]
    fn unbalanced_documents_are_caught_at_finish() {
        let mut w = JsonSnapshot::bench("demo", "w", 1.0);
        w.begin_array("rows");
        let _ = w.finish();
    }
}
