//! Fig. 4 — validation of the Markov model against the Monte-Carlo
//! reference: availability (nines) vs λ for hep ∈ {0.001, 0.01}.
//!
//! Prints the four series of the figure, then times the two kernels
//! (steady-state solve, one MC mission).

use availsim_bench::{fig4_series, mc_iterations, raid5_params};
use availsim_core::markov::Raid5Conventional;
use availsim_core::mc::ConventionalMc;
use availsim_sim::rng::SimRng;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

fn print_figure() {
    // 50k missions/point by default; AVAILSIM_BENCH_SCALE=20 reproduces the
    // paper's 10⁶-iteration setting.
    let iters = mc_iterations(50_000);
    println!("\n=== Fig. 4: MC vs Markov, RAID5(3+1), availability in nines ===");
    println!("(MC: {iters} missions/point, 10-year missions, 99% CI)\n");
    for series in fig4_series(iters) {
        println!("{}", series.render());
    }
}

fn bench(c: &mut Criterion) {
    print_figure();

    let params = raid5_params(1e-6, 0.01);
    c.bench_function("fig4/markov_solve_raid5", |b| {
        let model = Raid5Conventional::new(params).unwrap();
        b.iter(|| black_box(model.solve().unwrap().unavailability()));
    });

    c.bench_function("fig4/mc_single_mission_10y", |b| {
        let mc = ConventionalMc::new(params).unwrap();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let mut rng = SimRng::substream(42, i);
            black_box(mc.simulate_once(87_600.0, &mut rng, None))
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    targets = bench
}
criterion_main!(benches);
