//! Fig. 6 — availability of RAID1(1+1), RAID5(3+1), RAID5(7+1) volumes of
//! *equivalent usable capacity* (21 disk units), for λ ∈ {1e-5, 1e-6, 1e-7}
//! and hep ∈ {0, 0.001, 0.01}.
//!
//! The paper's observation: without human error RAID1 wins; with hep > 0
//! its higher effective replication factor (more disks to touch) erodes and
//! then inverts the ranking.

use availsim_bench::fig6_table;
use availsim_core::volume::{compare_equal_capacity, FIG6_USABLE_CAPACITY};
use availsim_hra::Hep;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

fn print_figure() {
    println!("\n=== Fig. 6: equal-usable-capacity comparison (volume availability, nines) ===\n");
    for &lambda in &[1e-5, 1e-6, 1e-7] {
        println!("{}", fig6_table(lambda).render());
    }
    println!(
        "note: volume = series system over arrays; usable capacity {} disk units\n",
        FIG6_USABLE_CAPACITY
    );
}

fn bench(c: &mut Criterion) {
    print_figure();

    c.bench_function("fig6/three_way_comparison", |b| {
        let hep = Hep::new(0.01).unwrap();
        b.iter(|| {
            black_box(
                compare_equal_capacity(FIG6_USABLE_CAPACITY, 1e-5, hep).expect("valid comparison"),
            )
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(30)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    targets = bench
}
criterion_main!(benches);
