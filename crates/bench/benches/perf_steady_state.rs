//! Performance of the steady-state solvers (GTH vs direct LU vs power
//! iteration) as the chain grows — the generic `k+m` generator provides
//! progressively larger availability chains, and a ring generator provides
//! dense synthetic ones.

use availsim_core::markov::GenericKofN;
use availsim_core::ModelParams;
use availsim_ctmc::{Ctmc, CtmcBuilder, SteadyStateMethod};
use availsim_hra::Hep;
use availsim_storage::RaidGeometry;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;

/// A ring of `n` states with forward chords, all rates O(1).
fn ring_chain(n: usize) -> Ctmc {
    let mut b = CtmcBuilder::new();
    let ids: Vec<_> = (0..n).map(|i| b.state(format!("s{i}")).unwrap()).collect();
    for i in 0..n {
        b.transition(ids[i], ids[(i + 1) % n], 1.0 + (i % 7) as f64 * 0.3)
            .unwrap();
        b.transition(ids[i], ids[(i + 3) % n], 0.1 + (i % 5) as f64 * 0.05)
            .unwrap();
    }
    b.build().unwrap()
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("steady_state_ring");
    for &n in &[4usize, 16, 64, 256] {
        let chain = ring_chain(n);
        group.bench_with_input(BenchmarkId::new("gth", n), &chain, |b, chain| {
            b.iter(|| black_box(chain.steady_state().unwrap()));
        });
        group.bench_with_input(BenchmarkId::new("lu", n), &chain, |b, chain| {
            b.iter(|| {
                black_box(
                    chain
                        .steady_state_with(SteadyStateMethod::DirectLu)
                        .unwrap(),
                )
            });
        });
        if n <= 64 {
            group.bench_with_input(BenchmarkId::new("power", n), &chain, |b, chain| {
                b.iter(|| {
                    black_box(
                        chain
                            .steady_state_with(SteadyStateMethod::Power {
                                max_iterations: 1_000_000,
                                tolerance: 1e-12,
                            })
                            .unwrap(),
                    )
                });
            });
        }
    }
    group.finish();

    let mut group = c.benchmark_group("steady_state_raid_chains");
    for &m in &[1u32, 2] {
        let geometry = if m == 1 {
            RaidGeometry::raid5(7).unwrap()
        } else {
            RaidGeometry::raid6(6).unwrap()
        };
        let params = ModelParams::paper_defaults(geometry, 1e-6, Hep::new(0.01).unwrap()).unwrap();
        let model = GenericKofN::new(params).unwrap();
        group.bench_function(BenchmarkId::new("generic_k_of_n", format!("m{m}")), |b| {
            b.iter(|| black_box(model.solve().unwrap().unavailability()));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    targets = bench
}
criterion_main!(benches);
