//! Fig. 1 — an example Monte-Carlo timeline for a RAID5 (3+1) array in the
//! presence of human errors, printed as an event log (the paper draws the
//! same information as a per-disk Gantt chart).
//!
//! The benchmark then times trace-enabled vs trace-free missions to show
//! the tracing overhead.

use availsim_bench::raid5_params;
use availsim_core::mc::ConventionalMc;
use availsim_sim::rng::SimRng;
use availsim_storage::EventTrace;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

fn print_figure() {
    println!("\n=== Fig. 1: example MC timeline, RAID5(3+1), wrong replacements visible ===");
    // Rates scaled up so a single mission shows several incidents, like the
    // paper's illustrative 1000-hour window.
    let params = raid5_params(2e-3, 0.15);
    let mc = ConventionalMc::new(params).unwrap();
    // A seed chosen so the printed window contains DU and DL events.
    let mut rng = SimRng::seed_from(2017);
    let mut trace = EventTrace::new();
    let outcome = mc.simulate_once(2_000.0, &mut rng, Some(&mut trace));
    println!("{}", trace.render());
    println!(
        "downtime: {:.1} h (human-error share {:.0}%), DU events: {}, DL events: {}\n",
        outcome.downtime_hours,
        100.0 * outcome.du_downtime_hours / outcome.downtime_hours.max(1e-12),
        outcome.du_events,
        outcome.dl_events
    );
}

fn bench(c: &mut Criterion) {
    print_figure();
    let params = raid5_params(2e-3, 0.15);
    let mc = ConventionalMc::new(params).unwrap();

    c.bench_function("fig1/mission_with_trace", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let mut rng = SimRng::substream(7, i);
            let mut trace = EventTrace::new();
            black_box(mc.simulate_once(2_000.0, &mut rng, Some(&mut trace)));
            black_box(trace.len())
        });
    });

    c.bench_function("fig1/mission_without_trace", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let mut rng = SimRng::substream(7, i);
            black_box(mc.simulate_once(2_000.0, &mut rng, None))
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(30)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    targets = bench
}
criterion_main!(benches);
