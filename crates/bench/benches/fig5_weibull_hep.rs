//! Fig. 5 — availability of a RAID5(3+1) array vs human-error probability
//! for the four Weibull field fits (Schroeder–Gibson FAST'07 parameters):
//! (1.25e-6, 1.09), (2.17e-6, 1.12), (7.96e-6, 1.21), (2.00e-5, 1.48).
//!
//! Weibull lifetimes are outside the Markov model's reach, so this figure is
//! Monte-Carlo only — exactly as in the paper.

use availsim_bench::{fig5_table, mc_iterations, raid5_params};
use availsim_core::mc::ConventionalMc;
use availsim_sim::rng::SimRng;
use availsim_storage::FailureModel;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

fn print_figure() {
    let iters = mc_iterations(50_000);
    println!("\n=== Fig. 5: Weibull field fits, RAID5(3+1), availability in nines ===");
    println!("(MC: {iters} missions/cell, 10-year missions)\n");
    println!("{}", fig5_table(iters).render());
}

fn bench(c: &mut Criterion) {
    print_figure();

    // Kernel: one Weibull mission (the β=1.48 fit has the most events).
    let params = raid5_params(2e-5, 0.01);
    let failures = FailureModel::weibull(2e-5, 1.48).unwrap();
    let mc = ConventionalMc::with_failure_model(params, failures).unwrap();
    c.bench_function("fig5/weibull_mission_10y", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let mut rng = SimRng::substream(5, i);
            black_box(mc.simulate_once(87_600.0, &mut rng, None))
        });
    });

    // Sampler kernel for reference.
    c.bench_function("fig5/weibull_sampling", |b| {
        let f = FailureModel::weibull(2e-5, 1.48).unwrap();
        let mut rng = SimRng::seed_from(1);
        b.iter(|| black_box(f.sample_ttf(&mut rng)));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    targets = bench
}
criterion_main!(benches);
