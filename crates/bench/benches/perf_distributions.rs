//! Sampler throughput for every lifetime distribution, plus the special
//! functions on the statistics hot path.

use availsim_sim::distributions::{
    Deterministic, Exponential, Gamma, Lifetime, LogNormal, UniformDist, Weibull,
};
use availsim_sim::rng::SimRng;
use availsim_sim::stats::student_t::t_critical_two_sided;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("sampling");
    let dists: Vec<(&str, Box<dyn Lifetime>)> = vec![
        ("exponential", Box::new(Exponential::new(1e-6).unwrap())),
        (
            "weibull",
            Box::new(Weibull::from_rate_shape(1e-6, 1.21).unwrap()),
        ),
        ("lognormal", Box::new(LogNormal::new(2.0, 0.5).unwrap())),
        ("gamma", Box::new(Gamma::new(2.5, 0.1).unwrap())),
        ("uniform", Box::new(UniformDist::new(1.0, 10.0).unwrap())),
        ("deterministic", Box::new(Deterministic::new(10.0).unwrap())),
    ];
    for (name, dist) in &dists {
        group.bench_function(*name, |b| {
            let mut rng = SimRng::seed_from(9);
            b.iter(|| black_box(dist.sample(&mut rng)));
        });
    }
    group.finish();

    c.bench_function("rng/next_f64", |b| {
        let mut rng = SimRng::seed_from(1);
        b.iter(|| black_box(rng.next_f64()));
    });

    c.bench_function("stats/t_critical_99_df1e6", |b| {
        b.iter(|| black_box(t_critical_two_sided(0.99, 1e6).unwrap()));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(50)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    targets = bench
}
criterion_main!(benches);
