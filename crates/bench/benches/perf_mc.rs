//! Performance of the Monte-Carlo engines: missions per second for both
//! policies, single- and multi-threaded batch throughput.

use availsim_bench::raid5_params;
use availsim_core::mc::{ConventionalMc, FailOverMc, McConfig};
use availsim_sim::rng::SimRng;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let params = raid5_params(1e-4, 0.01);

    let mut group = c.benchmark_group("mc_single_mission");
    group.bench_function("conventional_10y", |b| {
        let mc = ConventionalMc::new(params).unwrap();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let mut rng = SimRng::substream(1, i);
            black_box(mc.simulate_once(87_600.0, &mut rng, None))
        });
    });
    group.bench_function("failover_10y", |b| {
        let mc = FailOverMc::new(params).unwrap();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let mut rng = SimRng::substream(1, i);
            black_box(mc.simulate_once(87_600.0, &mut rng))
        });
    });
    group.finish();

    let mut group = c.benchmark_group("mc_batch_2000_missions");
    group.sample_size(10);
    for &threads in &[1usize, 4] {
        group.bench_with_input(
            BenchmarkId::new("conventional", threads),
            &threads,
            |b, &threads| {
                let mc = ConventionalMc::new(params).unwrap();
                let config = McConfig {
                    iterations: 2_000,
                    horizon_hours: 87_600.0,
                    seed: 3,
                    confidence: 0.99,
                    threads,
                };
                b.iter(|| black_box(mc.run(&config).unwrap().overall_availability));
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3));
    targets = bench
}
criterion_main!(benches);
