//! Performance of the Monte-Carlo engines: missions per second for the
//! jump-chain fast path vs the general event-queue engine, on the paper's
//! RAID5(3+1) Fig. 4 workload.
//!
//! Before the Criterion timings, the bench measures batch throughput
//! (`mc.run`, threads = 1) for both models × both engines, prints the
//! comparison, and writes the machine-readable `BENCH_3.json` snapshot to
//! the workspace root (`$AVAILSIM_BENCH_OUT` overrides the directory) so
//! the missions/sec trajectory can be tracked across PRs; it then measures
//! how many missions each variance scheme needs to pin the unavailability
//! to a ±10% relative CI across a λ sweep (naive vs failure biasing) and
//! writes `BENCH_4.json`. Fleet throughput goes to `BENCH_5.json`
//! (array-count axis) and `BENCH_6.json` (repair-crew axis, `c ∈ {1, 4, ∞}`
//! per fleet size). `BENCH_8.json` covers the DR-failover axis
//! (`k ∈ {1, 4, ∞}` slots per fleet size, queue policy) with the credited
//! unavailability each capacity leaves behind.
//! `BENCH_7.json` records the telemetry overhead gate:
//! the same Fig. 4 workload with the counter registry off vs on, asserted
//! within the 2% budget. `BENCH_9.json` records the data-loss tier
//! overhead gate: the same workload with no scrubbing model vs a live
//! one, after asserting that a zero-rate model is a bit-exact no-op.
//! Mission volume scales with
//! `AVAILSIM_BENCH_SCALE` — the checked-in snapshots are taken at scale 1.

use availsim_bench::{
    bench_scale, bench_snapshot_path, mc_iterations, raid5_params, render_data_loss_overhead_json,
    render_fleet_failover_json, render_fleet_json, render_fleet_repair_json,
    render_mc_throughput_json, render_rare_event_json, render_telemetry_overhead_json,
    DataLossOverheadRow, FleetFailoverRow, FleetRepairRow, FleetScalingRow, McThroughput,
    RareEventPoint, RareEventRun, TelemetryOverheadRow,
};
use availsim_core::markov::Raid5Conventional;
use availsim_core::mc::{
    ConventionalMc, FailOverMc, FleetMc, McConfig, McEngine, McVariance, SimWorkspace,
};
use availsim_sim::rng::SimRng;
use availsim_sim::telemetry::Counter;
use availsim_storage::{FleetFailover, FleetSpec, ScrubbingModel};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::{Duration, Instant};

/// The Fig. 4 operating point used for all throughput numbers: RAID5(3+1),
/// λ in the middle of the paper's grid, hep = 0.01, ten-year missions.
const LAMBDA: f64 = 3e-6;
const HEP: f64 = 0.01;
const HORIZON_HOURS: f64 = 87_600.0;

fn throughput_config(iterations: u64) -> McConfig {
    McConfig {
        iterations,
        horizon_hours: HORIZON_HOURS,
        seed: 1734,
        confidence: 0.99,
        threads: 1,
        ..McConfig::default()
    }
}

/// Times one engine over a full batch run and returns the record.
fn measure(name: &str, run: impl Fn() -> f64, iterations: u64) -> McThroughput {
    let started = Instant::now();
    let avail = run();
    let elapsed = started.elapsed().as_secs_f64();
    println!(
        "  {name:<28} {iterations:>9} missions  {:>12.0} missions/s  (A = {avail:.8})",
        iterations as f64 / elapsed.max(1e-12)
    );
    McThroughput {
        name: name.to_string(),
        missions: iterations,
        threads: 1,
        elapsed_secs: elapsed,
    }
}

/// The general-engine missions/sec recorded by the seed BENCH_3.json
/// (taken before the indexed event queue landed) — the fixed baseline the
/// BENCH_5 speedups are quoted against.
const BENCH3_SEED_EVENT_QUEUE_BASELINE: f64 = 2_255_081.6;

/// Measures missions/sec for both engines of both models and writes the
/// `BENCH_3.json` snapshot. Returns the rows for reuse by the BENCH_5
/// emitter.
fn throughput_snapshot() -> Vec<McThroughput> {
    let params = raid5_params(LAMBDA, HEP);
    let iterations = mc_iterations(300_000);
    let cfg = throughput_config(iterations);
    let warm = throughput_config((iterations / 10).max(2));
    println!(
        "perf_mc throughput — RAID5(3+1) Fig. 4 workload \
         (lambda={LAMBDA:.0e}, hep={HEP}, horizon={HORIZON_HOURS}h, threads=1)"
    );

    let conv_fast = ConventionalMc::new(params)
        .unwrap()
        .with_engine(McEngine::JumpChain);
    let conv_eq = ConventionalMc::new(params)
        .unwrap()
        .with_engine(McEngine::EventQueue);
    let fo_fast = FailOverMc::new(params)
        .unwrap()
        .with_engine(McEngine::JumpChain);
    let fo_eq = FailOverMc::new(params)
        .unwrap()
        .with_engine(McEngine::EventQueue);

    for warmup in [
        conv_fast.run(&warm),
        conv_eq.run(&warm),
        fo_fast.run(&warm),
        fo_eq.run(&warm),
    ] {
        let _ = black_box(warmup.unwrap().overall_availability);
    }

    let engines = vec![
        measure(
            "conventional/jump_chain",
            || conv_fast.run(&cfg).unwrap().overall_availability,
            iterations,
        ),
        measure(
            "conventional/event_queue",
            || conv_eq.run(&cfg).unwrap().overall_availability,
            iterations,
        ),
        measure(
            "failover/jump_chain",
            || fo_fast.run(&cfg).unwrap().overall_availability,
            iterations,
        ),
        measure(
            "failover/event_queue",
            || fo_eq.run(&cfg).unwrap().overall_availability,
            iterations,
        ),
    ];

    let speedup = |fast: &McThroughput, general: &McThroughput| {
        fast.missions_per_sec() / general.missions_per_sec().max(1e-12)
    };
    let conv_speedup = speedup(&engines[0], &engines[1]);
    let fo_speedup = speedup(&engines[2], &engines[3]);
    println!("  speedup: conventional {conv_speedup:.2}x, failover {fo_speedup:.2}x");

    let json = render_mc_throughput_json(
        &format!(
            "raid5_3plus1 fig4 (lambda={LAMBDA:.0e}, hep={HEP}, horizon_hours={HORIZON_HOURS})"
        ),
        bench_scale(),
        &engines,
        &[("conventional", conv_speedup), ("failover", fo_speedup)],
    );
    let path = bench_snapshot_path("BENCH_3.json");
    match std::fs::write(&path, &json) {
        Ok(()) => println!("  wrote {}", path.display()),
        Err(e) => println!("  could not write {}: {e}", path.display()),
    }
    engines
}

/// Measures the fleet scaling curve (missions/sec over the array-count
/// axis, threads = 1) and writes `BENCH_5.json`: the indexed-queue engine
/// rows against the seed BENCH_3 baseline plus the fleet curve.
fn fleet_snapshot(engines: &[McThroughput]) {
    println!(
        "perf_mc fleet — RAID5(3+1) fleets on the Fig. 4 operating point \
         (lambda={LAMBDA:.0e}, hep={HEP}, horizon={HORIZON_HOURS}h, threads=1)"
    );
    let mut rows = Vec::new();
    for &arrays in &[1u32, 10, 100, 1000] {
        let spec = FleetSpec::new(arrays, availsim_storage::RaidGeometry::raid5(3).unwrap())
            .expect("valid fleet");
        let params = raid5_params(LAMBDA, HEP);
        let mc = FleetMc::new(spec, params).expect("valid fleet model");
        let missions = mc_iterations((200_000 / u64::from(arrays)).max(50));
        let cfg = throughput_config(missions);
        let warm = throughput_config((missions / 10).max(2));
        let _ = black_box(mc.run(&warm).unwrap().overall_array_availability);
        let started = Instant::now();
        let est = mc.run(&cfg).unwrap();
        let elapsed = started.elapsed().as_secs_f64();
        let row = FleetScalingRow {
            arrays,
            missions,
            elapsed_secs: elapsed,
            array_unavailability: est.array_unavailability(),
            mean_degraded: est.mean_degraded(),
        };
        println!(
            "  A={arrays:<5} {missions:>8} missions  {:>10.0} missions/s  \
             {:>12.0} array-missions/s  (U_array = {:.3e}, E[degraded] = {:.4})",
            row.missions_per_sec(),
            row.array_missions_per_sec(),
            row.array_unavailability,
            row.mean_degraded,
        );
        rows.push(row);
    }
    let json = render_fleet_json(
        &format!(
            "raid5_3plus1 fig4 fleets (lambda={LAMBDA:.0e}, hep={HEP}, \
             horizon_hours={HORIZON_HOURS})"
        ),
        bench_scale(),
        BENCH3_SEED_EVENT_QUEUE_BASELINE,
        engines,
        &rows,
    );
    let path = bench_snapshot_path("BENCH_5.json");
    match std::fs::write(&path, &json) {
        Ok(()) => println!("  wrote {}", path.display()),
        Err(e) => println!("  could not write {}: {e}", path.display()),
    }
}

/// Measures fleet throughput across the repair-crew axis — `c ∈ {1, 4, ∞}`
/// at each fleet size — and writes `BENCH_6.json` with array-mission
/// speedups against the seed BENCH_3 baseline. The unlimited-pool rows
/// double as a live check that the crew machinery costs nothing in the
/// independent limit.
fn fleet_repair_snapshot() {
    println!(
        "perf_mc fleet repair crews — RAID5(3+1) fleets on the Fig. 4 \
         operating point (lambda={LAMBDA:.0e}, hep={HEP}, \
         horizon={HORIZON_HOURS}h, threads=1)"
    );
    let mut rows = Vec::new();
    for &arrays in &[10u32, 100, 1000] {
        for &crews in &[Some(1u32), Some(4), None] {
            let mut spec =
                FleetSpec::new(arrays, availsim_storage::RaidGeometry::raid5(3).unwrap())
                    .expect("valid fleet");
            if let Some(c) = crews {
                spec = spec.with_repairmen(c).expect("valid crew pool");
            }
            let mc = FleetMc::new(spec, raid5_params(LAMBDA, HEP)).expect("valid fleet model");
            let missions = mc_iterations((200_000 / u64::from(arrays)).max(50));
            let cfg = throughput_config(missions);
            let warm = throughput_config((missions / 10).max(2));
            let _ = black_box(mc.run(&warm).unwrap().overall_array_availability);
            let started = Instant::now();
            let est = mc.run(&cfg).unwrap();
            let elapsed = started.elapsed().as_secs_f64();
            let row = FleetScalingRow {
                arrays,
                missions,
                elapsed_secs: elapsed,
                array_unavailability: est.array_unavailability(),
                mean_degraded: est.mean_degraded(),
            };
            let label = match crews {
                Some(c) => c.to_string(),
                None => "inf".to_string(),
            };
            println!(
                "  A={arrays:<5} c={label:<4} {missions:>8} missions  \
                 {:>12.0} array-missions/s  (U_array = {:.3e}, E[degraded] = {:.4})",
                row.array_missions_per_sec(),
                row.array_unavailability,
                row.mean_degraded,
            );
            rows.push(FleetRepairRow { crews, row });
        }
    }
    let json = render_fleet_repair_json(
        &format!(
            "raid5_3plus1 fig4 fleet repair crews (lambda={LAMBDA:.0e}, hep={HEP}, \
             horizon_hours={HORIZON_HOURS})"
        ),
        bench_scale(),
        BENCH3_SEED_EVENT_QUEUE_BASELINE,
        &rows,
    );
    let path = bench_snapshot_path("BENCH_6.json");
    match std::fs::write(&path, &json) {
        Ok(()) => println!("  wrote {}", path.display()),
        Err(e) => println!("  could not write {}: {e}", path.display()),
    }
}

/// Measures fleet throughput across the DR-capacity axis — `k ∈ {1, 4, ∞}`
/// at each fleet size, queue policy — and writes `BENCH_8.json` with
/// array-mission speedups against the seed BENCH_3 baseline. The
/// unlimited rows double as a live check on the ideal-DR fast path: no
/// extra RNG draws, so credited unavailability must come out exactly 0.
fn fleet_failover_snapshot() {
    println!(
        "perf_mc fleet DR failover — RAID5(3+1) fleets on the Fig. 4 \
         operating point (lambda={LAMBDA:.0e}, hep={HEP}, \
         horizon={HORIZON_HOURS}h, threads=1, queue policy)"
    );
    let failback_rate = raid5_params(LAMBDA, HEP).disk_change_rate;
    let mut rows = Vec::new();
    for &arrays in &[10u32, 100, 1000] {
        for &capacity in &[Some(1u32), Some(4), None] {
            let spec = FleetSpec::new(arrays, availsim_storage::RaidGeometry::raid5(3).unwrap())
                .expect("valid fleet")
                .with_failover(FleetFailover {
                    capacity,
                    policy: availsim_storage::FailoverPolicy::Queue,
                    failback_rate,
                })
                .expect("valid DR site");
            let mc = FleetMc::new(spec, raid5_params(LAMBDA, HEP)).expect("valid fleet model");
            let missions = mc_iterations((200_000 / u64::from(arrays)).max(50));
            let cfg = throughput_config(missions);
            let warm = throughput_config((missions / 10).max(2));
            let _ = black_box(mc.run(&warm).unwrap().overall_array_availability);
            let started = Instant::now();
            let est = mc.run(&cfg).unwrap();
            let elapsed = started.elapsed().as_secs_f64();
            if capacity.is_none() {
                assert_eq!(
                    est.credited_array_unavailability(),
                    0.0,
                    "ideal DR site must absorb every outage exactly"
                );
            }
            let row = FleetFailoverRow {
                capacity,
                row: FleetScalingRow {
                    arrays,
                    missions,
                    elapsed_secs: elapsed,
                    array_unavailability: est.array_unavailability(),
                    mean_degraded: est.mean_degraded(),
                },
                credited_unavailability: est.credited_array_unavailability(),
                failovers: est.failovers,
            };
            let label = match capacity {
                Some(k) => k.to_string(),
                None => "inf".to_string(),
            };
            println!(
                "  A={arrays:<5} k={label:<4} {missions:>8} missions  \
                 {:>12.0} array-missions/s  (U_array = {:.3e}, U_credited = {:.3e}, \
                 {} failovers)",
                row.row.array_missions_per_sec(),
                row.row.array_unavailability,
                row.credited_unavailability,
                row.failovers,
            );
            rows.push(row);
        }
    }
    let json = render_fleet_failover_json(
        &format!(
            "raid5_3plus1 fig4 fleet DR failover (lambda={LAMBDA:.0e}, hep={HEP}, \
             horizon_hours={HORIZON_HOURS}, policy=queue)"
        ),
        bench_scale(),
        BENCH3_SEED_EVENT_QUEUE_BASELINE,
        &rows,
    );
    let path = bench_snapshot_path("BENCH_8.json");
    match std::fs::write(&path, &json) {
        Ok(()) => println!("  wrote {}", path.display()),
        Err(e) => println!("  could not write {}: {e}", path.display()),
    }
}

/// The jump-chain missions/sec recorded by the checked-in BENCH_5.json —
/// the fixed baseline the telemetry-off gate is quoted against.
const BENCH5_SEED_JUMP_CHAIN_BASELINE: f64 = 11_725_215.8;

/// Interleaved best-of-N wall-clock seconds for an off/on run pair. The
/// runs alternate so slow machine phases (shared-container contention,
/// thermal drift) hit both configurations equally, and the minimum
/// filters scheduler noise — back-to-back batches of the *same* binary
/// vary by ±8% on the reference container, which would swamp a
/// sequentially-measured ratio.
fn paired_best_elapsed(off: impl Fn() -> f64, on: impl Fn() -> f64, repeats: u32) -> (f64, f64) {
    let (mut best_off, mut best_on) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..repeats {
        let started = Instant::now();
        let _ = black_box(off());
        best_off = best_off.min(started.elapsed().as_secs_f64());
        let started = Instant::now();
        let _ = black_box(on());
        best_on = best_on.min(started.elapsed().as_secs_f64());
    }
    (best_off, best_on)
}

/// Times the Fig. 4 workload with the telemetry registry disabled vs
/// enabled, writes `BENCH_7.json`, and enforces the overhead budget. The
/// disabled registry's cost against the pre-telemetry code was measured
/// at 1.1% by an interleaved A/B of the two commits (within the 2%
/// budget); in-process the bench can only compare off vs on and off vs
/// the checked-in baseline, so those assertions carry noise allowances
/// and act as gross-regression guards — e.g. a counter mask left always
/// on. The sharp contracts are functional: the enabled run must count
/// real events, the disabled run must record nothing, and both must
/// produce bit-identical estimates — telemetry never touches the RNG
/// stream.
fn telemetry_overhead_snapshot() {
    let params = raid5_params(LAMBDA, HEP);
    // Floor the volume so reduced-scale CI runs still time something
    // longer than scheduler jitter.
    let iterations = mc_iterations(300_000).max(50_000);
    let off_cfg = throughput_config(iterations);
    let on_cfg = McConfig {
        telemetry: true,
        ..throughput_config(iterations)
    };
    let warm = throughput_config((iterations / 10).max(2));
    println!(
        "perf_mc telemetry overhead — RAID5(3+1) Fig. 4 workload \
         (lambda={LAMBDA:.0e}, hep={HEP}, horizon={HORIZON_HOURS}h, threads=1)"
    );

    let mut rows = Vec::new();
    for (name, engine) in [
        ("conventional/jump_chain", McEngine::JumpChain),
        ("conventional/event_queue", McEngine::EventQueue),
    ] {
        let mc = ConventionalMc::new(params).unwrap().with_engine(engine);
        let _ = black_box(mc.run(&warm).unwrap().overall_availability);
        let (off_secs, on_secs) = paired_best_elapsed(
            || mc.run(&off_cfg).unwrap().overall_availability,
            || mc.run(&on_cfg).unwrap().overall_availability,
            7,
        );

        let off_est = mc.run(&off_cfg).unwrap();
        let on_est = mc.run(&on_cfg).unwrap();
        assert_eq!(
            off_est.overall_availability.to_bits(),
            on_est.overall_availability.to_bits(),
            "{name}: enabling telemetry must not perturb the estimate"
        );
        assert!(
            off_est.counters.is_empty(),
            "{name}: disabled run must record nothing"
        );
        let counted_events: u64 = on_est.counters.iter().map(|(_, v)| v).sum();
        assert!(
            counted_events >= iterations,
            "{name}: enabled run counted {counted_events} events over \
             {iterations} missions — registry not live"
        );

        let row = TelemetryOverheadRow {
            name: name.to_string(),
            missions: iterations,
            off_secs,
            on_secs,
            counted_events,
        };
        println!(
            "  {name:<28} off {:>12.0} missions/s  on {:>12.0} missions/s  \
             ratio {:.4}  ({counted_events} events counted)",
            row.off_missions_per_sec(),
            row.on_missions_per_sec(),
            row.on_over_off(),
        );
        rows.push(row);
    }

    // The gate rides the jump chain — the hottest loop in the system and
    // the one the ISSUE budgets. Interleaved best-of-7 ratios still jitter
    // by a few percent on a shared container (measured 0.965–0.999 across
    // repeated full-scale runs of an identical binary), so the full-scale
    // floor sits at 0.95: tight enough to catch an unmasked counter or a
    // flush that stopped early-returning, loose enough not to flake on
    // machine noise. The absolute floor allows for cross-day machine
    // drift (the untouched pre-telemetry commit itself re-measures up to
    // 10% below the checked-in figure on a busy day).
    let jump = &rows[0];
    let ratio = jump.on_over_off();
    if bench_scale() >= 1.0 {
        assert!(
            ratio >= 0.95,
            "telemetry overhead gate: on/off throughput ratio {ratio:.4} < 0.95"
        );
        assert!(
            jump.off_missions_per_sec() >= 0.85 * BENCH5_SEED_JUMP_CHAIN_BASELINE,
            "telemetry-off jump chain {:.0} missions/s fell more than 15% below \
             the BENCH_5 baseline {BENCH5_SEED_JUMP_CHAIN_BASELINE:.0}",
            jump.off_missions_per_sec()
        );
    } else {
        assert!(
            ratio >= 0.85,
            "telemetry overhead gate (reduced scale): ratio {ratio:.4} < 0.85"
        );
    }

    let json = render_telemetry_overhead_json(
        &format!(
            "raid5_3plus1 fig4 (lambda={LAMBDA:.0e}, hep={HEP}, horizon_hours={HORIZON_HOURS})"
        ),
        bench_scale(),
        BENCH5_SEED_JUMP_CHAIN_BASELINE,
        &rows,
    );
    let path = bench_snapshot_path("BENCH_7.json");
    match std::fs::write(&path, &json) {
        Ok(()) => println!("  wrote {}", path.display()),
        Err(e) => println!("  could not write {}: {e}", path.display()),
    }
}

/// The scrubbing model of the BENCH_9 data-loss rows: one LSE per 10⁴
/// disk-hours, fortnightly scrubs — a ≈4.9% per-rebuild failure
/// probability on the Fig. 4 geometry, so tens of thousands of Bernoulli
/// draws land in the timed runs.
const LSE_RATE: f64 = 1e-4;
const SCRUB_INTERVAL_HOURS: f64 = 336.0;

/// Times the Fig. 4 workload without a scrubbing model vs with the live
/// BENCH_9 model, writes `BENCH_9.json`, and enforces the data-loss
/// overhead budget. The sharp contract is bit-exactness, not timing: a
/// zero-rate scrubbing model must reproduce the no-scrubbing run bit for
/// bit (the LSE branch draws nothing when `p = 0`), so attaching the
/// tier costs exactly nothing until it is live. The timed pair then
/// bounds what a *live* rate costs — one extra uniform per rebuild —
/// with the same noise allowances as the telemetry gate, and the
/// telemetry counters anchor the run: a "fast" LSE run that never hit a
/// latent sector error measures nothing.
fn data_loss_overhead_snapshot() {
    let off_params = raid5_params(LAMBDA, HEP);
    let zero_params = off_params
        .with_scrubbing(ScrubbingModel::new(0.0, SCRUB_INTERVAL_HOURS).expect("valid model"));
    let on_params = off_params
        .with_scrubbing(ScrubbingModel::new(LSE_RATE, SCRUB_INTERVAL_HOURS).expect("valid model"));
    // Floor the volume so reduced-scale CI runs still time something
    // longer than scheduler jitter.
    let iterations = mc_iterations(300_000).max(50_000);
    let cfg = throughput_config(iterations);
    let counted_cfg = McConfig {
        telemetry: true,
        ..throughput_config(iterations)
    };
    let warm = throughput_config((iterations / 10).max(2));
    println!(
        "perf_mc data-loss overhead — RAID5(3+1) Fig. 4 workload \
         (lambda={LAMBDA:.0e}, hep={HEP}, horizon={HORIZON_HOURS}h, threads=1, \
         lse_rate={LSE_RATE:.0e}/disk-h, scrub every {SCRUB_INTERVAL_HOURS}h)"
    );

    let mut rows = Vec::new();
    for (name, engine) in [
        ("conventional/jump_chain", McEngine::JumpChain),
        ("conventional/event_queue", McEngine::EventQueue),
    ] {
        let off = ConventionalMc::new(off_params).unwrap().with_engine(engine);
        let zero = ConventionalMc::new(zero_params)
            .unwrap()
            .with_engine(engine);
        let on = ConventionalMc::new(on_params).unwrap().with_engine(engine);
        let _ = black_box(off.run(&warm).unwrap().overall_availability);
        let _ = black_box(on.run(&warm).unwrap().overall_availability);
        let (off_secs, on_secs) = paired_best_elapsed(
            || off.run(&cfg).unwrap().overall_availability,
            || on.run(&cfg).unwrap().overall_availability,
            7,
        );

        let off_est = off.run(&cfg).unwrap();
        let zero_est = zero.run(&cfg).unwrap();
        assert_eq!(
            off_est.overall_availability.to_bits(),
            zero_est.overall_availability.to_bits(),
            "{name}: a zero-rate scrubbing model must be a bit-exact no-op"
        );
        assert_eq!(
            off_est.p_data_loss.mean.to_bits(),
            zero_est.p_data_loss.mean.to_bits(),
            "{name}: zero-rate scrubbing must not move the loss estimator"
        );
        // Telemetry never touches the RNG stream, so the counted run sees
        // the same missions the timed LSE-on run did.
        let on_est = on.run(&counted_cfg).unwrap();
        let lse_hits = on_est.counters.get(Counter::RebuildLseHits);
        let loss_events = on_est.counters.get(Counter::DataLossEvents);
        assert!(
            lse_hits > 0,
            "{name}: live LSE run never hit a latent sector error — \
             the rebuild Bernoulli is not being drawn"
        );
        assert!(
            loss_events >= lse_hits,
            "{name}: every rebuild LSE hit must land in DL \
             ({loss_events} < {lse_hits})"
        );
        assert!(
            on_est.p_data_loss.mean > off_est.p_data_loss.mean,
            "{name}: live LSE must raise the loss probability"
        );

        let row = DataLossOverheadRow {
            name: name.to_string(),
            missions: iterations,
            off_secs,
            on_secs,
            rebuild_lse_hits: lse_hits,
            p_data_loss: on_est.p_data_loss.mean,
        };
        println!(
            "  {name:<28} off {:>12.0} missions/s  on {:>12.0} missions/s  \
             ratio {:.4}  ({lse_hits} LSE hits, p_loss = {:.3e})",
            row.off_missions_per_sec(),
            row.on_missions_per_sec(),
            row.on_over_off(),
            row.p_data_loss,
        );
        rows.push(row);
    }

    // Same gate shape as the telemetry snapshot but a looser floor: a
    // live rate does real work — one uniform per rebuild plus the split
    // exit-rate bookkeeping — measured at ~7% on the jump chain (ratio
    // 0.93 full scale), where telemetry's masked counters cost ~2%. The
    // 0.85 floor catches the regressions that matter (a Bernoulli drawn
    // on *every* jump rather than per rebuild lands near 0.5) while
    // riding out best-of-7 jitter; the absolute floor allows cross-day
    // machine drift.
    let jump = &rows[0];
    let ratio = jump.on_over_off();
    if bench_scale() >= 1.0 {
        assert!(
            ratio >= 0.85,
            "data-loss overhead gate: on/off throughput ratio {ratio:.4} < 0.85"
        );
        assert!(
            jump.off_missions_per_sec() >= 0.85 * BENCH5_SEED_JUMP_CHAIN_BASELINE,
            "LSE-off jump chain {:.0} missions/s fell more than 15% below \
             the BENCH_5 baseline {BENCH5_SEED_JUMP_CHAIN_BASELINE:.0}",
            jump.off_missions_per_sec()
        );
    } else {
        assert!(
            ratio >= 0.75,
            "data-loss overhead gate (reduced scale): ratio {ratio:.4} < 0.75"
        );
    }

    let json = render_data_loss_overhead_json(
        &format!(
            "raid5_3plus1 fig4 (lambda={LAMBDA:.0e}, hep={HEP}, horizon_hours={HORIZON_HOURS}, \
             lse_rate={LSE_RATE:.0e}, scrub_interval_hours={SCRUB_INTERVAL_HOURS})"
        ),
        bench_scale(),
        BENCH5_SEED_JUMP_CHAIN_BASELINE,
        &rows,
    );
    let path = bench_snapshot_path("BENCH_9.json");
    match std::fs::write(&path, &json) {
        Ok(()) => println!("  wrote {}", path.display()),
        Err(e) => println!("  could not write {}: {e}", path.display()),
    }
}

/// Runs one scheme's precision loop and records the budget it needed.
fn measure_to_precision(
    mc: &ConventionalMc,
    variance: McVariance,
    seed: u64,
    target: f64,
    pilot: u64,
    cap: u64,
) -> RareEventRun {
    let cfg = McConfig {
        iterations: pilot,
        horizon_hours: HORIZON_HOURS,
        seed,
        confidence: 0.99,
        threads: 1,
        variance,
        telemetry: false,
    };
    let started = Instant::now();
    let est = mc.run_to_precision(&cfg, target, cap).unwrap();
    let elapsed = started.elapsed().as_secs_f64();
    let converged = est.availability.half_width > 0.0 && est.availability.half_width <= target;
    println!(
        "    {:<28} {:>10} missions  {}  U = {:.4e}  ({elapsed:.2}s)",
        variance.to_string(),
        est.iterations,
        if converged {
            "converged "
        } else {
            "CAP HIT   "
        },
        est.unavailability(),
    );
    RareEventRun {
        scheme: variance.to_string(),
        missions: est.iterations,
        converged,
        estimate: est.unavailability(),
        elapsed_secs: elapsed,
    }
}

/// Missions-to-±10%-relative-CI, naive vs failure biasing, over a λ sweep
/// whose lowest point has an exact unavailability ≈ 1e-7 — the rare-event
/// acceptance workload. Writes `BENCH_4.json`.
fn rare_event_snapshot() {
    println!(
        "perf_mc rare-event — RAID5(3+1) Fig. 4 workload, missions to a \
         ±10% relative 99% CI (hep={HEP}, horizon={HORIZON_HOURS}h, threads=1)"
    );
    let mut points = Vec::new();
    for &lambda in &[2e-7, 1e-6, 3e-6] {
        let params = raid5_params(lambda, HEP);
        let exact = Raid5Conventional::new(params)
            .expect("valid model")
            .solve()
            .expect("solvable")
            .unavailability();
        let target = 0.1 * exact;
        println!("  lambda = {lambda:e}: exact U = {exact:.4e}, target hw = {target:.4e}");
        let mc = ConventionalMc::new(params).expect("valid model");
        let naive = measure_to_precision(
            &mc,
            McVariance::Naive,
            40 + (lambda * 1e9) as u64,
            target,
            mc_iterations(20_000),
            mc_iterations(16_000_000),
        );
        let biased = measure_to_precision(
            &mc,
            McVariance::failure_biasing(),
            40 + (lambda * 1e9) as u64,
            target,
            mc_iterations(2_000),
            mc_iterations(400_000),
        );
        let point = RareEventPoint {
            lambda,
            exact_unavailability: exact,
            target_half_width: target,
            naive,
            biased,
        };
        println!("    mission ratio: {:.1}x", point.mission_ratio());
        points.push(point);
    }
    let json = render_rare_event_json(
        &format!("raid5_3plus1 fig4 (hep={HEP}, horizon_hours={HORIZON_HOURS})"),
        bench_scale(),
        &points,
    );
    let path = bench_snapshot_path("BENCH_4.json");
    match std::fs::write(&path, &json) {
        Ok(()) => println!("  wrote {}", path.display()),
        Err(e) => println!("  could not write {}: {e}", path.display()),
    }
}

fn bench(c: &mut Criterion) {
    let engines = throughput_snapshot();
    fleet_snapshot(&engines);
    fleet_repair_snapshot();
    fleet_failover_snapshot();
    rare_event_snapshot();
    telemetry_overhead_snapshot();
    data_loss_overhead_snapshot();

    let params = raid5_params(LAMBDA, HEP);

    let mut group = c.benchmark_group("mc_single_mission");
    group.bench_function("conventional_jump_chain_10y", |b| {
        let mc = ConventionalMc::new(params)
            .unwrap()
            .with_engine(McEngine::JumpChain);
        let mut ws = SimWorkspace::new();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let mut rng = SimRng::substream(1, i);
            black_box(mc.simulate_once_with(HORIZON_HOURS, &mut rng, &mut ws))
        });
    });
    group.bench_function("conventional_event_queue_10y", |b| {
        let mc = ConventionalMc::new(params)
            .unwrap()
            .with_engine(McEngine::EventQueue);
        let mut ws = SimWorkspace::new();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let mut rng = SimRng::substream(1, i);
            black_box(mc.simulate_once_with(HORIZON_HOURS, &mut rng, &mut ws))
        });
    });
    group.bench_function("failover_jump_chain_10y", |b| {
        let mc = FailOverMc::new(params)
            .unwrap()
            .with_engine(McEngine::JumpChain);
        let mut ws = SimWorkspace::new();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let mut rng = SimRng::substream(1, i);
            black_box(mc.simulate_once_with(HORIZON_HOURS, &mut rng, &mut ws))
        });
    });
    group.bench_function("failover_event_queue_10y", |b| {
        let mc = FailOverMc::new(params)
            .unwrap()
            .with_engine(McEngine::EventQueue);
        let mut ws = SimWorkspace::new();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let mut rng = SimRng::substream(1, i);
            black_box(mc.simulate_once_with(HORIZON_HOURS, &mut rng, &mut ws))
        });
    });
    group.finish();

    let mut group = c.benchmark_group("fleet_single_mission");
    group.sample_size(10);
    for &arrays in &[10u32, 100] {
        group.bench_with_input(
            BenchmarkId::new("raid5_3plus1_10y", arrays),
            &arrays,
            |b, &arrays| {
                let spec =
                    FleetSpec::new(arrays, availsim_storage::RaidGeometry::raid5(3).unwrap())
                        .unwrap();
                let mc = FleetMc::new(spec, raid5_params(LAMBDA, HEP)).unwrap();
                let mut ws = SimWorkspace::new();
                let mut i = 0u64;
                b.iter(|| {
                    i += 1;
                    let mut rng = SimRng::substream(5, i);
                    black_box(mc.simulate_once_with(HORIZON_HOURS, &mut rng, &mut ws))
                });
            },
        );
    }
    group.finish();

    let mut group = c.benchmark_group("mc_batch_2000_missions");
    group.sample_size(10);
    for &threads in &[1usize, 4] {
        group.bench_with_input(
            BenchmarkId::new("conventional_jump_chain", threads),
            &threads,
            |b, &threads| {
                let mc = ConventionalMc::new(params).unwrap();
                let config = McConfig {
                    iterations: 2_000,
                    horizon_hours: HORIZON_HOURS,
                    seed: 3,
                    confidence: 0.99,
                    threads,
                    ..McConfig::default()
                };
                b.iter(|| black_box(mc.run(&config).unwrap().overall_availability));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("conventional_event_queue", threads),
            &threads,
            |b, &threads| {
                let mc = ConventionalMc::new(params)
                    .unwrap()
                    .with_engine(McEngine::EventQueue);
                let config = McConfig {
                    iterations: 2_000,
                    horizon_hours: HORIZON_HOURS,
                    seed: 3,
                    confidence: 0.99,
                    threads,
                    ..McConfig::default()
                };
                b.iter(|| black_box(mc.run(&config).unwrap().overall_availability));
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3));
    targets = bench
}
criterion_main!(benches);
