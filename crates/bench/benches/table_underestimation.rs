//! Headline table (§I / §V-B) — how much the traditional hep = 0 model
//! underestimates downtime: `U(hep = 0.01) / U(0)` over the Fig. 4 λ grid.
//! The paper reports "up to 263X"; the maximum of this sweep lands in that
//! band at the λ = 5e-7 end of the grid.

use availsim_bench::{raid5_params, underestimation_table};
use availsim_core::analysis::underestimation;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

fn print_table() {
    let (table, max) = underestimation_table();
    println!("\n=== Headline: downtime underestimation when human error is ignored ===\n");
    println!("{}", table.render());
    println!("maximum underestimation over the sweep: {max:.0}x (paper: up to 263X)\n");
}

fn bench(c: &mut Criterion) {
    print_table();

    c.bench_function("underestimation/single_point", |b| {
        let params = raid5_params(5e-7, 0.01);
        b.iter(|| black_box(underestimation(params).unwrap().factor()));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(30)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    targets = bench
}
criterion_main!(benches);
