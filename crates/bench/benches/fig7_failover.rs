//! Fig. 7 — availability of the automatic fail-over (delayed replacement)
//! policy vs conventional replacement, hep ∈ {0, 0.001, 0.01}, λ = 1e-6.
//!
//! Also prints the §V-D headline: the improvement factor at hep = 0.01
//! (the paper reports ~two orders of magnitude).

use availsim_bench::{failover_chain_build_and_solve, fig7_table, raid5_params};
use availsim_core::markov::{Raid5Conventional, WrongReplacementTiming};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

fn print_figure() {
    let (table, rows) = fig7_table();
    println!("\n=== Fig. 7: replacement policy comparison ===\n");
    println!("{}", table.render());
    println!(
        "headline: automatic fail-over improves availability {:.0}x at hep=0.01 (paper: ~2 orders of magnitude)\n",
        rows[2].improvement()
    );

    // Ablation: the same sweep under the as-labeled (hep·μ_DF) reading.
    println!("ablation — conventional model with the as-labeled EXP→DU rate (hep·μ_DF):");
    for &hep in &[0.0, 0.001, 0.01] {
        let u = Raid5Conventional::new(raid5_params(1e-6, hep))
            .expect("valid model")
            .with_timing(WrongReplacementTiming::RepairCompletion)
            .solve()
            .expect("solvable")
            .unavailability();
        println!(
            "  hep={hep:<6} conventional (as-labeled) = {:.3} nines",
            availsim_core::nines::nines_from_unavailability(u)
        );
    }
    println!();
}

fn bench(c: &mut Criterion) {
    print_figure();

    c.bench_function("fig7/failover_12state_solve", |b| {
        b.iter(|| black_box(failover_chain_build_and_solve(1e-6, 0.01)));
    });

    c.bench_function("fig7/conventional_4state_solve", |b| {
        let model = Raid5Conventional::new(raid5_params(1e-6, 0.01)).unwrap();
        b.iter(|| black_box(model.solve().unwrap().unavailability()));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(30)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    targets = bench
}
criterion_main!(benches);
