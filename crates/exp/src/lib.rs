//! # availsim-exp
//!
//! Declarative experiment campaigns for the availsim workspace. The paper's
//! results (Figs. 4–7, the under-estimation table) are each a *campaign* —
//! a sweep over disk failure rates, human-error probabilities, RAID
//! geometries, and repair policies. This crate turns such sweeps into
//! first-class objects with four layers:
//!
//! | layer | module | contents |
//! |-------|--------|----------|
//! | spec | [`spec`] | [`spec::Scenario`] + a std-only line-oriented spec-file parser |
//! | plan | [`plan`] | cartesian grid expansion into [`plan::Cell`]s with per-cell substream seeds |
//! | run | [`run`] | a scoped-thread worker pool, bit-reproducible at any worker count |
//! | report | [`report`] | deterministic CSV/JSON writers + a summary table with per-cell timing |
//!
//! # Quickstart
//!
//! ```
//! use availsim_exp::{plan, report, run, spec::Scenario};
//!
//! # fn main() -> Result<(), availsim_exp::ExpError> {
//! let scenario = Scenario::parse(
//!     "[campaign]\n\
//!      name = demo\n\
//!      seed = 42\n\
//!      [axes]\n\
//!      lambda = [1e-6, 1e-5]\n\
//!      hep = [0, 0.01]\n",
//! )?;
//! let plan = plan::expand(&scenario)?;
//! assert_eq!(plan.len(), 4);
//! let result = run::run(&plan, &run::RunConfig::default())?;
//! let csv = report::to_csv(&result);
//! assert!(csv.lines().count() == 5); // header + four cells
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
pub mod plan;
pub mod report;
pub mod run;
pub mod spec;

pub use error::{ExpError, Result};
