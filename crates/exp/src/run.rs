//! The parallel batch runner.
//!
//! # Determinism contract
//!
//! Worker threads pull cells from a shared atomic cursor, so *which* thread
//! executes a cell is racy — but every cell's result depends only on the
//! cell itself (its own derived seed; Monte-Carlo cells default to
//! single-threaded internally, and `[mc] threads` is a pure speed knob:
//! estimates are bit-identical at any count), and partial results are
//! reassembled **by cell index** before any aggregation. The merged Welford accumulators and every reported
//! metric are therefore bit-identical for 1 worker and N workers. Only the
//! wall-clock timings differ between runs.

use crate::error::{ExpError, Result};
use crate::plan::{Cell, Plan};
use crate::spec::{FleetSettings, McSettings, ModelKind, Policy, Scenario};
use availsim_core::markov::{GenericKofN, Raid5Conventional, Raid5FailOver};
use availsim_core::mc::{ConventionalMc, FailOverMc, FleetMc, McConfig};
use availsim_core::{nines, CoreError, ModelParams};
use availsim_hra::Hep;
use availsim_sim::parallel::{ordered_parallel_map_cancellable, CancelToken};
use availsim_sim::stats::RunningStats;
use availsim_sim::telemetry::CounterSnapshot;
use availsim_storage::{FleetSpec, Volume};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// Progress sink for [`run_with_progress`]: called once per finished cell
/// with a preformatted `cell k/N done (U=…, ±…)` line. Called from worker
/// threads, hence `Sync`; `k` counts completions, not cell indices.
pub type ProgressSink<'a> = dyn Fn(&str) + Sync + 'a;

/// Runner configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RunConfig {
    /// Worker threads; `0` (the default) means the machine's available
    /// parallelism. The effective count is clamped to the number of cells.
    pub workers: usize,
    /// Continue past failing cells instead of aborting the campaign: each
    /// failure becomes a report row carrying its error string, placed
    /// deterministically at the cell's index.
    pub keep_going: bool,
}

impl RunConfig {
    /// The worker count actually used for `cells` cells.
    pub fn effective_workers(&self, cells: usize) -> usize {
        availsim_sim::parallel::resolve_workers(self.workers).clamp(1, cells.max(1))
    }
}

/// Equal-capacity volume metrics of one cell (present when the campaign
/// sets `capacity`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VolumeMetrics {
    /// Member arrays at the campaign's usable capacity.
    pub arrays: u64,
    /// Total physical disks.
    pub total_disks: u64,
    /// Series-system unavailability of the volume.
    pub unavailability: f64,
    /// Volume availability in nines.
    pub nines: f64,
}

/// All metrics produced by one cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CellResult {
    /// The cell that produced these metrics.
    pub cell: Cell,
    /// Per-array unavailability (steady-state or MC point estimate).
    pub unavailability: f64,
    /// Per-array availability in nines.
    pub nines: f64,
    /// Downtime, minutes per year.
    pub downtime_min_per_year: f64,
    /// Mean time to data loss in hours (Markov models only).
    pub mttdl_hours: Option<f64>,
    /// Half-width of the availability confidence interval (MC only).
    pub ci_half_width: Option<f64>,
    /// DR-credited per-array unavailability: down time not covered by the
    /// disaster-recovery site. Present only for fleet cells with a
    /// `failover_capacity` coupling.
    pub credited_unavailability: Option<f64>,
    /// Fraction of missions that lost data within the horizon. Present
    /// only for MC cells of an `[lse]` campaign.
    pub p_data_loss: Option<f64>,
    /// NOMDL: data-loss events per mission, normalized by the cell's
    /// usable capacity (capacity units ≙ TB). Present only for MC cells
    /// of an `[lse]` campaign.
    pub nomdl_per_tb: Option<f64>,
    /// Volume metrics (only when the campaign sets `capacity`).
    pub volume: Option<VolumeMetrics>,
    /// Engine telemetry counters for this cell (all-zero unless the
    /// scenario's `[telemetry]` section enables metrics; Markov cells
    /// report none). Deterministic: depends only on the cell's seed.
    pub counters: CounterSnapshot,
    /// Wall-clock time this cell took, microseconds. Excluded from the
    /// deterministic CSV/JSON reports; summarised in the text report.
    pub elapsed_micros: u64,
    /// The cell's error string when it failed under a keep-going run;
    /// `None` for a successful cell. Failed cells carry NaN metrics and
    /// are excluded from every campaign aggregate.
    pub error: Option<String>,
}

impl CellResult {
    /// The deterministic placeholder row a failed cell leaves behind under
    /// `--keep-going`: NaN metrics, zeroed counters, and the error string.
    fn failed(cell: &Cell, error: String) -> Self {
        CellResult {
            cell: cell.clone(),
            unavailability: f64::NAN,
            nines: f64::NAN,
            downtime_min_per_year: f64::NAN,
            mttdl_hours: None,
            ci_half_width: None,
            credited_unavailability: None,
            p_data_loss: None,
            nomdl_per_tb: None,
            volume: None,
            counters: CounterSnapshot::default(),
            elapsed_micros: 0,
            error: Some(error),
        }
    }

    /// Whether the cell failed (keep-going runs only).
    pub fn is_failed(&self) -> bool {
        self.error.is_some()
    }
}

/// Aggregate outcome of a campaign run.
#[derive(Debug, Clone)]
pub struct CampaignResult {
    /// The scenario that ran.
    pub scenario: Scenario,
    /// Per-cell results, sorted by cell index.
    pub cells: Vec<CellResult>,
    /// Welford accumulator over per-array unavailability across cells,
    /// merged in cell-index order (bit-reproducible).
    pub unavailability_stats: RunningStats,
    /// Welford accumulator over per-cell wall-clock times (microseconds).
    pub timing_stats: RunningStats,
    /// Campaign-wide telemetry counters, merged in cell-index order
    /// (bit-reproducible at any worker count).
    pub counters: CounterSnapshot,
    /// Workers actually used.
    pub workers: usize,
    /// Whether the run continued past failures ([`RunConfig::keep_going`]);
    /// reports add `status`/`error` columns only for keep-going runs so
    /// plain campaigns keep their byte-stable layout.
    pub keep_going: bool,
    /// Failed cells recorded by a keep-going run; always `0` otherwise
    /// (a failure aborts the campaign instead).
    pub failed_cells: usize,
    /// Total wall-clock time of the run, microseconds.
    pub wall_micros: u64,
}

impl CampaignResult {
    /// Fraction of the worker pool's combined wall-clock budget spent
    /// inside cells: `sum(cell micros) ÷ wall micros ÷ workers`. Near 1.0
    /// means the workers stayed busy; a low value flags load imbalance
    /// (e.g. one slow cell serialising the campaign). Nondeterministic —
    /// shown in the text summary only, never in the CSV/JSON reports.
    pub fn worker_utilization(&self) -> f64 {
        let busy: f64 = self.cells.iter().map(|c| c.elapsed_micros as f64).sum();
        let budget = self.wall_micros.max(1) as f64 * self.workers.max(1) as f64;
        (busy / budget).min(1.0)
    }
}

/// Expands nothing — runs an already expanded plan.
///
/// # Errors
/// Returns the lowest-indexed failure among the cells that ran; a failing
/// cell also stops workers from claiming further cells, so an early
/// misconfiguration does not burn the whole campaign's compute first.
/// With [`RunConfig::keep_going`] set, cell failures never abort: each
/// failed cell becomes a placeholder row (NaN metrics, the error string)
/// at its own index, and the run errs only on campaign-level problems.
pub fn run(plan: &Plan, config: &RunConfig) -> Result<CampaignResult> {
    run_with_progress(plan, config, None)
}

/// [`run`] with a live progress sink: each finished cell emits one
/// `cell k/N done (U=…, ±…)` line. Progress lines stream in completion
/// order (racy by design) and never touch the deterministic results —
/// the sink is for a human watching the campaign, not for reports.
///
/// # Errors
/// As [`run`].
pub fn run_with_progress(
    plan: &Plan,
    config: &RunConfig,
    progress: Option<&ProgressSink<'_>>,
) -> Result<CampaignResult> {
    run_cancellable(plan, config, progress, None)
}

/// [`run_with_progress`] plus an optional cooperative
/// [`CancelToken`](availsim_sim::parallel::CancelToken).
///
/// The token is polled at two granularities: workers stop claiming new
/// cells once it trips, and it is threaded into each Monte-Carlo cell's
/// block scheduler so even a single long cell is cut short within one
/// scheduling block. A cancelled campaign returns [`ExpError::Cancelled`]
/// (or the in-flight cell's deadline error under `!keep_going`) and
/// discards partial results — a run never reports a timing-dependent
/// subset of its cells as if it were the campaign.
///
/// # Errors
/// As [`run`], plus [`ExpError::Cancelled`] when the token trips.
pub fn run_cancellable(
    plan: &Plan,
    config: &RunConfig,
    progress: Option<&ProgressSink<'_>>,
    cancel: Option<&CancelToken>,
) -> Result<CampaignResult> {
    let n = plan.cells.len();
    let workers = config.effective_workers(n);
    let started = Instant::now();
    let completed = AtomicUsize::new(0);

    // Workers claim cells from a shared cursor; results carry their cell
    // index and are reassembled in index order (the determinism contract).
    let collected = ordered_parallel_map_cancellable(
        n as u64,
        workers,
        || (),
        |(), i| {
            let r = run_cell_cancellable(&plan.scenario, &plan.cells[i as usize], cancel);
            if let Some(sink) = progress {
                let k = completed.fetch_add(1, Ordering::Relaxed) + 1;
                match r.as_ref() {
                    Ok(c) => {
                        let ci = c
                            .ci_half_width
                            .map(|h| format!(", ±{}", crate::plan::format_float(h)))
                            .unwrap_or_default();
                        sink(&format!(
                            "cell {k}/{n} done (U={}{ci})",
                            crate::plan::format_float(c.unavailability)
                        ));
                    }
                    Err(e) if config.keep_going => {
                        sink(&format!("cell {k}/{n} FAILED ({e})"));
                    }
                    Err(_) => {}
                }
            }
            r
        },
        |r| !config.keep_going && r.is_err(),
        cancel,
    );

    let mut cells = Vec::with_capacity(n);
    let mut failed_cells = 0usize;
    let collected_count = collected.len();
    for (i, r) in collected {
        match r {
            Ok(c) => cells.push(c),
            Err(e) if config.keep_going => {
                failed_cells += 1;
                cells.push(CellResult::failed(&plan.cells[i as usize], e.to_string()));
            }
            Err(e) => return Err(e),
        }
    }
    if collected_count < n {
        // The cancel token stopped workers from claiming every cell; the
        // completed prefix is discarded (see the doc comment above).
        return Err(ExpError::Cancelled);
    }

    let mut unavailability_stats = RunningStats::new();
    let mut timing_stats = RunningStats::new();
    let mut counters = CounterSnapshot::default();
    for c in cells.iter().filter(|c| !c.is_failed()) {
        unavailability_stats.push(c.unavailability);
        timing_stats.push(c.elapsed_micros as f64);
        counters.merge(&c.counters);
    }

    Ok(CampaignResult {
        scenario: plan.scenario.clone(),
        cells,
        unavailability_stats,
        timing_stats,
        counters,
        workers,
        keep_going: config.keep_going,
        failed_cells,
        wall_micros: started.elapsed().as_micros() as u64,
    })
}

/// Executes one cell with the scenario's solver backend.
///
/// # Errors
/// Wraps model failures in [`ExpError::Model`] with the cell index.
pub fn run_cell(scenario: &Scenario, cell: &Cell) -> Result<CellResult> {
    run_cell_cancellable(scenario, cell, None)
}

/// [`run_cell`] plus an optional cooperative cancel token threaded into the
/// Monte-Carlo block scheduler (Markov cells solve in microseconds and are
/// not interruptible). A tripped token surfaces as [`ExpError::Model`]
/// wrapping [`CoreError::DeadlineExpired`].
///
/// # Errors
/// As [`run_cell`], plus the deadline error on cancellation.
pub fn run_cell_cancellable(
    scenario: &Scenario,
    cell: &Cell,
    cancel: Option<&CancelToken>,
) -> Result<CellResult> {
    let started = Instant::now();
    let model = |e: CoreError| ExpError::Model {
        cell: cell.index,
        source: e,
    };
    let hep = Hep::new(cell.hep).map_err(|e| model(CoreError::Hra(e)))?;
    let mut params = ModelParams::paper_defaults(cell.raid, cell.lambda, hep).map_err(model)?;
    if let Some(lse) = scenario.lse {
        // Scenario validation already restricts live rates to the MC
        // engines and the generic chain; a zero rate is a bit-identical
        // no-op everywhere.
        params = params.with_scrubbing(lse.model());
    }

    let (unavailability, mttdl_hours, ci_half_width, credited_unavailability, loss, counters) =
        match (scenario.model, cell.policy) {
            (ModelKind::Mc, policy) => {
                let est = mc_estimate(
                    scenario.mc,
                    scenario.fleet,
                    policy,
                    params,
                    cell.seed,
                    scenario.telemetry.enabled(),
                    cancel,
                )
                .map_err(model)?;
                // The loss columns report only under an [lse] section so
                // plain campaigns keep their byte-stable layout.
                let loss = scenario.lse.map(|_| est.3);
                (est.0, None, Some(est.1), est.2, loss, est.4)
            }
            (_, Policy::Failover) => {
                let m = Raid5FailOver::new(params).map_err(model)?;
                let solved = m.solve().map_err(model)?;
                (
                    solved.unavailability(),
                    Some(m.mttdl_hours().map_err(model)?),
                    None,
                    None,
                    None,
                    CounterSnapshot::default(),
                )
            }
            (ModelKind::GenericKofN, Policy::Conventional) => {
                let m = GenericKofN::new(params).map_err(model)?;
                let solved = m.solve().map_err(model)?;
                (
                    solved.unavailability(),
                    Some(m.mttdl_hours().map_err(model)?),
                    None,
                    None,
                    None,
                    CounterSnapshot::default(),
                )
            }
            (_, Policy::Conventional) if cell.raid.fault_tolerance() == 1 => {
                let m = Raid5Conventional::new(params).map_err(model)?;
                let solved = m.solve().map_err(model)?;
                (
                    solved.unavailability(),
                    Some(m.mttdl_hours().map_err(model)?),
                    None,
                    None,
                    None,
                    CounterSnapshot::default(),
                )
            }
            (_, Policy::Conventional) => {
                let m = GenericKofN::new(params).map_err(model)?;
                let solved = m.solve().map_err(model)?;
                (
                    solved.unavailability(),
                    Some(m.mttdl_hours().map_err(model)?),
                    None,
                    None,
                    None,
                    CounterSnapshot::default(),
                )
            }
        };

    let volume = match scenario.capacity {
        Some(cap) => {
            let v = Volume::with_usable_capacity(cell.raid, cap)
                .map_err(|e| model(CoreError::Storage(e)))?;
            let vu = v.series_unavailability(unavailability);
            Some(VolumeMetrics {
                arrays: v.arrays(),
                total_disks: v.total_disks(),
                unavailability: vu,
                nines: nines::nines_from_unavailability(vu),
            })
        }
        None => None,
    };

    Ok(CellResult {
        cell: cell.clone(),
        unavailability,
        nines: nines::nines_from_unavailability(unavailability),
        downtime_min_per_year: nines::downtime_minutes_per_year(unavailability),
        mttdl_hours,
        ci_half_width,
        credited_unavailability,
        p_data_loss: loss.map(|(p, _)| p),
        nomdl_per_tb: loss.map(|(_, n)| n),
        volume,
        counters,
        elapsed_micros: started.elapsed().as_micros() as u64,
        error: None,
    })
}

/// Runs the Monte-Carlo backend for one cell; single-threaded internally
/// by default (campaign parallelism is across cells; `[mc] threads`
/// overrides, bit-identically). With a `[fleet]` section the
/// cell runs the fleet engine and reports its per-array unavailability;
/// the third slot carries the DR-credited unavailability when the fleet
/// has a `failover_capacity` coupling; the fourth slot is the
/// `(p_data_loss, nomdl_per_tb)` pair, which [`run_cell`] surfaces only
/// under an `[lse]` section (the fail-back rate defaults to the
/// disk-change rate: switching back is an operator-driven swap action).
type McCellEstimate = (f64, f64, Option<f64>, (f64, f64), CounterSnapshot);

fn mc_estimate(
    mc: McSettings,
    fleet: Option<FleetSettings>,
    policy: Policy,
    params: ModelParams,
    seed: u64,
    telemetry: bool,
    cancel: Option<&CancelToken>,
) -> availsim_core::Result<McCellEstimate> {
    let config = McConfig {
        iterations: mc.iterations,
        horizon_hours: mc.horizon_hours,
        seed,
        confidence: mc.confidence,
        // `[mc] threads` (default 1: campaign parallelism is across
        // cells). Thread count never changes a result bit, so this is a
        // speed knob only; 0 means the machine's available parallelism.
        threads: mc.threads,
        variance: mc.variance,
        telemetry,
    };
    if let Some(fleet) = fleet {
        // Scenario validation already restricts fleets to the
        // conventional policy and naive sampling.
        let arrays = u32::try_from(fleet.arrays).map_err(|_| {
            CoreError::InvalidParameter(format!("fleet arrays {} is too large", fleet.arrays))
        })?;
        let mut spec = FleetSpec::new(arrays, params.geometry).map_err(CoreError::Storage)?;
        if let Some(crews) = fleet.repairmen {
            let crews = u32::try_from(crews).map_err(|_| {
                CoreError::InvalidParameter(format!("fleet repairmen {crews} is too large"))
            })?;
            spec = spec.with_repairmen(crews).map_err(CoreError::Storage)?;
        }
        let failover = fleet.failover(params.disk_change_rate);
        if let Some(f) = failover {
            spec = spec.with_failover(f).map_err(CoreError::Storage)?;
        }
        let est = FleetMc::new(spec, params)?
            .with_coupling(fleet.coupling())?
            .run_with_cancel(&config, cancel)?;
        return Ok((
            est.array_unavailability(),
            est.availability.half_width,
            failover.map(|_| est.credited_array_unavailability()),
            (est.p_data_loss.mean, est.nomdl_per_tb),
            est.counters,
        ));
    }
    let est = match policy {
        Policy::Conventional => ConventionalMc::new(params)?.run_with_cancel(&config, cancel)?,
        Policy::Failover => FailOverMc::new(params)?.run_with_cancel(&config, cancel)?,
    };
    Ok((
        est.unavailability(),
        est.availability.half_width,
        None,
        (est.p_data_loss.mean, est.nomdl_per_tb),
        est.counters,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::expand;

    fn markov_scenario() -> Scenario {
        Scenario::parse(
            "[campaign]\nname = t\nseed = 3\ncapacity = 21\n[axes]\nraid = [r1, r5-3, r5-7]\nhep = [0, 0.01]\nlambda = 1e-5\n",
        )
        .unwrap()
    }

    #[test]
    fn runs_every_cell_in_order() {
        let plan = expand(&markov_scenario()).unwrap();
        let out = run(
            &plan,
            &RunConfig {
                workers: 2,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(out.cells.len(), 6);
        for (i, c) in out.cells.iter().enumerate() {
            assert_eq!(c.cell.index, i as u64);
            assert!(c.unavailability > 0.0 && c.unavailability < 1.0);
            assert!(c.mttdl_hours.unwrap() > 0.0);
            let v = c.volume.unwrap();
            assert!(v.unavailability >= c.unavailability);
        }
        assert_eq!(out.workers, 2);
        assert_eq!(out.unavailability_stats.count(), 6);
    }

    #[test]
    fn worker_count_does_not_change_any_metric_bit() {
        let plan = expand(&markov_scenario()).unwrap();
        let one = run(
            &plan,
            &RunConfig {
                workers: 1,
                ..Default::default()
            },
        )
        .unwrap();
        let many = run(
            &plan,
            &RunConfig {
                workers: 3,
                ..Default::default()
            },
        )
        .unwrap();
        for (a, b) in one.cells.iter().zip(&many.cells) {
            assert_eq!(a.unavailability.to_bits(), b.unavailability.to_bits());
            assert_eq!(a.nines.to_bits(), b.nines.to_bits());
            assert_eq!(
                a.volume.unwrap().unavailability.to_bits(),
                b.volume.unwrap().unavailability.to_bits()
            );
        }
        assert_eq!(
            one.unavailability_stats.mean().to_bits(),
            many.unavailability_stats.mean().to_bits()
        );
    }

    #[test]
    fn mc_cells_are_seed_deterministic_across_workers() {
        let s = Scenario::parse(
            "[campaign]\nname = m\nseed = 11\nmodel = mc\n[axes]\nlambda = [1e-3, 2e-3]\nhep = [0.01, 0.05]\n[mc]\niterations = 200\nhorizon_hours = 10000\n",
        )
        .unwrap();
        let plan = expand(&s).unwrap();
        let one = run(
            &plan,
            &RunConfig {
                workers: 1,
                ..Default::default()
            },
        )
        .unwrap();
        let four = run(
            &plan,
            &RunConfig {
                workers: 4,
                ..Default::default()
            },
        )
        .unwrap();
        for (a, b) in one.cells.iter().zip(&four.cells) {
            assert_eq!(a.unavailability.to_bits(), b.unavailability.to_bits());
            assert_eq!(
                a.ci_half_width.unwrap().to_bits(),
                b.ci_half_width.unwrap().to_bits()
            );
            assert!(a.mttdl_hours.is_none());
        }
    }

    fn mc_scenario() -> Scenario {
        Scenario::parse(
            "[campaign]\nname = m\nseed = 11\nmodel = mc\n[axes]\nlambda = [1e-3, 2e-3]\nhep = [0.01, 0.05]\n[mc]\niterations = 200\nhorizon_hours = 10000\n",
        )
        .unwrap()
    }

    #[test]
    fn telemetry_counters_merge_deterministically_across_workers() {
        let mut s = mc_scenario();
        s.telemetry.metrics = Some("m.json".into());
        let plan = expand(&s).unwrap();
        let one = run(
            &plan,
            &RunConfig {
                workers: 1,
                ..Default::default()
            },
        )
        .unwrap();
        let four = run(
            &plan,
            &RunConfig {
                workers: 4,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(!one.counters.is_empty(), "mc cells must report counters");
        assert_eq!(one.counters, four.counters);
        for (a, b) in one.cells.iter().zip(&four.cells) {
            assert_eq!(a.counters, b.counters);
        }
        // Estimates are bit-identical with telemetry on vs off: counters
        // never touch the RNG stream.
        let off = run(
            &expand(&mc_scenario()).unwrap(),
            &RunConfig {
                workers: 1,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(off.counters.is_empty(), "disabled telemetry stays all-zero");
        for (a, b) in one.cells.iter().zip(&off.cells) {
            assert_eq!(a.unavailability.to_bits(), b.unavailability.to_bits());
        }
    }

    #[test]
    fn progress_sink_gets_one_line_per_cell_and_utilization_is_sane() {
        use std::sync::Mutex;
        let plan = expand(&mc_scenario()).unwrap();
        let lines = Mutex::new(Vec::new());
        let sink = |l: &str| lines.lock().unwrap().push(l.to_string());
        let out = run_with_progress(
            &plan,
            &RunConfig {
                workers: 2,
                ..Default::default()
            },
            Some(&sink),
        )
        .unwrap();
        let lines = lines.into_inner().unwrap();
        assert_eq!(lines.len(), plan.len());
        for l in &lines {
            assert!(l.contains("done (U=") && l.contains('±'), "{l}");
            assert!(l.contains(&format!("/{}", plan.len())), "{l}");
        }
        let util = out.worker_utilization();
        assert!(util > 0.0 && util <= 1.0, "utilization {util}");
    }

    #[test]
    fn effective_workers_clamps_to_cells_and_floor_of_one() {
        let c = RunConfig {
            workers: 64,
            ..Default::default()
        };
        assert_eq!(c.effective_workers(3), 3);
        assert_eq!(c.effective_workers(0), 1);
        let auto = RunConfig {
            workers: 0,
            ..Default::default()
        };
        assert!(auto.effective_workers(1000) >= 1);
        assert_eq!(RunConfig::default().workers, 0);
    }

    #[test]
    fn failover_policy_uses_the_fig3_chain() {
        let s = Scenario::parse(
            "[campaign]\nname = f\n[axes]\nraid = r5-3\npolicy = [conventional, failover]\nhep = 0.01\nlambda = 1e-5\n",
        )
        .unwrap();
        let out = run(
            &expand(&s).unwrap(),
            &RunConfig {
                workers: 1,
                ..Default::default()
            },
        )
        .unwrap();
        // Fail-over removes the human-error exposure window, so it must be
        // strictly more available at hep > 0 (the paper's Fig. 7).
        assert!(out.cells[1].unavailability < out.cells[0].unavailability);
    }

    #[test]
    fn cell_errors_name_the_cell() {
        // RAID6 under the failover (Fig. 3) chain is invalid: ft must be 1.
        let s = Scenario::parse(
            "[campaign]\nname = bad\nmodel = markov-failover\n[axes]\nraid = r6-4\n",
        )
        .unwrap();
        let err = run(
            &expand(&s).unwrap(),
            &RunConfig {
                workers: 1,
                ..Default::default()
            },
        )
        .unwrap_err();
        assert!(err.to_string().starts_with("cell 0"), "{err}");
    }

    #[test]
    fn keep_going_records_the_failing_cell_and_continues() {
        // r6-4 under the Fig. 3 fail-over chain is invalid (ft must be 1),
        // so exactly cell 1 of this two-cell campaign fails.
        let s = Scenario::parse(
            "[campaign]\nname = kg\nmodel = markov-failover\n[axes]\nraid = [r5-3, r6-4]\nhep = 0.01\nlambda = 1e-5\n",
        )
        .unwrap();
        let plan = expand(&s).unwrap();
        assert!(run(
            &plan,
            &RunConfig {
                workers: 1,
                ..Default::default()
            }
        )
        .is_err());

        let cfg = |workers| RunConfig {
            workers,
            keep_going: true,
        };
        let one = run(&plan, &cfg(1)).unwrap();
        let four = run(&plan, &cfg(4)).unwrap();
        for out in [&one, &four] {
            assert_eq!(out.cells.len(), 2);
            assert_eq!(out.failed_cells, 1);
            assert!(!out.cells[0].is_failed());
            assert!(out.cells[1].is_failed());
            assert!(out.cells[1].unavailability.is_nan());
            assert!(
                out.cells[1].error.as_deref().unwrap().starts_with("cell 1"),
                "{:?}",
                out.cells[1].error
            );
            // Aggregates skip the failed placeholder row.
            assert_eq!(out.unavailability_stats.count(), 1);
        }
        assert_eq!(
            one.cells[0].unavailability.to_bits(),
            four.cells[0].unavailability.to_bits()
        );
        assert_eq!(one.cells[1].error, four.cells[1].error);
    }

    #[test]
    fn pre_cancelled_campaign_returns_cancelled_and_no_partial_result() {
        let plan = expand(&mc_scenario()).unwrap();
        let token = CancelToken::new();
        token.cancel();
        let err = run_cancellable(
            &plan,
            &RunConfig {
                workers: 2,
                ..Default::default()
            },
            None,
            Some(&token),
        )
        .unwrap_err();
        assert!(matches!(err, ExpError::Cancelled), "{err}");
        assert!(err.to_string().contains("cancelled"), "{err}");
    }

    #[test]
    fn expired_deadline_surfaces_the_cell_deadline_error() {
        // A deadline already in the past trips inside the first claimed
        // cell's block scheduler (cells are claimed before the outer poll
        // can observe the token again with one worker and one cell).
        let s = Scenario::parse(
            "[campaign]\nname = d\nseed = 5\nmodel = mc\n[axes]\nlambda = 1e-3\nhep = 0.01\n[mc]\niterations = 100000\nhorizon_hours = 10000\n",
        )
        .unwrap();
        let plan = expand(&s).unwrap();
        let token =
            CancelToken::with_deadline(Instant::now() - std::time::Duration::from_millis(1));
        let err = run_cancellable(
            &plan,
            &RunConfig {
                workers: 1,
                ..Default::default()
            },
            None,
            Some(&token),
        )
        .unwrap_err();
        match &err {
            ExpError::Cancelled => {}
            ExpError::Model { source, .. } => {
                assert!(matches!(source, CoreError::DeadlineExpired { .. }), "{err}");
            }
            other => panic!("unexpected error: {other}"),
        }
    }

    #[test]
    fn uncancelled_token_changes_no_result_bit() {
        let plan = expand(&mc_scenario()).unwrap();
        let cfg = RunConfig {
            workers: 2,
            ..Default::default()
        };
        let plain = run(&plan, &cfg).unwrap();
        let token =
            CancelToken::with_deadline(Instant::now() + std::time::Duration::from_secs(600));
        let with_token = run_cancellable(&plan, &cfg, None, Some(&token)).unwrap();
        for (a, b) in plain.cells.iter().zip(&with_token.cells) {
            assert_eq!(a.unavailability.to_bits(), b.unavailability.to_bits());
        }
    }

    #[test]
    fn mc_threads_setting_is_a_pure_speed_knob() {
        // `[mc] threads`: 1, an explicit count, and the documented auto
        // spelling (0) all produce bit-identical cells.
        let spec = |threads: &str| {
            Scenario::parse(&format!(
                "[campaign]\nname = t\nseed = 11\nmodel = mc\n[axes]\nlambda = 1e-3\nhep = 0.01\n[mc]\niterations = 600\nhorizon_hours = 10000\nthreads = {threads}\n",
            ))
            .unwrap()
        };
        let run_one = |threads: &str| {
            let plan = expand(&spec(threads)).unwrap();
            run(
                &plan,
                &RunConfig {
                    workers: 1,
                    ..Default::default()
                },
            )
            .unwrap()
            .cells[0]
                .unavailability
                .to_bits()
        };
        let one = run_one("1");
        assert_eq!(one, run_one("4"));
        assert_eq!(one, run_one("0"), "threads = 0 is auto, same bits");
    }

    #[test]
    fn fleet_failover_cells_report_a_credited_column() {
        let dr = Scenario::parse(
            "[campaign]\nname = dr\nseed = 7\nmodel = mc\n[axes]\nlambda = 1e-4\nhep = 0.05\n[mc]\niterations = 120\nhorizon_hours = 20000\n[fleet]\narrays = 6\nfailover_capacity = inf\n",
        )
        .unwrap();
        let out = run(
            &expand(&dr).unwrap(),
            &RunConfig {
                workers: 1,
                ..Default::default()
            },
        )
        .unwrap();
        let c = &out.cells[0];
        // An ideal DR site covers every outage: exactly zero credited
        // unavailability, not merely a small one.
        assert_eq!(c.credited_unavailability, Some(0.0));
        assert!(c.unavailability > 0.0);

        // Without the coupling there is no credited column, and the ideal
        // site draws nothing, so the plain estimate is bit-identical.
        let plain = Scenario::parse(
            "[campaign]\nname = dr\nseed = 7\nmodel = mc\n[axes]\nlambda = 1e-4\nhep = 0.05\n[mc]\niterations = 120\nhorizon_hours = 20000\n[fleet]\narrays = 6\n",
        )
        .unwrap();
        let base = run(
            &expand(&plain).unwrap(),
            &RunConfig {
                workers: 1,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(base.cells[0].credited_unavailability, None);
        assert_eq!(
            base.cells[0].unavailability.to_bits(),
            c.unavailability.to_bits()
        );
    }
}
