//! Grid expansion: turning a [`Scenario`] into an ordered list of cells.
//!
//! The grid is the cartesian product of the axes in a fixed canonical
//! order — `raid` (outermost) × `policy` × `lambda` × `hep` (innermost) —
//! so a given spec always expands to the same cell sequence regardless of
//! the order axes were declared in. Each cell gets its own RNG seed
//! derived from `(campaign seed, cell index)` through the simulator's
//! SplitMix64/xoshiro substream splitter, which makes Monte-Carlo cells
//! statistically independent yet fully reproducible.

use crate::error::{ExpError, Result};
use crate::spec::{Policy, Scenario};
use availsim_sim::rng::SimRng;
use availsim_storage::RaidGeometry;
use std::fmt::Write as _;

/// One grid point: a concrete parameter assignment plus its derived seed.
#[derive(Debug, Clone, PartialEq)]
pub struct Cell {
    /// Position in the plan (row-major over the canonical axis order).
    pub index: u64,
    /// Per-cell RNG seed, a substream of the campaign seed.
    pub seed: u64,
    /// Array geometry.
    pub raid: RaidGeometry,
    /// Replacement discipline.
    pub policy: Policy,
    /// Disk failure rate λ (per hour).
    pub lambda: f64,
    /// Human error probability.
    pub hep: f64,
}

/// The expanded campaign: every cell, in canonical order.
#[derive(Debug, Clone, PartialEq)]
pub struct Plan {
    /// The scenario this plan was expanded from.
    pub scenario: Scenario,
    /// Cells in canonical row-major order.
    pub cells: Vec<Cell>,
}

/// Derives the deterministic seed of cell `index` under `campaign_seed`.
pub fn cell_seed(campaign_seed: u64, index: u64) -> u64 {
    SimRng::substream(campaign_seed, index).next_u64()
}

/// Expands a scenario into its full grid.
///
/// # Errors
/// Returns [`ExpError::InvalidSpec`] if the scenario fails validation or
/// the grid is empty.
pub fn expand(scenario: &Scenario) -> Result<Plan> {
    scenario.validate()?;
    let policies = scenario.effective_policies();
    let mut cells = Vec::with_capacity(
        scenario.raid.len() * policies.len() * scenario.lambda.len() * scenario.hep.len(),
    );
    let mut index = 0u64;
    for &raid in &scenario.raid {
        for &policy in &policies {
            for &lambda in &scenario.lambda {
                for &hep in &scenario.hep {
                    cells.push(Cell {
                        index,
                        seed: cell_seed(scenario.seed, index),
                        raid,
                        policy,
                        lambda,
                        hep,
                    });
                    index += 1;
                }
            }
        }
    }
    if cells.is_empty() {
        return Err(ExpError::InvalidSpec("the grid expands to no cells".into()));
    }
    Ok(Plan {
        scenario: scenario.clone(),
        cells,
    })
}

impl Plan {
    /// Number of cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the plan has no cells (never true for [`expand`] output).
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Human-readable plan description, used by `availsim batch --dry-run`.
    ///
    /// The output is byte-stable for a fixed scenario: axis values are
    /// printed with round-trip float formatting and seeds as fixed-width
    /// hex.
    pub fn describe(&self) -> String {
        let s = &self.scenario;
        let mut out = String::new();
        let _ = writeln!(out, "campaign {}", s.name);
        let _ = writeln!(out, "  model     : {}", s.model);
        let _ = writeln!(out, "  seed      : {}", s.seed);
        if s.model == crate::spec::ModelKind::Mc
            && s.mc.variance != availsim_core::mc::McVariance::Naive
        {
            let _ = writeln!(out, "  variance  : {}", s.mc.variance);
        }
        // Default (1) is silent so existing campaigns keep their bytes.
        if s.model == crate::spec::ModelKind::Mc && s.mc.threads != 1 {
            let line = if s.mc.threads == 0 {
                "auto (machine parallelism)".to_string()
            } else {
                s.mc.threads.to_string()
            };
            let _ = writeln!(out, "  threads   : {line}");
        }
        if let Some(fleet) = s.fleet {
            let mut line = format!("{} arrays per cell", fleet.arrays);
            if let Some(crews) = fleet.repairmen {
                let _ = write!(line, ", {crews} repair crews");
            }
            if fleet.dependence != availsim_hra::DependenceLevel::Zero {
                let _ = write!(line, ", {} dependence", fleet.dependence);
            }
            if let (Some(domain), Some(rate)) = (fleet.domain_arrays, fleet.domain_rate) {
                let _ = write!(line, ", domains of {domain} at {}/h", format_float(rate));
            }
            if let Some(capacity) = fleet.failover_capacity {
                match capacity {
                    None => {
                        let _ = write!(line, ", DR capacity unlimited");
                    }
                    Some(k) => {
                        let _ = write!(line, ", DR capacity {k} ({})", fleet.failover_policy);
                    }
                }
                if let Some(rate) = fleet.failback_rate {
                    let _ = write!(line, ", fail-back {}/h", format_float(rate));
                }
            }
            let _ = writeln!(out, "  fleet     : {line}");
        }
        if let Some(cap) = s.capacity {
            let _ = writeln!(out, "  capacity  : {cap} disk units (volume metrics on)");
        }
        if let Some(lse) = s.lse {
            let _ = writeln!(
                out,
                "  lse       : rate {}/disk-h, scrub every {} h{}",
                format_float(lse.lse_rate),
                format_float(lse.scrub_interval_hours),
                if lse.is_live() {
                    ""
                } else {
                    " (inert: rate 0)"
                }
            );
        }
        if s.telemetry.enabled() || s.telemetry.progress {
            let mut line = String::new();
            if let Some(path) = &s.telemetry.metrics {
                let _ = write!(line, "metrics -> {path} ({})", s.telemetry.format);
            }
            if s.telemetry.progress {
                if !line.is_empty() {
                    line.push_str(", ");
                }
                line.push_str("progress on");
            }
            let _ = writeln!(out, "  telemetry : {line}");
        }
        let _ = writeln!(
            out,
            "  axes      : raid[{}] x policy[{}] x lambda[{}] x hep[{}]",
            s.raid.len(),
            s.effective_policies().len(),
            s.lambda.len(),
            s.hep.len()
        );
        let _ = writeln!(out, "  cells     : {}", self.cells.len());
        let _ = writeln!(
            out,
            "  {:>5} {:>18} {:<12} {:<12} {:>12} {:>10}",
            "cell", "seed", "raid", "policy", "lambda", "hep"
        );
        for c in &self.cells {
            let _ = writeln!(
                out,
                "  {:>5} {:>#18x} {:<12} {:<12} {:>12} {:>10}",
                c.index,
                c.seed,
                c.raid.label(),
                c.policy.as_str(),
                format_float(c.lambda),
                format_float(c.hep)
            );
        }
        out
    }
}

/// Shortest round-trip decimal form of a float (`1e-5`, `0.001`, `0.0`).
pub(crate) fn format_float(v: f64) -> String {
    format!("{v:?}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ModelKind;

    fn scenario() -> Scenario {
        Scenario::parse(
            "[campaign]\nname = t\nseed = 5\n[axes]\nraid = [r1, r5-3]\nlambda = [1e-6, 1e-5]\nhep = [0, 0.01]\n",
        )
        .unwrap()
    }

    #[test]
    fn cell_count_is_the_axis_product() {
        let plan = expand(&scenario()).unwrap();
        assert_eq!(plan.len(), 8); // raid(2) x policy(1) x lambda(2) x hep(2)
        assert!(!plan.is_empty());
    }

    #[test]
    fn cells_are_indexed_in_canonical_row_major_order() {
        let plan = expand(&scenario()).unwrap();
        for (i, c) in plan.cells.iter().enumerate() {
            assert_eq!(c.index, i as u64);
        }
        // hep is the innermost axis.
        assert_eq!(plan.cells[0].hep, 0.0);
        assert_eq!(plan.cells[1].hep, 0.01);
        // lambda next.
        assert_eq!(plan.cells[0].lambda, 1e-6);
        assert_eq!(plan.cells[2].lambda, 1e-5);
        // raid outermost.
        assert_eq!(plan.cells[0].raid.label(), "RAID1(1+1)");
        assert_eq!(plan.cells[4].raid.label(), "RAID5(3+1)");
    }

    #[test]
    fn seeds_are_deterministic_and_distinct() {
        let a = expand(&scenario()).unwrap();
        let b = expand(&scenario()).unwrap();
        assert_eq!(a, b);
        let mut seeds: Vec<u64> = a.cells.iter().map(|c| c.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), a.len(), "per-cell seeds must be distinct");
        assert_eq!(a.cells[3].seed, cell_seed(5, 3));
    }

    #[test]
    fn different_campaign_seeds_move_every_cell_seed() {
        let mut s2 = scenario();
        s2.seed = 6;
        let a = expand(&scenario()).unwrap();
        let b = expand(&s2).unwrap();
        for (ca, cb) in a.cells.iter().zip(&b.cells) {
            assert_ne!(ca.seed, cb.seed);
        }
    }

    #[test]
    fn describe_is_stable_and_complete() {
        let plan = expand(&scenario()).unwrap();
        let d1 = plan.describe();
        let d2 = expand(&scenario()).unwrap().describe();
        assert_eq!(d1, d2);
        assert!(d1.contains("cells     : 8"));
        assert!(d1.contains("RAID5(3+1)"));
        assert!(d1.contains("conventional"));
        assert!(d1.contains("1e-5"));
    }

    #[test]
    fn describe_shows_the_variance_line_only_for_rare_event_mc() {
        let naive =
            Scenario::parse("[campaign]\nname = n\nmodel = mc\n[axes]\nlambda = 1e-6\n").unwrap();
        assert!(!expand(&naive).unwrap().describe().contains("variance"));
        let biased = Scenario::parse(
            "[campaign]\nname = b\nmodel = mc\n[axes]\nlambda = 1e-6\n[mc]\nvariance = failure-biasing\n",
        )
        .unwrap();
        let d = expand(&biased).unwrap().describe();
        assert!(d.contains("  variance  : failure-biasing(bias=0.5)"), "{d}");
    }

    #[test]
    fn describe_shows_the_telemetry_line_only_when_configured() {
        assert!(!expand(&scenario())
            .unwrap()
            .describe()
            .contains("telemetry"));
        let s = Scenario::parse(
            "[campaign]\nname = t\n[telemetry]\nmetrics = m.prom\nformat = prom\nprogress = true\n",
        )
        .unwrap();
        let d = expand(&s).unwrap().describe();
        assert!(
            d.contains("  telemetry : metrics -> m.prom (prom), progress on"),
            "{d}"
        );
    }

    #[test]
    fn describe_shows_the_lse_line_only_when_configured() {
        assert!(!expand(&scenario()).unwrap().describe().contains("lse"));
        let live = Scenario::parse(
            "[campaign]\nname = l\nmodel = mc\n[lse]\nlse_rate = 1e-4\nscrub_interval = 336\n",
        )
        .unwrap();
        let d = expand(&live).unwrap().describe();
        assert!(
            d.contains("  lse       : rate 0.0001/disk-h, scrub every 336.0 h"),
            "{d}"
        );
        assert!(!d.contains("inert"), "{d}");
        let inert = Scenario::parse(
            "[campaign]\nname = l\nmodel = mc\n[lse]\nlse_rate = 0\nscrub_interval = 336\n",
        )
        .unwrap();
        let d = expand(&inert).unwrap().describe();
        assert!(d.contains("(inert: rate 0)"), "{d}");
    }

    #[test]
    fn describe_appends_the_dr_segment_only_when_configured() {
        let plain =
            Scenario::parse("[campaign]\nname = f\nmodel = mc\n[fleet]\narrays = 8\n").unwrap();
        assert!(!expand(&plain).unwrap().describe().contains("DR"));
        let bounded = Scenario::parse(
            "[campaign]\nname = f\nmodel = mc\n[fleet]\narrays = 8\nfailover_capacity = 2\nfailover_policy = loss\nfailback_rate = 0.05\n",
        )
        .unwrap();
        let d = expand(&bounded).unwrap().describe();
        assert!(
            d.contains("8 arrays per cell, DR capacity 2 (loss), fail-back 0.05/h"),
            "{d}"
        );
        let ideal = Scenario::parse(
            "[campaign]\nname = f\nmodel = mc\n[fleet]\narrays = 8\nfailover_capacity = inf\n",
        )
        .unwrap();
        let d = expand(&ideal).unwrap().describe();
        assert!(
            d.contains("8 arrays per cell, DR capacity unlimited"),
            "{d}"
        );
        assert!(!d.contains("fail-back"), "{d}");
    }

    #[test]
    fn policy_axis_expands_both_disciplines() {
        let s = Scenario::parse(
            "[campaign]\nname = p\nmodel = markov-conventional\n[axes]\npolicy = [conventional, failover]\n",
        )
        .unwrap();
        assert_eq!(s.model, ModelKind::MarkovConventional);
        let plan = expand(&s).unwrap();
        assert_eq!(plan.len(), 2);
        assert_eq!(plan.cells[0].policy, Policy::Conventional);
        assert_eq!(plan.cells[1].policy, Policy::Failover);
    }
}
