//! Campaign reports: CSV, hand-rolled JSON, and a text summary table.
//!
//! The CSV and JSON writers are **deterministic**: they contain only
//! seed-derived metrics (no timings), floats are printed in shortest
//! round-trip form, and key/column order is fixed — so two runs of the same
//! campaign seed produce byte-identical files regardless of worker count.
//! Wall-clock timings appear only in [`summary`], which doubles as a perf
//! probe for the cell solvers.

use crate::plan::format_float;
use crate::run::CampaignResult;
use crate::spec::{Metric, ModelKind};
use availsim_core::report::Table;
use std::fmt::Write as _;

/// The metric columns a campaign reports: the spec's `metrics` list, or
/// everything applicable to the model when the list is empty.
fn effective_metrics(result: &CampaignResult) -> Vec<Metric> {
    let s = &result.scenario;
    if !s.metrics.is_empty() {
        return s.metrics.clone();
    }
    let mut m = vec![Metric::Unavailability, Metric::Nines, Metric::Downtime];
    if s.model == ModelKind::Mc {
        m.push(Metric::CiHalfWidth);
    } else {
        m.push(Metric::Mttdl);
    }
    if s.capacity.is_some() {
        m.push(Metric::Volume);
    }
    m
}

fn metric_columns(m: Metric) -> &'static [&'static str] {
    match m {
        Metric::Unavailability => &["unavailability"],
        Metric::Nines => &["nines"],
        Metric::Downtime => &["downtime_min_per_year"],
        Metric::Mttdl => &["mttdl_hours"],
        Metric::CiHalfWidth => &["ci_half_width"],
        Metric::Volume => &[
            "arrays",
            "total_disks",
            "volume_unavailability",
            "volume_nines",
        ],
    }
}

fn metric_values(result: &CampaignResult, i: usize, m: Metric) -> Vec<String> {
    let c = &result.cells[i];
    let opt = |v: Option<f64>| v.map(format_float).unwrap_or_default();
    match m {
        Metric::Unavailability => vec![format_float(c.unavailability)],
        Metric::Nines => vec![format_float(c.nines)],
        Metric::Downtime => vec![format_float(c.downtime_min_per_year)],
        Metric::Mttdl => vec![opt(c.mttdl_hours)],
        Metric::CiHalfWidth => vec![opt(c.ci_half_width)],
        Metric::Volume => match c.volume {
            Some(v) => vec![
                v.arrays.to_string(),
                v.total_disks.to_string(),
                format_float(v.unavailability),
                format_float(v.nines),
            ],
            None => vec![String::new(); 4],
        },
    }
}

/// Whether the campaign's fleet has a DR coupling, i.e. whether reports
/// carry the `credited_unavailability` column.
fn has_dr_credit(result: &CampaignResult) -> bool {
    result
        .scenario
        .fleet
        .is_some_and(|f| f.failover_capacity.is_some())
}

/// Whether the campaign carries the data-loss tier, i.e. whether reports
/// add the `p_data_loss`/`nomdl_per_tb` columns. Only the MC engines
/// estimate the loss metrics; Markov cells of an `[lse]` campaign fold
/// the LSE exposure into their ordinary unavailability/MTTDL columns.
fn has_loss_columns(result: &CampaignResult) -> bool {
    result.scenario.lse.is_some() && result.scenario.model == ModelKind::Mc
}

/// Quotes a CSV field when it contains a delimiter, quote, or newline
/// (error strings are the only fields that can).
fn csv_field(s: &str) -> String {
    if s.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Renders the campaign as CSV (deterministic; no timings). Keep-going
/// runs append `status`/`error` columns; failed cells keep their axis
/// columns but leave every metric field empty.
pub fn to_csv(result: &CampaignResult) -> String {
    let metrics = effective_metrics(result);
    let mut header = vec!["cell", "seed", "raid", "policy", "lambda", "hep"];
    for &m in &metrics {
        header.extend_from_slice(metric_columns(m));
    }
    if has_dr_credit(result) {
        header.push("credited_unavailability");
    }
    if has_loss_columns(result) {
        header.extend_from_slice(&["p_data_loss", "nomdl_per_tb"]);
    }
    if result.keep_going {
        header.extend_from_slice(&["status", "error"]);
    }
    let mut out = String::new();
    let _ = writeln!(out, "{}", header.join(","));
    for (i, c) in result.cells.iter().enumerate() {
        let mut row = vec![
            c.cell.index.to_string(),
            c.cell.seed.to_string(),
            c.cell.raid.label(),
            c.cell.policy.as_str().to_string(),
            format_float(c.cell.lambda),
            format_float(c.cell.hep),
        ];
        for &m in &metrics {
            if c.is_failed() {
                row.extend(vec![String::new(); metric_columns(m).len()]);
            } else {
                row.extend(metric_values(result, i, m));
            }
        }
        if has_dr_credit(result) {
            row.push(
                c.credited_unavailability
                    .map(format_float)
                    .unwrap_or_default(),
            );
        }
        if has_loss_columns(result) {
            row.push(c.p_data_loss.map(format_float).unwrap_or_default());
            row.push(c.nomdl_per_tb.map(format_float).unwrap_or_default());
        }
        if result.keep_going {
            row.push(if c.is_failed() { "error" } else { "ok" }.to_string());
            row.push(csv_field(c.error.as_deref().unwrap_or_default()));
        }
        let _ = writeln!(out, "{}", row.join(","));
    }
    out
}

/// Minimal JSON string escaping (the only strings we emit are labels and
/// campaign names, but escape control characters anyway).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A finite float as a JSON number (shortest round-trip form); non-finite
/// values become `null` (JSON has no NaN/inf).
fn json_number(v: f64) -> String {
    if v.is_finite() {
        format_float(v)
    } else {
        "null".into()
    }
}

fn json_opt(v: Option<f64>) -> String {
    match v {
        Some(v) => json_number(v),
        None => "null".into(),
    }
}

/// Renders the campaign as JSON (deterministic; no timings). Hand-rolled —
/// the build environment has no serde.
pub fn to_json(result: &CampaignResult) -> String {
    let s = &result.scenario;
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"campaign\": {},", json_string(&s.name));
    // Seeds are full-range u64 and would lose bits past 2^53 in any
    // IEEE-double JSON consumer — emit them as decimal strings.
    let _ = writeln!(out, "  \"seed\": \"{}\",", s.seed);
    let _ = writeln!(out, "  \"model\": {},", json_string(s.model.as_str()));
    let _ = writeln!(
        out,
        "  \"capacity\": {},",
        s.capacity.map_or("null".into(), |c| c.to_string())
    );
    let _ = writeln!(out, "  \"cells\": [");
    let last = result.cells.len().saturating_sub(1);
    for (i, c) in result.cells.iter().enumerate() {
        out.push_str("    {");
        let _ = write!(
            out,
            "\"cell\": {}, \"seed\": \"{}\", \"raid\": {}, \"policy\": {}, \"lambda\": {}, \"hep\": {}, ",
            c.cell.index,
            c.cell.seed,
            json_string(&c.cell.raid.label()),
            json_string(c.cell.policy.as_str()),
            json_number(c.cell.lambda),
            json_number(c.cell.hep),
        );
        let _ = write!(
            out,
            "\"unavailability\": {}, \"nines\": {}, \"downtime_min_per_year\": {}, \"mttdl_hours\": {}, \"ci_half_width\": {}",
            json_number(c.unavailability),
            json_number(c.nines),
            json_number(c.downtime_min_per_year),
            json_opt(c.mttdl_hours),
            json_opt(c.ci_half_width),
        );
        if has_dr_credit(result) {
            let _ = write!(
                out,
                ", \"credited_unavailability\": {}",
                json_opt(c.credited_unavailability)
            );
        }
        if has_loss_columns(result) {
            let _ = write!(
                out,
                ", \"p_data_loss\": {}, \"nomdl_per_tb\": {}",
                json_opt(c.p_data_loss),
                json_opt(c.nomdl_per_tb)
            );
        }
        if result.keep_going {
            let _ = write!(
                out,
                ", \"status\": {}, \"error\": {}",
                json_string(if c.is_failed() { "error" } else { "ok" }),
                c.error.as_deref().map_or("null".into(), json_string)
            );
        }
        if let Some(v) = c.volume {
            let _ = write!(
                out,
                ", \"volume\": {{\"arrays\": {}, \"total_disks\": {}, \"unavailability\": {}, \"nines\": {}}}",
                v.arrays,
                v.total_disks,
                json_number(v.unavailability),
                json_number(v.nines),
            );
        }
        out.push('}');
        if i != last {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ],\n");
    if result.keep_going {
        let _ = writeln!(out, "  \"failed_cells\": {},", result.failed_cells);
    }
    let u = &result.unavailability_stats;
    let _ = writeln!(
        out,
        "  \"unavailability_summary\": {{\"count\": {}, \"mean\": {}, \"min\": {}, \"max\": {}}}",
        u.count(),
        json_number(u.mean()),
        json_number(u.min()),
        json_number(u.max()),
    );
    out.push_str("}\n");
    out
}

/// Renders the human-readable summary table, including per-cell timings
/// (the one non-deterministic part of a campaign's output).
pub fn summary(result: &CampaignResult) -> String {
    let metrics = effective_metrics(result);
    let volume = metrics.contains(&Metric::Volume);
    let mut headers = vec![
        "cell", "raid", "policy", "lambda", "hep", "unavail", "nines",
    ];
    if volume {
        headers.push("vol-nines");
    }
    headers.push("time-us");
    let mut table = Table::new(
        format!(
            "campaign {} ({}, {} cells, {} workers)",
            result.scenario.name,
            result.scenario.model,
            result.cells.len(),
            result.workers
        ),
        &headers,
    );
    for c in &result.cells {
        let mut row = vec![
            c.cell.index.to_string(),
            c.cell.raid.label(),
            c.cell.policy.as_str().to_string(),
            format!("{:.3e}", c.cell.lambda),
            format_float(c.cell.hep),
            if c.is_failed() {
                "failed".into()
            } else {
                format!("{:.4e}", c.unavailability)
            },
            if c.is_failed() {
                String::new()
            } else {
                format!("{:.4}", c.nines)
            },
        ];
        if volume {
            row.push(
                c.volume
                    .map(|v| format!("{:.4}", v.nines))
                    .unwrap_or_default(),
            );
        }
        row.push(c.elapsed_micros.to_string());
        table.push_row(&row);
    }
    let t = &result.timing_stats;
    let mut out = table.render();
    let _ = writeln!(
        out,
        "cell time us: mean {:.0}  min {:.0}  max {:.0}  |  wall {} us  |  worker util {:.0}%",
        t.mean(),
        t.min(),
        t.max(),
        result.wall_micros,
        result.worker_utilization() * 100.0
    );
    if result.failed_cells > 0 {
        let _ = writeln!(
            out,
            "{} cell(s) failed; see the status/error report columns",
            result.failed_cells
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::expand;
    use crate::run::{run, RunConfig};
    use crate::spec::Scenario;

    fn result() -> CampaignResult {
        let s = Scenario::parse(
            "[campaign]\nname = rpt\nseed = 2\ncapacity = 21\n[axes]\nraid = [r1, r5-3]\nhep = [0, 0.01]\nlambda = 1e-5\n",
        )
        .unwrap();
        run(
            &expand(&s).unwrap(),
            &RunConfig {
                workers: 2,
                ..Default::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn csv_has_header_and_one_row_per_cell() {
        let r = result();
        let csv = to_csv(&r);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 1 + r.cells.len());
        assert!(lines[0].starts_with("cell,seed,raid,policy,lambda,hep,unavailability"));
        assert!(lines[0].ends_with("volume_nines"));
        assert!(
            !lines[0].contains("elapsed") && !lines[0].contains("time-us"),
            "timings must not leak into the CSV"
        );
        for line in &lines[1..] {
            assert_eq!(
                line.split(',').count(),
                lines[0].split(',').count(),
                "ragged row: {line}"
            );
        }
    }

    #[test]
    fn csv_and_json_are_worker_count_invariant() {
        let s = Scenario::parse(
            "[campaign]\nname = det\nseed = 4\n[axes]\nraid = [r1, r5-3, r5-7]\nhep = [0, 0.001, 0.01]\nlambda = 1e-5\n",
        )
        .unwrap();
        let plan = expand(&s).unwrap();
        let one = run(
            &plan,
            &RunConfig {
                workers: 1,
                ..Default::default()
            },
        )
        .unwrap();
        let many = run(
            &plan,
            &RunConfig {
                workers: 4,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(to_csv(&one), to_csv(&many));
        assert_eq!(to_json(&one), to_json(&many));
    }

    #[test]
    fn json_is_structurally_sound() {
        let json = to_json(&result());
        assert!(json.starts_with("{\n"));
        assert!(json.ends_with("}\n"));
        assert_eq!(json.matches("\"cell\":").count(), 4);
        assert!(json.contains("\"campaign\": \"rpt\""));
        assert!(json.contains("\"capacity\": 21"));
        // Seeds are strings: a bare u64 above 2^53 silently corrupts in
        // IEEE-double JSON parsers.
        assert!(json.contains("\"seed\": \"2\""));
        assert!(!json.contains("\"seed\": 2,"));
        assert!(json.contains("\"volume\":"));
        assert!(json.contains("\"unavailability_summary\":"));
        // Balanced braces/brackets (rough structural check).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        // No trailing comma before the closing bracket.
        assert!(!json.contains(",\n  ]"));
    }

    #[test]
    fn json_escaping_and_numbers() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
        assert_eq!(json_number(1e-5), "1e-5");
        assert_eq!(json_number(f64::NAN), "null");
        assert_eq!(json_opt(None), "null");
    }

    #[test]
    fn summary_contains_timing_and_every_cell() {
        let r = result();
        let s = summary(&r);
        assert!(s.contains("campaign rpt"));
        assert!(s.contains("time-us"));
        assert!(s.contains("vol-nines"));
        assert!(s.contains("wall"));
        assert!(s.contains("worker util"));
        // Utilization is a wall-clock figure: summary only, never CSV/JSON.
        assert!(!to_csv(&r).contains("util"));
        assert!(!to_json(&r).contains("util"));
        assert!(s.contains("RAID5(3+1)"));
    }

    #[test]
    fn explicit_metric_selection_narrows_the_csv() {
        let s = Scenario::parse(
            "[campaign]\nname = narrow\nmetrics = [nines]\n[axes]\nraid = r5-3\nlambda = 1e-5\nhep = 0.01\n",
        )
        .unwrap();
        let r = run(
            &expand(&s).unwrap(),
            &RunConfig {
                workers: 1,
                ..Default::default()
            },
        )
        .unwrap();
        let csv = to_csv(&r);
        let header = csv.lines().next().unwrap();
        assert_eq!(header, "cell,seed,raid,policy,lambda,hep,nines");
    }

    #[test]
    fn keep_going_reports_mark_exactly_the_failed_cell() {
        let s = Scenario::parse(
            "[campaign]\nname = kg\nmodel = markov-failover\n[axes]\nraid = [r5-3, r6-4]\nhep = 0.01\nlambda = 1e-5\n",
        )
        .unwrap();
        let plan = expand(&s).unwrap();
        let cfg = |workers| RunConfig {
            workers,
            keep_going: true,
        };
        let one = run(&plan, &cfg(1)).unwrap();
        let four = run(&plan, &cfg(4)).unwrap();
        // Deterministic placement: the report bytes are worker-invariant.
        assert_eq!(to_csv(&one), to_csv(&four));
        assert_eq!(to_json(&one), to_json(&four));

        let csv = to_csv(&one);
        let lines: Vec<&str> = csv.lines().collect();
        assert!(lines[0].ends_with(",status,error"), "{}", lines[0]);
        assert!(lines[1].contains(",ok,"), "{}", lines[1]);
        assert!(lines[2].contains(",error,"), "{}", lines[2]);
        // The failed row keeps its axis columns but empties the metrics.
        assert!(lines[2].starts_with("1,"), "{}", lines[2]);
        assert!(lines[2].contains(",,"), "{}", lines[2]);
        for line in &lines[1..] {
            assert_eq!(
                split_respecting_quotes(line).len(),
                lines[0].split(',').count(),
                "ragged row: {line}"
            );
        }

        let json = to_json(&one);
        assert!(json.contains("\"status\": \"ok\""));
        assert!(json.contains("\"status\": \"error\""));
        assert!(json.contains("\"failed_cells\": 1,"));
        assert_eq!(json.matches("\"error\": null").count(), 1);
        // Failed metrics serialise as null, never NaN.
        assert!(!json.contains("NaN"));

        let text = summary(&one);
        assert!(text.contains("failed"));
        assert!(text.contains("1 cell(s) failed"));

        // A plain (non-keep-going) campaign keeps its byte-stable layout.
        let ok = result();
        assert!(!to_csv(&ok).contains("status"));
        assert!(!to_json(&ok).contains("\"failed_cells\""));
    }

    /// Splits a CSV line honouring double-quoted fields (test helper for
    /// the error column, which may contain commas).
    fn split_respecting_quotes(line: &str) -> Vec<String> {
        let mut fields = vec![String::new()];
        let mut in_quotes = false;
        for ch in line.chars() {
            match ch {
                '"' => in_quotes = !in_quotes,
                ',' if !in_quotes => fields.push(String::new()),
                c => fields.last_mut().unwrap().push(c),
            }
        }
        fields
    }

    #[test]
    fn csv_field_quotes_delimiters() {
        assert_eq!(csv_field("plain"), "plain");
        assert_eq!(csv_field("a,b"), "\"a,b\"");
        assert_eq!(csv_field("say \"hi\""), "\"say \"\"hi\"\"\"");
    }

    #[test]
    fn lse_campaigns_add_the_loss_columns() {
        let s = Scenario::parse(
            "[campaign]\nname = loss\nseed = 11\nmodel = mc\n[axes]\nlambda = 5e-4\nhep = 0.01\nraid = r5-3\n[mc]\niterations = 400\nhorizon_hours = 20000\n[lse]\nlse_rate = 1e-4\nscrub_interval = 672\n",
        )
        .unwrap();
        let r = run(
            &expand(&s).unwrap(),
            &RunConfig {
                workers: 1,
                ..Default::default()
            },
        )
        .unwrap();
        let csv = to_csv(&r);
        let header = csv.lines().next().unwrap();
        assert!(header.ends_with(",p_data_loss,nomdl_per_tb"), "{header}");
        // A hot cell (λ = 5e-4, 28-day scrubs) loses data in some missions:
        // both loss fields are populated and positive.
        let row = csv.lines().nth(1).unwrap();
        let fields: Vec<&str> = row.split(',').collect();
        let p: f64 = fields[fields.len() - 2].parse().unwrap();
        let nomdl: f64 = fields[fields.len() - 1].parse().unwrap();
        assert!(p > 0.0 && p < 1.0, "{row}");
        assert!(nomdl > 0.0, "{row}");
        let json = to_json(&r);
        assert!(json.contains("\"p_data_loss\": "));
        assert!(json.contains("\"nomdl_per_tb\": "));

        // A Markov cell of an [lse] campaign folds the exposure into its
        // ordinary columns — no loss columns appear.
        let markov = Scenario::parse(
            "[campaign]\nname = loss\nseed = 11\nmodel = markov-conventional\n[axes]\nlambda = 5e-4\nhep = 0.01\nraid = r5-3\n[lse]\nlse_rate = 1e-4\nscrub_interval = 672\n",
        )
        .unwrap();
        let r = run(
            &expand(&markov).unwrap(),
            &RunConfig {
                workers: 1,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(!to_csv(&r).contains("p_data_loss"));
        assert!(!to_json(&r).contains("p_data_loss"));

        // And a plain campaign keeps its byte-stable layout.
        let ok = result();
        assert!(!to_csv(&ok).contains("p_data_loss"));
        assert!(!to_json(&ok).contains("nomdl"));
    }

    #[test]
    fn fleet_failover_campaigns_add_the_credited_column() {
        let s = Scenario::parse(
            "[campaign]\nname = dr\nseed = 5\nmodel = mc\n[axes]\nlambda = 1e-4\nhep = 0.02\n[mc]\niterations = 100\nhorizon_hours = 20000\n[fleet]\narrays = 4\nfailover_capacity = inf\n",
        )
        .unwrap();
        let r = run(
            &expand(&s).unwrap(),
            &RunConfig {
                workers: 1,
                ..Default::default()
            },
        )
        .unwrap();
        let csv = to_csv(&r);
        let header = csv.lines().next().unwrap();
        assert!(header.ends_with(",credited_unavailability"), "{header}");
        // Ideal DR: the credited figure is exactly zero.
        assert!(csv.lines().nth(1).unwrap().ends_with(",0.0"), "{csv}");
        assert!(to_json(&r).contains("\"credited_unavailability\": 0.0"));

        // Without the coupling neither report mentions the credit.
        let plain = Scenario::parse(
            "[campaign]\nname = dr\nseed = 5\nmodel = mc\n[axes]\nlambda = 1e-4\nhep = 0.02\n[mc]\niterations = 100\nhorizon_hours = 20000\n[fleet]\narrays = 4\n",
        )
        .unwrap();
        let r = run(
            &expand(&plain).unwrap(),
            &RunConfig {
                workers: 1,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(!to_csv(&r).contains("credited"));
        assert!(!to_json(&r).contains("credited"));
    }
}
