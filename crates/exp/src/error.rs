//! Unified error type for the experiment subsystem.

use availsim_core::CoreError;
use availsim_hra::HraError;
use availsim_storage::StorageError;
use std::error::Error;
use std::fmt;

/// Errors from spec parsing, planning, running, and reporting.
#[derive(Debug)]
pub enum ExpError {
    /// The spec file could not be parsed; `line` is 1-based.
    Parse {
        /// 1-based line number of the offending line (0 for file-level
        /// problems such as a missing section).
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// The spec parsed but describes an invalid or empty campaign.
    InvalidSpec(String),
    /// A model failed while executing a cell.
    Model {
        /// Index of the failing cell in the plan.
        cell: u64,
        /// The underlying model error.
        source: CoreError,
    },
    /// An I/O failure while reading a spec or writing a report.
    Io(std::io::Error),
    /// The campaign's cooperative cancel token tripped (deadline or
    /// shutdown) before every cell completed. Partial results are
    /// discarded — a cancelled run has exactly one observable outcome.
    Cancelled,
}

impl fmt::Display for ExpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExpError::Parse { line, message } if *line > 0 => {
                write!(f, "spec line {line}: {message}")
            }
            ExpError::Parse { message, .. } => write!(f, "spec: {message}"),
            ExpError::InvalidSpec(msg) => write!(f, "invalid campaign: {msg}"),
            ExpError::Model { cell, source } => write!(f, "cell {cell}: {source}"),
            ExpError::Io(e) => write!(f, "io: {e}"),
            ExpError::Cancelled => {
                write!(
                    f,
                    "campaign cancelled: deadline expired or shutdown requested"
                )
            }
        }
    }
}

impl Error for ExpError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ExpError::Model { source, .. } => Some(source),
            ExpError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ExpError {
    fn from(e: std::io::Error) -> Self {
        ExpError::Io(e)
    }
}

impl From<StorageError> for ExpError {
    fn from(e: StorageError) -> Self {
        ExpError::InvalidSpec(e.to_string())
    }
}

impl From<HraError> for ExpError {
    fn from(e: HraError) -> Self {
        ExpError::InvalidSpec(e.to_string())
    }
}

/// Convenience result alias used across the crate.
pub type Result<T> = std::result::Result<T, ExpError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_line_numbers() {
        let e = ExpError::Parse {
            line: 7,
            message: "bad key".into(),
        };
        assert!(e.to_string().contains("line 7"));
        let e = ExpError::Parse {
            line: 0,
            message: "no [campaign] section".into(),
        };
        assert!(!e.to_string().contains("line"));
    }

    #[test]
    fn model_errors_carry_cell_and_source() {
        let e = ExpError::Model {
            cell: 3,
            source: CoreError::InvalidParameter("x".into()),
        };
        assert!(e.to_string().starts_with("cell 3"));
        assert!(e.source().is_some());
    }

    #[test]
    fn send_sync() {
        fn check<T: Send + Sync>() {}
        check::<ExpError>();
    }
}
